"""Code generation: core IR → register-machine code.

Direct recursive generation (the IR is already simple enough that no
separate A-normalisation is needed): every expression is compiled to a
fresh virtual register, ``if`` tests fuse comparison primitives into
conditional branches, tail calls become TAILCALL/TAILL, and calls whose
operator is an immutable top-level procedure become direct calls.

Closure conversion happens here too: nested lambdas become CLOSURE
instructions capturing their free variables by value (assignment
conversion already boxed anything mutable), and mutually-recursive
``fix`` bindings are allocated first and back-patched.
"""

from __future__ import annotations

from ..errors import CompileError
from ..ir import (
    Call,
    Const,
    Fix,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    LocalVar,
    Node,
    Prim,
    Program,
    Seq,
    Var,
    census_program,
    free_vars,
)
from ..prims import signed
from ..vm import isa
from .peephole import peephole


class Label:
    """A forward-patchable branch target."""

    __slots__ = ("position",)

    def __init__(self):
        self.position: int | None = None


# Negated fused branches: test op -> opcode jumping when the test FAILS.
_NEGATED_BRANCH = {
    "%eq": isa.JNE,
    "%neq": isa.JEQ,
    "%lt": isa.JGE,
    "%le": isa.JGT,
    "%ult": isa.JUGE,
    "%ule": isa.JUGT,
}

_BIN_OPS = {
    "%add": (isa.ADD, isa.ADDI),
    "%sub": (isa.SUB, isa.SUBI),
    "%mul": (isa.MUL, isa.MULI),
    "%div": (isa.DIV, None),
    "%mod": (isa.MOD, None),
    "%and": (isa.AND, isa.ANDI),
    "%or": (isa.OR, isa.ORI),
    "%xor": (isa.XOR, isa.XORI),
    "%lsl": (isa.SHL, isa.SHLI),
    "%lsr": (isa.SHR, isa.SHRI),
    "%asr": (isa.SAR, isa.SARI),
}

# test op with constant RIGHT operand -> negated immediate branch
_IMM_NEGATED_RIGHT = {
    "%eq": isa.JNEI,
    "%neq": isa.JEQI,
    "%lt": isa.JGEI,
    "%le": isa.JGTI,
}
# test op with constant LEFT operand -> negated immediate branch on the
# remaining register operand
_IMM_NEGATED_LEFT = {
    "%eq": isa.JNEI,
    "%neq": isa.JEQI,
    "%lt": isa.JLEI,
    "%le": isa.JLTI,
}

_CMP_OPS = {
    "%eq": (isa.CMPEQ, isa.CMPEQI),
    "%neq": (isa.CMPNE, isa.CMPNEI),
    "%lt": (isa.CMPLT, isa.CMPLTI),
    "%le": (isa.CMPLE, isa.CMPLEI),
    "%ult": (isa.CMPULT, None),
    "%ule": (isa.CMPULE, None),
}


class CodeGenerator:
    """Compiles a whole IR program to a :class:`VMProgram`."""

    def __init__(self, program: Program, fuse: bool = False):
        self.program = program
        self.fuse = fuse
        self.codes: list[isa.CodeObject] = []
        self.global_index: dict[str, int] = {}
        self._collect_globals()
        census = census_program(program)
        self.immutable = {
            name for name, info in census.globals.items() if info.assignments == 1
        }
        #: name -> code id, for direct calls to top-level procedures
        self.direct: dict[str, int] = {}

    def _collect_globals(self) -> None:
        for name in self.program.globals:
            self.global_index.setdefault(name, len(self.global_index))
        stack = list(self.program.forms)
        while stack:
            node = stack.pop()
            if isinstance(node, (GlobalRef, GlobalSet)):
                self.global_index.setdefault(node.name, len(self.global_index))
            stack.extend(node.children())

    def generate(self) -> isa.VMProgram:
        main = isa.CodeObject("%main", 0, False, 0)
        self.codes.append(main)
        # Pre-assign code ids for immutable top-level procedures so calls
        # anywhere (including forward references) can be direct.
        pending: list[tuple[str, Lambda]] = []
        for form in self.program.forms:
            if (
                isinstance(form, GlobalSet)
                and isinstance(form.value, Lambda)
                and form.name in self.immutable
            ):
                code = isa.CodeObject(
                    form.value.name or form.name,
                    len(form.value.params),
                    form.value.rest is not None,
                    0,  # top-level: free variables are only globals
                )
                self.codes.append(code)
                self.direct[form.name] = len(self.codes) - 1
                pending.append((form.name, form.value))
        # Compile the top-level procedures' bodies.
        for name, lam in pending:
            if free_vars(lam):
                raise CompileError(
                    f"top-level procedure {name} has free local variables"
                )
            self._compile_lambda_into(self.codes[self.direct[name]], lam)
        # Compile the main sequence.
        fn = FnCompiler(self, main, {}, closure_reg=None)
        last_reg = None
        for form in self.program.forms:
            if isinstance(form, GlobalSet):
                if form.name in self.direct and isinstance(form.value, Lambda):
                    value_reg = fn.fresh()
                    fn.emit(isa.CLOSURE, value_reg, self.direct[form.name], [])
                else:
                    value_reg = fn.compile_expr(form.value)
                fn.emit(isa.GST, value_reg, self.global_index[form.name])
                last_reg = value_reg
            else:
                last_reg = fn.compile_expr(form)
        if last_reg is None:
            last_reg = fn.fresh()
            fn.emit(isa.LDC, last_reg, 0)
        fn.emit(isa.HALT, last_reg)
        fn.finish()
        global_names = [None] * len(self.global_index)
        for name, index in self.global_index.items():
            global_names[index] = name
        return isa.VMProgram(self.codes, global_names)

    # ------------------------------------------------------------------

    def compile_lambda(self, lam: Lambda) -> tuple[int, list[LocalVar]]:
        """Compile a (nested) lambda; returns (code_id, ordered frees)."""
        frees = sorted(free_vars(lam), key=lambda v: v.uid)
        code = isa.CodeObject(
            lam.name or "lambda",
            len(lam.params),
            lam.rest is not None,
            len(frees),
        )
        self.codes.append(code)
        code_id = len(self.codes) - 1
        self._compile_lambda_into(code, lam, frees)
        return code_id, frees

    def _compile_lambda_into(
        self,
        code: isa.CodeObject,
        lam: Lambda,
        frees: list[LocalVar] | None = None,
    ) -> None:
        frees = frees or []
        regmap: dict[LocalVar, int] = {}
        next_reg = 0
        for param in lam.params:
            regmap[param] = next_reg
            next_reg += 1
        if lam.rest is not None:
            regmap[lam.rest] = next_reg
            next_reg += 1
        closure_reg = None
        if frees:
            closure_reg = next_reg
            next_reg += 1
        fn = FnCompiler(self, code, regmap, closure_reg, next_reg)
        # Prologue: load every captured variable into a register (the
        # loads then dominate all uses).
        for i, var in enumerate(frees):
            reg = fn.fresh()
            fn.emit(isa.LD, reg, closure_reg, 9 + 8 * i)
            regmap[var] = reg
        fn.compile_tail(lam.body)
        fn.finish()


class FnCompiler:
    """Compiles one procedure body."""

    def __init__(
        self,
        gen: CodeGenerator,
        code: isa.CodeObject,
        regmap: dict[LocalVar, int],
        closure_reg: int | None,
        next_reg: int | None = None,
    ):
        self.gen = gen
        self.code = code
        self.regmap = regmap
        self.closure_reg = closure_reg
        self.next_reg = next_reg if next_reg is not None else 0
        self.instructions = code.instructions

    # ------------------------------------------------------------------
    # emission plumbing
    # ------------------------------------------------------------------

    def fresh(self) -> int:
        reg = self.next_reg
        self.next_reg += 1
        return reg

    def emit(self, *parts) -> list:
        ins = list(parts)
        self.instructions.append(ins)
        return ins

    def new_label(self) -> Label:
        return Label()

    def bind(self, label: Label) -> None:
        label.position = len(self.instructions)

    def finish(self) -> None:
        for ins in self.instructions:
            for i, operand in enumerate(ins):
                if isinstance(operand, Label):
                    assert operand.position is not None, "unbound label"
                    ins[i] = operand.position
        self.code.nregs = self.next_reg
        peephole(self.code, fuse=self.gen.fuse)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def compile_expr(self, node: Node) -> int:
        """Compile for value; returns the result register."""
        if isinstance(node, Const):
            reg = self.fresh()
            self.emit(isa.LDC, reg, node.value)
            return reg
        if isinstance(node, Var):
            reg = self.regmap.get(node.var)
            if reg is None:
                raise CompileError(f"unbound variable {node.var} in codegen")
            return reg
        if isinstance(node, GlobalRef):
            reg = self.fresh()
            self.emit(isa.GLD, reg, self._global(node.name))
            return reg
        if isinstance(node, GlobalSet):
            value = self.compile_expr(node.value)
            self.emit(isa.GST, value, self._global(node.name))
            return value
        if isinstance(node, LocalSet):
            raise CompileError("LocalSet survived assignment conversion")
        if isinstance(node, Seq):
            for expr in node.exprs[:-1]:
                self.compile_effect(expr)
            return self.compile_expr(node.exprs[-1])
        if isinstance(node, Let):
            for var, init in node.bindings:
                self.regmap[var] = self.compile_expr(init)
            return self.compile_expr(node.body)
        if isinstance(node, Fix):
            self._compile_fix(node)
            return self.compile_expr(node.body)
        if isinstance(node, Letrec):
            raise CompileError("Letrec survived letrec fixing")
        if isinstance(node, If):
            false_label = self.new_label()
            join = self.new_label()
            dest = self.fresh()
            self.compile_test(node.test, false_label)
            then_reg = self.compile_expr(node.then)
            self.emit(isa.MOV, dest, then_reg)
            self.emit(isa.JMP, join)
            self.bind(false_label)
            else_reg = self.compile_expr(node.els)
            self.emit(isa.MOV, dest, else_reg)
            self.bind(join)
            return dest
        if isinstance(node, Lambda):
            code_id, frees = self.gen.compile_lambda(node)
            dest = self.fresh()
            self.emit(
                isa.CLOSURE, dest, code_id, [self._var_reg(v) for v in frees]
            )
            return dest
        if isinstance(node, Call):
            return self._compile_call(node, tail=False)
        if isinstance(node, Prim):
            return self._compile_prim(node, want_value=True)
        raise CompileError(f"codegen: unknown node {type(node).__name__}")

    def compile_effect(self, node: Node) -> None:
        """Compile for side effect only."""
        if isinstance(node, (Const, Var, GlobalRef)):
            if isinstance(node, GlobalRef):
                # Preserve the undefined-global check.
                self.compile_expr(node)
            return
        if isinstance(node, Seq):
            for expr in node.exprs:
                self.compile_effect(expr)
            return
        if isinstance(node, Let):
            for var, init in node.bindings:
                self.regmap[var] = self.compile_expr(init)
            self.compile_effect(node.body)
            return
        if isinstance(node, If):
            false_label = self.new_label()
            join = self.new_label()
            self.compile_test(node.test, false_label)
            self.compile_effect(node.then)
            self.emit(isa.JMP, join)
            self.bind(false_label)
            self.compile_effect(node.els)
            self.bind(join)
            return
        if isinstance(node, Prim):
            self._compile_prim(node, want_value=False)
            return
        self.compile_expr(node)

    def compile_tail(self, node: Node) -> None:
        """Compile in tail position: ends with RET or a tail call."""
        if isinstance(node, Seq):
            for expr in node.exprs[:-1]:
                self.compile_effect(expr)
            self.compile_tail(node.exprs[-1])
            return
        if isinstance(node, Let):
            for var, init in node.bindings:
                self.regmap[var] = self.compile_expr(init)
            self.compile_tail(node.body)
            return
        if isinstance(node, Fix):
            self._compile_fix(node)
            self.compile_tail(node.body)
            return
        if isinstance(node, If):
            false_label = self.new_label()
            self.compile_test(node.test, false_label)
            self.compile_tail(node.then)
            self.bind(false_label)
            self.compile_tail(node.els)
            return
        if isinstance(node, Call):
            self._compile_call(node, tail=True)
            return
        if isinstance(node, Prim) and node.op == "%apply":
            fn_reg = self.compile_expr(node.args[0])
            list_reg = self.compile_expr(node.args[1])
            self.emit(isa.TAILAPPLY, fn_reg, list_reg)
            return
        if isinstance(node, Prim) and node.op == "%fail":
            self._compile_prim(node, want_value=False)
            return
        reg = self.compile_expr(node)
        self.emit(isa.RET, reg)

    # ------------------------------------------------------------------
    # tests and branches
    # ------------------------------------------------------------------

    def compile_test(self, test: Node, false_label: Label) -> None:
        """Emit code that jumps to ``false_label`` when the test word is
        zero, fusing comparison primitives into conditional branches."""
        if isinstance(test, Prim) and test.op in _NEGATED_BRANCH:
            left, right = test.args
            # Immediate forms (jump taken when the test FAILS):
            #   (%eq a K)  fails when a != K           -> JNEI
            #   (%lt a K)  fails when a >= K           -> JGEI
            #   (%lt K b)  fails when K >= b, b <= K   -> JLEI
            #   (%le a K)  fails when a > K            -> JGTI
            #   (%le K b)  fails when b < K            -> JLTI
            if isinstance(right, Const) and test.op in _IMM_NEGATED_RIGHT:
                left_reg = self.compile_expr(left)
                self.emit(
                    _IMM_NEGATED_RIGHT[test.op], left_reg, right.value, false_label
                )
                return
            if isinstance(left, Const) and test.op in _IMM_NEGATED_LEFT:
                right_reg = self.compile_expr(right)
                self.emit(
                    _IMM_NEGATED_LEFT[test.op], right_reg, left.value, false_label
                )
                return
            left_reg = self.compile_expr(left)
            right_reg = self.compile_expr(right)
            self.emit(_NEGATED_BRANCH[test.op], left_reg, right_reg, false_label)
            return
        if isinstance(test, Prim) and test.op == "%nz":
            reg = self.compile_expr(test.args[0])
            self.emit(isa.JF, reg, false_label)
            return
        reg = self.compile_expr(test)
        self.emit(isa.JF, reg, false_label)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def _compile_call(self, node: Call, tail: bool) -> int | None:
        fn = node.fn
        direct_id = None
        if isinstance(fn, GlobalRef):
            direct_id = self.gen.direct.get(fn.name)
        if direct_id is not None:
            callee = self.gen.codes[direct_id]
            bad_arity = (
                len(node.args) != callee.nparams
                if not callee.has_rest
                else len(node.args) < callee.nparams
            )
            if bad_arity:
                raise CompileError(
                    f"call to {fn.name} with {len(node.args)} argument(s); "
                    f"it expects {'at least ' if callee.has_rest else ''}"
                    f"{callee.nparams}"
                )
            arg_regs = [self.compile_expr(arg) for arg in node.args]
            if tail:
                self.emit(isa.TAILL, direct_id, arg_regs)
                return None
            dest = self.fresh()
            self.emit(isa.CALLL, dest, direct_id, arg_regs)
            return dest
        fn_reg = self.compile_expr(fn)
        arg_regs = [self.compile_expr(arg) for arg in node.args]
        if tail:
            self.emit(isa.TAILCALL, fn_reg, arg_regs)
            return None
        dest = self.fresh()
        self.emit(isa.CALL, dest, fn_reg, arg_regs)
        return dest

    # ------------------------------------------------------------------
    # fix (mutually recursive closures)
    # ------------------------------------------------------------------

    def _compile_fix(self, node: Fix) -> None:
        fix_vars = {var for var, _ in node.bindings}
        compiled: list[tuple[LocalVar, int, list[LocalVar]]] = []
        for var, lam in node.bindings:
            code_id, frees = self.gen.compile_lambda(lam)
            compiled.append((var, code_id, frees))
        zero_reg: int | None = None
        # First pass: allocate all closures, with holes for siblings.
        for var, code_id, frees in compiled:
            free_regs = []
            for free in frees:
                if free in fix_vars and free not in self.regmap:
                    if zero_reg is None:
                        zero_reg = self.fresh()
                        self.emit(isa.LDC, zero_reg, 0)
                    free_regs.append(zero_reg)
                else:
                    free_regs.append(self._var_reg(free))
            dest = self.fresh()
            self.emit(isa.CLOSURE, dest, code_id, free_regs)
            self.regmap[var] = dest
        # Second pass: patch sibling references.
        for var, code_id, frees in compiled:
            closure_reg = self.regmap[var]
            for i, free in enumerate(frees):
                if free in fix_vars:
                    self.emit(
                        isa.ST, closure_reg, 9 + 8 * i, self.regmap[free]
                    )

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------

    def _compile_prim(self, node: Prim, want_value: bool) -> int:
        op = node.op
        if op in _BIN_OPS:
            return self._binary(node, *_BIN_OPS[op])
        if op in _CMP_OPS:
            return self._binary(node, *_CMP_OPS[op])
        if op == "%nz":
            src = self.compile_expr(node.args[0])
            dest = self.fresh()
            self.emit(isa.CMPNZ, dest, src)
            return dest
        if op == "%not":
            src = self.compile_expr(node.args[0])
            dest = self.fresh()
            self.emit(isa.NOT, dest, src)
            return dest
        if op == "%load":
            return self._compile_load(node)
        if op == "%store":
            self._compile_store(node)
            return self._unit(want_value)
        if op == "%alloc":
            return self._compile_alloc(node)
        if op == "%putc":
            reg = self.compile_expr(node.args[0])
            self.emit(isa.PUTC, reg)
            return self._unit(want_value)
        if op == "%getc":
            dest = self.fresh()
            self.emit(isa.GETC, dest)
            return dest
        if op == "%peekc":
            dest = self.fresh()
            self.emit(isa.PEEKC, dest)
            return dest
        if op == "%fail":
            reg = self.compile_expr(node.args[0])
            self.emit(isa.FAIL, reg)
            return self._unit(want_value)
        if op == "%apply":
            fn_reg = self.compile_expr(node.args[0])
            list_reg = self.compile_expr(node.args[1])
            dest = self.fresh()
            self.emit(isa.APPLY, dest, fn_reg, list_reg)
            return dest
        if op == "%callec":
            fn_reg = self.compile_expr(node.args[0])
            dest = self.fresh()
            self.emit(isa.CALLEC, dest, fn_reg)
            return dest
        if op == "%register-pointer-rep":
            reg = self.compile_expr(node.args[0])
            self.emit(isa.REGPTR, reg)
            return self._unit(want_value)
        if op == "%register-pair-rep":
            regs = [self.compile_expr(arg) for arg in node.args]
            self.emit(isa.REGPAIR, *regs)
            return self._unit(want_value)
        if op == "%register-nil":
            reg = self.compile_expr(node.args[0])
            self.emit(isa.REGNIL, reg)
            return self._unit(want_value)
        if op == "%register-false":
            reg = self.compile_expr(node.args[0])
            self.emit(isa.REGFALSE, reg)
            return self._unit(want_value)
        raise CompileError(f"codegen: unknown primitive {op}")

    def _unit(self, want_value: bool) -> int:
        if not want_value:
            return -1
        reg = self.fresh()
        self.emit(isa.LDC, reg, 0)
        return reg

    def _binary(self, node: Prim, opcode: int, imm_opcode: int | None) -> int:
        left, right = node.args
        left_reg = self.compile_expr(left)
        dest = self.fresh()
        if imm_opcode is not None and isinstance(right, Const):
            self.emit(imm_opcode, dest, left_reg, right.value)
            return dest
        right_reg = self.compile_expr(right)
        self.emit(opcode, dest, left_reg, right_reg)
        return dest

    def _compile_load(self, node: Prim) -> int:
        base, disp = node.args
        base_reg = self.compile_expr(base)
        dest = self.fresh()
        if isinstance(disp, Const):
            self.emit(isa.LD, dest, base_reg, signed(disp.value))
            return dest
        disp_reg = self.compile_expr(disp)
        address = self.fresh()
        self.emit(isa.ADD, address, base_reg, disp_reg)
        self.emit(isa.LD, dest, address, 0)
        return dest

    def _compile_store(self, node: Prim) -> None:
        base, disp, value = node.args
        base_reg = self.compile_expr(base)
        if isinstance(disp, Const):
            value_reg = self.compile_expr(value)
            self.emit(isa.ST, base_reg, signed(disp.value), value_reg)
            return
        disp_reg = self.compile_expr(disp)
        address = self.fresh()
        self.emit(isa.ADD, address, base_reg, disp_reg)
        value_reg = self.compile_expr(value)
        self.emit(isa.ST, address, 0, value_reg)

    def _compile_alloc(self, node: Prim) -> int:
        nwords, tag = node.args
        dest = self.fresh()
        if isinstance(nwords, Const) and isinstance(tag, Const):
            self.emit(isa.ALLOCI, dest, nwords.value, tag.value & 7)
            return dest
        nwords_reg = self.compile_expr(nwords)
        tag_reg = self.compile_expr(tag)
        self.emit(isa.ALLOC, dest, nwords_reg, tag_reg)
        return dest

    # ------------------------------------------------------------------

    def _var_reg(self, var: LocalVar) -> int:
        reg = self.regmap.get(var)
        if reg is None:
            raise CompileError(f"variable {var} not in scope during codegen")
        return reg

    def _global(self, name: str) -> int:
        return self.gen.global_index[name]


def _attach_emit_hints(generator: CodeGenerator, summaries) -> None:
    """Compute emit-time facts for every code object (vm.codegen reads
    them from ``CodeObject.meta["emit_hints"]``).

    Interprocedural summaries seed the entry block of top-level
    procedures the analysis fully tracked: the summary's parameter
    lattice values map to registers 0..nparams-1 (the calling
    convention spreads arguments there).  Everything else — nested
    lambdas, rest-arg procedures, the main sequence — gets the purely
    intraprocedural scan.
    """
    from .peephole import compute_emit_hints

    by_name = {}
    if summaries is not None and getattr(summaries, "context", None) is not None:
        by_name = getattr(summaries.context, "by_name", {}) or {}
    entry_for_id: dict[int, dict] = {}
    for name, code_id in generator.direct.items():
        info = by_name.get(name)
        code = generator.codes[code_id]
        if (
            info is None
            or not info.tracks_params
            or code.has_rest
            or len(info.params) != code.nparams
        ):
            continue
        entry = {
            reg: fact
            for reg, fact in enumerate(info.params)
            if not fact.is_top
        }
        if entry:
            entry_for_id[code_id] = entry
    for code_id, code in enumerate(generator.codes):
        compute_emit_hints(code, entry_for_id.get(code_id))


def generate_code(
    program: Program, fuse: bool = False, summaries=None
) -> isa.VMProgram:
    """Generate VM code; with ``fuse`` the peephole pass also fuses
    superinstruction pairs (see :mod:`repro.backend.peephole`).

    ``summaries`` (the optimizer's interprocedural
    :class:`~repro.absint.summaries.ProgramSummaries`, when available)
    sharpens the emit-time facts attached to each code object; the
    compiled engine uses those to drop provably dead checks at emit
    time.  Facts are advisory — every engine runs correctly without
    them.
    """
    generator = CodeGenerator(program, fuse=fuse)
    vm_program = generator.generate()
    _attach_emit_hints(generator, summaries)
    return vm_program
