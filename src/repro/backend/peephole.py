"""Peephole cleanup over emitted code.

Two rewrites, both bookkeeping-only (no representation knowledge):

* ``OP …→t ; MOV d, t`` where ``t`` is used nowhere else and the MOV is
  not a branch target: retarget OP to ``d`` and drop the MOV.  This
  removes the join-move the straightforward if-compilation introduces.
* ``JMP L`` where ``L`` is the next instruction: dropped.

Branch targets are remapped after deletions.

A third, optional rewrite runs last: **superinstruction fusion**
(:func:`fuse_superinstructions`) replaces adjacent instruction pairs
listed in ``isa.FUSION_TABLE`` with single fused opcodes.  Fusion is a
pure dispatch optimisation — a fused instruction is defined as the
sequential execution of its two halves, and instruction counting
decomposes it back — so it must only be careful about control flow: a
pair is never fused when its second instruction is a branch target
(the branch must still be able to land between the halves), and a pair
whose *first* instruction could transfer control never fuses (no such
pair is in the table; the pass checks anyway).
"""

from __future__ import annotations

from ..vm import isa

_REG_BINARY = {
    isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD,
    isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR,
    isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPULT, isa.CMPULE,
}
_IMM_BINARY = {
    isa.ADDI, isa.SUBI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI,
    isa.SHLI, isa.SHRI, isa.SARI,
    isa.CMPEQI, isa.CMPNEI, isa.CMPLTI, isa.CMPLEI,
}
_FUSED_BRANCHES = {
    isa.JEQ, isa.JNE, isa.JLT, isa.JGE, isa.JLE, isa.JGT,
    isa.JULT, isa.JUGE, isa.JULE, isa.JUGT,
}

_IMM_BRANCHES = {isa.JEQI, isa.JNEI, isa.JLTI, isa.JGEI, isa.JLEI, isa.JGTI}

# operand index holding the branch target, per opcode
_TARGET_INDEX = {
    isa.JMP: 1,
    isa.JT: 2,
    isa.JF: 2,
    **{op: 3 for op in _IMM_BRANCHES},
    **{op: 3 for op in _FUSED_BRANCHES},
}


# Fused opcodes whose second constituent is a branch keep the target as
# their last operand: 1 (opcode) + width(first) + target offset within
# the second constituent's operands.
for _pair, _fop in isa.FUSION_TABLE.items():
    _second_target = _TARGET_INDEX.get(_pair[1])
    if _second_target is not None:
        _TARGET_INDEX[_fop] = isa.OPERAND_COUNT[_pair[0]] + _second_target


def branch_target_index(op: int) -> int | None:
    return _TARGET_INDEX.get(op)


def dest_position(ins: list) -> int | None:
    """Operand index of the destination register, if the op writes one."""
    op = ins[0]
    if op >= isa.FIRST_FUSED:
        # conservative: never retarget into a fused instruction
        return None
    if op in (
        isa.LDC, isa.MOV, isa.NOT, isa.CMPNZ, isa.LD,
        isa.ALLOC, isa.ALLOCI, isa.GLD, isa.CLOSURE,
        isa.CALL, isa.CALLL, isa.APPLY, isa.GETC, isa.PEEKC, isa.CALLEC,
    ):
        return 1
    if op in _REG_BINARY or op in _IMM_BINARY:
        return 1
    return None


def source_registers(ins: list) -> list[int]:
    """Register numbers this instruction reads."""
    op = ins[0]
    if op >= isa.FIRST_FUSED:
        first, second = isa.decompose(ins)
        return source_registers(first) + source_registers(second)
    if op in (isa.LDC, isa.ALLOCI, isa.GLD, isa.JMP, isa.GETC, isa.PEEKC):
        return []
    if op in (isa.MOV, isa.NOT, isa.CMPNZ):
        return [ins[2]]
    if op in _REG_BINARY:
        return [ins[2], ins[3]]
    if op in _IMM_BINARY:
        return [ins[2]]
    if op in (isa.JT, isa.JF) or op in _IMM_BRANCHES:
        return [ins[1]]
    if op in _FUSED_BRANCHES:
        return [ins[1], ins[2]]
    if op == isa.LD:
        return [ins[2]]
    if op == isa.ST:
        return [ins[1], ins[3]]
    if op == isa.ALLOC:
        return [ins[2], ins[3]]
    if op == isa.GST:
        return [ins[1]]
    if op == isa.CLOSURE:
        return list(ins[3])
    if op == isa.CALL:
        return [ins[2]] + list(ins[3])
    if op == isa.CALLL:
        return list(ins[3])
    if op == isa.TAILCALL:
        return [ins[1]] + list(ins[2])
    if op == isa.TAILL:
        return list(ins[2])
    if op in (isa.RET, isa.REGPTR, isa.REGNIL, isa.REGFALSE, isa.PUTC, isa.FAIL, isa.HALT):
        return [ins[1]]
    if op == isa.APPLY:
        return [ins[2], ins[3]]
    if op == isa.CALLEC:
        return [ins[2]]
    if op == isa.TAILAPPLY:
        return [ins[1], ins[2]]
    if op == isa.REGPAIR:
        return [ins[1], ins[2], ins[3]]
    raise ValueError(f"unknown opcode {op}")


def peephole(code: isa.CodeObject, fuse: bool = False) -> None:
    """Apply the rewrites in place (iterates to a fixpoint)."""
    while _fuse_moves(code) or _drop_trivial_jumps(code):
        pass
    if fuse:
        fuse_superinstructions(code)


def fuse_superinstructions(code: isa.CodeObject) -> int:
    """Fuse adjacent pairs from ``isa.FUSION_TABLE``; returns the number
    of pairs fused.

    Legality: the pair must be a guaranteed fall-through (the first
    instruction never transfers control — true of every table entry)
    and no branch may land *between* the two halves, i.e. the second
    instruction must not be a branch target.  Branches landing on the
    first instruction are fine: they enter the fused pair at its start.
    """
    instructions = code.instructions
    n = len(instructions)
    targets = _branch_targets(instructions)
    out: list[list] = []
    index_map = [0] * (n + 1)
    fused = 0
    i = 0
    while i < n:
        index_map[i] = len(out)
        ins = instructions[i]
        if i + 1 < n and (i + 1) not in targets and branch_target_index(ins[0]) is None:
            fop = isa.FUSION_TABLE.get((ins[0], instructions[i + 1][0]))
            if fop is not None:
                second = instructions[i + 1]
                index_map[i + 1] = len(out)  # unreachable as a target
                out.append([fop, *ins[1:], *second[1:]])
                fused += 1
                i += 2
                continue
        out.append(ins)
        i += 1
    index_map[n] = len(out)
    if fused:
        for ins in out:
            index = branch_target_index(ins[0])
            if index is not None:
                ins[index] = index_map[ins[index]]
        code.instructions = out
    return fused


def _branch_targets(instructions: list[list]) -> set[int]:
    targets = set()
    for ins in instructions:
        index = branch_target_index(ins[0])
        if index is not None:
            targets.add(ins[index])
    return targets


def _fuse_moves(code: isa.CodeObject) -> bool:
    instructions = code.instructions
    targets = _branch_targets(instructions)
    reads: dict[int, int] = {}
    writes: dict[int, int] = {}
    for ins in instructions:
        position = dest_position(ins)
        if position is not None:
            reg = ins[position]
            writes[reg] = writes.get(reg, 0) + 1
        for reg in source_registers(ins):
            reads[reg] = reads.get(reg, 0) + 1
    changed = False
    drop: set[int] = set()
    for i in range(len(instructions) - 1):
        if i in drop or (i + 1) in drop or (i + 1) in targets:
            continue
        mov = instructions[i + 1]
        if mov[0] != isa.MOV:
            continue
        prev = instructions[i]
        position = dest_position(prev)
        if position is None:
            continue
        temp = prev[position]
        if mov[2] != temp or mov[1] == temp:
            continue
        if reads.get(temp, 0) != 1 or writes.get(temp, 0) != 1:
            continue
        prev[position] = mov[1]
        drop.add(i + 1)
        changed = True
    if changed:
        _delete(code, drop)
    return changed


def _drop_trivial_jumps(code: isa.CodeObject) -> bool:
    instructions = code.instructions
    drop = {
        i
        for i, ins in enumerate(instructions)
        if ins[0] == isa.JMP and ins[1] == i + 1
    }
    if not drop:
        return False
    _delete(code, drop)
    return True


def _delete(code: isa.CodeObject, drop: set[int]) -> None:
    instructions = code.instructions
    mapping: list[int] = []
    new_position = 0
    for i in range(len(instructions) + 1):
        mapping.append(new_position)
        if i < len(instructions) and i not in drop:
            new_position += 1
    kept = [ins for i, ins in enumerate(instructions) if i not in drop]
    for ins in kept:
        index = branch_target_index(ins[0])
        if index is not None:
            ins[index] = mapping[ins[index]]
    code.instructions = kept
