"""Peephole cleanup over emitted code.

Two rewrites, both bookkeeping-only (no representation knowledge):

* ``OP …→t ; MOV d, t`` where ``t`` is used nowhere else and the MOV is
  not a branch target: retarget OP to ``d`` and drop the MOV.  This
  removes the join-move the straightforward if-compilation introduces.
* ``JMP L`` where ``L`` is the next instruction: dropped.

Branch targets are remapped after deletions.

A third, optional rewrite runs last: **superinstruction fusion**
(:func:`fuse_superinstructions`) replaces adjacent instruction pairs
listed in ``isa.FUSION_TABLE`` with single fused opcodes.  Fusion is a
pure dispatch optimisation — a fused instruction is defined as the
sequential execution of its two halves, and instruction counting
decomposes it back — so it must only be careful about control flow: a
pair is never fused when its second instruction is a branch target
(the branch must still be able to land between the halves), and a pair
whose *first* instruction could transfer control never fuses (no such
pair is in the table; the pass checks anyway).
"""

from __future__ import annotations

from ..vm import isa

_REG_BINARY = {
    isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD,
    isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR,
    isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPULT, isa.CMPULE,
}
_IMM_BINARY = {
    isa.ADDI, isa.SUBI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI,
    isa.SHLI, isa.SHRI, isa.SARI,
    isa.CMPEQI, isa.CMPNEI, isa.CMPLTI, isa.CMPLEI,
}
_FUSED_BRANCHES = {
    isa.JEQ, isa.JNE, isa.JLT, isa.JGE, isa.JLE, isa.JGT,
    isa.JULT, isa.JUGE, isa.JULE, isa.JUGT,
}

_IMM_BRANCHES = {isa.JEQI, isa.JNEI, isa.JLTI, isa.JGEI, isa.JLEI, isa.JGTI}

# operand index holding the branch target, per opcode
_TARGET_INDEX = {
    isa.JMP: 1,
    isa.JT: 2,
    isa.JF: 2,
    **{op: 3 for op in _IMM_BRANCHES},
    **{op: 3 for op in _FUSED_BRANCHES},
}


# Fused opcodes whose second constituent is a branch keep the target as
# their last operand: 1 (opcode) + width(first) + target offset within
# the second constituent's operands.
for _pair, _fop in isa.FUSION_TABLE.items():
    _second_target = _TARGET_INDEX.get(_pair[1])
    if _second_target is not None:
        _TARGET_INDEX[_fop] = isa.OPERAND_COUNT[_pair[0]] + _second_target


def branch_target_index(op: int) -> int | None:
    return _TARGET_INDEX.get(op)


def dest_position(ins: list) -> int | None:
    """Operand index of the destination register, if the op writes one."""
    op = ins[0]
    if op >= isa.FIRST_FUSED:
        # conservative: never retarget into a fused instruction
        return None
    if op in (
        isa.LDC, isa.MOV, isa.NOT, isa.CMPNZ, isa.LD,
        isa.ALLOC, isa.ALLOCI, isa.GLD, isa.CLOSURE,
        isa.CALL, isa.CALLL, isa.APPLY, isa.GETC, isa.PEEKC, isa.CALLEC,
    ):
        return 1
    if op in _REG_BINARY or op in _IMM_BINARY:
        return 1
    return None


def source_registers(ins: list) -> list[int]:
    """Register numbers this instruction reads."""
    op = ins[0]
    if op >= isa.FIRST_FUSED:
        first, second = isa.decompose(ins)
        return source_registers(first) + source_registers(second)
    if op in (isa.LDC, isa.ALLOCI, isa.GLD, isa.JMP, isa.GETC, isa.PEEKC):
        return []
    if op in (isa.MOV, isa.NOT, isa.CMPNZ):
        return [ins[2]]
    if op in _REG_BINARY:
        return [ins[2], ins[3]]
    if op in _IMM_BINARY:
        return [ins[2]]
    if op in (isa.JT, isa.JF) or op in _IMM_BRANCHES:
        return [ins[1]]
    if op in _FUSED_BRANCHES:
        return [ins[1], ins[2]]
    if op == isa.LD:
        return [ins[2]]
    if op == isa.ST:
        return [ins[1], ins[3]]
    if op == isa.ALLOC:
        return [ins[2], ins[3]]
    if op == isa.GST:
        return [ins[1]]
    if op == isa.CLOSURE:
        return list(ins[3])
    if op == isa.CALL:
        return [ins[2]] + list(ins[3])
    if op == isa.CALLL:
        return list(ins[3])
    if op == isa.TAILCALL:
        return [ins[1]] + list(ins[2])
    if op == isa.TAILL:
        return list(ins[2])
    if op in (isa.RET, isa.REGPTR, isa.REGNIL, isa.REGFALSE, isa.PUTC, isa.FAIL, isa.HALT):
        return [ins[1]]
    if op == isa.APPLY:
        return [ins[2], ins[3]]
    if op == isa.CALLEC:
        return [ins[2]]
    if op == isa.TAILAPPLY:
        return [ins[1], ins[2]]
    if op == isa.REGPAIR:
        return [ins[1], ins[2], ins[3]]
    raise ValueError(f"unknown opcode {op}")


def peephole(code: isa.CodeObject, fuse: bool = False) -> None:
    """Apply the rewrites in place (iterates to a fixpoint)."""
    while _fuse_moves(code) or _drop_trivial_jumps(code):
        pass
    if fuse:
        fuse_superinstructions(code)


def fuse_superinstructions(code: isa.CodeObject) -> int:
    """Fuse adjacent pairs from ``isa.FUSION_TABLE``; returns the number
    of pairs fused.

    Legality: the pair must be a guaranteed fall-through (the first
    instruction never transfers control — true of every table entry)
    and no branch may land *between* the two halves, i.e. the second
    instruction must not be a branch target.  Branches landing on the
    first instruction are fine: they enter the fused pair at its start.
    """
    instructions = code.instructions
    n = len(instructions)
    targets = _branch_targets(instructions)
    out: list[list] = []
    index_map = [0] * (n + 1)
    fused = 0
    i = 0
    while i < n:
        index_map[i] = len(out)
        ins = instructions[i]
        if i + 1 < n and (i + 1) not in targets and branch_target_index(ins[0]) is None:
            fop = isa.FUSION_TABLE.get((ins[0], instructions[i + 1][0]))
            if fop is not None:
                second = instructions[i + 1]
                index_map[i + 1] = len(out)  # unreachable as a target
                out.append([fop, *ins[1:], *second[1:]])
                fused += 1
                i += 2
                continue
        out.append(ins)
        i += 1
    index_map[n] = len(out)
    if fused:
        for ins in out:
            index = branch_target_index(ins[0])
            if index is not None:
                ins[index] = index_map[ins[index]]
        code.instructions = out
    return fused


def compute_emit_hints(code: isa.CodeObject, entry_facts: dict | None = None) -> dict:
    """Attach sound emit-time facts to ``code.meta["emit_hints"]``.

    A straight-line abstract scan over the final (post-fusion)
    instruction stream, reusing the absint representation lattice.  The
    analysis is deliberately join-free: facts are discarded at every
    *leader* (any branch target), so whatever survives to a given pc
    holds on every path that reaches it — sound by construction, no
    fixpoint needed.  ``entry_facts`` (register -> AbstractValue, from
    the interprocedural summaries) seeds the entry block, but only when
    pc 0 is not itself a branch target (a back edge would smuggle the
    entry facts around the loop).

    Two hint sets come out, both consumed by :mod:`repro.vm.codegen`:

    * ``div_nonzero`` — pcs of DIV/MOD whose divisor provably excludes
      the word 0, so the emitted code skips the zero test and inlines
      the division.
    * ``aligned`` — pcs of LD/ST whose effective address is provably
      8-aligned (base register has one known low tag ``t`` and
      ``(t + displacement) % 8 == 0``), so the emitted fast path skips
      the alignment test.  Bounds checks always remain.

    Facts never survive a fused instruction boundary as hints — hint
    pcs key base (non-fused) instructions only — but fused pairs still
    *transfer* facts soundly via their decomposition.  The GC is
    non-moving mark-sweep, so register facts survive collections; calls
    therefore kill only their destination register (VM registers are
    frame-local).
    """
    instructions = code.instructions
    leaders = _branch_targets(instructions)
    div_nonzero: set[int] = set()
    aligned: set[int] = set()
    facts: dict = {}
    if entry_facts and 0 not in leaders:
        facts = dict(entry_facts)
    for pc, ins in enumerate(instructions):
        if pc in leaders:
            facts = {}
        op = ins[0]
        if op >= isa.FIRST_FUSED:
            first, second = isa.decompose(ins)
            _hint_transfer(first, facts)
            _hint_transfer(second, facts)
            continue
        # hints read the pre-state: record before transferring
        if op in (isa.DIV, isa.MOD):
            fact = facts.get(ins[3])
            if fact is not None and fact.excludes_word(0):
                div_nonzero.add(pc)
        elif op == isa.LD:
            fact = facts.get(ins[2])
            if fact is not None and len(fact.tags) == 1:
                (tag,) = fact.tags
                if (tag + ins[3]) % 8 == 0:
                    aligned.add(pc)
        elif op == isa.ST:
            fact = facts.get(ins[1])
            if fact is not None and len(fact.tags) == 1:
                (tag,) = fact.tags
                if (tag + ins[2]) % 8 == 0:
                    aligned.add(pc)
        _hint_transfer(ins, facts)
    hints = {
        "div_nonzero": frozenset(div_nonzero),
        "aligned": frozenset(aligned),
    }
    if div_nonzero or aligned:
        if code.meta is None:
            code.meta = {}
        code.meta["emit_hints"] = hints
    return hints


def _hint_transfer(ins: list, facts: dict) -> None:
    """One instruction's effect on the register fact map (in place).

    Absent key = unknown (⊤).  Only facts that are cheap and provably
    stable are tracked: constants from LDC, low tags from allocation
    and tag arithmetic.  Everything else kills its destination.
    """
    from ..absint.lattice import from_tags, make

    op = ins[0]
    if op == isa.LDC:
        value = ins[2]
        if value >= 0:
            facts[ins[1]] = make(value, value, frozenset({value & 7}))
        else:
            facts.pop(ins[1], None)
        return
    if op == isa.ALLOCI:
        # the allocator returns base | tag with an 8-aligned base
        facts[ins[1]] = from_tags({ins[3] & 7})
        return
    if op == isa.CLOSURE:
        facts[ins[1]] = from_tags({7})  # closures are tag-7 pointers
        return
    if op == isa.MOV:
        fact = facts.get(ins[2])
        if fact is None:
            facts.pop(ins[1], None)
        else:
            facts[ins[1]] = fact
        return
    if op in (isa.ADDI, isa.SUBI):
        # adding an immediate shifts a known low tag by imm mod 8
        # (masking to the word preserves value mod 8)
        fact = facts.get(ins[2])
        if fact is not None and len(fact.tags) == 1:
            (tag,) = fact.tags
            imm = ins[3]
            shifted = (tag + imm) & 7 if op == isa.ADDI else (tag - imm) & 7
            facts[ins[1]] = from_tags({shifted})
        else:
            facts.pop(ins[1], None)
        return
    position = dest_position(ins)
    if position is not None:
        facts.pop(ins[position], None)


def _branch_targets(instructions: list[list]) -> set[int]:
    targets = set()
    for ins in instructions:
        index = branch_target_index(ins[0])
        if index is not None:
            targets.add(ins[index])
    return targets


def _fuse_moves(code: isa.CodeObject) -> bool:
    instructions = code.instructions
    targets = _branch_targets(instructions)
    reads: dict[int, int] = {}
    writes: dict[int, int] = {}
    for ins in instructions:
        position = dest_position(ins)
        if position is not None:
            reg = ins[position]
            writes[reg] = writes.get(reg, 0) + 1
        for reg in source_registers(ins):
            reads[reg] = reads.get(reg, 0) + 1
    changed = False
    drop: set[int] = set()
    for i in range(len(instructions) - 1):
        if i in drop or (i + 1) in drop or (i + 1) in targets:
            continue
        mov = instructions[i + 1]
        if mov[0] != isa.MOV:
            continue
        prev = instructions[i]
        position = dest_position(prev)
        if position is None:
            continue
        temp = prev[position]
        if mov[2] != temp or mov[1] == temp:
            continue
        if reads.get(temp, 0) != 1 or writes.get(temp, 0) != 1:
            continue
        prev[position] = mov[1]
        drop.add(i + 1)
        changed = True
    if changed:
        _delete(code, drop)
    return changed


def _drop_trivial_jumps(code: isa.CodeObject) -> bool:
    instructions = code.instructions
    drop = {
        i
        for i, ins in enumerate(instructions)
        if ins[0] == isa.JMP and ins[1] == i + 1
    }
    if not drop:
        return False
    _delete(code, drop)
    return True


def _delete(code: isa.CodeObject, drop: set[int]) -> None:
    instructions = code.instructions
    mapping: list[int] = []
    new_position = 0
    for i in range(len(instructions) + 1):
        mapping.append(new_position)
        if i < len(instructions) and i not in drop:
            new_position += 1
    kept = [ins for i, ins in enumerate(instructions) if i not in drop]
    for ins in kept:
        index = branch_target_index(ins[0])
        if index is not None:
            ins[index] = mapping[ins[index]]
    code.instructions = kept
