"""Assignment conversion: ``set!``-able locals become heap cells.

After this pass no :class:`LocalSet` remains, so every local variable is
an immutable value — which is what lets closure conversion capture free
variables by value.

Cells use the compiler-owned tag 7 (shared with closures: the GC only
needs to know it is a pointer, and cells are never type-tested).  The
cell operations are expressed with the ordinary machine primitives:

* make:   ``(%alloc 1 7)`` then ``(%store c 1 v)``
* read:   ``(%load c 1)``
* write:  ``(%store c 1 v)``

(displacement 1 because the pointer is ``base|7`` and the single field
lives at byte ``base+8``).
"""

from __future__ import annotations

from ..ir import (
    Const,
    Fix,
    Lambda,
    Let,
    LocalSet,
    LocalVar,
    Node,
    Prim,
    Program,
    Seq,
    Var,
    make_seq,
    map_children,
)

_CELL_TAG = 7
_CELL_DISP = 8 - _CELL_TAG


def _make_cell(value: Node) -> Node:
    cell = LocalVar("cell")
    return Let(
        [(cell, Prim("%alloc", [Const(1), Const(_CELL_TAG)]))],
        make_seq(
            [
                Prim("%store", [Var(cell), Const(_CELL_DISP), value]),
                Var(cell),
            ]
        ),
    )


def _cell_ref(cell_var: LocalVar) -> Node:
    return Prim("%load", [Var(cell_var), Const(_CELL_DISP)])


def _cell_set(cell_var: LocalVar, value: Node) -> Node:
    return Prim("%store", [Var(cell_var), Const(_CELL_DISP), value])


def convert_assignments_program(program: Program) -> Program:
    return Program(
        [convert_assignments(form) for form in program.forms], program.globals
    )


def convert_assignments(node: Node) -> Node:
    return _convert(node, {})


def _convert(node: Node, boxes: dict[LocalVar, LocalVar]) -> Node:
    if isinstance(node, Var):
        box = boxes.get(node.var)
        if box is not None:
            return _cell_ref(box)
        return node
    if isinstance(node, LocalSet):
        value = _convert(node.value, boxes)
        box = boxes.get(node.var)
        if box is None:
            raise AssertionError(f"set! of unboxed variable {node.var}")
        return _cell_set(box, value)
    if isinstance(node, Lambda):
        assigned = [p for p in _all_params(node) if p.assigned]
        if not assigned:
            return Lambda(
                node.params,
                node.rest,
                _convert(node.body, boxes),
                node.name,
            )
        inner = dict(boxes)
        bindings = []
        for param in assigned:
            box = LocalVar(param.name + "$box")
            box.boxed = True
            inner[param] = box
            bindings.append((box, _make_cell(Var(param))))
        body = Let(bindings, _convert(node.body, inner))
        return Lambda(node.params, node.rest, body, node.name)
    if isinstance(node, Let):
        new_bindings = []
        inner = dict(boxes)
        for var, init in node.bindings:
            converted = _convert(init, boxes)
            if var.assigned:
                box = LocalVar(var.name + "$box")
                box.boxed = True
                inner[var] = box
                new_bindings.append((box, _make_cell(converted)))
            else:
                new_bindings.append((var, converted))
        return Let(new_bindings, _convert(node.body, inner))
    if isinstance(node, Fix):
        # letrec fixing guarantees fix-bound variables are unassigned.
        return Fix(
            [(var, _convert(lam, boxes)) for var, lam in node.bindings],
            _convert(node.body, boxes),
        )
    return map_children(node, lambda child: _convert(child, boxes))


def _all_params(node: Lambda) -> list[LocalVar]:
    params = list(node.params)
    if node.rest is not None:
        params.append(node.rest)
    return params
