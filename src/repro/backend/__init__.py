"""Backend: assignment conversion, closure conversion, code generation."""

from .assignconv import convert_assignments, convert_assignments_program
from .codegen import CodeGenerator, generate_code
from .peephole import peephole

__all__ = [
    "CodeGenerator",
    "convert_assignments",
    "convert_assignments_program",
    "generate_code",
    "peephole",
]
