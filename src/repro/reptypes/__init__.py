"""Python mirror of the representation scheme (harness support)."""

from .model import (
    ALL_MODELS,
    EOF_WORD,
    FALSE_WORD,
    NIL_WORD,
    TRUE_WORD,
    UNSPECIFIED_WORD,
    RepTypeModel,
    char_word,
    classify_word,
    field_displacement,
    fixnum_value,
    fixnum_word,
    immediate_kind,
    immediate_payload,
    immediate_word,
)

__all__ = [
    "ALL_MODELS",
    "EOF_WORD",
    "FALSE_WORD",
    "NIL_WORD",
    "TRUE_WORD",
    "UNSPECIFIED_WORD",
    "RepTypeModel",
    "char_word",
    "classify_word",
    "field_displacement",
    "fixnum_value",
    "fixnum_word",
    "immediate_kind",
    "immediate_payload",
    "immediate_word",
]
