"""A Python mirror of the default prelude's representation scheme.

This module is *documentation and harness support*: the authoritative
definitions live in Scheme source (``repro/runtime/scm``).  The mirror
lets Python-side tools (the decoder, tests, benchmark tables) compute
the same words the library computes, and asserts the two views agree.

Nothing in the compiler imports this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..prims import WORD_MASK, signed, wrap

TAG_BITS = 3
TAG_MASK = 7

TAG_FIXNUM = 0
TAG_PAIR = 1
TAG_VECTOR = 2
TAG_STRING = 3
TAG_SYMBOL = 4
TAG_RECORD = 5
TAG_IMMEDIATE = 6
TAG_CLOSURE = 7

IMM_KIND_FALSE = 0
IMM_KIND_TRUE = 1
IMM_KIND_NIL = 2
IMM_KIND_UNSPECIFIED = 3
IMM_KIND_EOF = 4
IMM_KIND_CHAR = 5

POINTER_TAGS = frozenset(
    {TAG_PAIR, TAG_VECTOR, TAG_STRING, TAG_SYMBOL, TAG_RECORD, TAG_CLOSURE}
)


def fixnum_word(value: int) -> int:
    """The word for a fixnum: value << 3 (so +/-/compare work on words)."""
    if not (-(2**60) <= value < 2**60):
        raise ValueError(f"{value} outside the 61-bit fixnum range")
    return wrap(value << TAG_BITS)


def fixnum_value(word: int) -> int:
    if word & TAG_MASK != TAG_FIXNUM:
        raise ValueError(f"{word:#x} is not a fixnum word")
    return signed(word) >> TAG_BITS


def immediate_word(kind: int, payload: int = 0) -> int:
    """(payload << 8) | (kind << 3) | 6 — matching %imm-word."""
    if not (0 <= kind < 32):
        raise ValueError(f"bad immediate kind {kind}")
    return wrap((payload << 8) | (kind << TAG_BITS) | TAG_IMMEDIATE)


FALSE_WORD = immediate_word(IMM_KIND_FALSE)
TRUE_WORD = immediate_word(IMM_KIND_TRUE)
NIL_WORD = immediate_word(IMM_KIND_NIL)
UNSPECIFIED_WORD = immediate_word(IMM_KIND_UNSPECIFIED)
EOF_WORD = immediate_word(IMM_KIND_EOF)


def char_word(code: int) -> int:
    return immediate_word(IMM_KIND_CHAR, code)


def immediate_kind(word: int) -> int:
    if word & TAG_MASK != TAG_IMMEDIATE:
        raise ValueError(f"{word:#x} is not an immediate word")
    return (word >> TAG_BITS) & 31


def immediate_payload(word: int) -> int:
    return (word & WORD_MASK) >> 8


def field_displacement(tag: int, index: int) -> int:
    """Byte displacement of field ``index`` from a tag-``tag`` pointer:
    8*(index+1) - tag, exactly the library's %field-disp."""
    return 8 * (index + 1) - tag


# The displacements the library registers with the substrate:
PAIR_CAR_DISP = field_displacement(TAG_PAIR, 0)   # 7
PAIR_CDR_DISP = field_displacement(TAG_PAIR, 1)   # 15


@dataclass(frozen=True)
class RepTypeModel:
    """Static description of one representation type (harness view)."""

    name: str
    kind: str  # "fixnum" | "immediate" | "pointer" | "record" | "procedure"
    tag: int
    field_count: int | None = None

    def is_instance_word(self, word: int) -> bool:
        if self.kind == "immediate":
            return (
                word & TAG_MASK == TAG_IMMEDIATE
                and immediate_kind(word) == self.tag
            )
        return word & TAG_MASK == self.tag


FIXNUM = RepTypeModel("fixnum", "fixnum", TAG_FIXNUM, 0)
PAIR = RepTypeModel("pair", "pointer", TAG_PAIR, 2)
VECTOR = RepTypeModel("vector", "pointer", TAG_VECTOR, None)
STRING = RepTypeModel("string", "pointer", TAG_STRING, None)
SYMBOL = RepTypeModel("symbol", "pointer", TAG_SYMBOL, 1)
RECORD = RepTypeModel("record", "record", TAG_RECORD, None)
BOOLEAN = RepTypeModel("boolean", "immediate", IMM_KIND_FALSE, 0)
CHAR = RepTypeModel("char", "immediate", IMM_KIND_CHAR, 0)
PROCEDURE = RepTypeModel("procedure", "procedure", TAG_CLOSURE, None)

ALL_MODELS = (FIXNUM, PAIR, VECTOR, STRING, SYMBOL, RECORD, BOOLEAN, CHAR, PROCEDURE)


def classify_word(word: int) -> str:
    """Name of the representation a word belongs to (by tag alone)."""
    tag = word & TAG_MASK
    names = {
        TAG_FIXNUM: "fixnum",
        TAG_PAIR: "pair",
        TAG_VECTOR: "vector",
        TAG_STRING: "string",
        TAG_SYMBOL: "symbol",
        TAG_RECORD: "record",
        TAG_CLOSURE: "procedure",
    }
    if tag == TAG_IMMEDIATE:
        kind = immediate_kind(word)
        kind_names = {
            IMM_KIND_FALSE: "boolean",
            IMM_KIND_TRUE: "boolean",
            IMM_KIND_NIL: "empty-list",
            IMM_KIND_UNSPECIFIED: "unspecified",
            IMM_KIND_EOF: "eof",
            IMM_KIND_CHAR: "char",
        }
        return kind_names.get(kind, f"immediate-{kind}")
    return names[tag]
