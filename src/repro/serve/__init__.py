"""`repro serve`: a fault-tolerant multi-tenant execution service.

Schedules many concurrent guest programs over the VM's budget/trap
layer: each job runs a budget slice at a time on a pooled, reusable
:class:`~repro.vm.machine.Machine`, preempted by exact suspension
(``StepBudgetExceeded`` → ``Suspension`` → requeue).  Admission
control, per-tenant quotas, retry, circuit breaking, and graceful drain
live here — around the VM primitive, not inside it.  See
docs/SERVING.md.
"""

from .config import BreakerPolicy, RetryPolicy, ServeConfig, TenantQuota
from .events import EventLog
from .pool import MachinePool
from .quotas import CircuitBreaker, QuotaLedger, TenantState
from .server import ServeServer
from .service import (
    ExecutionService,
    JobCompleted,
    JobFailed,
    JobRejected,
    ServiceClient,
    ServiceOverloaded,
    ServiceResponse,
)
from .smoke import run_smoke, smoke_async, smoke_ok

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "EventLog",
    "ExecutionService",
    "JobCompleted",
    "JobFailed",
    "JobRejected",
    "MachinePool",
    "QuotaLedger",
    "RetryPolicy",
    "ServeConfig",
    "ServeServer",
    "ServiceClient",
    "ServiceOverloaded",
    "ServiceResponse",
    "TenantQuota",
    "TenantState",
    "run_smoke",
    "smoke_async",
    "smoke_ok",
]
