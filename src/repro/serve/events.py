"""Structured event log for the execution service.

Every scheduling decision the service makes — admit, reject, slice,
trap, retry, breaker transition, drain — is emitted as one flat JSON
dict, so operational behavior is observable and testable without
scraping text.  Trap events embed the machine-readable
:meth:`~repro.vm.budget.TrapInfo.to_json` payload.

The log is a bounded ring buffer (old events drop first) with an
optional ``sink`` callable for streaming — the CLI uses it to write
JSON lines to a file.
"""

from __future__ import annotations

from collections import Counter, deque
from time import monotonic


class EventLog:
    """Bounded, append-only log of service events."""

    def __init__(self, capacity: int = 8_192, sink=None, clock=monotonic):
        self._events: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._sink = sink
        self._clock = clock
        self._counts: Counter[str] = Counter()

    def emit(self, kind: str, /, **fields) -> dict:
        """Append one event; returns the event dict.

        ``seq``/``t``/``kind`` are the log's own keys — callers carrying
        a payload named like one (e.g. a rejection kind) must rename it
        (the convention is ``reason``).
        """
        reserved = fields.keys() & {"seq", "t", "kind"}
        if reserved:
            raise ValueError(f"reserved event field(s): {sorted(reserved)}")
        self._seq += 1
        event = {"seq": self._seq, "t": round(self._clock(), 6), "kind": kind}
        event.update(fields)
        self._events.append(event)
        self._counts[kind] += 1
        if self._sink is not None:
            self._sink(event)
        return event

    def events(self, kind: str | None = None) -> list[dict]:
        """Buffered events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event["kind"] == kind]

    def counts(self) -> dict[str, int]:
        """Events emitted per kind, over the service's whole lifetime
        (unlike :meth:`events`, not limited by the ring capacity)."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._events)
