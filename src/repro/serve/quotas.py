"""Per-tenant accounting: quotas, usage ledger, circuit breaker.

The ledger answers one question at admission time — "may this tenant
submit another job right now?" — and is charged slice by slice while
jobs run, so cumulative fuel/allocation caps bind *across* jobs and
across preemption slices, not just within one run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .config import BreakerPolicy, ServeConfig, TenantQuota

_INF = float("inf")


class CircuitBreaker:
    """Closed → open → half-open breaker over consecutive trapped jobs.

    ``threshold`` consecutive traps open the breaker (admissions
    rejected with kind ``"breaker"``).  After ``cooldown_seconds`` the
    breaker half-opens: exactly one probe job is admitted; its success
    closes the breaker, another trap re-opens it for a fresh cooldown.
    """

    def __init__(self, policy: BreakerPolicy):
        self.policy = policy
        self.state = "closed"
        self.consecutive_traps = 0
        self.open_until = 0.0
        self.opened_count = 0
        self._probing = False

    def allow(self, now: float) -> bool:
        """May a job be admitted at time ``now``?  (Marks the half-open
        probe as taken when it grants one — call only when the job will
        actually be admitted.)"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if now < self.open_until:
                return False
            self.state = "half-open"
            self._probing = False
        if self._probing:
            return False
        self._probing = True
        return True

    def on_success(self) -> None:
        self.consecutive_traps = 0
        self.state = "closed"
        self._probing = False

    def on_trap(self, now: float) -> bool:
        """Record one trapped job; returns True when this trap opened
        (or re-opened) the breaker."""
        self.consecutive_traps += 1
        tripped = (
            self.state == "half-open"
            or self.consecutive_traps >= self.policy.threshold
        )
        self._probing = False
        if tripped and self.state != "open":
            self.state = "open"
            self.open_until = now + self.policy.cooldown_seconds
            self.opened_count += 1
            return True
        if tripped:
            self.open_until = now + self.policy.cooldown_seconds
        return False


@dataclass
class TenantState:
    """One tenant's live accounting."""

    name: str
    quota: TenantQuota
    breaker: CircuitBreaker
    in_flight: int = 0
    fuel_used: int = 0
    alloc_used: int = 0
    counters: Counter = field(default_factory=Counter)

    def fuel_remaining(self) -> float:
        if self.quota.max_fuel is None:
            return _INF
        return self.quota.max_fuel - self.fuel_used

    def alloc_remaining(self) -> float:
        if self.quota.max_alloc_words is None:
            return _INF
        return self.quota.max_alloc_words - self.alloc_used

    def to_json(self) -> dict:
        return {
            "tenant": self.name,
            "in_flight": self.in_flight,
            "fuel_used": self.fuel_used,
            "alloc_used": self.alloc_used,
            "breaker": self.breaker.state,
            "breaker_opened": self.breaker.opened_count,
            **{k: v for k, v in sorted(self.counters.items())},
        }


class QuotaLedger:
    """All tenants' states, created on first contact."""

    def __init__(self, config: ServeConfig):
        self._config = config
        self._states: dict[str, TenantState] = {}

    def state(self, tenant: str) -> TenantState:
        state = self._states.get(tenant)
        if state is None:
            state = TenantState(
                name=tenant,
                quota=self._config.quota_for(tenant),
                breaker=CircuitBreaker(self._config.breaker),
            )
            self._states[tenant] = state
        return state

    def tenants(self) -> list[TenantState]:
        return list(self._states.values())

    def denial(self, tenant: str, now: float) -> tuple[str, str] | None:
        """The admission-control decision for one more job from
        ``tenant``: ``None`` to admit, else ``(kind, message)``.

        Checked in quota order; the breaker is consulted *last* so a
        half-open probe slot is only consumed by a job that every other
        check already admitted.
        """
        state = self.state(tenant)
        quota = state.quota
        if state.in_flight >= quota.max_in_flight:
            return (
                "quota",
                f"tenant {tenant!r} already has {state.in_flight} jobs "
                f"in flight (max {quota.max_in_flight})",
            )
        if state.fuel_remaining() <= 0:
            return (
                "tenant-fuel",
                f"tenant {tenant!r} exhausted its fuel quota "
                f"({quota.max_fuel} steps)",
            )
        if state.alloc_remaining() <= 0:
            return (
                "tenant-alloc",
                f"tenant {tenant!r} exhausted its allocation quota "
                f"({quota.max_alloc_words} words)",
            )
        if not state.breaker.allow(now):
            return (
                "breaker",
                f"tenant {tenant!r} is circuit-broken after "
                f"{state.breaker.consecutive_traps} consecutive traps",
            )
        return None
