"""Load and chaos harness for the execution service.

Drives one service with a mixed population — well-behaved tenants, a
fault-injected chaos cohort (deterministic
:class:`~repro.vm.faultinject.FaultSchedule`\\ s, seeded), and
optionally a hostile tenant whose jobs always trap — then audits the
outcome against the service contract:

* **no lost jobs** — every submitted job's future resolved;
* **no duplicated results** — one response per job id, and the
  service's own double-finalize counter is zero;
* **no wrong answers** — every completed job returned its workload's
  reference value;
* **no heap-conservation violations** — checked at every trap and over
  the drained pool;
* **chaos convergence** — every fault-injected job completed after
  bounded retries.

Used by ``repro serve --smoke`` (CI's serve-smoke job), the
``serve_smoke`` pytest tier, and ``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import asyncio
import random
from time import perf_counter

from ..vm.faultinject import FaultSchedule
from .config import ServeConfig, TenantQuota
from .service import ExecutionService, ServiceClient

#: (label, source, printed reference value) — small, allocation-diverse
WORKLOADS = [
    (
        "sum",
        "(let loop ((i 0) (acc 0)) (if (= i 150) acc (loop (+ i 1) (+ acc i))))",
        "11175",
    ),
    (
        "conses",
        "(let loop ((i 0) (acc '())) "
        "(if (= i 60) (length acc) (loop (+ i 1) (cons i acc))))",
        "60",
    ),
    (
        "fib",
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) "
        "(fib 12)",
        "144",
    ),
    (
        "vec",
        "(let ((v (make-vector 40 7))) "
        "(let loop ((i 0) (acc 0)) "
        "(if (= i 40) acc (loop (+ i 1) (+ acc (vector-ref v i))))))",
        "280",
    ),
]

#: the chaos cohort runs the allocating workload so injected allocation
#: failures always have a site to land on
CHAOS_WORKLOAD = WORKLOADS[1]

#: always traps in safe mode (car of a fixnum)
HOSTILE_SOURCE = "(car 0)"


def default_config(jobs: int) -> ServeConfig:
    return ServeConfig(
        pool_size=8,
        heap_words=1 << 16,
        slice_steps=500,
        queue_limit=jobs + 64,
        quota=TenantQuota(max_in_flight=jobs + 1),
    )


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(fraction * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def run_smoke(
    jobs: int = 200,
    tenants: int = 20,
    chaos: bool = True,
    hostile: bool = True,
    seed: int = 0,
    config: ServeConfig | None = None,
    timeout_seconds: float = 300.0,
    warmup: bool = False,
    include_events: bool = False,
) -> dict:
    """Run the load synchronously; returns the audit report."""
    return asyncio.run(
        smoke_async(jobs, tenants, chaos, hostile, seed, config,
                    timeout_seconds, warmup, include_events)
    )


async def smoke_async(
    jobs: int = 200,
    tenants: int = 20,
    chaos: bool = True,
    hostile: bool = True,
    seed: int = 0,
    config: ServeConfig | None = None,
    timeout_seconds: float = 300.0,
    warmup: bool = False,
    include_events: bool = False,
) -> dict:
    config = config or default_config(jobs)
    rng = random.Random(seed)
    service = ExecutionService(config)
    client = ServiceClient(service)
    await service.start()
    if warmup:
        # Populate the service's compile cache before the clock starts,
        # so the timed phase measures scheduling rather than the one-off
        # whole-program compile of each distinct source.
        await asyncio.gather(
            *(client.submit(source, tenant="warmup")
              for _label, source, _want in WORKLOADS)
        )
    started = perf_counter()

    # -- submit the population -----------------------------------------
    plans = []  # (future, expected_value, is_chaos)
    for i in range(jobs):
        tenant = f"t{i % max(tenants, 1)}"
        if chaos and i % 5 == 2:
            _, source, want = CHAOS_WORKLOAD
            fault = FaultSchedule(fail_at=rng.randint(1, 40))
        else:
            _, source, want = WORKLOADS[i % len(WORKLOADS)]
            fault = None
        plans.append((client.submit(source, tenant=tenant, fault=fault),
                      want, fault is not None))
    hostile_futures = []
    if hostile:
        for _ in range(3 * config.breaker.threshold):
            hostile_futures.append(
                client.submit(HOSTILE_SOURCE, tenant="hostile")
            )

    # -- await everything (lost jobs == futures that never resolve) ----
    futures = [plan[0] for plan in plans] + hostile_futures
    done, pending = await asyncio.wait(futures, timeout=timeout_seconds)
    lost = len(pending)
    elapsed = perf_counter() - started
    await service.drain()

    # -- audit ----------------------------------------------------------
    responses = [f.result() for f, _, _ in plans if f.done()]
    job_ids = [r.job_id for r in responses]
    duplicated = (len(job_ids) - len(set(job_ids))
                  + service.stats.get("duplicate_responses", 0))
    wrong_values = 0
    completed = failed = rejected = 0
    chaos_total = chaos_completed = chaos_retried = 0
    latencies = []
    for future, want, is_chaos in plans:
        if not future.done():
            continue
        response = future.result()
        latencies.append(response.elapsed_seconds)
        if is_chaos:
            chaos_total += 1
        if response.status == "ok":
            completed += 1
            if response.value != want:
                wrong_values += 1
            if is_chaos:
                chaos_completed += 1
                if response.attempts > 1:
                    chaos_retried += 1
        elif response.status == "failed":
            failed += 1
        else:
            rejected += 1
    hostile_failed = hostile_rejected = 0
    for future in hostile_futures:
        if not future.done():
            continue
        response = future.result()
        if response.status == "failed":
            hostile_failed += 1
        elif response.status == "rejected":
            hostile_rejected += 1

    conservation = list(service.conservation_violations)
    conservation.extend(service.pool.check_conservation())
    latencies.sort()
    events = service.events.counts()

    report = {
        "jobs": jobs,
        "tenants": tenants,
        "hostile_jobs": len(hostile_futures),
        "completed": completed,
        "failed": failed,
        "rejected": rejected,
        "lost": lost,
        "duplicated": duplicated,
        "wrong_values": wrong_values,
        "conservation_violations": len(conservation),
        "conservation_detail": conservation,
        "chaos": {
            "jobs": chaos_total,
            "completed": chaos_completed,
            "incomplete": chaos_total - chaos_completed,
            "retried": chaos_retried,
            "faults_armed": service.stats.get("faults_armed", 0),
            "retries": service.stats.get("retries", 0),
        },
        "hostile": {
            "failed": hostile_failed,
            "rejected": hostile_rejected,
            "breaker_opened": events.get("breaker-open", 0),
        },
        "elapsed_seconds": round(elapsed, 4),
        "req_per_sec": round((jobs + len(hostile_futures)) / elapsed, 2),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
        "steps_executed": service.stats.get("steps", 0),
        "slices": service.stats.get("slices", 0),
        "compiles": service.stats.get("compiles", 0),
        "pool": service.pool.stats(),
    }
    if include_events:
        report["events"] = service.events.events()
    report["ok"] = smoke_ok(report)
    return report


def smoke_ok(report: dict) -> bool:
    """The serve-smoke gate: the invariants, not the throughput."""
    return (
        report["lost"] == 0
        and report["duplicated"] == 0
        and report["wrong_values"] == 0
        and report["conservation_violations"] == 0
        and report["chaos"]["incomplete"] == 0
        and report["completed"] > 0
    )
