"""Service configuration: pool sizing, slicing, queues, quotas, policies.

Everything the service enforces is declared here, per tenant or
globally, so the robustness envelope — admission control, retry,
circuit breaking — is ordinary data the embedder can tune, in the same
spirit as the paper's thesis that representations are ordinary user
code (the VM's budget layer is the only privileged mechanism).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TenantQuota:
    """One tenant's resource envelope.

    ``max_in_flight`` bounds queued-plus-running jobs at admission;
    ``max_fuel``/``max_alloc_words`` are *cumulative* caps across all of
    the tenant's jobs for the service's lifetime, charged slice by
    slice; ``deadline_seconds`` is the default per-job wall-clock
    deadline, enforced across slices (granularity: one slice).  ``None``
    means unlimited.
    """

    max_in_flight: int = 16
    max_fuel: int | None = None
    max_alloc_words: int | None = None
    deadline_seconds: float | None = None


@dataclass
class RetryPolicy:
    """Retry-with-backoff for jobs killed by injected faults.

    Only fault-injected jobs (chaos cohorts carrying a
    :class:`~repro.vm.faultinject.FaultSchedule`) are retried: the
    fault-injection contract proves a clean re-run on the same machine
    and heap succeeds, so a bounded retry converges deterministically.
    """

    max_attempts: int = 3
    backoff_base_seconds: float = 0.002
    backoff_cap_seconds: float = 0.05

    def backoff(self, attempt: int) -> float:
        """Exponential backoff before attempt ``attempt + 1``."""
        return min(
            self.backoff_cap_seconds,
            self.backoff_base_seconds * (2 ** max(attempt - 1, 0)),
        )


@dataclass
class BreakerPolicy:
    """Circuit breaking for tenants whose jobs repeatedly trap.

    ``threshold`` consecutive trapped jobs open the breaker; after
    ``cooldown_seconds`` it half-opens and admits a single probe job,
    whose outcome closes or re-opens it.
    """

    threshold: int = 5
    cooldown_seconds: float = 0.2


@dataclass
class ServeConfig:
    """The service's global knobs (see docs/SERVING.md)."""

    #: machines in the pool — bounds jobs simultaneously holding VM
    #: state; queued jobs wait for a machine, preempted ones keep theirs
    pool_size: int = 8
    #: heap words per pooled machine
    heap_words: int = 1 << 16
    #: VM dispatch engine for pooled machines (None: the default engine)
    engine: str | None = None
    #: counted instructions per scheduling slice (the preemption quantum)
    slice_steps: int = 2_000
    #: bound on the global admission queue; past it submissions are shed
    #: with a typed ``ServiceOverloaded`` rejection
    queue_limit: int = 1_024
    #: default quota, and per-tenant overrides by tenant name
    quota: TenantQuota = field(default_factory=TenantQuota)
    tenant_quotas: dict[str, TenantQuota] = field(default_factory=dict)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: ring-buffer capacity of the structured event log
    event_capacity: int = 8_192

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.tenant_quotas.get(tenant, self.quota)
