"""The fault-tolerant multi-tenant execution service.

One cooperative-preemption abstraction carries every tenant: a job runs
on a pooled machine one budget slice at a time, suspended exactly at an
instruction boundary by the step budget (``StepBudgetExceeded`` →
:class:`~repro.vm.budget.Suspension`) and requeued; the asyncio
scheduler round-robins runnable jobs so thousands of guest programs
interleave on a handful of machines.  The robustness envelope is built
*around* that primitive, not inside the VM:

* **admission control** — per-tenant quotas and a bounded global queue;
  past the bound, submissions are shed with a typed
  :class:`ServiceOverloaded` response instead of degrading everyone;
* **deadlines** — per-job wall clock enforced across slices;
* **cumulative caps** — tenant fuel/allocation ledgers charged slice by
  slice, binding across jobs;
* **retry with backoff** — jobs killed by injected faults re-run on the
  same machine (the fault-injection contract proves this safe), bounded
  by :class:`~repro.serve.config.RetryPolicy`;
* **circuit breaking** — tenants whose jobs repeatedly trap are
  rejected at admission until a cooldown probe succeeds;
* **graceful drain** — no new admissions, queued jobs get a clean
  requeue-able rejection, in-flight jobs finish their current slice
  (slices are atomic on the event loop) and are then evicted.

Every terminal outcome is exactly one typed :class:`ServiceResponse`
resolved on the job's future — never zero, never two — which is the
"no lost or duplicated results" invariant the chaos benchmark gates on.
"""

from __future__ import annotations

import asyncio
from collections import Counter, deque
from dataclasses import asdict, dataclass

from ..errors import BudgetExceeded, HeapExhausted, ReproError
from ..vm.budget import Budget
from ..vm.faultinject import FaultInjectingHeap, FaultSchedule
from .config import ServeConfig
from .events import EventLog
from .pool import MachinePool
from .quotas import QuotaLedger, TenantState

_INF = float("inf")


# ----------------------------------------------------------------------
# typed responses
# ----------------------------------------------------------------------


@dataclass
class ServiceResponse:
    """Base of every terminal response; exactly one per submitted job."""

    job_id: int = 0
    tenant: str = ""
    status: str = "response"
    #: machine-readable subcategory: rejection/failure kind
    kind: str | None = None
    message: str = ""
    #: True when resubmitting the same request later is the right move
    #: (overload, drain, breaker cooldown) — nothing about the job
    #: itself failed
    requeueable: bool = False
    attempts: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> dict:
        payload = asdict(self)
        payload["status"] = self.status
        return payload


@dataclass
class JobCompleted(ServiceResponse):
    """The program ran to completion; ``value`` is its printed result."""

    status: str = "ok"
    value: str = ""
    output: str = ""
    steps: int = 0
    words_allocated: int = 0
    slices: int = 0
    engine: str = ""


@dataclass
class JobFailed(ServiceResponse):
    """The job compiled/ran and then faulted or exceeded a budget.

    ``kind`` is the trap domain (``"scheme"``, ``"heap"``, ``"steps"``,
    ``"alloc"``, ``"deadline"``, ``"tenant-fuel"``, ``"tenant-alloc"``,
    ``"compile"``, ``"internal"``); ``trap`` embeds the
    :meth:`~repro.vm.budget.TrapInfo.to_json` payload when the VM
    produced one.
    """

    status: str = "failed"
    trap: dict | None = None
    steps: int = 0


@dataclass
class JobRejected(ServiceResponse):
    """Admission control (or drain) turned the job away."""

    status: str = "rejected"


@dataclass
class ServiceOverloaded(JobRejected):
    """Load shed: the global admission queue is full.

    Typed separately so clients can distinguish "back off and retry"
    from a quota or correctness problem; always ``requeueable``.
    """

    kind: str | None = "overloaded"
    queue_depth: int = 0


# ----------------------------------------------------------------------
# internal job record
# ----------------------------------------------------------------------


@dataclass
class _Job:
    job_id: int
    tenant: str
    source: str
    budget: Budget  # per-job caps: max_steps = fuel, max_alloc_words
    deadline_at: float | None
    fault: FaultSchedule | None
    future: asyncio.Future
    submitted_at: float
    input_text: str = ""
    attempts: int = 0
    machine: object = None
    program: object = None
    #: steps executed by the current attempt (== machine.steps)
    steps_done: int = 0
    #: heap words_allocated at the current attempt's start / last charge
    alloc_start: int = 0
    alloc_cursor: int = 0
    not_before: float = 0.0
    slices: int = 0


class ExecutionService:
    """The long-lived scheduler; see the module docstring.

    Single-threaded by construction: ``submit`` and the scheduler both
    run on the event loop, slices are synchronous between awaits, so no
    locking is needed and behavior is deterministic for a fixed
    submission order.
    """

    def __init__(self, config: ServeConfig | None = None, events: EventLog | None = None):
        self.config = config or ServeConfig()
        self.events = events or EventLog(self.config.event_capacity)
        self.ledger = QuotaLedger(self.config)
        self.pool = MachinePool(
            self.config.pool_size, self.config.heap_words, self.config.engine
        )
        self._queue: deque[_Job] = deque()
        self._running: deque[_Job] = deque()
        self._waiting: list[_Job] = []  # backoff before a retry attempt
        self._task: asyncio.Task | None = None
        self._wake = asyncio.Event()
        self._draining = False
        self._next_id = 0
        self._compile_cache: dict[str, object] = {}
        self.stats: Counter = Counter()
        self.conservation_violations: list[str] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ExecutionService":
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run_loop())
            self.events.emit("start", pool=self.config.pool_size,
                             slice_steps=self.config.slice_steps)
        return self

    async def __aenter__(self) -> "ExecutionService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self) -> None:
        """Graceful shutdown (idempotent).

        Admissions stop; queued and backoff jobs resolve with a clean
        requeue-able rejection; in-flight jobs finish the slice they are
        in (slices never span an await, so none is interrupted) and are
        then evicted with a requeue-able rejection carrying their
        progress.  Returns when the scheduler has exited.
        """
        if not self._draining:
            self._draining = True
            self.events.emit("drain", queued=len(self._queue),
                             running=len(self._running),
                             waiting=len(self._waiting))
            while self._queue:
                self._finish_rejected(self._queue.popleft(), "draining",
                                      "service is draining; resubmit later")
            for job in list(self._waiting):
                self._release_machine(job)
                self._finish_rejected(job, "draining",
                                      "service is draining; resubmit later")
            self._waiting.clear()
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None

    # ------------------------------------------------------------------
    # submission / admission control
    # ------------------------------------------------------------------

    def submit(
        self,
        source: str,
        *,
        tenant: str = "default",
        max_steps: int | None = None,
        max_alloc_words: int | None = None,
        deadline_seconds: float | None = None,
        input_text: str = "",
        fault: FaultSchedule | None = None,
    ) -> asyncio.Future:
        """Submit one job; returns a future resolving to exactly one
        :class:`ServiceResponse`.  Rejections resolve immediately."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        now = loop.time()
        self._next_id += 1
        job_id = self._next_id
        state = self.ledger.state(tenant)
        state.counters["submitted"] += 1
        self.stats["submitted"] += 1

        def reject(kind, message, requeueable=False, response=None):
            response = response or JobRejected(
                job_id=job_id, tenant=tenant, kind=kind, message=message,
                requeueable=requeueable,
            )
            future.set_result(response)
            state.counters["rejected"] += 1
            self.stats["rejected"] += 1
            self.events.emit("reject", job=job_id, tenant=tenant,
                             reason=kind, requeueable=requeueable)
            return future

        if self._draining:
            return reject("draining", "service is draining; resubmit later",
                          requeueable=True)
        if len(self._queue) >= self.config.queue_limit:
            self.stats["shed"] += 1
            return reject(
                "overloaded", "admission queue is full", requeueable=True,
                response=ServiceOverloaded(
                    job_id=job_id, tenant=tenant, requeueable=True,
                    message="admission queue is full",
                    queue_depth=len(self._queue),
                ),
            )
        denial = self.ledger.denial(tenant, now)
        if denial is not None:
            kind, message = denial
            return reject(kind, message, requeueable=(kind == "breaker"))

        deadline = deadline_seconds
        if deadline is None:
            deadline = state.quota.deadline_seconds
        job = _Job(
            job_id=job_id,
            tenant=tenant,
            source=source,
            budget=Budget(max_steps, None, max_alloc_words),
            deadline_at=(now + deadline) if deadline is not None else None,
            fault=fault,
            future=future,
            submitted_at=now,
            input_text=input_text,
        )
        state.in_flight += 1
        self._queue.append(job)
        self.events.emit("admit", job=job_id, tenant=tenant,
                         queue_depth=len(self._queue))
        self._wake.set()
        return future

    # ------------------------------------------------------------------
    # the scheduler loop
    # ------------------------------------------------------------------

    def _now(self) -> float:
        return asyncio.get_running_loop().time()

    async def _run_loop(self) -> None:
        while True:
            now = self._now()
            self._promote_waiting(now)
            self._start_queued(now)
            if not self._running:
                if self._draining and not self._queue and not self._waiting:
                    break
                timeout = None
                if self._waiting:
                    due = min(job.not_before for job in self._waiting)
                    timeout = max(due - now, 0.0005)
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout)
                except asyncio.TimeoutError:
                    pass
                self._wake.clear()
                continue
            job = self._running.popleft()
            self._slice(job, self._now())
            # the cooperative yield: submissions, client awaits, and the
            # TCP front end all interleave at slice boundaries
            await asyncio.sleep(0)
        self.events.emit("stopped", **{k: v for k, v in self.stats.items()})

    def _promote_waiting(self, now: float) -> None:
        if not self._waiting:
            return
        due = [job for job in self._waiting if job.not_before <= now]
        for job in due:
            self._waiting.remove(job)
            self._begin_attempt(job, now)
            self._running.append(job)

    def _start_queued(self, now: float) -> None:
        while self._queue and self.pool.available:
            job = self._queue.popleft()
            if job.deadline_at is not None and now >= job.deadline_at:
                self._finish_failed(
                    job, "deadline", "job deadline expired while queued"
                )
                continue
            try:
                job.program = self._compiled(job.source)
            except ReproError as error:
                self._finish_failed(job, "compile", str(error))
                continue
            machine = self.pool.acquire(job.program, input_text=job.input_text)
            if machine is None:  # raced: every machine is held
                self._queue.appendleft(job)
                break
            job.machine = machine
            if job.fault is not None:
                machine.install_heap(
                    FaultInjectingHeap(self.config.heap_words, job.fault)
                )
                self.stats["faults_armed"] += 1
            self._begin_attempt(job, now)
            self._running.append(job)

    def _compiled(self, source: str):
        """Content-keyed compile cache (bounded, FIFO eviction)."""
        program = self._compile_cache.get(source)
        if program is None:
            from ..api import CompileOptions, compile_source

            self.stats["compiles"] += 1
            program = compile_source(source, CompileOptions()).vm_program
            if len(self._compile_cache) >= 64:
                self._compile_cache.pop(next(iter(self._compile_cache)))
            self._compile_cache[source] = program
        else:
            self.stats["compile_hits"] += 1
        return program

    def _begin_attempt(self, job: _Job, now: float) -> None:
        machine = job.machine
        job.attempts += 1
        if job.attempts > 1:
            # retry: fresh run of the same program on the same machine
            # and heap — exactly the recovery the fault sweeps verify
            machine.reset(budget=Budget())
        job.steps_done = 0
        job.alloc_start = machine.heap.words_allocated
        job.alloc_cursor = job.alloc_start
        self.events.emit(
            "attempt", job=job.job_id, tenant=job.tenant,
            attempt=job.attempts, engine=machine.engine_name,
        )

    # ------------------------------------------------------------------
    # one slice
    # ------------------------------------------------------------------

    def _slice(self, job: _Job, now: float) -> None:
        state = self.ledger.state(job.tenant)
        if job.deadline_at is not None and now >= job.deadline_at:
            self._finish_failed(
                job, "deadline",
                f"job deadline expired after {job.slices} slices "
                f"({job.steps_done} steps)",
            )
            return
        job_fuel = (
            _INF if job.budget.max_steps is None
            else job.budget.max_steps - job.steps_done
        )
        bound = min(self.config.slice_steps, job_fuel,
                    max(state.fuel_remaining(), 0))
        if bound < 1:
            kind = "steps" if job_fuel < 1 else "tenant-fuel"
            self._finish_failed(
                job, kind,
                f"fuel exhausted after {job.steps_done} steps"
                + ("" if kind == "steps" else f" (tenant {job.tenant!r})"),
            )
            return
        machine = job.machine
        machine.max_alloc_words = self._alloc_limit(job, state)
        job.slices += 1
        self.stats["slices"] += 1
        try:
            result = machine.run_slice(int(bound))
        except BudgetExceeded as error:
            self._charge(job, state)
            trap = error.trap.to_json() if error.trap else None
            kind = error.budget
            if kind == "alloc" and state.alloc_remaining() <= 0:
                kind = "tenant-alloc"
            self._finish_failed(job, kind, str(error), trap=trap)
        except ReproError as error:
            self._charge(job, state)
            self._check_conservation(job)
            trap = error.trap.to_json() if error.trap else None
            if self._should_retry(job, error):
                self._schedule_retry(job, trap)
            else:
                kind = error.trap.kind if error.trap else "vm"
                self._finish_failed(job, kind, str(error), trap=trap)
        except Exception as error:  # noqa: BLE001 — an engine bug must
            # fail the one job, never the service
            self.stats["internal_errors"] += 1
            self._finish_failed(
                job, "internal", f"{type(error).__name__}: {error}"
            )
        else:
            self._charge(job, state)
            if result is None:  # suspended at the slice boundary
                self.events.emit("slice", job=job.job_id, tenant=job.tenant,
                                 slices=job.slices, steps=job.steps_done)
                if self._draining:
                    self._release_machine(job)
                    self._finish_rejected(
                        job, "drained",
                        f"drained after {job.slices} slices "
                        f"({job.steps_done} steps); resubmit to rerun",
                    )
                else:
                    self._running.append(job)
            else:
                self._finish_ok(job, result)

    def _alloc_limit(self, job: _Job, state: TenantState) -> int | None:
        """The machine-level allocation cap for the next slice: the
        tighter of the per-job cap and the tenant's remaining quota,
        rebased onto the heap's cumulative words_allocated counter."""
        heap_now = job.machine.heap.words_allocated
        limit = _INF
        if job.budget.max_alloc_words is not None:
            limit = job.alloc_start + job.budget.max_alloc_words
        tenant_remaining = state.alloc_remaining()
        if tenant_remaining != _INF:
            limit = min(limit, heap_now + max(tenant_remaining, 0))
        return None if limit == _INF else int(limit)

    def _charge(self, job: _Job, state: TenantState) -> None:
        """Charge the tenant's ledgers for the slice just executed."""
        machine = job.machine
        step_delta = machine.steps - job.steps_done
        job.steps_done = machine.steps
        state.fuel_used += step_delta
        self.stats["steps"] += step_delta
        heap_now = machine.heap.words_allocated
        alloc_delta = heap_now - job.alloc_cursor
        job.alloc_cursor = heap_now
        state.alloc_used += alloc_delta

    def _should_retry(self, job: _Job, error: ReproError) -> bool:
        return (
            job.fault is not None
            and isinstance(error, HeapExhausted)
            and job.attempts < self.config.retry.max_attempts
        )

    def _schedule_retry(self, job: _Job, trap: dict | None) -> None:
        backoff = self.config.retry.backoff(job.attempts)
        job.not_before = self._now() + backoff
        state = self.ledger.state(job.tenant)
        state.counters["retries"] += 1
        self.stats["retries"] += 1
        self.events.emit(
            "retry", job=job.job_id, tenant=job.tenant,
            attempt=job.attempts, backoff_seconds=round(backoff, 6),
            trap=trap,
        )
        # The machine (with its already-fired fault schedule) stays with
        # the job through the backoff, so the retry is a clean re-run on
        # the same heap.
        self._waiting.append(job)

    def _check_conservation(self, job: _Job) -> None:
        try:
            job.machine.heap.check_conservation()
        except ReproError as error:
            self.conservation_violations.append(
                f"job {job.job_id} [{job.tenant}]: {error}"
            )
            self.events.emit("conservation-violation", job=job.job_id,
                             error=str(error))

    # ------------------------------------------------------------------
    # terminal outcomes — every path funnels through _finish()
    # ------------------------------------------------------------------

    def _finish_ok(self, job: _Job, result) -> None:
        machine = job.machine
        try:
            from ..api import decode_word
            from ..sexpr import to_write

            value = to_write(decode_word(machine, result.value))
        except Exception:  # noqa: BLE001 — printing must not kill the job
            value = f"#<word {result.value:#x}>"
        response = JobCompleted(
            job_id=job.job_id, tenant=job.tenant, attempts=job.attempts,
            value=value, output=result.output, steps=result.steps,
            words_allocated=machine.heap.words_allocated - job.alloc_start,
            slices=job.slices, engine=result.engine,
        )
        self._finish(job, response, trapped=False)

    def _finish_failed(
        self, job: _Job, kind: str, message: str, trap: dict | None = None
    ) -> None:
        response = JobFailed(
            job_id=job.job_id, tenant=job.tenant, kind=kind, message=message,
            trap=trap, attempts=job.attempts, steps=job.steps_done,
        )
        self._finish(job, response, trapped=True)

    def _finish_rejected(self, job: _Job, kind: str, message: str) -> None:
        response = JobRejected(
            job_id=job.job_id, tenant=job.tenant, kind=kind, message=message,
            requeueable=True, attempts=job.attempts,
        )
        self._finish(job, response, trapped=False)

    def _finish(self, job: _Job, response: ServiceResponse, trapped: bool) -> None:
        response.elapsed_seconds = max(self._now() - job.submitted_at, 0.0)
        if job.future.done():  # must be impossible; gated by the smoke run
            self.stats["duplicate_responses"] += 1
            return
        job.future.set_result(response)
        state = self.ledger.state(job.tenant)
        state.in_flight -= 1
        state.counters[response.status] += 1
        self.stats[response.status] += 1
        if trapped:
            state.counters["trapped"] += 1
            if state.breaker.on_trap(self._now()):
                self.events.emit("breaker-open", tenant=job.tenant,
                                 consecutive=state.breaker.consecutive_traps)
        elif response.ok:
            if state.breaker.state != "closed":
                self.events.emit("breaker-close", tenant=job.tenant)
            state.breaker.on_success()
        self._release_machine(job)
        self.events.emit(
            response.status, job=job.job_id, tenant=job.tenant,
            reason=response.kind, attempts=job.attempts,
            elapsed_ms=round(response.elapsed_seconds * 1000, 3),
        )

    def _release_machine(self, job: _Job) -> None:
        if job.machine is not None:
            self.pool.release(job.machine, fresh_heap=job.fault is not None)
            job.machine = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-ready view of the service's state (the CLI's
        status output and the smoke harness's report both use it)."""
        return {
            "draining": self._draining,
            "queued": len(self._queue),
            "running": len(self._running),
            "waiting": len(self._waiting),
            "pool": self.pool.stats(),
            "stats": dict(self.stats),
            "tenants": [state.to_json() for state in self.ledger.tenants()],
            "conservation_violations": list(self.conservation_violations),
            "events": self.events.counts(),
        }


class ServiceClient:
    """In-process client: submit jobs and await typed responses.

    The test/benchmark entry point — same admission control and
    responses as the TCP front end, without the sockets.
    """

    def __init__(self, service: ExecutionService):
        self.service = service

    def submit(self, source: str, **kwargs) -> asyncio.Future:
        return self.service.submit(source, **kwargs)

    async def run(self, source: str, **kwargs) -> ServiceResponse:
        return await self.service.submit(source, **kwargs)

    async def run_many(self, requests) -> list[ServiceResponse]:
        """Submit ``(source, kwargs)`` pairs together, await all."""
        futures = [self.service.submit(source, **kwargs)
                   for source, kwargs in requests]
        return list(await asyncio.gather(*futures))
