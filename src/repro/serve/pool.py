"""A fixed pool of reusable :class:`~repro.vm.machine.Machine`\\ s.

The pool is where PR 5's reusable-state contract pays off at scale: a
machine survives traps and budget suspensions with its heap invariants
intact, so the same ``pool_size`` machines serve an unbounded stream of
jobs from many tenants.  A job holds its machine from first slice to
final response — a suspended run lives in the machine — so ``size``
bounds true execution concurrency; everything else queues.

Reuse goes through exactly two verified entry points:
:meth:`Machine.reset` (same program: re-arm budgets, clear trap and
suspension state) and :meth:`Machine.load` (different program, same
heap).  Chaos jobs install a fault-injecting heap for their lifetime;
release swaps a fresh heap back in so later tenants never execute on an
instrumented heap.
"""

from __future__ import annotations

from ..vm.budget import Budget
from ..vm.heap import Heap
from ..vm.machine import Machine


class MachinePool:
    """At most ``size`` machines; acquire returns ``None`` when empty."""

    def __init__(self, size: int, heap_words: int, engine: str | None = None):
        if size < 1:
            raise ValueError(f"pool size must be at least 1 (got {size})")
        self.size = size
        self.heap_words = heap_words
        self.engine = engine
        self._free: list[Machine] = []
        self.created = 0
        self.acquires = 0
        self.reuses = 0
        self.heap_swaps = 0

    @property
    def available(self) -> bool:
        return bool(self._free) or self.created < self.size

    @property
    def idle(self) -> int:
        return len(self._free)

    def acquire(
        self, program, budget: Budget | None = None, input_text: str = ""
    ) -> Machine | None:
        """A machine bound to ``program``, reset and ready to run, or
        ``None`` when every machine is held by an in-flight job."""
        if self._free:
            machine = self._free.pop()
            if machine.program is not program:
                machine.load(program, input_text=input_text)
            machine.reset(budget=budget or Budget(), input_text=input_text)
            self.reuses += 1
        elif self.created < self.size:
            machine = Machine(
                program,
                heap_words=self.heap_words,
                engine=self.engine,
                input_text=input_text,
            )
            if budget is not None:
                machine.reset(budget=budget)
            self.created += 1
        else:
            return None
        self.acquires += 1
        return machine

    def release(self, machine: Machine, fresh_heap: bool = False) -> None:
        """Return a machine to the pool.

        ``fresh_heap=True`` (chaos jobs) replaces the machine's heap
        with a clean one — dropping any fault-injection schedule and
        accumulated garbage in one stroke.
        """
        if fresh_heap:
            machine.install_heap(Heap(self.heap_words))
            self.heap_swaps += 1
        self._free.append(machine)

    def check_conservation(self) -> list[str]:
        """Word-conservation check over every idle machine's heap;
        returns the violations found (empty means sound)."""
        violations = []
        for machine in self._free:
            try:
                machine.heap.check_conservation()
            except Exception as error:  # noqa: BLE001 — reported, not fatal
                violations.append(str(error))
        return violations

    def stats(self) -> dict:
        return {
            "size": self.size,
            "created": self.created,
            "idle": len(self._free),
            "acquires": self.acquires,
            "reuses": self.reuses,
            "heap_swaps": self.heap_swaps,
        }
