"""JSON-lines TCP front end for the execution service.

Protocol: one JSON object per line in, one per line out, in order.

Request fields: ``source`` (required), ``tenant``, ``max_steps``,
``max_alloc_words``, ``deadline_seconds``, ``input``.  The response is
the job's :meth:`~repro.serve.service.ServiceResponse.to_json` payload;
malformed requests get ``{"status": "error", ...}`` without costing the
connection.

Requests on one connection are answered in submission order; requests
across connections interleave at slice boundaries like any other jobs.
"""

from __future__ import annotations

import asyncio
import json

from .service import ExecutionService

#: request keys forwarded to :meth:`ExecutionService.submit`
_SUBMIT_KEYS = ("tenant", "max_steps", "max_alloc_words", "deadline_seconds")


class ServeServer:
    """asyncio TCP wrapper around an :class:`ExecutionService`."""

    def __init__(self, service: ExecutionService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None
        self._handlers: set[asyncio.Task] = set()

    async def start(self) -> "ServeServer":
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        return self

    @property
    def port(self) -> int:
        """The bound port (useful when started with port 0)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # reap connection handlers here rather than leaving them for loop
        # teardown, which logs their cancellation as an unhandled error
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        await self._server.serve_forever()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._respond(line)
                writer.write((json.dumps(response) + "\n").encode())
                await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server closing mid-read: drop the connection quietly
        finally:
            if task is not None:
                self._handlers.discard(task)
            writer.close()

    async def _respond(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
        except ValueError as error:
            return {"status": "error", "message": f"bad JSON: {error}"}
        if not isinstance(request, dict) or "source" not in request:
            return {"status": "error",
                    "message": 'request must be an object with a "source" key'}
        kwargs = {key: request[key] for key in _SUBMIT_KEYS if key in request}
        if "input" in request:
            kwargs["input_text"] = request["input"]
        try:
            response = await self.service.submit(request["source"], **kwargs)
        except Exception as error:  # noqa: BLE001 — protocol error, not a crash
            return {"status": "error",
                    "message": f"{type(error).__name__}: {error}"}
        return response.to_json()
