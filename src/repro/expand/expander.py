"""Expansion: full Scheme source → core IR.

The expander resolves lexical scope (producing :class:`LocalVar`-resolved
IR), rewrites every derived form (``let*``, ``cond``, ``case``, ``do``,
named ``let``, ``and``/``or``, quasiquote, user macros) into the core
language, and lowers datum literals.

Literal lowering is where the paper's externality shows up first: the
expander does **not** know how ``#t`` or ``5`` or ``"abc"`` are
represented.  It emits references to library-defined globals
(``%sx-true``, ``%sx-fixnum``, …); with the optimizer on these collapse
to immediate constants, and with it off they are ordinary calls.
"""

from __future__ import annotations

from ..errors import ExpandError
from ..ir import (
    Call,
    Const,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    LocalVar,
    Node,
    Prim,
    Program,
    Seq,
    Var,
    make_seq,
)
from ..prims import is_prim_name, spec, wrap
from ..sexpr import EOF, NIL, UNSPECIFIED, Char, Pair, Symbol, to_list, to_write
from .environment import CoreForm, LocalBinding, MacroBinding, SyntacticEnv
from .quasiquote import expand_quasiquote
from .syntax_rules import SyntaxRules

_FIXNUM_BITS = 61
_FIXNUM_MAX = (1 << (_FIXNUM_BITS - 1)) - 1
_FIXNUM_MIN = -(1 << (_FIXNUM_BITS - 1))

_SYM_DEFINE = Symbol("define")
_SYM_DEFINE_SYNTAX = Symbol("define-syntax")
_SYM_BEGIN = Symbol("begin")
_SYM_ELSE = Symbol("else")
_SYM_ARROW = Symbol("=>")


class Expander:
    """Expands a sequence of top-level forms into a :class:`Program`."""

    def __init__(self):
        self.global_env = SyntacticEnv.initial()
        self.global_names: list[str] = []
        self._defined: set[str] = set()
        self._pending: list[Node] = []
        self._literal_cache: dict[tuple[str, str], str] = {}
        self._hoist_counter = 0

    # ------------------------------------------------------------------
    # program structure
    # ------------------------------------------------------------------

    def expand_program(self, forms: list[object]) -> Program:
        out: list[Node] = []
        for form in forms:
            out.extend(self.expand_toplevel(form))
        return Program(out, list(self.global_names))

    def expand_toplevel(self, form: object) -> list[Node]:
        form = self._expand_head_macros(form, self.global_env)
        if isinstance(form, Pair) and isinstance(form.car, Symbol):
            denotation = self.global_env.lookup(form.car)
            if isinstance(denotation, CoreForm):
                if denotation.name == "define":
                    return self._toplevel_define(form)
                if denotation.name == "define-syntax":
                    self._define_syntax(form, self.global_env)
                    return []
                if denotation.name == "begin":
                    out: list[Node] = []
                    for sub in _cdr_list(form, "begin"):
                        out.extend(self.expand_toplevel(sub))
                    return out
        node = self.expand(form, self.global_env)
        return self._flush_pending(node)

    def _toplevel_define(self, form: object) -> list[Node]:
        name, expr = self._parse_define(form, self.global_env)
        node = GlobalSet(name.name, expr)
        self._note_global(name.name)
        return self._flush_pending(node)

    def _note_global(self, name: str) -> None:
        if name not in self._defined:
            self._defined.add(name)
            self.global_names.append(name)

    def _flush_pending(self, node: Node) -> list[Node]:
        out = self._pending + [node]
        self._pending = []
        return out

    def _parse_define(self, form: Pair, env: SyntacticEnv) -> tuple[Symbol, Node]:
        """Return (name, expanded expression) for a define form."""
        rest = form.cdr
        if not isinstance(rest, Pair):
            raise ExpandError("malformed define", form)
        target = rest.car
        if isinstance(target, Symbol):
            if rest.cdr is NIL:
                return target, GlobalRef("%sx-unspecified")
            if not isinstance(rest.cdr, Pair) or rest.cdr.cdr is not NIL:
                raise ExpandError("malformed define", form)
            value = self.expand(rest.cdr.car, env)
            if isinstance(value, Lambda) and not value.name:
                value.name = target.name
            return target, value
        if isinstance(target, Pair) and isinstance(target.car, Symbol):
            # (define (f . formals) body...) sugar.
            name = target.car
            lam = self._make_lambda(target.cdr, rest.cdr, env, name.name)
            return name, lam
        raise ExpandError("malformed define", form)

    # ------------------------------------------------------------------
    # expression expansion
    # ------------------------------------------------------------------

    def expand(self, datum: object, env: SyntacticEnv) -> Node:
        if isinstance(datum, Symbol):
            return self._expand_symbol(datum, env)
        if isinstance(datum, bool):
            return GlobalRef("%sx-true" if datum else "%sx-false")
        if isinstance(datum, int):
            return self._fixnum_literal(datum)
        if isinstance(datum, Char):
            return Call(GlobalRef("%sx-char"), [Const(datum.code)])
        if isinstance(datum, str):
            return self.lower_literal(datum)
        if isinstance(datum, list):
            return self.lower_literal(datum)
        if datum is UNSPECIFIED:
            return GlobalRef("%sx-unspecified")
        if datum is EOF:
            return GlobalRef("%sx-eof")
        if datum is NIL:
            raise ExpandError("empty application ()")
        if isinstance(datum, Pair):
            return self._expand_pair(datum, env)
        raise ExpandError(f"cannot expand datum of type {type(datum).__name__}", datum)

    def _expand_symbol(self, symbol: Symbol, env: SyntacticEnv) -> Node:
        denotation = env.lookup(symbol)
        if denotation is None:
            if is_prim_name(symbol.name):
                raise ExpandError(
                    f"machine primitive {symbol.name} used as a value"
                )
            return GlobalRef(symbol.name)
        if isinstance(denotation, LocalBinding):
            return Var(denotation.var)
        raise ExpandError(f"bad use of syntactic keyword {symbol.name}")

    def _expand_pair(self, form: Pair, env: SyntacticEnv) -> Node:
        head = form.car
        if isinstance(head, Symbol):
            denotation = env.lookup(head)
            if isinstance(denotation, CoreForm):
                return self._expand_core(denotation.name, form, env)
            if isinstance(denotation, MacroBinding):
                return self.expand(denotation.transformer.expand(form), env)
            if denotation is None and is_prim_name(head.name):
                return self._expand_prim(head.name, form, env)
        fn = self.expand(head, env)
        args = [self.expand(arg, env) for arg in _cdr_list(form, "application")]
        return Call(fn, args)

    def _expand_prim(self, op: str, form: Pair, env: SyntacticEnv) -> Node:
        args = [self.expand(arg, env) for arg in _cdr_list(form, op)]
        expected = spec(op).arity
        if len(args) != expected:
            raise ExpandError(
                f"{op} expects {expected} argument(s), got {len(args)}", form
            )
        return Prim(op, args)

    def _expand_head_macros(self, form: object, env: SyntacticEnv) -> object:
        """Repeatedly expand macros in operator position (used when
        scanning for defines, so macro-generated defines work)."""
        for _ in range(1000):
            if not (isinstance(form, Pair) and isinstance(form.car, Symbol)):
                return form
            denotation = env.lookup(form.car)
            if not isinstance(denotation, MacroBinding):
                return form
            form = denotation.transformer.expand(form)
        raise ExpandError("macro expansion did not terminate", form)

    # ------------------------------------------------------------------
    # core forms
    # ------------------------------------------------------------------

    def _expand_core(self, name: str, form: Pair, env: SyntacticEnv) -> Node:
        method = getattr(self, f"_core_{name.replace('!', 'bang').replace('*', 'star').replace('-', '_')}", None)
        if name == "%raw":
            method = self._core_raw
        elif name == "set!":
            method = self._core_set
        elif name == "let*":
            method = self._core_letstar
        elif name == "letrec*":
            method = self._core_letrec
        elif name == "define-syntax":
            raise ExpandError("define-syntax is only allowed at top level or body start", form)
        elif name == "let-syntax" or name == "letrec-syntax":
            method = self._core_let_syntax
        elif name in ("unquote", "unquote-splicing"):
            raise ExpandError(f"{name} outside quasiquote", form)
        elif name in ("else", "=>", "syntax-rules"):
            raise ExpandError(f"bad use of syntactic keyword {name}", form)
        if method is None:
            raise ExpandError(f"unimplemented core form {name}", form)
        return method(form, env)

    def _core_quote(self, form: Pair, env: SyntacticEnv) -> Node:
        args = _cdr_list(form, "quote")
        if len(args) != 1:
            raise ExpandError("quote expects one datum", form)
        return self.lower_literal(args[0])

    def _core_quasiquote(self, form: Pair, env: SyntacticEnv) -> Node:
        args = _cdr_list(form, "quasiquote")
        if len(args) != 1:
            raise ExpandError("quasiquote expects one datum", form)
        return self.expand(expand_quasiquote(args[0]), env)

    def _core_if(self, form: Pair, env: SyntacticEnv) -> Node:
        args = _cdr_list(form, "if")
        if len(args) not in (2, 3):
            raise ExpandError("if expects 2 or 3 subforms", form)
        test = self._scheme_test(self.expand(args[0], env))
        then = self.expand(args[1], env)
        els = (
            self.expand(args[2], env)
            if len(args) == 3
            else GlobalRef("%sx-unspecified")
        )
        return If(test, then, els)

    def _scheme_test(self, node: Node) -> Node:
        """Turn a Scheme value into a raw truth word.

        A direct comparison-primitive application already yields a raw
        0/1 word and is used as-is (the low-level prelude relies on
        this); any other expression is compared against the library's
        false object.
        """
        if isinstance(node, Prim) and spec(node.op).comparison:
            return node
        return Prim("%neq", [node, GlobalRef("%sx-false")])

    def _core_lambda(self, form: Pair, env: SyntacticEnv) -> Node:
        rest = form.cdr
        if not isinstance(rest, Pair):
            raise ExpandError("malformed lambda", form)
        return self._make_lambda(rest.car, rest.cdr, env, "")

    def _make_lambda(
        self, formals: object, body: object, env: SyntacticEnv, name: str
    ) -> Lambda:
        params: list[LocalVar] = []
        rest_var: LocalVar | None = None
        child = env.child()
        seen: set[Symbol] = set()

        def bind(symbol: object) -> LocalVar:
            if not isinstance(symbol, Symbol):
                raise ExpandError("formal parameter must be an identifier", formals)
            if symbol in seen:
                raise ExpandError(f"duplicate parameter {symbol.name}")
            seen.add(symbol)
            var = LocalVar(symbol.name)
            child.bind(symbol, LocalBinding(var))
            return var

        node = formals
        if isinstance(node, Symbol):
            rest_var = bind(node)
        else:
            while isinstance(node, Pair):
                params.append(bind(node.car))
                node = node.cdr
            if node is not NIL:
                rest_var = bind(node)
        body_node = self._expand_body(body, child, where="lambda")
        return Lambda(params, rest_var, body_node, name)

    def _core_begin(self, form: Pair, env: SyntacticEnv) -> Node:
        exprs = _cdr_list(form, "begin")
        if not exprs:
            raise ExpandError("empty begin expression", form)
        return make_seq([self.expand(expr, env) for expr in exprs])

    def _core_set(self, form: Pair, env: SyntacticEnv) -> Node:
        args = _cdr_list(form, "set!")
        if len(args) != 2 or not isinstance(args[0], Symbol):
            raise ExpandError("malformed set!", form)
        target, value_form = args
        value = self.expand(value_form, env)
        denotation = env.lookup(target)
        if denotation is None:
            if is_prim_name(target.name):
                raise ExpandError(f"cannot set! machine primitive {target.name}")
            return GlobalSet(target.name, value)
        if isinstance(denotation, LocalBinding):
            denotation.var.assigned = True
            return LocalSet(denotation.var, value)
        raise ExpandError(f"cannot set! syntactic keyword {target.name}")

    def _core_let(self, form: Pair, env: SyntacticEnv) -> Node:
        rest = form.cdr
        if not isinstance(rest, Pair):
            raise ExpandError("malformed let", form)
        if isinstance(rest.car, Symbol):
            return self._named_let(rest.car, rest.cdr, env)
        names, inits = self._parse_bindings(rest.car, "let")
        init_nodes = [self.expand(init, env) for init in inits]
        child = env.child()
        variables = []
        for symbol in names:
            var = LocalVar(symbol.name)
            child.bind(symbol, LocalBinding(var))
            variables.append(var)
        body = self._expand_body(rest.cdr, child, where="let")
        return Let(list(zip(variables, init_nodes)), body)

    def _named_let(self, name: Symbol, rest: object, env: SyntacticEnv) -> Node:
        if not isinstance(rest, Pair):
            raise ExpandError("malformed named let")
        names, inits = self._parse_bindings(rest.car, "named let")
        init_nodes = [self.expand(init, env) for init in inits]
        loop_env = env.child()
        loop_var = LocalVar(name.name)
        loop_env.bind(name, LocalBinding(loop_var))
        lambda_env = loop_env.child()
        params = []
        for symbol in names:
            var = LocalVar(symbol.name)
            lambda_env.bind(symbol, LocalBinding(var))
            params.append(var)
        body = self._expand_body(rest.cdr, lambda_env, where="named let")
        lam = Lambda(params, None, body, name.name)
        return Letrec([(loop_var, lam)], Call(Var(loop_var), init_nodes))

    def _core_letstar(self, form: Pair, env: SyntacticEnv) -> Node:
        rest = form.cdr
        if not isinstance(rest, Pair):
            raise ExpandError("malformed let*", form)
        names, inits = self._parse_bindings(rest.car, "let*")
        child = env
        bindings: list[tuple[LocalVar, Node]] = []
        for symbol, init in zip(names, inits):
            init_node = self.expand(init, child)
            child = child.child()
            var = LocalVar(symbol.name)
            child.bind(symbol, LocalBinding(var))
            bindings.append((var, init_node))
        body = self._expand_body(rest.cdr, child, where="let*")
        for var, init_node in reversed(bindings):
            body = Let([(var, init_node)], body)
        return body

    def _core_letrec(self, form: Pair, env: SyntacticEnv) -> Node:
        rest = form.cdr
        if not isinstance(rest, Pair):
            raise ExpandError("malformed letrec", form)
        names, inits = self._parse_bindings(rest.car, "letrec")
        child = env.child()
        variables = []
        for symbol in names:
            var = LocalVar(symbol.name)
            child.bind(symbol, LocalBinding(var))
            variables.append(var)
        init_nodes = []
        for symbol, init in zip(names, inits):
            node = self.expand(init, child)
            if isinstance(node, Lambda) and not node.name:
                node.name = symbol.name
            init_nodes.append(node)
        body = self._expand_body(rest.cdr, child, where="letrec")
        if not variables:
            return body
        return Letrec(list(zip(variables, init_nodes)), body)

    def _parse_bindings(
        self, bindings_form: object, what: str
    ) -> tuple[list[Symbol], list[object]]:
        names: list[Symbol] = []
        inits: list[object] = []
        node = bindings_form
        while isinstance(node, Pair):
            binding = node.car
            if (
                not isinstance(binding, Pair)
                or not isinstance(binding.car, Symbol)
                or not isinstance(binding.cdr, Pair)
                or binding.cdr.cdr is not NIL
            ):
                raise ExpandError(f"malformed {what} binding", binding)
            names.append(binding.car)
            inits.append(binding.cdr.car)
            node = node.cdr
        if node is not NIL:
            raise ExpandError(f"malformed {what} binding list", bindings_form)
        return names, inits

    def _core_and(self, form: Pair, env: SyntacticEnv) -> Node:
        exprs = _cdr_list(form, "and")
        if not exprs:
            return GlobalRef("%sx-true")
        nodes = [self.expand(expr, env) for expr in exprs]
        result = nodes[-1]
        for node in reversed(nodes[:-1]):
            result = If(self._scheme_test(node), result, GlobalRef("%sx-false"))
        return result

    def _core_or(self, form: Pair, env: SyntacticEnv) -> Node:
        exprs = _cdr_list(form, "or")
        if not exprs:
            return GlobalRef("%sx-false")
        nodes = [self.expand(expr, env) for expr in exprs]
        result = nodes[-1]
        for node in reversed(nodes[:-1]):
            temp = LocalVar("or-tmp")
            result = Let(
                [(temp, node)],
                If(self._scheme_test(Var(temp)), Var(temp), result),
            )
        return result

    def _core_when(self, form: Pair, env: SyntacticEnv) -> Node:
        args = _cdr_list(form, "when")
        if len(args) < 2:
            raise ExpandError("malformed when", form)
        test = self._scheme_test(self.expand(args[0], env))
        body = make_seq([self.expand(expr, env) for expr in args[1:]])
        return If(test, body, GlobalRef("%sx-unspecified"))

    def _core_unless(self, form: Pair, env: SyntacticEnv) -> Node:
        args = _cdr_list(form, "unless")
        if len(args) < 2:
            raise ExpandError("malformed unless", form)
        test = self._scheme_test(self.expand(args[0], env))
        body = make_seq([self.expand(expr, env) for expr in args[1:]])
        return If(test, GlobalRef("%sx-unspecified"), body)

    def _core_cond(self, form: Pair, env: SyntacticEnv) -> Node:
        clauses = _cdr_list(form, "cond")
        return self._expand_cond_clauses(clauses, env, form)

    def _expand_cond_clauses(
        self, clauses: list[object], env: SyntacticEnv, origin: Pair
    ) -> Node:
        if not clauses:
            return GlobalRef("%sx-unspecified")
        clause = clauses[0]
        if not isinstance(clause, Pair):
            raise ExpandError("malformed cond clause", clause)
        parts = _improper_guard(clause, "cond clause")
        head = parts[0]
        if isinstance(head, Symbol) and env.lookup(head) is not None and isinstance(env.lookup(head), CoreForm) and env.lookup(head).name == "else":
            if len(clauses) != 1:
                raise ExpandError("else clause must be last in cond", origin)
            if len(parts) < 2:
                raise ExpandError("empty else clause", clause)
            return make_seq([self.expand(expr, env) for expr in parts[1:]])
        test_node = self.expand(head, env)
        rest = self._expand_cond_clauses(clauses[1:], env, origin)
        if len(parts) == 1:
            temp = LocalVar("cond-tmp")
            return Let(
                [(temp, test_node)],
                If(self._scheme_test(Var(temp)), Var(temp), rest),
            )
        if len(parts) >= 2 and isinstance(parts[1], Symbol) and isinstance(env.lookup(parts[1]), CoreForm) and env.lookup(parts[1]).name == "=>":
            if len(parts) != 3:
                raise ExpandError("malformed => clause", clause)
            receiver = self.expand(parts[2], env)
            temp = LocalVar("cond-tmp")
            return Let(
                [(temp, test_node)],
                If(
                    self._scheme_test(Var(temp)),
                    Call(receiver, [Var(temp)]),
                    rest,
                ),
            )
        body = make_seq([self.expand(expr, env) for expr in parts[1:]])
        return If(self._scheme_test(test_node), body, rest)

    def _core_case(self, form: Pair, env: SyntacticEnv) -> Node:
        args = _cdr_list(form, "case")
        if len(args) < 2:
            raise ExpandError("malformed case", form)
        key = self.expand(args[0], env)
        key_var = LocalVar("case-key")
        result: Node = GlobalRef("%sx-unspecified")
        clauses = args[1:]
        for index, clause in enumerate(reversed(clauses)):
            is_last = index == 0
            if not isinstance(clause, Pair):
                raise ExpandError("malformed case clause", clause)
            parts = _improper_guard(clause, "case clause")
            head = parts[0]
            body = make_seq([self.expand(expr, env) for expr in parts[1:]]) if len(parts) > 1 else GlobalRef("%sx-unspecified")
            denotation = env.lookup(head) if isinstance(head, Symbol) else None
            if isinstance(denotation, CoreForm) and denotation.name == "else":
                if not is_last:
                    raise ExpandError("else clause must be last in case", form)
                result = body
                continue
            test: Node | None = None
            for datum in _as_list(head, "case datum list"):
                compare = Call(
                    GlobalRef("%sx-eqv?"), [Var(key_var), self.lower_literal(datum)]
                )
                compare_test = self._scheme_test(compare)
                test = compare_test if test is None else _or_tests(test, compare_test)
            if test is None:
                continue  # empty datum list never matches
            result = If(test, body, result)
        return Let([(key_var, key)], result)

    def _core_do(self, form: Pair, env: SyntacticEnv) -> Node:
        args = _cdr_list(form, "do")
        if len(args) < 2:
            raise ExpandError("malformed do", form)
        spec_forms = _as_list(args[0], "do bindings")
        names: list[Symbol] = []
        inits: list[object] = []
        steps: list[object | None] = []
        for spec_form in spec_forms:
            parts = _as_list(spec_form, "do binding")
            if len(parts) == 2:
                name, init = parts
                step = None
            elif len(parts) == 3:
                name, init, step = parts
            else:
                raise ExpandError("malformed do binding", spec_form)
            if not isinstance(name, Symbol):
                raise ExpandError("do variable must be an identifier", spec_form)
            names.append(name)
            inits.append(init)
            steps.append(step)
        test_clause = _as_list(args[1], "do test clause")
        if not test_clause:
            raise ExpandError("do needs a test clause", form)
        init_nodes = [self.expand(init, env) for init in inits]
        loop_env = env.child()
        loop_var = LocalVar("do-loop")
        params = []
        for name in names:
            var = LocalVar(name.name)
            loop_env.bind(name, LocalBinding(var))
            params.append(var)
        test = self._scheme_test(self.expand(test_clause[0], loop_env))
        result = (
            make_seq([self.expand(expr, loop_env) for expr in test_clause[1:]])
            if len(test_clause) > 1
            else GlobalRef("%sx-unspecified")
        )
        step_nodes = [
            Var(param) if step is None else self.expand(step, loop_env)
            for param, step in zip(params, steps)
        ]
        body_exprs = [self.expand(expr, loop_env) for expr in args[2:]]
        recur = Call(Var(loop_var), step_nodes)
        loop_body = If(test, result, make_seq(body_exprs + [recur]))
        lam = Lambda(params, None, loop_body, "do-loop")
        return Letrec([(loop_var, lam)], Call(Var(loop_var), init_nodes))

    def _core_let_syntax(self, form: Pair, env: SyntacticEnv) -> Node:
        rest = form.cdr
        if not isinstance(rest, Pair):
            raise ExpandError("malformed let-syntax", form)
        child = env.child()
        for binding in _as_list(rest.car, "let-syntax bindings"):
            parts = _as_list(binding, "let-syntax binding")
            if len(parts) != 2 or not isinstance(parts[0], Symbol):
                raise ExpandError("malformed let-syntax binding", binding)
            transformer = SyntaxRules.parse(parts[1], parts[0].name)
            child.bind(parts[0], MacroBinding(transformer))
        return self._expand_body(rest.cdr, child, where="let-syntax")

    def _define_syntax(self, form: Pair, env: SyntacticEnv) -> None:
        args = _cdr_list(form, "define-syntax")
        if len(args) != 2 or not isinstance(args[0], Symbol):
            raise ExpandError("malformed define-syntax", form)
        transformer = SyntaxRules.parse(args[1], args[0].name)
        env.bind(args[0], MacroBinding(transformer))

    def _core_raw(self, form: Pair, env: SyntacticEnv) -> Node:
        args = _cdr_list(form, "%raw")
        if len(args) != 1 or not isinstance(args[0], int) or isinstance(args[0], bool):
            raise ExpandError("%raw expects one integer literal", form)
        return Const(wrap(args[0]))

    def _core_define(self, form: Pair, env: SyntacticEnv) -> Node:
        raise ExpandError(
            "define is only allowed at top level or at the start of a body", form
        )

    # ------------------------------------------------------------------
    # bodies with internal definitions
    # ------------------------------------------------------------------

    def _expand_body(self, body: object, env: SyntacticEnv, where: str) -> Node:
        forms = _as_list(body, f"{where} body")
        if not forms:
            raise ExpandError(f"empty {where} body")
        child = env.child()
        definitions: list[tuple[Symbol, object]] = []
        index = 0
        while index < len(forms):
            form = self._expand_head_macros(forms[index], child)
            forms[index] = form
            if isinstance(form, Pair) and isinstance(form.car, Symbol):
                denotation = child.lookup(form.car)
                if isinstance(denotation, CoreForm) and denotation.name == "define":
                    definitions.append(self._parse_body_define(form))
                    index += 1
                    continue
                if isinstance(denotation, CoreForm) and denotation.name == "define-syntax":
                    self._define_syntax(form, child)
                    forms[index] = None
                    index += 1
                    continue
                if isinstance(denotation, CoreForm) and denotation.name == "begin":
                    sub = [
                        self._expand_head_macros(item, child)
                        for item in _cdr_list(form, "begin")
                    ]
                    if not sub:
                        # (begin) — macro recursion base case: drop it.
                        forms[index : index + 1] = []
                        continue
                    if all(_is_definition(item, child) for item in sub):
                        forms[index : index + 1] = sub
                        continue
            break
        rest = [form for form in forms[index:] if form is not None]
        if not rest:
            raise ExpandError(f"{where} body has no expressions")
        if not definitions:
            return make_seq([self.expand(expr, child) for expr in rest])
        variables = []
        for name, _ in definitions:
            var = LocalVar(name.name)
            child.bind(name, LocalBinding(var))
            variables.append(var)
        init_nodes = []
        for (name, value_form), var in zip(definitions, variables):
            node = self._expand_definition_value(name, value_form, child)
            init_nodes.append(node)
        body_node = make_seq([self.expand(expr, child) for expr in rest])
        return Letrec(list(zip(variables, init_nodes)), body_node)

    def _parse_body_define(self, form: Pair) -> tuple[Symbol, object]:
        rest = form.cdr
        if not isinstance(rest, Pair):
            raise ExpandError("malformed define", form)
        target = rest.car
        if isinstance(target, Symbol):
            if rest.cdr is NIL:
                return target, UNSPECIFIED
            if not isinstance(rest.cdr, Pair) or rest.cdr.cdr is not NIL:
                raise ExpandError("malformed define", form)
            return target, rest.cdr.car
        if isinstance(target, Pair) and isinstance(target.car, Symbol):
            return target.car, ("lambda-sugar", target.cdr, rest.cdr)
        raise ExpandError("malformed define", form)

    def _expand_definition_value(
        self, name: Symbol, value_form: object, env: SyntacticEnv
    ) -> Node:
        if isinstance(value_form, tuple) and value_form[0] == "lambda-sugar":
            _, formals, body = value_form
            return self._make_lambda(formals, body, env, name.name)
        if value_form is UNSPECIFIED:
            return GlobalRef("%sx-unspecified")
        node = self.expand(value_form, env)
        if isinstance(node, Lambda) and not node.name:
            node.name = name.name
        return node

    # ------------------------------------------------------------------
    # literal lowering
    # ------------------------------------------------------------------

    def _fixnum_literal(self, value: int) -> Node:
        if not (_FIXNUM_MIN <= value <= _FIXNUM_MAX):
            raise ExpandError(f"integer literal {value} exceeds the fixnum range")
        return Call(GlobalRef("%sx-fixnum"), [Const(wrap(value))])

    def lower_literal(self, datum: object) -> Node:
        """Lower a quoted datum.  Structured data (strings, symbols,
        pairs, vectors) is hoisted to a top-level definition so it is
        constructed once; small immediates are lowered inline."""
        if isinstance(datum, bool):
            return GlobalRef("%sx-true" if datum else "%sx-false")
        if isinstance(datum, int):
            return self._fixnum_literal(datum)
        if isinstance(datum, Char):
            return Call(GlobalRef("%sx-char"), [Const(datum.code)])
        if datum is NIL:
            return GlobalRef("%sx-nil")
        if datum is UNSPECIFIED:
            return GlobalRef("%sx-unspecified")
        if datum is EOF:
            return GlobalRef("%sx-eof")
        kind = type(datum).__name__
        key = (kind, to_write(datum))
        cached = self._literal_cache.get(key)
        if cached is not None:
            return GlobalRef(cached)
        expr = self._quoted_expr(datum)
        name = f"%lit:{self._hoist_counter}"
        self._hoist_counter += 1
        self._literal_cache[key] = name
        self._pending.append(GlobalSet(name, expr))
        self._note_global(name)
        return GlobalRef(name)

    def _quoted_expr(self, datum: object) -> Node:
        """Build the constructor expression for a quoted datum, inline."""
        if isinstance(datum, bool):
            return GlobalRef("%sx-true" if datum else "%sx-false")
        if isinstance(datum, int):
            return self._fixnum_literal(datum)
        if isinstance(datum, Char):
            return Call(GlobalRef("%sx-char"), [Const(datum.code)])
        if datum is NIL:
            return GlobalRef("%sx-nil")
        if datum is UNSPECIFIED:
            return GlobalRef("%sx-unspecified")
        if datum is EOF:
            return GlobalRef("%sx-eof")
        if isinstance(datum, str):
            return self._string_expr(datum)
        if isinstance(datum, Symbol):
            return Call(
                GlobalRef("%sx-intern-literal"), [self._string_expr(datum.name)]
            )
        if isinstance(datum, Pair):
            return Call(
                GlobalRef("%sx-cons"),
                [self._quoted_expr(datum.car), self._quoted_expr(datum.cdr)],
            )
        if isinstance(datum, list):
            var = LocalVar("qvec")
            steps: list[Node] = [
                Call(
                    GlobalRef("%sx-vector-init!"),
                    [Var(var), Const(i), self._quoted_expr(item)],
                )
                for i, item in enumerate(datum)
            ]
            return Let(
                [(var, Call(GlobalRef("%sx-vector-alloc-raw"), [Const(len(datum))]))],
                make_seq(steps + [Var(var)]),
            )
        raise ExpandError(f"cannot quote datum of type {type(datum).__name__}", datum)

    def _string_expr(self, text: str) -> Node:
        var = LocalVar("qstr")
        steps: list[Node] = [
            Call(
                GlobalRef("%sx-string-init!"),
                [Var(var), Const(i), Const(ord(ch))],
            )
            for i, ch in enumerate(text)
        ]
        return Let(
            [(var, Call(GlobalRef("%sx-string-alloc-raw"), [Const(len(text))]))],
            make_seq(steps + [Var(var)]),
        )


# ----------------------------------------------------------------------
# small helpers
# ----------------------------------------------------------------------


def _cdr_list(form: Pair, what: str) -> list[object]:
    try:
        return to_list(form.cdr)
    except ValueError:
        raise ExpandError(f"malformed {what} (improper argument list)", form) from None


def _as_list(datum: object, what: str) -> list[object]:
    if datum is NIL:
        return []
    if not isinstance(datum, Pair):
        raise ExpandError(f"malformed {what}", datum)
    try:
        return to_list(datum)
    except ValueError:
        raise ExpandError(f"malformed {what} (improper list)", datum) from None


def _improper_guard(clause: Pair, what: str) -> list[object]:
    try:
        return to_list(clause)
    except ValueError:
        raise ExpandError(f"malformed {what}", clause) from None


def _is_definition(form: object, env: SyntacticEnv) -> bool:
    if not (isinstance(form, Pair) and isinstance(form.car, Symbol)):
        return False
    denotation = env.lookup(form.car)
    return isinstance(denotation, CoreForm) and denotation.name in (
        "define",
        "define-syntax",
        "begin",
    )


def _or_tests(left: Node, right: Node) -> Node:
    """Combine two raw truth words with a short-circuit or."""
    return If(left, Const(1), right)


def expand_program(forms: list[object]) -> Program:
    """Convenience: expand a list of top-level datums into a Program."""
    return Expander().expand_program(forms)
