"""Syntactic environments for the expander.

A denotation says what a symbol *means* at a use site: a core special
form, a local variable, a macro, or (by default) a top-level variable.
Because denotations are looked up through lexical scope, core forms and
macros can be shadowed by local bindings, as Scheme requires:

    (let ((if list)) (if 1 2 3))   ; => (1 2 3)
"""

from __future__ import annotations

from typing import Optional

from ..ir import LocalVar
from ..sexpr import Symbol


class CoreForm:
    """Denotation of a built-in special form (``lambda``, ``if``, …)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"#<core {self.name}>"


class LocalBinding:
    """Denotation of a lexical variable."""

    __slots__ = ("var",)

    def __init__(self, var: LocalVar):
        self.var = var

    def __repr__(self) -> str:
        return f"#<local {self.var}>"


class MacroBinding:
    """Denotation of a ``syntax-rules`` macro."""

    __slots__ = ("transformer",)

    def __init__(self, transformer):
        self.transformer = transformer

    def __repr__(self) -> str:
        return "#<macro>"


Denotation = object


CORE_FORMS = [
    "quote",
    "quasiquote",
    "unquote",
    "unquote-splicing",
    "lambda",
    "if",
    "set!",
    "define",
    "define-syntax",
    "let-syntax",
    "letrec-syntax",
    "syntax-rules",
    "begin",
    "let",
    "let*",
    "letrec",
    "letrec*",
    "cond",
    "case",
    "and",
    "or",
    "when",
    "unless",
    "do",
    "else",
    "=>",
    "%raw",
]


class SyntacticEnv:
    """A frame of the lexical environment used during expansion."""

    __slots__ = ("parent", "table")

    def __init__(self, parent: Optional["SyntacticEnv"] = None):
        self.parent = parent
        self.table: dict[Symbol, Denotation] = {}

    @classmethod
    def initial(cls) -> "SyntacticEnv":
        """The top-level environment with every core form bound."""
        env = cls()
        for name in CORE_FORMS:
            env.table[Symbol(name)] = CoreForm(name)
        return env

    def lookup(self, symbol: Symbol) -> Optional[Denotation]:
        env: Optional[SyntacticEnv] = self
        while env is not None:
            denotation = env.table.get(symbol)
            if denotation is not None:
                return denotation
            env = env.parent
        return None

    def bind(self, symbol: Symbol, denotation: Denotation) -> None:
        self.table[symbol] = denotation

    def child(self) -> "SyntacticEnv":
        return SyntacticEnv(self)

    def is_bound_locally(self, symbol: Symbol) -> bool:
        """True when ``symbol`` denotes anything other than a global
        variable in this environment."""
        return self.lookup(symbol) is not None
