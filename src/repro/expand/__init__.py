"""Expansion from full Scheme source to the core IR."""

from .environment import CoreForm, LocalBinding, MacroBinding, SyntacticEnv
from .expander import Expander, expand_program
from .quasiquote import expand_quasiquote
from .syntax_rules import SyntaxRules

__all__ = [
    "CoreForm",
    "Expander",
    "LocalBinding",
    "MacroBinding",
    "SyntacticEnv",
    "SyntaxRules",
    "expand_program",
    "expand_quasiquote",
]
