"""Quasiquotation, as a source-to-source rewrite.

``(quasiquote d)`` is rewritten into calls to the library constructors
``%sx-cons``, ``%sx-append``, and ``%sx-list->vector`` (shadow-proof
aliases the prelude defines next to ``cons``/``append``), with nested
quasiquote levels handled per R5RS.
"""

from __future__ import annotations

from ..errors import ExpandError
from ..sexpr import NIL, Pair, Symbol, from_list

_QUASIQUOTE = Symbol("quasiquote")
_UNQUOTE = Symbol("unquote")
_UNQUOTE_SPLICING = Symbol("unquote-splicing")
_QUOTE = Symbol("quote")
_CONS = Symbol("%sx-cons")
_APPEND = Symbol("%sx-append")
_LIST_TO_VECTOR = Symbol("%sx-list->vector")


def expand_quasiquote(datum: object, depth: int = 1) -> object:
    """Rewrite the body of a quasiquote form into ordinary source."""
    if isinstance(datum, Pair):
        head = datum.car
        if head is _UNQUOTE:
            inner = _single_argument(datum)
            if depth == 1:
                return inner
            return _build_tagged(_UNQUOTE, expand_quasiquote(inner, depth - 1))
        if head is _QUASIQUOTE:
            inner = _single_argument(datum)
            return _build_tagged(_QUASIQUOTE, expand_quasiquote(inner, depth + 1))
        if head is _UNQUOTE_SPLICING:
            raise ExpandError("unquote-splicing outside of a list", datum)
        return _expand_pair(datum, depth)
    if isinstance(datum, list):
        listed = expand_quasiquote(from_list(datum), depth)
        return from_list([_LIST_TO_VECTOR, listed])
    return from_list([_QUOTE, datum])


def _expand_pair(datum: Pair, depth: int) -> object:
    car = datum.car
    if isinstance(car, Pair) and car.car is _UNQUOTE_SPLICING:
        spliced = _single_argument(car)
        if depth == 1:
            rest = expand_quasiquote(datum.cdr, depth)
            return from_list([_APPEND, spliced, rest])
        new_car = _build_tagged(
            _UNQUOTE_SPLICING, expand_quasiquote(spliced, depth - 1)
        )
        rest = expand_quasiquote(datum.cdr, depth)
        return from_list([_CONS, new_car, rest])
    return from_list(
        [_CONS, expand_quasiquote(car, depth), expand_quasiquote(datum.cdr, depth)]
    )


def _single_argument(form: Pair) -> object:
    if not isinstance(form.cdr, Pair) or form.cdr.cdr is not NIL:
        raise ExpandError("malformed unquote", form)
    return form.cdr.car


def _build_tagged(tag: Symbol, inner: object) -> object:
    """Rebuild ``(tag inner)`` as constructed data (for nested levels)."""
    return from_list(
        [
            _CONS,
            from_list([_QUOTE, tag]),
            from_list([_CONS, inner, from_list([_QUOTE, NIL])]),
        ]
    )
