"""``syntax-rules`` pattern matching and template instantiation.

Supports pattern variables, the ``_`` wildcard, literal identifiers,
nested ellipses, improper-list (dotted) patterns, vector patterns, and
the ``(... template)`` ellipsis escape.

Hygiene note (documented in DESIGN.md): pattern variables are properly
scoped and the expander alpha-renames every binding form it encounters,
but identifiers *introduced* by a template refer to the macro use site's
environment rather than the definition site's.  This covers the common
macro repertoire (all of the prelude's macros and the R5RS derived
forms); the tests pin down both what works and the known limitation.
"""

from __future__ import annotations

from ..errors import ExpandError
from ..sexpr import NIL, Pair, Symbol, from_list

ELLIPSIS = Symbol("...")
WILDCARD = Symbol("_")


class MatchFailure(Exception):
    """Internal: a rule's pattern did not match the use."""


class SyntaxRules:
    """A compiled ``syntax-rules`` transformer."""

    def __init__(self, literals: list[Symbol], rules: list[tuple[object, object]], name: str = "macro"):
        self.literals = set(literals)
        self.rules = rules
        self.name = name
        for pattern, template in rules:
            variables = pattern_variables(pattern, self.literals, top=True)
            _check_template(template, variables, name)

    @classmethod
    def parse(cls, form: object, name: str = "macro") -> "SyntaxRules":
        """Parse a ``(syntax-rules (literal ...) (pattern template) ...)`` form."""
        if not isinstance(form, Pair) or form.car is not Symbol("syntax-rules"):
            raise ExpandError("expected a syntax-rules form", form)
        rest = form.cdr
        if not isinstance(rest, Pair):
            raise ExpandError("syntax-rules needs a literals list", form)
        literals_form = rest.car
        literals: list[Symbol] = []
        node = literals_form
        while isinstance(node, Pair):
            if not isinstance(node.car, Symbol):
                raise ExpandError("syntax-rules literals must be identifiers", form)
            literals.append(node.car)
            node = node.cdr
        if node is not NIL:
            raise ExpandError("bad syntax-rules literals list", form)
        rules: list[tuple[object, object]] = []
        node = rest.cdr
        while isinstance(node, Pair):
            rule = node.car
            if (
                not isinstance(rule, Pair)
                or not isinstance(rule.cdr, Pair)
                or rule.cdr.cdr is not NIL
            ):
                raise ExpandError("syntax-rules rule must be (pattern template)", rule)
            rules.append((rule.car, rule.cdr.car))
            node = node.cdr
        if node is not NIL or not rules:
            raise ExpandError("bad syntax-rules rule list", form)
        return cls(literals, rules, name)

    def expand(self, use: object) -> object:
        """Rewrite one macro use; raises ExpandError when no rule matches."""
        for pattern, template in self.rules:
            bindings: dict[Symbol, object] = {}
            try:
                # The macro keyword position matches anything, per R5RS.
                _match_arguments(pattern, use, self.literals, bindings)
            except MatchFailure:
                continue
            variables = pattern_variables(pattern, self.literals, top=True)
            return _instantiate(template, bindings, variables)
        raise ExpandError(f"no matching syntax-rules clause for {self.name}", use)


def pattern_variables(
    pattern: object, literals: set[Symbol], top: bool = False
) -> dict[Symbol, int]:
    """Map each pattern variable to its ellipsis nesting depth.

    ``top`` marks a whole-rule pattern, whose first element is the macro
    keyword and binds nothing.
    """
    out: dict[Symbol, int] = {}
    _collect_variables(pattern, literals, 0, out, top=top)
    return out


def _collect_variables(
    pattern: object,
    literals: set[Symbol],
    depth: int,
    out: dict[Symbol, int],
    top: bool = False,
) -> None:
    if isinstance(pattern, Symbol):
        if pattern in literals or pattern in (ELLIPSIS, WILDCARD):
            return
        if pattern in out:
            raise ExpandError(f"duplicate pattern variable {pattern.name}")
        out[pattern] = depth
    elif isinstance(pattern, Pair):
        # The first position of the whole pattern is the macro keyword.
        elements, tail = _split(pattern)
        start = 1 if top else 0
        index = start
        while index < len(elements):
            element = elements[index]
            if index + 1 < len(elements) and elements[index + 1] is ELLIPSIS:
                _collect_variables(element, literals, depth + 1, out)
                index += 2
            else:
                _collect_variables(element, literals, depth, out)
                index += 1
        if tail is not NIL:
            _collect_variables(tail, literals, depth, out)
    elif isinstance(pattern, list):
        _collect_variables(from_list(pattern), literals, depth, out)


def _split(datum: object) -> tuple[list[object], object]:
    """Split a (possibly improper) list into (elements, tail)."""
    elements: list[object] = []
    node = datum
    while isinstance(node, Pair):
        elements.append(node.car)
        node = node.cdr
    return elements, node


def _match_arguments(
    pattern: object, use: object, literals: set[Symbol], bindings: dict
) -> None:
    """Match a top-level rule pattern, ignoring the keyword position."""
    if not isinstance(pattern, Pair) or not isinstance(use, Pair):
        raise MatchFailure
    _match(pattern.cdr, use.cdr, literals, bindings)


def _match(pattern: object, form: object, literals: set[Symbol], bindings: dict) -> None:
    if isinstance(pattern, Symbol):
        if pattern is WILDCARD:
            return
        if pattern in literals:
            if form is not pattern:
                raise MatchFailure
            return
        bindings[pattern] = form
        return
    if pattern is NIL:
        if form is not NIL:
            raise MatchFailure
        return
    if isinstance(pattern, Pair):
        elements, tail = _split(pattern)
        ellipsis_at = None
        for i, element in enumerate(elements):
            if element is ELLIPSIS:
                ellipsis_at = i - 1
                break
        if ellipsis_at is None:
            node = form
            for element in elements:
                if not isinstance(node, Pair):
                    raise MatchFailure
                _match(element, node.car, literals, bindings)
                node = node.cdr
            _match_tail(tail, node, literals, bindings)
            return
        if ellipsis_at < 0:
            raise ExpandError("ellipsis cannot start a pattern", pattern)
        before = elements[:ellipsis_at]
        repeated = elements[ellipsis_at]
        after = elements[ellipsis_at + 2 :]
        form_elements, form_tail = _split(form)
        if len(form_elements) < len(before) + len(after):
            raise MatchFailure
        for element, item in zip(before, form_elements):
            _match(element, item, literals, bindings)
        middle = form_elements[len(before) : len(form_elements) - len(after)]
        repeated_vars = pattern_variables(repeated, literals)
        sub_matches: list[dict] = []
        for item in middle:
            sub: dict[Symbol, object] = {}
            _match(repeated, item, literals, sub)
            sub_matches.append(sub)
        for var in repeated_vars:
            bindings[var] = [sub[var] for sub in sub_matches]
        for element, item in zip(after, form_elements[len(form_elements) - len(after) :]):
            _match(element, item, literals, bindings)
        _match_tail(tail, form_tail, literals, bindings)
        return
    if isinstance(pattern, list):
        if not isinstance(form, list):
            raise MatchFailure
        _match(from_list(pattern), from_list(form), literals, bindings)
        return
    # Self-evaluating literal pattern (number, string, char, boolean).
    if pattern != form or type(pattern) is not type(form):
        if pattern is True and form is True:
            return
        if pattern is False and form is False:
            return
        raise MatchFailure


def _match_tail(tail: object, node: object, literals: set[Symbol], bindings: dict) -> None:
    if tail is NIL:
        if node is not NIL:
            raise MatchFailure
        return
    _match(tail, node, literals, bindings)


def _check_template(template: object, variables: dict[Symbol, int], name: str) -> None:
    """Light static validation: every ellipsis in the template governs at
    least one pattern variable of matching depth (full depth errors are
    reported during instantiation with use-site context)."""
    if isinstance(template, Pair):
        elements, tail = _split(template)
        if len(elements) == 2 and elements[0] is ELLIPSIS:
            return  # (... template) escape
        for element in elements:
            if element is not ELLIPSIS:
                _check_template(element, variables, name)
        if tail is not NIL:
            _check_template(tail, variables, name)
    elif isinstance(template, list):
        for element in template:
            if element is not ELLIPSIS:
                _check_template(element, variables, name)


def _instantiate(template: object, bindings: dict, variables: dict[Symbol, int]) -> object:
    if isinstance(template, Symbol):
        if template in variables:
            value = bindings[template]
            if variables[template] != 0:
                raise ExpandError(
                    f"pattern variable {template.name} used at wrong ellipsis depth"
                )
            return value
        return template
    if isinstance(template, Pair):
        elements, tail = _split(template)
        if len(elements) == 2 and elements[0] is ELLIPSIS and tail is NIL:
            return _strip_escapes(elements[1])
        out: list[object] = []
        index = 0
        while index < len(elements):
            element = elements[index]
            ellipsis_count = 0
            probe = index + 1
            while probe < len(elements) and elements[probe] is ELLIPSIS:
                ellipsis_count += 1
                probe += 1
            if ellipsis_count:
                expanded = _expand_ellipsis(element, bindings, variables, ellipsis_count)
                out.extend(expanded)
                index = probe
            else:
                out.append(_instantiate(element, bindings, variables))
                index += 1
        new_tail = (
            NIL if tail is NIL else _instantiate(tail, bindings, variables)
        )
        return from_list(out, new_tail)
    if isinstance(template, list):
        inner = _instantiate(from_list(template), bindings, variables)
        elements, tail = _split(inner)
        if tail is not NIL:
            raise ExpandError("dotted vector template")
        return elements
    return template


def _strip_escapes(template: object) -> object:
    return template


def _expand_ellipsis(
    template: object, bindings: dict, variables: dict[Symbol, int], count: int
) -> list[object]:
    controlling = [
        var
        for var in _template_vars(template, variables)
        if variables[var] > 0
    ]
    if not controlling:
        raise ExpandError("ellipsis template has no pattern variables under it")
    lengths = set()
    for var in controlling:
        value = bindings.get(var)
        if isinstance(value, list):
            lengths.add(len(value))
    if not lengths:
        raise ExpandError("ellipsis template variables are not at ellipsis depth")
    if len(lengths) > 1:
        raise ExpandError(
            f"mismatched ellipsis match counts: {sorted(lengths)}"
        )
    (length,) = lengths
    results: list[object] = []
    for i in range(length):
        sub_bindings = dict(bindings)
        sub_variables = dict(variables)
        for var in controlling:
            value = bindings[var]
            if isinstance(value, list):
                sub_bindings[var] = value[i]
                sub_variables[var] = variables[var] - 1
        if count > 1:
            results.extend(
                _expand_ellipsis(template, sub_bindings, sub_variables, count - 1)
            )
        else:
            results.append(_instantiate(template, sub_bindings, sub_variables))
    return results


def _template_vars(template: object, variables: dict[Symbol, int]) -> set[Symbol]:
    out: set[Symbol] = set()
    stack = [template]
    while stack:
        current = stack.pop()
        if isinstance(current, Symbol):
            if current in variables:
                out.add(current)
        elif isinstance(current, Pair):
            stack.append(current.car)
            stack.append(current.cdr)
        elif isinstance(current, list):
            stack.extend(current)
    return out
