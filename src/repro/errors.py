"""Exception hierarchy for the repro compiler and runtime.

Every error raised by the system derives from :class:`ReproError`, so callers
can catch one type.  The subclasses mirror the pipeline stages: reading,
expansion, compilation proper, and VM execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro system.

    Errors that unwind out of the virtual machine are annotated by the
    execution engines and :meth:`repro.vm.machine.Machine.trap`:

    * ``trap_pc`` / ``trap_opcode`` — instruction index (within the
      trapping code object) and base-opcode name where the fault was
      detected, when the engine knows them;
    * ``trap`` — the :class:`repro.vm.budget.TrapInfo` snapshot taken by
      the machine's trap-recovery path.
    """

    trap_pc: int | None = None
    trap_opcode: str | None = None
    trap = None  # TrapInfo, attached by Machine.trap()


class ReaderError(ReproError):
    """A lexical or syntactic error in S-expression input.

    Carries the source position (1-based line and column) where the
    problem was detected.
    """

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ExpandError(ReproError):
    """A malformed special form or macro use found during expansion."""

    def __init__(self, message: str, form: object = None):
        if form is not None:
            from .sexpr.writer import to_write

            text = to_write(form)
            if len(text) > 120:
                text = text[:117] + "..."
            message = f"{message}: {text}"
        super().__init__(message)
        self.form = form


class CompileError(ReproError):
    """An error in a later compiler stage (optimizer, backend)."""


class VMError(ReproError):
    """A runtime error raised by the virtual machine."""


class SchemeError(VMError):
    """An error signalled by compiled Scheme code itself (``error`` / ``%error``)."""

    def __init__(self, message: str, irritant: int | None = None):
        super().__init__(message if irritant is None else f"{message}: {irritant:#x}")
        self.scheme_message = message
        self.irritant = irritant


class HeapExhausted(VMError):
    """The VM heap is full even after garbage collection."""


class BudgetExceeded(VMError):
    """A resource budget (steps, wall-clock, or allocation) ran out.

    Budget trips are *recoverable*: the machine suspends at an
    instruction boundary with its heap and frame invariants intact, and
    :meth:`repro.vm.machine.Machine.resume` continues the run under a
    larger (or cleared) budget.  ``consumed``/``limit`` report the
    tripping counter in the budget's own unit.
    """

    #: which budget tripped: "steps", "deadline", or "alloc"
    budget = "budget"

    def __init__(self, message: str, consumed=None, limit=None):
        super().__init__(message)
        self.consumed = consumed
        self.limit = limit


class StepBudgetExceeded(BudgetExceeded):
    """The instruction-count budget (``max_steps``) ran out."""

    budget = "steps"

    def __init__(self, steps: int, max_steps: int):
        # str() keeps the historical VMError message for compatibility.
        super().__init__(
            f"execution exceeded {max_steps} steps", steps, max_steps
        )
        self.steps = steps
        self.max_steps = max_steps


class DeadlineExceeded(BudgetExceeded):
    """The wall-clock deadline (``deadline_seconds``) expired."""

    budget = "deadline"

    def __init__(
        self,
        elapsed_seconds: float,
        deadline_seconds: float,
        message: str | None = None,
    ):
        super().__init__(
            message
            or (
                f"execution exceeded its {deadline_seconds:g} s deadline "
                f"({elapsed_seconds:.3f} s elapsed)"
            ),
            elapsed_seconds,
            deadline_seconds,
        )
        self.elapsed_seconds = elapsed_seconds
        self.deadline_seconds = deadline_seconds


class AllocBudgetExceeded(BudgetExceeded):
    """The allocation budget (``max_alloc_words``) ran out."""

    budget = "alloc"

    def __init__(self, words_allocated: int, max_alloc_words: int):
        super().__init__(
            f"execution exceeded its allocation budget "
            f"({words_allocated} of {max_alloc_words} words)",
            words_allocated,
            max_alloc_words,
        )
        self.words_allocated = words_allocated
        self.max_alloc_words = max_alloc_words
