"""Exception hierarchy for the repro compiler and runtime.

Every error raised by the system derives from :class:`ReproError`, so callers
can catch one type.  The subclasses mirror the pipeline stages: reading,
expansion, compilation proper, and VM execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro system."""


class ReaderError(ReproError):
    """A lexical or syntactic error in S-expression input.

    Carries the source position (1-based line and column) where the
    problem was detected.
    """

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ExpandError(ReproError):
    """A malformed special form or macro use found during expansion."""

    def __init__(self, message: str, form: object = None):
        if form is not None:
            from .sexpr.writer import to_write

            text = to_write(form)
            if len(text) > 120:
                text = text[:117] + "..."
            message = f"{message}: {text}"
        super().__init__(message)
        self.form = form


class CompileError(ReproError):
    """An error in a later compiler stage (optimizer, backend)."""


class VMError(ReproError):
    """A runtime error raised by the virtual machine."""


class SchemeError(VMError):
    """An error signalled by compiled Scheme code itself (``error`` / ``%error``)."""

    def __init__(self, message: str, irritant: int | None = None):
        super().__init__(message if irritant is None else f"{message}: {irritant:#x}")
        self.scheme_message = message
        self.irritant = irritant


class HeapExhausted(VMError):
    """The VM heap is full even after garbage collection."""
