"""Whole-program abstract interpretation: function summaries and
heap-field facts.

:mod:`repro.absint.analyze` walks one top-level form at a time; this
module drives those walks to a *program-wide* fixpoint:

* **Function summaries.**  Every ``Fix``-bound or single-``define``d
  procedure gets an argument→result transfer record: its parameter
  values are the join of the abstract arguments at every call site, and
  its result is the join of its body's abstract results under those
  parameters.  Recursion makes the two mutually dependent, so the
  driver runs *chaotic iteration*: sweeps re-analyse every form with
  monotone in-place joins until a full sweep changes nothing, widening
  any component still moving after :data:`WIDEN_AFTER` sweeps so
  termination is a lattice-height argument, not luck.

* **Heap-field facts.**  Every ``%store`` the analysis can attribute to
  a ``(tag, field)`` pair contributes its abstract value to that
  field's invariant.  A fact is *usable* only when the whole program is
  visible (closed world), the store set is exhaustive (no wild stores),
  the field is below every non-constant-displacement kill horizon for
  its tag, and every allocation of the tag initialises the field at
  birth (so no load can observe uninitialised memory).  Tags the VM
  itself writes behind the IR's back — closures (7) and the registered
  pair representation, which the calling convention uses to build
  rest-argument lists — are hard-killed.

  Heap traffic is attributed to its *owner*: the innermost enclosing
  summarised procedure (or the top level).  A store can only execute
  if its owner's body can run, so the merged heap model includes only
  contributions from *live* owners — those reachable through call and
  value-position-escape edges from top-level code, which always runs.
  This is what keeps the prelude's generic representation combinators
  (parametric-tag constructors and mutators, dead in any program that
  does not reach for them) from wiping out every field invariant.

Open world vs closed world.  The optimized prelude is summarised
*open-world* (``open_world=True``): any later user program may call any
of its procedures with anything, so parameters stay ⊤ and heap facts
are recorded but never consumed.  Result summaries computed under ⊤
parameters remain sound for every future call, which is what makes the
prefix cache below valid.  A user program compiled against a frozen
prelude prefix is closed-world: its own procedures get real call-site
joins, and its heap facts merge the cached prefix contribution with the
suffix's own stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import (
    Call,
    Const,
    Fix,
    GlobalRef,
    GlobalSet,
    Lambda,
    Let,
    LocalVar,
    Node,
    Prim,
    Program,
    Seq,
    Var,
    is_pure,
    iter_tree,
)
from ..prims.abstract import abstract_eval
from .analyze import Analyzer
from .lattice import ALL_TAGS, BOTTOM, UNKNOWN, AbstractValue

#: sweeps before widening kicks in (plain joins converge fast on
#: non-recursive code; recursion gets a few precise rounds first)
WIDEN_AFTER = 3
#: hard sweep bound; hitting it abandons the analysis soundly (all ⊤)
MAX_SWEEPS = 24

#: the compiler-owned closure tag: the VM allocates and mutates these
_CLOSURE_TAG = 7

_FAR = 1 << 60  # "no kill horizon" sentinel for kill_from lookups


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------


@dataclass(eq=False)  # identity semantics: summaries live in id-keyed sets
class FunctionSummary:
    """One procedure's argument→result transfer record."""

    label: str
    lam: Lambda
    #: per-parameter join over every call site (⊤ when escaped/open)
    params: list
    #: join of the body's results under ``params``
    result: AbstractValue = BOTTOM
    #: used as a value (not just called): callable from anywhere
    escaped: bool = False
    variadic: bool = False
    #: bound to a global name: open-world callers can reach it directly
    is_global: bool = False
    call_sites: int = 0
    #: False after an arity-mismatched call or other analysis bail-out
    analyzable: bool = True

    @property
    def tracks_params(self) -> bool:
        return self.analyzable and not self.escaped and not self.variadic


# ----------------------------------------------------------------------
# heap facts
# ----------------------------------------------------------------------


@dataclass
class HeapContribution:
    """Everything one analysed region says about the heap."""

    #: (tag, field index) → join of every stored value
    stores: dict = field(default_factory=dict)
    #: tag → lowest field index a non-constant-displacement store may hit
    kill_from: dict = field(default_factory=dict)
    #: a %store the analysis could not attribute to any (tag, field)
    wild: bool = False
    #: tag → frozenset of field indices initialised at *every* alloc
    #: site of that tag, or None when some alloc site resists the scan
    alloc_inits: dict = field(default_factory=dict)
    #: (tag, field) pairs some %load reads (for the dead-field lint)
    loads: set = field(default_factory=set)
    #: tags read through non-constant displacements (reads everything)
    load_cover: set = field(default_factory=set)
    #: tags mutated outside the IR's view (closure tag, pair-rep tags)
    hard_killed: set = field(default_factory=set)

    def record_store(self, ptr: AbstractValue, disp: AbstractValue,
                     value: AbstractValue) -> None:
        if ptr.is_bottom or disp.is_bottom:
            return
        word = disp.as_constant()
        if word is not None:
            signed = _signed(word)
            for tag in ptr.tags:
                index = _field_index(signed, tag)
                if index is None:
                    continue  # misaligned: this tag is impossible here
                key = (tag, index)
                self.stores[key] = self.stores.get(key, BOTTOM).join(value)
            return
        # Non-constant displacement: kill every field the displacement
        # can reach, per possible tag (disp.lo bounds it from below).
        # The displacement's own low-bit set gives its residues mod 8,
        # and a tag-t field sits at a displacement ≡ -t (mod 8), so
        # misaligned tags survive even unbounded-range kills — this is
        # what keeps a live string initialiser (elements at 8i+13) from
        # wiping out vector and record invariants.
        for tag in ptr.tags & _killable_tags(disp):
            floor = max(0, (disp.lo + tag + 7) // 8 - 1)
            seen = self.kill_from.get(tag, _FAR)
            self.kill_from[tag] = min(seen, floor)

    def record_load(self, ptr: AbstractValue, disp: AbstractValue) -> None:
        if ptr.is_bottom or disp.is_bottom:
            return
        word = disp.as_constant()
        if word is None:
            self.load_cover |= ptr.tags & _killable_tags(disp)
            return
        signed = _signed(word)
        for tag in ptr.tags:
            index = _field_index(signed, tag)
            if index is not None:
                self.loads.add((tag, index))

    def record_alloc(self, tag: int, inits: frozenset | None) -> None:
        seen = self.alloc_inits.get(tag)
        if tag not in self.alloc_inits:
            self.alloc_inits[tag] = inits
        elif seen is None or inits is None:
            self.alloc_inits[tag] = None
        else:
            self.alloc_inits[tag] = seen & inits

    def merge(self, other: "HeapContribution") -> "HeapContribution":
        out = HeapContribution()
        for key in set(self.stores) | set(other.stores):
            out.stores[key] = self.stores.get(key, BOTTOM).join(
                other.stores.get(key, BOTTOM)
            )
        for tag in set(self.kill_from) | set(other.kill_from):
            out.kill_from[tag] = min(
                self.kill_from.get(tag, _FAR), other.kill_from.get(tag, _FAR)
            )
        out.wild = self.wild or other.wild
        out.alloc_inits = dict(self.alloc_inits)
        for tag, inits in other.alloc_inits.items():
            out.record_alloc(tag, inits)
        out.loads = self.loads | other.loads
        out.load_cover = self.load_cover | other.load_cover
        out.hard_killed = self.hard_killed | other.hard_killed
        return out


def _signed(word: int) -> int:
    return word - (1 << 64) if word >> 63 else word


def _killable_tags(disp: AbstractValue) -> frozenset:
    """Pointer tags whose fields a displacement can address: field i of
    a tag-t object sits at ``8*(i+1) - t``, so only tags congruent to
    ``-disp`` mod 8 are reachable.  ``disp.tags`` is exactly the
    abstract value's possible low-3-bit residues."""
    residues = disp.tags if disp.tags else ALL_TAGS
    return frozenset((-residue) % 8 for residue in residues)


def _field_index(signed_disp: int, tag: int) -> int | None:
    """Field index of byte displacement ``signed_disp`` off a ``tag``
    pointer (field i lives at ``8*(i+1) - tag``), or None when the
    displacement cannot belong to that tag."""
    total = signed_disp + tag
    if total <= 0 or total % 8:
        return None
    return total // 8 - 1


class HeapFacts:
    """Queryable view of a merged :class:`HeapContribution`."""

    def __init__(self, contribution: HeapContribution, usable: bool):
        self.contribution = contribution
        self.usable = usable and not contribution.wild

    def fact(self, tag: int, index: int) -> AbstractValue | None:
        """The proven invariant for field ``index`` of ``tag``-tagged
        objects, or None when no sound fact exists."""
        if not self.usable:
            return None
        c = self.contribution
        if tag in c.hard_killed:
            return None
        if index >= c.kill_from.get(tag, _FAR):
            return None
        inits = c.alloc_inits.get(tag)
        if inits is None or index not in inits:
            return None
        stored = c.stores.get((tag, index))
        if stored is None or stored.is_bottom:
            return None
        return stored


# ----------------------------------------------------------------------
# the interprocedural context handed to each Analyzer
# ----------------------------------------------------------------------


class _Context:
    """Implements the analyzer's context protocol (``params_for``,
    ``lambda_result``, ``call``, ``load``, ``store``).

    During fixpoint sweeps it joins call-site arguments and body results
    *in place* (monotone — nothing resets between sweeps) and records
    heap traffic; ``frozen`` flips for the final recorded pass, which
    reads the converged summaries, consumes heap facts, and lets the
    analyzer record unbox rewrites.
    """

    def __init__(self, by_lambda: dict, by_name: dict, by_var: dict):
        #: id(Lambda) → FunctionSummary
        self.by_lambda = by_lambda
        #: global name → FunctionSummary (single-assignment defines)
        self.by_name = by_name
        #: id(LocalVar) → FunctionSummary (Fix bindings)
        self.by_var = by_var
        self.heap = HeapFacts(HeapContribution(), usable=False)
        #: owner key → HeapContribution during sweeps (None = top level)
        self.recording: dict | None = None
        #: innermost enclosing summarised procedure (heap-fact owner)
        self.owner_stack: list = [None]
        self.frozen = False
        self.record_rewrites = False
        self.changed = False
        #: summary ids whose params/result/analyzability moved this
        #: sweep, for the driver's dirty-form worklist
        self.dirty: set = set()

    # -- resolution ----------------------------------------------------

    def resolve(self, fn: Node) -> FunctionSummary | None:
        if isinstance(fn, GlobalRef):
            return self.by_name.get(fn.name)
        if isinstance(fn, Var):
            return self.by_var.get(id(fn.var))
        return None

    # -- owner attribution ---------------------------------------------

    def enter_lambda(self, lam: Lambda) -> None:
        info = self.by_lambda.get(id(lam))
        # Unsummarised lambdas (anonymous, let-bound) charge their heap
        # traffic to the enclosing owner: their closures only exist —
        # so their bodies only run — when that owner's body ran.
        self.owner_stack.append(
            info if info is not None else self.owner_stack[-1]
        )

    def exit_lambda(self, lam: Lambda) -> None:
        self.owner_stack.pop()

    def _recording_contribution(self) -> HeapContribution | None:
        if self.recording is None:
            return None
        top = self.owner_stack[-1]
        key = None if top is None else id(top)
        contribution = self.recording.get(key)
        if contribution is None:
            contribution = self.recording[key] = HeapContribution()
        return contribution

    # -- analyzer protocol ---------------------------------------------

    def params_for(self, lam: Lambda):
        info = self.by_lambda.get(id(lam))
        if info is None or not info.tracks_params:
            return None
        return info.params

    def lambda_result(self, lam: Lambda, result: AbstractValue) -> None:
        info = self.by_lambda.get(id(lam))
        if info is None or self.frozen:
            return
        joined = info.result.join(result)
        if joined != info.result:
            info.result = joined
            self.changed = True
            self.dirty.add(id(info))

    def call(self, node: Call, args: list) -> AbstractValue:
        info = self.resolve(node.fn)
        if info is None or not info.analyzable:
            return UNKNOWN
        if info.variadic:
            if len(args) < len(info.lam.params):
                if not self.frozen and info.analyzable:
                    info.analyzable = False
                    self.changed = True
                    self.dirty.add(id(info))
                return UNKNOWN
        elif len(args) != len(info.lam.params):
            if not self.frozen and info.analyzable:
                info.analyzable = False
                self.changed = True
                self.dirty.add(id(info))
            return UNKNOWN
        if not self.frozen and info.tracks_params:
            for index, value in enumerate(args[: len(info.params)]):
                joined = info.params[index].join(value)
                if joined != info.params[index]:
                    info.params[index] = joined
                    self.changed = True
                    self.dirty.add(id(info))
        return info.result

    def load(self, node: Prim, args: list) -> AbstractValue:
        ptr, disp = args
        recording = self._recording_contribution()
        if recording is not None:
            recording.record_load(ptr, disp)
        if self.heap.usable:
            word = disp.as_constant()
            if word is not None and ptr.tags:
                signed = _signed(word)
                out = BOTTOM
                for tag in ptr.tags:
                    index = _field_index(signed, tag)
                    if index is None:
                        continue  # impossible tag for this displacement
                    fact = self.heap.fact(tag, index)
                    if fact is None:
                        return abstract_eval("%load", args)
                    out = out.join(fact)
                if not out.is_bottom:
                    return out
        return abstract_eval("%load", args)

    def store(self, node: Prim, args: list) -> None:
        recording = self._recording_contribution()
        if recording is not None:
            ptr, disp, value = args
            recording.record_store(ptr, disp, value)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


@dataclass
class ProgramSummaries:
    """Everything :func:`summarize_program` proves."""

    #: label → FunctionSummary for every procedure in the analysed region
    functions: dict
    #: merged heap contribution of every *live* owner (prefix + region)
    contribution: HeapContribution
    heap: HeapFacts
    #: (label, Analyzer) per analysed form, from the final recorded pass
    analyzers: list
    sweeps: int
    #: False when MAX_SWEEPS was hit and everything was flushed to ⊤
    stable: bool
    open_world: bool
    start: int
    #: the context, for callers that resolve call sites (lint rules)
    context: _Context = None
    #: owner key (id(FunctionSummary) | None) → that owner's heap
    #: contribution, scan shapes merged with the stable sweep's stores
    #: (prefix owners included, for the ``repro absint`` owner listing)
    contribs: dict = field(default_factory=dict)
    #: owner key → FunctionSummary set the owner calls or leaks
    edges: dict = field(default_factory=dict)
    #: live owner keys (closure from top level), or None for "all live"
    live: set | None = None
    #: owner key → display label, for the ``repro absint`` report
    owner_labels: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# syntactic pre-scan (over the analysed region only)
# ----------------------------------------------------------------------


def _scan_region(forms: list, prefix_by_name: dict | None = None):
    """One linear pass over the region: known procedures, escapes,
    call-site counts, call/escape edges for owner liveness, alloc-time
    field initialisation (per owner), VM-mutated tags.

    ``prefix_by_name`` splices a cached prelude prefix's summaries in
    before reference resolution (shadowed by region definitions), so
    region call sites resolve — and draw liveness edges — into the
    prefix.  Prefix summaries are never mutated here: their parameters
    are already ⊤ from the open-world prefix analysis.
    """
    by_lambda: dict = {}
    by_name: dict = {}
    by_var: dict = {}
    order: list[FunctionSummary] = []
    assigned_names: set[str] = set()
    global_assigns: dict[str, int] = {}
    #: owner key (id(FunctionSummary) | None) → HeapContribution
    contribs: dict = {}
    #: owner key → set of FunctionSummary the owner calls or leaks
    edges: dict = {}

    def contribution_for(key) -> HeapContribution:
        contribution = contribs.get(key)
        if contribution is None:
            contribution = contribs[key] = HeapContribution()
        return contribution

    # The VM allocates and mutates closures whenever any code runs.
    contribution_for(None).hard_killed.add(_CLOSURE_TAG)

    def register(label: str, lam: Lambda) -> FunctionSummary:
        info = by_lambda.get(id(lam))
        if info is None:
            info = FunctionSummary(
                label=label,
                lam=lam,
                params=[BOTTOM for _ in lam.params],
                variadic=lam.rest is not None,
            )
            by_lambda[id(lam)] = info
            order.append(info)
        return info

    # Pass 1: registrations (so forward calls resolve in pass 2),
    # assignment counts, pair-rep registrations, alloc-binding shapes.
    alloc_lets: dict[int, tuple] = {}  # id(%alloc) → (LocalVar, Let)
    for form in forms:
        for node in iter_tree(form):
            if isinstance(node, GlobalSet):
                assigned_names.add(node.name)
                global_assigns[node.name] = global_assigns.get(node.name, 0) + 1
            elif isinstance(node, Fix):
                for var, lam in node.bindings:
                    if not var.assigned:
                        by_var[id(var)] = register(var.name, lam)
            elif isinstance(node, Prim):
                if (
                    node.op == "%register-pair-rep"
                    and node.args
                    and isinstance(node.args[0], Const)
                ):
                    # The VM conses rest-argument lists onto this tag at
                    # every variadic call, invisibly to the IR; the
                    # registration form runs at top level, so the kill
                    # is unconditionally live.
                    contribution_for(None).hard_killed.add(
                        node.args[0].value & 7
                    )
            elif isinstance(node, Let):
                for var, init in node.bindings:
                    if isinstance(init, Prim) and init.op == "%alloc":
                        alloc_lets[id(init)] = (var, node)
    for form in forms:
        for node in iter_tree(form):
            if (
                isinstance(node, GlobalSet)
                and isinstance(node.value, Lambda)
                and global_assigns.get(node.name) == 1
            ):
                info = register(node.name, node.value)
                info.is_global = True
                by_name[node.name] = info

    # Splice the prefix in (region definitions and assignments shadow).
    local_ids = {id(info) for info in order}
    if prefix_by_name:
        for name, info in prefix_by_name.items():
            if name not in assigned_names and name not in by_name:
                by_name[name] = info

    # Pass 2: call sites vs value-position escapes, liveness edges, and
    # per-owner allocation shapes — all under an owner stack mirroring
    # the one the sweeps maintain.
    owner_stack: list = [None]
    #: per-form read-set: summary ids whose params/result the form's
    #: analysis consumes (its own procedures + every resolved callee) —
    #: the sweep worklist re-analyses a form only when one changed
    form_deps: list = []
    current_deps: set = set()

    def owner_key():
        top = owner_stack[-1]
        return None if top is None else id(top)

    def add_edge(target: FunctionSummary) -> None:
        edges.setdefault(owner_key(), set()).add(target)

    def walk_lambda(lam: Lambda) -> None:
        info = by_lambda.get(id(lam))
        if info is not None:
            current_deps.add(id(info))
        owner_stack.append(info if info is not None else owner_stack[-1])
        walk(lam.body)
        owner_stack.pop()

    def walk(node: Node) -> None:
        if isinstance(node, Lambda):
            walk_lambda(node)
            return
        if isinstance(node, Call):
            target = None
            if isinstance(node.fn, GlobalRef):
                target = by_name.get(node.fn.name)
            elif isinstance(node.fn, Var):
                target = by_var.get(id(node.fn.var))
            if target is not None:
                if id(target) in local_ids:
                    target.call_sites += 1
                add_edge(target)
                current_deps.add(id(target))
            else:
                walk(node.fn)
            for arg in node.args:
                walk(arg)
            return
        if isinstance(node, GlobalSet):
            if (
                isinstance(node.value, Lambda)
                and by_name.get(node.name) is not None
                and by_name[node.name].lam is node.value
            ):
                # The defining assignment itself is not an escape.
                walk_lambda(node.value)
                return
            walk(node.value)
            return
        if isinstance(node, GlobalRef):
            info = by_name.get(node.name)
            if info is not None:
                if id(info) in local_ids:
                    info.escaped = True
                add_edge(info)
            return
        if isinstance(node, Var):
            info = by_var.get(id(node.var))
            if info is not None:
                if id(info) in local_ids:
                    info.escaped = True
                add_edge(info)
            return
        if isinstance(node, Prim) and node.op == "%alloc":
            # Which fields does this allocation fill before the fresh
            # pointer can escape?  Charged to the enclosing owner.
            tag_node = node.args[1] if len(node.args) == 2 else None
            if not isinstance(tag_node, Const):
                contribution_for(owner_key()).wild = True  # untrackable
            else:
                tag = tag_node.value & 7
                bound = alloc_lets.get(id(node))
                if bound is None or bound[0].assigned:
                    contribution_for(owner_key()).record_alloc(tag, None)
                else:
                    var, let = bound
                    contribution_for(owner_key()).record_alloc(
                        tag, _init_spine_fields(let.body, var, tag)
                    )
            for arg in node.args:
                walk(arg)
            return
        for child in node.children():
            walk(child)

    for form in forms:
        current_deps = set()
        walk(form)
        form_deps.append(current_deps)

    return (
        by_lambda,
        by_name,
        by_var,
        order,
        contribs,
        edges,
        assigned_names,
        form_deps,
    )


def _init_spine_fields(body: Node, var: LocalVar, tag: int) -> frozenset:
    """Field indices provably stored through ``var`` by the leading
    ``%store`` spine of ``body`` (constant displacements, pure values
    that do not mention the fresh pointer)."""
    exprs = body.exprs if isinstance(body, Seq) else [body]
    fields: set[int] = set()
    for expr in exprs:
        if (
            isinstance(expr, Prim)
            and expr.op == "%store"
            and len(expr.args) == 3
            and isinstance(expr.args[0], Var)
            and expr.args[0].var is var
            and isinstance(expr.args[1], Const)
            and is_pure(expr.args[2])
            and not _references(expr.args[2], var)
        ):
            index = _field_index(_signed(expr.args[1].value), tag)
            if index is not None:
                fields.add(index)
            continue
        break
    return frozenset(fields)


def _references(node: Node, var: LocalVar) -> bool:
    return any(
        isinstance(child, Var) and child.var is var for child in iter_tree(node)
    )


# ----------------------------------------------------------------------
# the fixpoint driver
# ----------------------------------------------------------------------

#: id-tuple of prefix forms → (ProgramSummaries, pinned form list).  The
#: pinned list keeps the form objects alive so the ids cannot be reused
#: by a different prelude; capped to a handful of configurations.
_PREFIX_CACHE: dict = {}
_PREFIX_CACHE_LIMIT = 8


def _form_labels(forms: list, start: int):
    out = []
    for index, form in enumerate(forms, start=start):
        if isinstance(form, GlobalSet):
            out.append(form.name)
        else:
            out.append(f"<toplevel expression #{index - start + 1}>")
    return out


def _prefix_summaries(program: Program, start: int) -> ProgramSummaries:
    key = tuple(id(form) for form in program.forms[:start])
    cached = _PREFIX_CACHE.get(key)
    if cached is None:
        prefix = Program(list(program.forms[:start]), list(program.globals))
        summary = summarize_program(prefix, start=0, open_world=True)
        if len(_PREFIX_CACHE) >= _PREFIX_CACHE_LIMIT:
            _PREFIX_CACHE.clear()
        cached = (summary, prefix.forms)
        _PREFIX_CACHE[key] = cached
    return cached[0]


def summarize_program(
    program: Program, start: int = 0, open_world: bool = False
) -> ProgramSummaries:
    """Summarise ``program.forms[start:]`` to a fixpoint.

    ``start > 0`` treats the first ``start`` forms as a frozen,
    already-optimized prelude prefix: the prefix is summarised once
    (open-world) and cached by form identity, then spliced into every
    later compile against the same prefix.
    """
    prefix_by_name: dict = {}
    prefix_contribs: dict = {}
    prefix_edges: dict = {}
    prefix_labels: dict = {}
    if start > 0:
        prefix_result = _prefix_summaries(program, start)
        # A region assignment to a prefix name shadows (and
        # un-summarises) the prefix definition — the api layer falls
        # back to a whole-program analysis in that case, but the scan
        # guards regardless.
        prefix_by_name = prefix_result.context.by_name
        prefix_contribs = prefix_result.contribs
        prefix_edges = prefix_result.edges
        for info in prefix_result.context.by_lambda.values():
            prefix_labels[id(info)] = info.label

    forms = list(program.forms[start:])
    (
        by_lambda,
        by_name,
        by_var,
        order,
        scan_contribs,
        edges,
        assigned_names,
        form_deps,
    ) = _scan_region(forms, prefix_by_name)

    context = _Context(by_lambda, by_name, by_var)

    # Escaped, variadic, uncalled, or open-world-reachable procedures
    # get ⊤ parameters up front: their bodies are then analysed soundly
    # for any caller (an uncalled one would otherwise read as ⊥ and
    # emit bogus always-fails events).  Open-world callers can only
    # reach *globals* directly, so ``Fix``-bound local procedures keep
    # their call-site joins even in a library — an escape through a
    # returned closure still flips them to ⊤ above.
    for info in order:
        if (
            (open_world and info.is_global)
            or info.escaped
            or info.variadic
            or info.call_sites == 0
        ):
            info.params = [UNKNOWN for _ in info.lam.params]

    labels = _form_labels(forms, start)

    sweeps = 0
    stable = False
    snapshots: dict[int, tuple] = {}
    # The worklist: a form is re-analysed only when a summary in its
    # read-set moved last sweep.  A skipped form's analysis — and so
    # its heap recording, kept per form — is a deterministic function
    # of that read-set and would come out identical.
    pending = set(range(len(forms)))
    form_recordings: list = [{} for _ in forms]
    while sweeps < MAX_SWEEPS:
        sweeps += 1
        context.changed = False
        context.dirty = set()
        for index, form in enumerate(forms):
            if index not in pending:
                continue
            recording: dict = {}
            context.recording = recording
            Analyzer(labels[index], context=context).analyze_form(form)
            form_recordings[index] = recording
        if not context.changed:
            stable = True
            break
        if sweeps >= WIDEN_AFTER:
            # Widen every component still moving against its snapshot
            # from the previous sweep, so interval chains cannot creep.
            for info in order:
                snap = snapshots.get(id(info))
                if snap is not None:
                    old_params, old_result = snap
                    for i, old in enumerate(old_params):
                        if old != info.params[i]:
                            info.params[i] = old.widen(info.params[i])
                            context.dirty.add(id(info))
                    if old_result != info.result:
                        info.result = old_result.widen(info.result)
                        context.dirty.add(id(info))
                snapshots[id(info)] = (list(info.params), info.result)
        else:
            for info in order:
                snapshots[id(info)] = (list(info.params), info.result)
        dirty = context.dirty
        pending = {
            index
            for index, deps in enumerate(form_deps)
            if deps & dirty
        }

    last_recording: dict | None = None
    if stable:
        last_recording = {}
        for recording in form_recordings:
            for key, piece in recording.items():
                seen = last_recording.get(key)
                last_recording[key] = (
                    piece if seen is None else seen.merge(piece)
                )

    if not stable:
        # Abandon: flush everything to ⊤ so downstream consumers see no
        # unsound precision, and poison the heap model.
        for info in order:
            info.params = [UNKNOWN for _ in info.lam.params]
            info.result = UNKNOWN
            info.analyzable = False
        last_recording = None

    # Per-owner totals for this region: syntactic shapes (allocations,
    # hard kills) merged with the stable sweep's recorded stores/loads.
    # This per-owner form is what the prefix cache hands to later
    # suffix compiles, so *their* liveness can filter it.
    own_contribs: dict = {}
    for source in (scan_contribs, last_recording or {}):
        for key, contribution in source.items():
            seen = own_contribs.get(key)
            own_contribs[key] = (
                contribution if seen is None else seen.merge(contribution)
            )

    # Owner liveness: top-level code always runs; a summarised procedure
    # runs only if live code calls it or leaks it as a value.
    combined_edges: dict = {}
    for source in (prefix_edges, edges):
        for key, targets in source.items():
            combined_edges.setdefault(key, set()).update(targets)
    live = None if open_world else _live_owners(combined_edges)

    merged = HeapContribution()
    merged.hard_killed.add(_CLOSURE_TAG)
    for source in (prefix_contribs, own_contribs):
        for key, contribution in source.items():
            if live is None or key is None or key in live:
                merged = merged.merge(contribution)
    if last_recording is None:
        merged.wild = True  # unstable: the recorded store set is partial

    heap = HeapFacts(merged, usable=stable and not open_world)

    # Final recorded pass: converged summaries + heap facts, rewrites on.
    context.frozen = True
    context.heap = heap
    context.recording = None
    context.record_rewrites = True
    analyzers = []
    for label, form in zip(labels, forms):
        analyzer = Analyzer(label, context=context)
        analyzer.analyze_form(form)
        analyzers.append((label, analyzer))
    context.record_rewrites = False

    functions = {}
    for info in order:
        functions.setdefault(info.label, info)

    # The debug report lists owners across prefix and region; region
    # entries win the (toplevel) key.  Prefixes are always summarised
    # with start=0, so this never chains a stale prefix of a prefix.
    all_contribs = dict(prefix_contribs)
    all_contribs.update(own_contribs)
    owner_labels = {None: "<toplevel>", **prefix_labels}
    for info in order:
        owner_labels[id(info)] = info.label
    return ProgramSummaries(
        functions=functions,
        contribution=merged,
        heap=heap,
        analyzers=analyzers,
        sweeps=sweeps,
        stable=stable,
        open_world=open_world,
        start=start,
        context=context,
        contribs=all_contribs,
        edges=edges,
        live=live,
        owner_labels=owner_labels,
    )


def _live_owners(edges: dict) -> set:
    """Owner keys reachable from top-level code (key ``None``) through
    call and escape edges.  Escaped procedures count as called: a leaked
    closure can be invoked from anywhere live."""
    live: set = {None}
    stack: list = [None]
    while stack:
        for target in edges.get(stack.pop(), ()):
            key = id(target)
            if key not in live:
                live.add(key)
                stack.append(key)
    return live
