"""Flow-sensitive abstract interpretation over the core IR.

The package tracks, per 64-bit word, a product of an interval, a
low-tag set, and definedness (:mod:`repro.absint.lattice`), pushes it
through every machine primitive (:mod:`repro.prims.abstract`), and
refines it at branches (:mod:`repro.absint.analyze`) — including
through the prelude's fused ``%fx-check2`` tag probes.

Consumers: the ``checkelim`` optimizer pass (:mod:`repro.opt.checkelim`)
and the ``repro lint`` diagnostics engine (:mod:`repro.lint`).
"""

from .lattice import (  # noqa: F401
    ALL_TAGS,
    BOOL_WORD,
    BOTTOM,
    INT_MAX,
    INT_MIN,
    TOP,
    UNKNOWN,
    AbstractValue,
    const,
    from_range,
    from_tags,
    join_all,
    make,
    stabilize,
)
from .analyze import Analyzer, Event, analyze_program  # noqa: F401

__all__ = [
    "ALL_TAGS",
    "BOOL_WORD",
    "BOTTOM",
    "INT_MAX",
    "INT_MIN",
    "TOP",
    "UNKNOWN",
    "AbstractValue",
    "Analyzer",
    "Event",
    "analyze_program",
    "const",
    "from_range",
    "from_tags",
    "join_all",
    "make",
    "stabilize",
]
