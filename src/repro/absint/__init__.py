"""Flow-sensitive abstract interpretation over the core IR.

The package tracks, per 64-bit word, a product of an interval, a
low-tag set, and definedness (:mod:`repro.absint.lattice`), pushes it
through every machine primitive (:mod:`repro.prims.abstract`), and
refines it at branches (:mod:`repro.absint.analyze`) — including
through the prelude's fused ``%fx-check2`` tag probes.

:mod:`repro.absint.summaries` lifts the per-form walk to a
whole-program fixpoint: function summaries (call-site parameter joins,
result joins, widening for recursion) and heap-field facts.

Consumers: the ``checkelim`` optimizer pass (:mod:`repro.opt.checkelim`),
the interprocedural ``unbox`` pass (:mod:`repro.opt.unbox`), and the
``repro lint`` diagnostics engine (:mod:`repro.lint`).
"""

from .lattice import (  # noqa: F401
    ALL_TAGS,
    BOOL_WORD,
    BOTTOM,
    INT_MAX,
    INT_MIN,
    TOP,
    UNKNOWN,
    AbstractValue,
    const,
    from_range,
    from_tags,
    join_all,
    make,
    stabilize,
)
from .analyze import Analyzer, Event, EventKind, analyze_program  # noqa: F401
from .summaries import (  # noqa: F401
    MAX_SWEEPS,
    WIDEN_AFTER,
    FunctionSummary,
    HeapContribution,
    HeapFacts,
    ProgramSummaries,
    summarize_program,
)

__all__ = [
    "ALL_TAGS",
    "BOOL_WORD",
    "BOTTOM",
    "INT_MAX",
    "INT_MIN",
    "TOP",
    "UNKNOWN",
    "AbstractValue",
    "Analyzer",
    "Event",
    "EventKind",
    "FunctionSummary",
    "HeapContribution",
    "HeapFacts",
    "MAX_SWEEPS",
    "ProgramSummaries",
    "WIDEN_AFTER",
    "analyze_program",
    "summarize_program",
    "const",
    "from_range",
    "from_tags",
    "join_all",
    "make",
    "stabilize",
]
