"""Debug views of whole-program summaries (``repro absint``).

:func:`summary_report` flattens a :class:`ProgramSummaries` into plain
JSON-able data; :func:`render_summary_text` pretty-prints that data for
the terminal.  Both are documented in docs/DIAGNOSTICS.md.
"""

from __future__ import annotations

from .summaries import _FAR, ProgramSummaries

#: default prelude tag names, a debug aid only (user programs may
#: register different pointer representations)
TAG_NAMES = {
    0: "fixnum",
    1: "pair",
    2: "vector",
    3: "string",
    4: "symbol",
    5: "record",
    6: "immediate",
    7: "closure",
}


def _tag_label(tag: int) -> str:
    name = TAG_NAMES.get(tag)
    return f"{tag} ({name})" if name else str(tag)


def summary_report(summaries: ProgramSummaries) -> dict:
    """Flatten ``summaries`` to JSON-able data."""
    functions = []
    for label in sorted(summaries.functions):
        info = summaries.functions[label]
        functions.append(
            {
                "label": label,
                "params": [str(p) for p in info.params],
                "result": str(info.result),
                "call_sites": info.call_sites,
                "escaped": info.escaped,
                "variadic": info.variadic,
                "global": info.is_global,
                "analyzable": info.analyzable,
            }
        )

    heap = summaries.heap
    contribution = heap.contribution
    facts = []
    for tag, index in sorted(contribution.stores):
        value = heap.fact(tag, index)
        if value is not None:
            facts.append({"tag": tag, "field": index, "value": str(value)})
    kill_from = {
        str(tag): index for tag, index in sorted(contribution.kill_from.items())
        if index < _FAR
    }

    owners = None
    if summaries.live is not None:
        def name(key):
            return summaries.owner_labels.get(key) or "?"

        every = set(summaries.contribs)
        owners = {
            "live": sorted(name(k) for k in every if k in summaries.live
                           or k is None),
            "dead": sorted(name(k) for k in every if k not in summaries.live
                           and k is not None),
        }

    return {
        "schema": 1,
        "world": "open" if summaries.open_world else "closed",
        "stable": summaries.stable,
        "sweeps": summaries.sweeps,
        "functions": functions,
        "heap": {
            "usable": heap.usable,
            "wild": contribution.wild,
            "hard_killed": sorted(contribution.hard_killed),
            "kill_from": kill_from,
            "facts": facts,
        },
        "owners": owners,
    }


def render_summary_text(report: dict) -> str:
    """The terminal rendering of :func:`summary_report`'s output."""
    lines = []
    lines.append(
        f"== whole-program analysis: {report['world']} world, "
        f"{'stable' if report['stable'] else 'UNSTABLE'} "
        f"after {report['sweeps']} sweep(s)"
    )
    lines.append("")
    lines.append(f"== function summaries ({len(report['functions'])})")
    for fn in report["functions"]:
        flags = [
            flag
            for flag, on in (
                ("escaped", fn["escaped"]),
                ("variadic", fn["variadic"]),
                ("global", fn["global"]),
                ("unanalyzable", not fn["analyzable"]),
            )
            if on
        ]
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        params = ", ".join(fn["params"]) or "()"
        lines.append(
            f"  {fn['label']}: ({params}) -> {fn['result']}"
            f"  calls={fn['call_sites']}{suffix}"
        )
    heap = report["heap"]
    lines.append("")
    state = "usable" if heap["usable"] else "not usable"
    if heap["wild"]:
        state += ", wild stores"
    lines.append(f"== heap-field facts ({state})")
    for fact in heap["facts"]:
        lines.append(
            f"  tag {_tag_label(fact['tag'])} field {fact['field']}: "
            f"{fact['value']}"
        )
    if heap["kill_from"]:
        horizon = ", ".join(
            f"tag {_tag_label(int(tag))} from {index}"
            for tag, index in heap["kill_from"].items()
        )
        lines.append(f"  kill horizons: {horizon}")
    if heap["hard_killed"]:
        killed = ", ".join(_tag_label(tag) for tag in heap["hard_killed"])
        lines.append(f"  hard-killed tags: {killed}")
    owners = report["owners"]
    if owners is not None:
        lines.append("")
        lines.append(
            f"== heap owners ({len(owners['live'])} live, "
            f"{len(owners['dead'])} dead)"
        )
        lines.append(f"  live: {_owner_list(owners['live'])}")
        if owners["dead"]:
            lines.append(f"  dead: {_owner_list(owners['dead'])}")
    return "\n".join(lines)


def _owner_list(names: list) -> str:
    from collections import Counter

    counts = Counter(names)
    return ", ".join(
        name if count == 1 else f"{name} ×{count}"
        for name, count in sorted(counts.items())
    )
