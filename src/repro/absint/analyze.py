"""Flow-sensitive abstract interpretation over the core IR.

One :class:`Analyzer` walks one top-level form, carrying an environment
``LocalVar → AbstractValue``, applying the per-primitive signatures from
:mod:`repro.prims.abstract`, and *refining* variables at every ``If``:
inside the true arm of ``(%eq (%and x 7) 3)`` the analysis knows ``x``'s
low tag is 3, inside the false arm that it is not — including through
the prelude's ``%fx-check2`` idiom ``(%eq (%and (%or a b) 7) 0)``, which
pins *both* operands to tag 0 at once.

An Analyzer can run in two modes:

* **intraprocedural** (no ``context``): calls return ⊤, lambda
  parameters are ⊤, ``%load`` is ⊤.  This is the PR-1 behaviour, still
  used by the ``checkelim`` pass and the lint flow rules.
* **interprocedural** (``context`` from
  :mod:`repro.absint.summaries`): calls to known procedures return
  their summarised result, lambda parameters carry the join of every
  call site's arguments, and ``%load`` consults per-field heap facts.
  The whole-program fixpoint driver lives in ``summaries.py``; this
  module stays a single-form walk either way.

The walk records, keyed by node identity:

* ``values`` — abstract result of every primitive application;
* ``folds`` — pure primitives proven to yield a single word;
* ``decided`` — ``If`` nodes whose test is proven true/false (either
  because the test's value folds, or because assuming one truth value
  contradicts the environment);
* ``reductions`` — range-based strength reductions (``%div``/``%mod``
  by a power of two and ``%asr`` on provably non-negative words drop to
  ``%lsr``/``%and``);
* ``replacements`` — untag/retag cancellations and mask-identity
  rewrites proven by the value flow (recorded only when the context
  asks for rewrites; consumed by :mod:`repro.opt.unbox`);
* ``events`` — a stream of :class:`Event` facts (kinds enumerated by
  :class:`EventKind`) consumed by :mod:`repro.lint`.

Soundness notes.  Assigned variables (targets of ``set!``) are always ⊤:
their value can change under a closure's feet.  Unassigned variables are
immutable, so facts about them — including facts captured by a lambda
analysed at its definition site — hold forever.  ``%fail`` evaluates to
⊥ and makes the rest of its straight-line context unreachable, which is
the flow-sensitive generalisation of the dominating-check trick in
:mod:`repro.opt.cse`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .. import prims
from ..ir import (
    Call,
    Const,
    Fix,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    LocalVar,
    Node,
    Prim,
    Program,
    Seq,
    Var,
    is_pure,
)
from ..prims.abstract import abstract_eval
from .lattice import (
    BOTTOM,
    INT_MAX,
    UNKNOWN,
    WORD_MASK,
    AbstractValue,
    const,
    from_tags,
    make,
)

_CLOSURE_TAG = 7  # the compiler-owned closure representation (vm/machine)

Env = dict  # LocalVar -> AbstractValue


class EventKind(str, Enum):
    """The kinds of facts an :class:`Analyzer` reports.

    * ``BRANCH_DECIDED`` — an ``If`` whose test is proven true or false
      (``Event.truth`` carries the proven value);
    * ``PREDICATE_CONSTANT`` — a pure comparison primitive proven to
      always yield the same raw 0/1 word;
    * ``ALWAYS_FAILS`` — a lambda body or top-level form that provably
      never returns (its abstract result is ⊥: a check can never pass,
      or every path diverges).

    The enum is a ``str`` subclass, so members compare equal to their
    historical bare-string spellings.
    """

    BRANCH_DECIDED = "branch-decided"
    PREDICATE_CONSTANT = "predicate-constant"
    ALWAYS_FAILS = "always-fails"


@dataclass
class Event:
    """One analysis fact, for the diagnostics layer."""

    kind: EventKind
    node: Node
    form: str
    truth: bool | None = None
    #: a predicate that is itself the decided branch test (suppresses
    #: double reporting between rules)
    is_branch_test: bool = False


#: tag sets whose members have their low ``k`` bits clear, for the
#: retag/untag cancellation proofs (k = 1, 2, 3)
_LOW_ZERO_TAGS = {
    1: frozenset({0, 2, 4, 6}),
    2: frozenset({0, 4}),
    3: frozenset({0}),
}


class Analyzer:
    """Abstract interpretation of one top-level form.

    ``context``, when given, is an interprocedural context object from
    :mod:`repro.absint.summaries` supplying call-result summaries,
    per-call-site parameter joins, and heap-field facts.  When its
    ``record_rewrites`` attribute is true the analyzer also records
    ``replacements`` for the unbox pass.
    """

    def __init__(self, form_label: str = "<form>", context=None):
        self.form_label = form_label
        self.context = context
        self.values: dict[int, AbstractValue] = {}
        self.folds: dict[int, int | None] = {}
        self.decided: dict[int, bool | None] = {}
        self.reductions: dict[int, tuple[str, int | None] | None] = {}
        #: unbox rewrites: id(Prim) → ("arg", i) | ("narrow-or", keep)
        #: | ("unshift",) — see repro.opt.unbox for the application
        self.replacements: dict[int, tuple | None] = {}
        self.events: list[Event] = []
        #: pure definitions of in-scope unassigned locals, for
        #: refinement through ``let``-bound tests
        self._bound: dict[LocalVar, Node] = {}
        self._fail_codes: dict[int, int] = {}

    # ------------------------------------------------------------------

    def analyze_form(self, form: Node) -> AbstractValue:
        env: Env = {}
        result = self.eval(form, env)
        if result.is_bottom:
            self.events.append(
                Event(EventKind.ALWAYS_FAILS, form, self.form_label, truth=None)
            )
        return result

    # ------------------------------------------------------------------
    # recording helpers (identity-keyed; joins under accidental sharing)
    # ------------------------------------------------------------------

    def _record_value(self, node: Node, value: AbstractValue) -> None:
        key = id(node)
        seen = self.values.get(key)
        self.values[key] = value if seen is None else seen.join(value)

    def _record_fold(self, node: Node, word: int) -> None:
        key = id(node)
        if key in self.folds and self.folds[key] != word:
            self.folds[key] = None  # conflicting visits: give up
        else:
            self.folds.setdefault(key, word)

    def _record_decision(self, node: If, truth: bool) -> None:
        key = id(node)
        if key in self.decided and self.decided[key] != truth:
            self.decided[key] = None
        else:
            self.decided.setdefault(key, truth)

    def _record_reduction(self, node: Prim, op: str, second: int | None) -> None:
        key = id(node)
        if key in self.reductions and self.reductions[key] != (op, second):
            self.reductions[key] = None
        else:
            self.reductions.setdefault(key, (op, second))

    def _record_replacement(self, node: Prim, repl: tuple) -> None:
        key = id(node)
        if key in self.replacements and self.replacements[key] != repl:
            self.replacements[key] = None
        else:
            self.replacements.setdefault(key, repl)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def eval(self, node: Node, env: Env, in_test: bool = False) -> AbstractValue:
        if isinstance(node, Const):
            return const(node.value)
        if isinstance(node, Var):
            if node.var.assigned:
                return UNKNOWN
            return env.get(node.var, UNKNOWN)
        if isinstance(node, GlobalRef):
            return UNKNOWN
        if isinstance(node, GlobalSet):
            return self.eval(node.value, env)
        if isinstance(node, LocalSet):
            value = self.eval(node.value, env)
            return BOTTOM if value.is_bottom else UNKNOWN
        if isinstance(node, Prim):
            return self._eval_prim(node, env, in_test)
        if isinstance(node, If):
            return self._eval_if(node, env)
        if isinstance(node, Seq):
            for expr in node.exprs[:-1]:
                if self.eval(expr, env).is_bottom:
                    return BOTTOM
            return self.eval(node.exprs[-1], env, in_test)
        if isinstance(node, Let):
            values = [(var, self.eval(init, env), init) for var, init in node.bindings]
            for var, value, init in values:
                if value.is_bottom:
                    return BOTTOM
                if not var.assigned:
                    env[var] = value
                    if is_pure(init):
                        self._bound[var] = init
            return self.eval(node.body, env, in_test)
        if isinstance(node, Letrec):
            for var, _ in node.bindings:
                if not var.assigned:
                    # Observable before initialisation completes.
                    env[var] = make(
                        UNKNOWN.lo, UNKNOWN.hi, UNKNOWN.tags, defined=False
                    )
            for var, init in node.bindings:
                value = self.eval(init, env)
                if value.is_bottom:
                    return BOTTOM
                if not var.assigned:
                    env[var] = value
            return self.eval(node.body, env)
        if isinstance(node, Fix):
            closure = from_tags({_CLOSURE_TAG})
            for var, _ in node.bindings:
                if not var.assigned:
                    env[var] = closure
            for _, lam in node.bindings:
                self._eval_lambda_body(lam, env)
            return self.eval(node.body, env, in_test)
        if isinstance(node, Lambda):
            self._eval_lambda_body(node, env)
            return from_tags({_CLOSURE_TAG})
        if isinstance(node, Call):
            if self.eval(node.fn, env).is_bottom:
                return BOTTOM
            arg_values = []
            for arg in node.args:
                value = self.eval(arg, env)
                if value.is_bottom:
                    return BOTTOM
                arg_values.append(value)
            if self.context is not None:
                return self.context.call(node, arg_values)
            return UNKNOWN
        raise TypeError(f"absint: unknown node {type(node).__name__}")

    def _eval_lambda_body(self, lam: Lambda, env: Env) -> None:
        """Analyse a lambda body at its definition site.

        Facts about captured *unassigned* variables stay valid for the
        closure's whole lifetime, so the surrounding environment carries
        over; parameters are ⊤ — unless an interprocedural context
        supplies the join of every call site's arguments.
        """
        inner = dict(env)
        params = None
        if self.context is not None:
            params = self.context.params_for(lam)
        for index, param in enumerate(lam.params):
            if params is not None and index < len(params):
                inner[param] = params[index]
            else:
                inner[param] = UNKNOWN
        if lam.rest is not None:
            inner[lam.rest] = UNKNOWN
        if self.context is not None:
            self.context.enter_lambda(lam)
            try:
                result = self.eval(lam.body, inner)
            finally:
                self.context.exit_lambda(lam)
            self.context.lambda_result(lam, result)
        else:
            result = self.eval(lam.body, inner)
        if result.is_bottom:
            self.events.append(
                Event(EventKind.ALWAYS_FAILS, lam, self.form_label, truth=None)
            )

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------

    def _eval_prim(self, node: Prim, env: Env, in_test: bool) -> AbstractValue:
        args = []
        for arg in node.args:
            value = self.eval(arg, env)
            if value.is_bottom:
                return BOTTOM
            args.append(value)
        spec = prims.lookup(node.op)
        if node.op == "%load" and self.context is not None:
            result = self.context.load(node, args)
        else:
            result = abstract_eval(node.op, args)
        if node.op == "%store" and self.context is not None:
            self.context.store(node, args)
        self._record_value(node, result)
        if spec is not None and spec.pure:
            word = result.as_constant()
            if word is not None:
                self._record_fold(node, word)
                if spec.comparison:
                    self.events.append(
                        Event(
                            EventKind.PREDICATE_CONSTANT,
                            node,
                            self.form_label,
                            truth=word != 0,
                            is_branch_test=in_test,
                        )
                    )
            else:
                self._strength_reduce(node, args)
                if self.context is not None and self.context.record_rewrites:
                    self._find_rewrites(node, args, env)
        return result

    def _strength_reduce(self, node: Prim, args: list) -> None:
        """Range-based reductions of checked-shape fixnum ops."""
        if len(args) != 2:
            return
        a, b = args
        divisor = b.as_constant()
        if node.op == "%div" and divisor is not None and a.nonneg():
            shift = _log2(divisor)
            if shift is not None:
                self._record_reduction(node, "%lsr", shift)
        elif node.op == "%mod" and divisor is not None and a.nonneg():
            if _log2(divisor) is not None:
                self._record_reduction(node, "%and", divisor - 1)
        elif node.op == "%asr" and divisor is not None and a.nonneg():
            if 0 <= divisor < 64:
                self._record_reduction(node, "%lsr", None)

    # ------------------------------------------------------------------
    # unbox rewrites
    # ------------------------------------------------------------------

    def _find_rewrites(self, node: Prim, args: list, env: Env) -> None:
        """Untag/retag cancellations for :mod:`repro.opt.unbox`.

        Each proof is phrased over the abstract values flowing into this
        node, so it holds on every path that reaches it; conflicting
        visits erase the recording (conflict → ``None``, like folds).
        Only reached when the result did not fold to a constant, so
        constant folds always take priority over structural rewrites.
        """
        if node.op == "%and" and len(node.args) == 2:
            # (%and x m) where m cannot change x: the untag half of the
            # vector-index idiom ``(%and i -8)`` once i is proven tag 0.
            for keep, mask_idx in ((0, 1), (1, 0)):
                mask = node.args[mask_idx]
                if isinstance(mask, Const) and _and_is_identity(
                    args[keep], mask.value
                ):
                    self._record_replacement(node, ("arg", keep))
                    return
            # (%and (%or a b) m) with m ≤ 7: a side proven low-3-bits
            # zero contributes nothing to the masked bits, so the %or
            # narrows to the other side (the %fx-check2 idiom once one
            # operand is known fixnum).
            inner = node.args[0]
            mask = node.args[1]
            if (
                isinstance(inner, Prim)
                and inner.op == "%or"
                and len(inner.args) == 2
                and isinstance(mask, Const)
                and 0 <= (mask.value & WORD_MASK) <= 7
            ):
                for keep, drop in ((0, 1), (1, 0)):
                    dropped = self._peek(inner.args[drop], env)
                    if dropped.tags <= frozenset({0}) and is_pure(
                        inner.args[drop]
                    ):
                        self._record_replacement(node, ("narrow-or", keep))
                        return
            return
        if (
            node.op in ("%asr", "%lsr")
            and isinstance(node.args[1], Const)
            and isinstance(node.args[0], Prim)
            and node.args[0].op == "%lsl"
            and len(node.args[0].args) == 2
            and isinstance(node.args[0].args[1], Const)
            and node.args[0].args[1].value == node.args[1].value
        ):
            # (%asr (%lsl x k) k) → x when the %lsl provably cannot
            # overflow; the %lsr form additionally needs x ≥ 0.
            k = node.args[1].value
            if 0 < k <= 3:
                value = self._peek(node.args[0].args[0], env)
                limit = 1 << (63 - k)
                low = 0 if node.op == "%lsr" else -limit
                if value.lo >= low and value.hi <= limit - 1:
                    self._record_replacement(node, ("unshift",))
            return
        if (
            node.op == "%lsl"
            and isinstance(node.args[1], Const)
            and isinstance(node.args[0], Prim)
            and node.args[0].op in ("%asr", "%lsr")
            and len(node.args[0].args) == 2
            and isinstance(node.args[0].args[1], Const)
            and node.args[0].args[1].value == node.args[1].value
        ):
            # (%lsl (%asr x k) k) → x when x's low k bits are provably
            # zero (the retag half of an untag/retag round trip).
            k = node.args[1].value
            if 0 < k <= 3:
                value = self._peek(node.args[0].args[0], env)
                if value.tags and value.tags <= _LOW_ZERO_TAGS[k]:
                    self._record_replacement(node, ("unshift",))

    # ------------------------------------------------------------------
    # conditionals and refinement
    # ------------------------------------------------------------------

    def _eval_if(self, node: If, env: Env) -> AbstractValue:
        test_value = self.eval(node.test, env, in_test=True)
        if test_value.is_bottom:
            return BOTTOM
        word = test_value.as_constant()
        if word is not None:
            truth = word != 0
            self._decide(node, truth)
            return self.eval(node.then if truth else node.els, env)
        then_env = self._refine(env, node.test, True)
        else_env = self._refine(env, node.test, False)
        if then_env is None and else_env is None:
            # Both arms contradictory: the test itself cannot execute.
            return BOTTOM
        if then_env is None:
            self._decide(node, False)
            return self.eval(node.els, _merge_into(env, else_env), in_test=False)
        if else_env is None:
            self._decide(node, True)
            return self.eval(node.then, _merge_into(env, then_env), in_test=False)
        then_value = self.eval(node.then, then_env)
        else_value = self.eval(node.els, else_env)
        if then_value.is_bottom and not else_value.is_bottom:
            # Reaching the continuation proves the else arm ran.
            _merge_into(env, else_env)
        elif else_value.is_bottom and not then_value.is_bottom:
            _merge_into(env, then_env)
        else:
            for var in set(then_env) | set(else_env):
                left = then_env.get(var, UNKNOWN)
                right = else_env.get(var, UNKNOWN)
                env[var] = left.join(right)
        return then_value.join(else_value)

    def _decide(self, node: If, truth: bool) -> None:
        self._record_decision(node, truth)
        self.events.append(
            Event(EventKind.BRANCH_DECIDED, node, self.form_label, truth=truth)
        )

    # -- refinement ----------------------------------------------------

    def _refine(self, env: Env, test: Node, truth: bool) -> Env | None:
        out = dict(env)
        if self._refine_into(out, test, truth, depth=0):
            return out
        return None

    def _refine_into(self, env: Env, test: Node, truth: bool, depth: int) -> bool:
        """Narrow ``env`` under ``test``'s truth; False on contradiction."""
        if depth > 16:
            return True
        if isinstance(test, Const):
            return (test.value != 0) == truth
        if isinstance(test, Var) and not test.var.assigned:
            value = env.get(test.var, UNKNOWN)
            if truth:
                narrowed = _exclude_zero(value)
            else:
                narrowed = value.meet(const(0))
            if narrowed.is_bottom:
                return False
            env[test.var] = narrowed
            defn = self._bound.get(test.var)
            if defn is not None:
                return self._refine_into(env, defn, truth, depth + 1)
            return True
        if not isinstance(test, Prim):
            return True
        if test.op == "%nz":
            return self._refine_into(env, test.args[0], truth, depth + 1)
        if test.op in ("%eq", "%neq"):
            want_equal = (test.op == "%eq") == truth
            return self._refine_equality(env, test.args[0], test.args[1],
                                         want_equal, depth)
        if test.op in ("%lt", "%le"):
            return self._refine_order(env, test, truth)
        spec = prims.lookup(test.op)
        if spec is not None and spec.pure:
            # Any other pure prim used as a test is a zero/non-zero
            # question — e.g. CSE rewrites ``(%eq (%and x 7) 0)`` guards
            # into bare ``(if (%and x 7) (%fail) …)`` form, so the tag
            # fact lives behind an equality with an implicit 0.
            return self._refine_equality(env, test, Const(0), not truth, depth + 1)
        return True

    def _refine_equality(
        self, env: Env, left: Node, right: Node, equal: bool, depth: int
    ) -> bool:
        left_value = self._peek(left, env)
        right_value = self._peek(right, env)
        if equal:
            met = left_value.meet(right_value)
            if met.is_bottom:
                return False
            if not self._narrow_var(env, left, met):
                return False
            if not self._narrow_var(env, right, met):
                return False
            # Tag constraints through (%and subject mask) == residue.
            for subject, mask_node, other in (
                (left, None, right), (right, None, left)
            ):
                if (
                    isinstance(subject, Prim)
                    and subject.op == "%and"
                    and isinstance(subject.args[1], Const)
                ):
                    residue = self._peek(other, env).as_constant()
                    if residue is not None:
                        if not self._refine_tag_mask(
                            env, subject.args[0], subject.args[1].value,
                            residue, depth
                        ):
                            return False
            return True
        # Disequality: drop exact-constant matches and boundary values.
        for subject, other in ((left, right), (right, left)):
            other_word = self._peek(other, env).as_constant()
            if other_word is None:
                continue
            if isinstance(subject, Var) and not subject.var.assigned:
                value = env.get(subject.var, UNKNOWN)
                if value.as_constant() == other_word:
                    return False
                signed = other_word - (1 << 64) if other_word >> 63 else other_word
                if value.lo == signed:
                    value = value.clamp(lo=signed + 1)
                elif value.hi == signed:
                    value = value.clamp(hi=signed - 1)
                if value.is_bottom:
                    return False
                env[subject.var] = value
            if (
                isinstance(subject, Prim)
                and subject.op == "%and"
                and isinstance(subject.args[1], Const)
                and subject.args[1].value == 7
                and isinstance(subject.args[0], Var)
                and not subject.args[0].var.assigned
                and 0 <= other_word < 8
            ):
                inner = subject.args[0].var
                narrowed = env.get(inner, UNKNOWN).without_tag(other_word)
                if narrowed.is_bottom:
                    return False
                env[inner] = narrowed
        return True

    def _refine_tag_mask(
        self, env: Env, subject: Node, mask: int, residue: int, depth: int
    ) -> bool:
        """(subject & mask) == residue: push the low-3-bit part down
        through variables and ``%or`` (the ``%fx-check2`` idiom)."""
        if depth > 16:
            return True
        low_mask = mask & 7
        low_residue = residue & 7
        if low_residue & ~low_mask:
            return False  # required bits outside the mask: impossible
        if low_mask == 0:
            return True
        if isinstance(subject, Var) and not subject.var.assigned:
            allowed = frozenset(
                t for t in range(8) if (t & low_mask) == low_residue
            )
            narrowed = env.get(subject.var, UNKNOWN).with_tags(allowed)
            if narrowed.is_bottom:
                return False
            env[subject.var] = narrowed
            defn = self._bound.get(subject.var)
            if defn is not None:
                return self._refine_tag_mask(env, defn, low_mask, low_residue,
                                             depth + 1)
            return True
        if (
            isinstance(subject, Prim)
            and subject.op == "%or"
            and low_residue == 0
        ):
            # (p | q) & m == 0 (on the masked bits) ⇒ both sides are 0
            # there.  This is how one %fx-check2 clears two operands.
            return self._refine_tag_mask(
                env, subject.args[0], low_mask, 0, depth + 1
            ) and self._refine_tag_mask(
                env, subject.args[1], low_mask, 0, depth + 1
            )
        return True

    def _refine_order(self, env: Env, test: Prim, truth: bool) -> bool:
        left, right = test.args
        left_value = self._peek(left, env)
        right_value = self._peek(right, env)
        strict = test.op == "%lt"
        if truth:
            # left < right (or ≤): cap left from above, right from below.
            upper = right_value.hi - (1 if strict else 0)
            lower = left_value.lo + (1 if strict else 0)
            ok = self._narrow_var(env, left, left_value.clamp(hi=upper))
            ok = ok and self._narrow_var(env, right, right_value.clamp(lo=lower))
            return ok
        # ¬(left < right) ⇔ right ≤ left; ¬(left ≤ right) ⇔ right < left.
        lower = right_value.lo + (0 if strict else 1)
        upper = left_value.hi - (0 if strict else 1)
        ok = self._narrow_var(env, left, left_value.clamp(lo=lower))
        ok = ok and self._narrow_var(env, right, right_value.clamp(hi=upper))
        return ok

    def _narrow_var(self, env: Env, node: Node, value: AbstractValue) -> bool:
        if value.is_bottom:
            return False
        if isinstance(node, Var) and not node.var.assigned:
            env[node.var] = env.get(node.var, UNKNOWN).meet(value)
            if env[node.var].is_bottom:
                return False
        return True

    def _peek(self, node: Node, env: Env) -> AbstractValue:
        """Re-evaluate a pure expression for refinement (no recording)."""
        if isinstance(node, Const):
            return const(node.value)
        if isinstance(node, Var):
            if node.var.assigned:
                return UNKNOWN
            return env.get(node.var, UNKNOWN)
        if isinstance(node, Prim):
            spec = prims.lookup(node.op)
            if spec is None or not spec.pure:
                return UNKNOWN
            args = [self._peek(arg, env) for arg in node.args]
            if any(arg.is_bottom for arg in args):
                return BOTTOM
            return abstract_eval(node.op, args)
        return UNKNOWN


def _and_is_identity(value: AbstractValue, mask_word: int) -> bool:
    """``x & mask == x`` for every concrete x in ``value``.

    The low three bits are covered by the tag set; above that, either
    the mask keeps all 64 bits that can matter (``mask | 7`` is all
    ones, which covers the tagging idiom's ``-8``), or the mask is a
    non-negative ``2**n - 1`` and the interval fits under it.
    """
    m = mask_word & WORD_MASK
    low = m & 7
    if any((t & low) != t for t in value.tags):
        return False
    if (m | 7) == WORD_MASK:
        return True
    signed = m - (1 << 64) if m >> 63 else m
    return (
        signed >= 0
        and (signed + 1) & signed == 0
        and value.lo >= 0
        and value.hi <= signed
    )


def _exclude_zero(value: AbstractValue) -> AbstractValue:
    if value.as_constant() == 0:
        return BOTTOM
    if value.lo == 0:
        return value.clamp(lo=1)
    if value.hi == 0:
        return value.clamp(hi=-1)
    return value


def _merge_into(env: Env, refined: Env | None) -> Env:
    if refined is not None:
        env.update(refined)
    return env


def _log2(value: int) -> int | None:
    """k when value == 2**k (1 ≤ value, k < 63), else None."""
    if value <= 0 or value & (value - 1):
        return None
    shift = value.bit_length() - 1
    return shift if shift < 63 else None


def analyze_program(program: Program, start: int = 0) -> list[tuple[str, Analyzer]]:
    """Analyse every top-level form from ``start``; one Analyzer each."""
    out: list[tuple[str, Analyzer]] = []
    for index, form in enumerate(program.forms[start:], start=start):
        if isinstance(form, GlobalSet):
            label = form.name
        else:
            label = f"<toplevel expression #{index - start + 1}>"
        analyzer = Analyzer(label)
        analyzer.analyze_form(form)
        out.append((label, analyzer))
    return out
