"""The abstract value lattice.

Every IR expression evaluates to one 64-bit machine word.  The analysis
tracks, per word, a *product* of independent facts:

* **interval** — the signed two's-complement value lies in ``[lo, hi]``;
* **tags** — the low three bits (the representation-type tag chosen by
  the library) lie in a subset of ``{0..7}``;
* **defined** — the word is an initialised value (``False`` only for
  variables observed before their ``letrec`` binding completes).

``BOTTOM`` (empty interval or empty tag set) means *no value reaches
this point*: the expression diverges or the program point is
unreachable.  ``TOP`` is the unknown word.

The components reinforce one another: a singleton interval pins the tag
set, and a tag set tightens interval endpoints to the nearest word whose
low bits are permitted (values with the same high bits but different
tags differ by at most 7).

The lattice is finite-height in the tag/definedness components but not
in the interval component, so :meth:`AbstractValue.widen` provides the
classic interval widening (unstable bounds jump to the word extremes);
:func:`stabilize` iterates a transfer function to a post-fixpoint with
it.  The current IR has no loop construct — loops are recursion, and the
interpreter analyses each lambda once with ⊤ parameters — but the
widening operator is load-bearing for the property suite and for any
future loop-aware (e.g. self-tail-call) refinement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1
INT_MIN = -(1 << (WORD_BITS - 1))
INT_MAX = (1 << (WORD_BITS - 1)) - 1

ALL_TAGS = frozenset(range(8))
NO_TAGS = frozenset()

#: low-tag assignment used by the default prelude (documentation only;
#: the analysis never assumes it — facts come from the code itself)
TAG_NAMES = {
    0: "fixnum",
    1: "pair",
    2: "vector",
    3: "string",
    4: "symbol",
    5: "record",
    6: "immediate",
    7: "closure",
}


def _signed(word: int) -> int:
    word &= WORD_MASK
    return word - (1 << WORD_BITS) if word >> (WORD_BITS - 1) else word


@dataclass(frozen=True)
class AbstractValue:
    """One point of the product lattice.  Immutable; construct with
    :func:`make` (which normalises) or the ready-made constants."""

    lo: int
    hi: int
    tags: frozenset
    defined: bool = True

    # -- predicates ----------------------------------------------------

    @property
    def is_bottom(self) -> bool:
        return self.lo > self.hi or not self.tags

    @property
    def is_top(self) -> bool:
        return (
            self.lo == INT_MIN
            and self.hi == INT_MAX
            and self.tags == ALL_TAGS
            and not self.defined
        )

    def as_constant(self) -> int | None:
        """The unique word this value can be, as an unsigned word, or
        ``None``."""
        if self.is_bottom or self.lo != self.hi:
            return None
        return self.lo & WORD_MASK

    def __repr__(self) -> str:
        if self.is_bottom:
            return "⊥"
        if self.is_top:
            return "⊤"
        const = self.as_constant()
        if const is not None:
            return f"⟨{_signed(const)}⟩"
        lo = "-∞" if self.lo == INT_MIN else str(self.lo)
        hi = "+∞" if self.hi == INT_MAX else str(self.hi)
        tags = (
            "*" if self.tags == ALL_TAGS else "{" + ",".join(map(str, sorted(self.tags))) + "}"
        )
        marker = "" if self.defined else "?"
        return f"⟨[{lo},{hi}] tags={tags}{marker}⟩"

    # -- lattice operations --------------------------------------------

    def join(self, other: "AbstractValue") -> "AbstractValue":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return make(
            min(self.lo, other.lo),
            max(self.hi, other.hi),
            self.tags | other.tags,
            self.defined and other.defined,
        )

    def meet(self, other: "AbstractValue") -> "AbstractValue":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        return make(
            max(self.lo, other.lo),
            min(self.hi, other.hi),
            self.tags & other.tags,
            self.defined or other.defined,
        )

    def widen(self, newer: "AbstractValue") -> "AbstractValue":
        """Standard interval widening: a bound that moved since the last
        iterate jumps straight to the word extreme.  Tag sets and
        definedness are finite, so plain join suffices for them."""
        if self.is_bottom:
            return newer
        if newer.is_bottom:
            return self
        lo = self.lo if newer.lo >= self.lo else INT_MIN
        hi = self.hi if newer.hi <= self.hi else INT_MAX
        return make(lo, hi, self.tags | newer.tags, self.defined and newer.defined)

    def leq(self, other: "AbstractValue") -> bool:
        """Partial order: is ``self`` at least as precise as ``other``?"""
        if self.is_bottom:
            return True
        if other.is_bottom:
            return False
        return (
            other.lo <= self.lo
            and self.hi <= other.hi
            and self.tags <= other.tags
            and (self.defined or not other.defined)
        )

    # -- derived facts -------------------------------------------------

    def nonneg(self) -> bool:
        return not self.is_bottom and self.lo >= 0

    def excludes_word(self, word: int) -> bool:
        """Provably never equal to ``word``?"""
        if self.is_bottom:
            return True
        value = _signed(word)
        if value < self.lo or value > self.hi:
            return True
        return (word & 7) not in self.tags

    def with_tags(self, tags: frozenset) -> "AbstractValue":
        return make(self.lo, self.hi, self.tags & tags, self.defined)

    def without_tag(self, tag: int) -> "AbstractValue":
        return make(self.lo, self.hi, self.tags - {tag & 7}, self.defined)

    def clamp(self, lo: int | None = None, hi: int | None = None) -> "AbstractValue":
        return make(
            self.lo if lo is None else max(self.lo, lo),
            self.hi if hi is None else min(self.hi, hi),
            self.tags,
            self.defined,
        )


def make(lo: int, hi: int, tags=ALL_TAGS, defined: bool = True) -> AbstractValue:
    """Normalising constructor: clamps to word range, reconciles the
    interval and tag components, and canonicalises bottom."""
    lo = max(lo, INT_MIN)
    hi = min(hi, INT_MAX)
    tags = frozenset(tags)
    if lo > hi or not tags:
        return BOTTOM
    # A narrow interval enumerates its tags exactly.
    if hi - lo < 8:
        tags = tags & frozenset((v & 7) for v in range(lo, hi + 1))
        if not tags:
            return BOTTOM
    # Tags tighten endpoints to the nearest admissible word (≤ 7 steps).
    while lo <= hi and (lo & 7) not in tags:
        lo += 1
    while lo <= hi and (hi & 7) not in tags:
        hi -= 1
    if lo > hi:
        return BOTTOM
    return AbstractValue(lo, hi, tags, defined)


BOTTOM = AbstractValue(1, 0, NO_TAGS, True)
TOP = AbstractValue(INT_MIN, INT_MAX, ALL_TAGS, False)
#: unknown but initialised word
UNKNOWN = AbstractValue(INT_MIN, INT_MAX, ALL_TAGS, True)
#: raw 0/1 comparison result
BOOL_WORD = make(0, 1, frozenset({0, 1}))


def const(word: int) -> AbstractValue:
    """The abstract value of one known machine word."""
    value = _signed(word)
    return AbstractValue(value, value, frozenset({word & 7}), True)


def from_tags(tags) -> AbstractValue:
    """Any initialised word whose low tag is in ``tags``."""
    return make(INT_MIN, INT_MAX, frozenset(t & 7 for t in tags))


def from_range(lo: int, hi: int) -> AbstractValue:
    return make(lo, hi, ALL_TAGS)


def join_all(values) -> AbstractValue:
    out = BOTTOM
    for value in values:
        out = out.join(value)
    return out


def stabilize(
    start: AbstractValue,
    transfer: Callable[[AbstractValue], AbstractValue],
    max_iterations: int = 64,
) -> AbstractValue:
    """Iterate ``v ← v ▽ transfer(v)`` to a post-fixpoint.

    This is the loop-solving scaffold the property suite exercises
    (widening must terminate on any monotone transfer) and the entry
    point a future loop-aware analysis will call per loop header.
    """
    value = start
    for _ in range(max_iterations):
        step = transfer(value)
        widened = value.widen(value.join(step))
        if widened == value:
            return value
        value = widened
    # Widening guarantees we never reach here for monotone transfers,
    # but stay sound under arbitrary (non-monotone) test functions.
    return UNKNOWN
