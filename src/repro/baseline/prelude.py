"""The hand-coded baseline prelude — the paper's traditional comparator.

Every primitive operation is written out the way a compiler with
built-in representation knowledge would emit it: explicit tags, explicit
displacements, and the safety variant chosen textually (by this Python
assembler) rather than left to the optimizer.  This is the "more
contorted, traditional technique" the abstract alludes to.

The abstract machinery of ``reptypes`` is still included afterwards
(the first-class reflect layer is shared between configurations), but
none of the operations below go through it.
"""

from __future__ import annotations

from ..runtime.scm import reptypes_scm

_UNSAFE_OPS = r"""
;;;; Hand-coded data-type operations (UNSAFE variant).

(define (not x) (if (%eq x (%raw 6)) %sx-true %sx-false))
(define (boolean? x)
  (if (%eq x (%raw 6)) %sx-true (if (%eq x (%raw 14)) %sx-true %sx-false)))
(define (eq? a b) (if (%eq a b) %sx-true %sx-false))
(define (eqv? a b) (if (%eq a b) %sx-true %sx-false))
(define (%sx-eqv? a b) (if (%eq a b) %sx-true %sx-false))
(define (eof-object? x) (if (%eq x (%raw 38)) %sx-true %sx-false))

(define (fixnum? x) (if (%eq (%and x (%raw 7)) (%raw 0)) %sx-true %sx-false))
(define (integer? x) (if (%eq (%and x (%raw 7)) (%raw 0)) %sx-true %sx-false))
(define (number? x) (if (%eq (%and x (%raw 7)) (%raw 0)) %sx-true %sx-false))

(define (+ a b) (%add a b))
(define (- a b) (%sub a b))
(define (* a b) (%mul (%asr a (%raw 3)) b))
(define (quotient a b) (%lsl (%div a b) (%raw 3)))
(define (remainder a b) (%mod a b))
(define (modulo a b)
  (let ((r (%mod a b)))
    (if (%eq r (%raw 0)) r (if (%lt (%xor a b) (%raw 0)) (%add r b) r))))

(define (= a b) (if (%eq a b) %sx-true %sx-false))
(define (< a b) (if (%lt a b) %sx-true %sx-false))
(define (<= a b) (if (%le a b) %sx-true %sx-false))
(define (> a b) (if (%lt b a) %sx-true %sx-false))
(define (>= a b) (if (%le b a) %sx-true %sx-false))
(define (zero? n) (if (%eq n (%raw 0)) %sx-true %sx-false))
(define (negative? n) (if (%lt n (%raw 0)) %sx-true %sx-false))
(define (positive? n) (if (%lt (%raw 0) n) %sx-true %sx-false))

(define (fx+ a b) (%add a b))
(define (fx- a b) (%sub a b))
(define (fx* a b) (%mul (%asr a (%raw 3)) b))
(define (fx< a b) (if (%lt a b) %sx-true %sx-false))
(define (fx= a b) (if (%eq a b) %sx-true %sx-false))

(define (%sx-char p) (%or (%lsl p (%raw 8)) (%raw 46)))
(define (char? x) (if (%eq (%and x (%raw 255)) (%raw 46)) %sx-true %sx-false))
(define (%char-check c) %sx-unspecified)
(define (char->integer c) (%lsl (%lsr c (%raw 8)) (%raw 3)))
(define (integer->char n) (%or (%lsl (%asr n (%raw 3)) (%raw 8)) (%raw 46)))
(define (char=? a b) (if (%eq a b) %sx-true %sx-false))
(define (char<? a b) (if (%ult a b) %sx-true %sx-false))
(define (char<=? a b) (if (%ule a b) %sx-true %sx-false))
(define (char>? a b) (if (%ult b a) %sx-true %sx-false))
(define (char>=? a b) (if (%ule b a) %sx-true %sx-false))

(define (pair? x) (if (%eq (%and x (%raw 7)) (%raw 1)) %sx-true %sx-false))
(define (cons a b)
  (let ((p (%alloc (%raw 2) (%raw 1))))
    (begin (%store p (%raw 7) a) (%store p (%raw 15) b) p)))
(define (car p) (%load p (%raw 7)))
(define (cdr p) (%load p (%raw 15)))
(define (set-car! p v) (begin (%store p (%raw 7) v) %sx-unspecified))
(define (set-cdr! p v) (begin (%store p (%raw 15) v) %sx-unspecified))
(define (null? x) (if (%eq x (%raw 22)) %sx-true %sx-false))
(define (%sx-cons a b) (cons a b))

(define (vector? x) (if (%eq (%and x (%raw 7)) (%raw 2)) %sx-true %sx-false))
(define (vector-length v) (%load v (%raw 6)))
(define (vector-ref v i) (%load v (%add (%and i (%raw -8)) (%raw 14))))
(define (vector-set! v i x)
  (begin (%store v (%add (%and i (%raw -8)) (%raw 14)) x) %sx-unspecified))

(define (string? x) (if (%eq (%and x (%raw 7)) (%raw 3)) %sx-true %sx-false))
(define (string-length s) (%load s (%raw 5)))
(define (string-ref s i) (%load s (%add (%and i (%raw -8)) (%raw 13))))
(define (string-set! s i c)
  (begin (%store s (%add (%and i (%raw -8)) (%raw 13)) c) %sx-unspecified))

(define (symbol? x) (if (%eq (%and x (%raw 7)) (%raw 4)) %sx-true %sx-false))
(define (%make-symbol-object s)
  (let ((p (%alloc (%raw 1) (%raw 4))))
    (begin (%store p (%raw 4) s) p)))
(define (symbol->string s) (%load s (%raw 4)))

(define (procedure? x) (if (%eq (%and x (%raw 7)) (%raw 7)) %sx-true %sx-false))
"""

_SAFE_OPS = r"""
;;;; Hand-coded data-type operations (SAFE variant: explicit checks).

(define (not x) (if (%eq x (%raw 6)) %sx-true %sx-false))
(define (boolean? x)
  (if (%eq x (%raw 6)) %sx-true (if (%eq x (%raw 14)) %sx-true %sx-false)))
(define (eq? a b) (if (%eq a b) %sx-true %sx-false))
(define (eqv? a b) (if (%eq a b) %sx-true %sx-false))
(define (%sx-eqv? a b) (if (%eq a b) %sx-true %sx-false))
(define (eof-object? x) (if (%eq x (%raw 38)) %sx-true %sx-false))

(define (fixnum? x) (if (%eq (%and x (%raw 7)) (%raw 0)) %sx-true %sx-false))
(define (integer? x) (if (%eq (%and x (%raw 7)) (%raw 0)) %sx-true %sx-false))
(define (number? x) (if (%eq (%and x (%raw 7)) (%raw 0)) %sx-true %sx-false))

(define (%fx2 a b)
  (if (%eq (%and (%or a b) (%raw 7)) (%raw 0)) %sx-unspecified (%fail (%raw 8))))

(define (+ a b) (begin (%fx2 a b) (%add a b)))
(define (- a b) (begin (%fx2 a b) (%sub a b)))
(define (* a b) (begin (%fx2 a b) (%mul (%asr a (%raw 3)) b)))
(define (quotient a b) (begin (%fx2 a b) (%lsl (%div a b) (%raw 3))))
(define (remainder a b) (begin (%fx2 a b) (%mod a b)))
(define (modulo a b)
  (begin (%fx2 a b)
    (let ((r (%mod a b)))
      (if (%eq r (%raw 0)) r (if (%lt (%xor a b) (%raw 0)) (%add r b) r)))))

(define (= a b) (begin (%fx2 a b) (if (%eq a b) %sx-true %sx-false)))
(define (< a b) (begin (%fx2 a b) (if (%lt a b) %sx-true %sx-false)))
(define (<= a b) (begin (%fx2 a b) (if (%le a b) %sx-true %sx-false)))
(define (> a b) (begin (%fx2 a b) (if (%lt b a) %sx-true %sx-false)))
(define (>= a b) (begin (%fx2 a b) (if (%le b a) %sx-true %sx-false)))
(define (zero? n)
  (begin (%fx2 n n) (if (%eq n (%raw 0)) %sx-true %sx-false)))
(define (negative? n)
  (begin (%fx2 n n) (if (%lt n (%raw 0)) %sx-true %sx-false)))
(define (positive? n)
  (begin (%fx2 n n) (if (%lt (%raw 0) n) %sx-true %sx-false)))

(define (fx+ a b) (+ a b))
(define (fx- a b) (- a b))
(define (fx* a b) (* a b))
(define (fx< a b) (< a b))
(define (fx= a b) (= a b))

(define (%sx-char p) (%or (%lsl p (%raw 8)) (%raw 46)))
(define (char? x) (if (%eq (%and x (%raw 255)) (%raw 46)) %sx-true %sx-false))
(define (%char-check c)
  (if (%eq (%and c (%raw 255)) (%raw 46)) %sx-unspecified (%fail (%raw 11))))
(define (char->integer c)
  (begin (%char-check c) (%lsl (%lsr c (%raw 8)) (%raw 3))))
(define (integer->char n)
  (if (%eq (%and n (%raw 7)) (%raw 0))
      (%or (%lsl (%asr n (%raw 3)) (%raw 8)) (%raw 46))
      (%fail (%raw 8))))
(define (char=? a b)
  (begin (%char-check a) (%char-check b)
         (if (%eq a b) %sx-true %sx-false)))
(define (char<? a b)
  (begin (%char-check a) (%char-check b)
         (if (%ult a b) %sx-true %sx-false)))
(define (char<=? a b)
  (begin (%char-check a) (%char-check b)
         (if (%ule a b) %sx-true %sx-false)))
(define (char>? a b) (char<? b a))
(define (char>=? a b) (char<=? b a))

(define (pair? x) (if (%eq (%and x (%raw 7)) (%raw 1)) %sx-true %sx-false))
(define (cons a b)
  (let ((p (%alloc (%raw 2) (%raw 1))))
    (begin (%store p (%raw 7) a) (%store p (%raw 15) b) p)))
(define (car p)
  (if (%eq (%and p (%raw 7)) (%raw 1)) (%load p (%raw 7)) (%fail (%raw 5))))
(define (cdr p)
  (if (%eq (%and p (%raw 7)) (%raw 1)) (%load p (%raw 15)) (%fail (%raw 5))))
(define (set-car! p v)
  (if (%eq (%and p (%raw 7)) (%raw 1))
      (begin (%store p (%raw 7) v) %sx-unspecified)
      (%fail (%raw 5))))
(define (set-cdr! p v)
  (if (%eq (%and p (%raw 7)) (%raw 1))
      (begin (%store p (%raw 15) v) %sx-unspecified)
      (%fail (%raw 5))))
(define (null? x) (if (%eq x (%raw 22)) %sx-true %sx-false))
(define (%sx-cons a b) (cons a b))

(define (vector? x) (if (%eq (%and x (%raw 7)) (%raw 2)) %sx-true %sx-false))
(define (vector-length v)
  (if (%eq (%and v (%raw 7)) (%raw 2)) (%load v (%raw 6)) (%fail (%raw 6))))
(define (%vcheck v i)
  (begin
    (if (%eq (%and v (%raw 7)) (%raw 2)) %sx-unspecified (%fail (%raw 6)))
    (if (%eq (%and i (%raw 7)) (%raw 0)) %sx-unspecified (%fail (%raw 8)))
    (if (%ult i (%load v (%raw 6))) %sx-unspecified (%fail (%raw 2)))))
(define (vector-ref v i)
  (begin (%vcheck v i) (%load v (%add (%and i (%raw -8)) (%raw 14)))))
(define (vector-set! v i x)
  (begin (%vcheck v i)
         (%store v (%add (%and i (%raw -8)) (%raw 14)) x)
         %sx-unspecified))

(define (string? x) (if (%eq (%and x (%raw 7)) (%raw 3)) %sx-true %sx-false))
(define (string-length s)
  (if (%eq (%and s (%raw 7)) (%raw 3)) (%load s (%raw 5)) (%fail (%raw 7))))
(define (%scheck s i)
  (begin
    (if (%eq (%and s (%raw 7)) (%raw 3)) %sx-unspecified (%fail (%raw 7)))
    (if (%eq (%and i (%raw 7)) (%raw 0)) %sx-unspecified (%fail (%raw 8)))
    (if (%ult i (%load s (%raw 5))) %sx-unspecified (%fail (%raw 2)))))
(define (string-ref s i)
  (begin (%scheck s i) (%load s (%add (%and i (%raw -8)) (%raw 13)))))
(define (string-set! s i c)
  (begin (%scheck s i) (%char-check c)
         (%store s (%add (%and i (%raw -8)) (%raw 13)) c)
         %sx-unspecified))

(define (symbol? x) (if (%eq (%and x (%raw 7)) (%raw 4)) %sx-true %sx-false))
(define (%make-symbol-object s)
  (let ((p (%alloc (%raw 1) (%raw 4))))
    (begin (%store p (%raw 4) s) p)))
(define (symbol->string s)
  (if (%eq (%and s (%raw 7)) (%raw 4)) (%load s (%raw 4)) (%fail (%raw 14))))

(define (procedure? x) (if (%eq (%and x (%raw 7)) (%raw 7)) %sx-true %sx-false))
"""

# Operations shared between the two variants (allocation-side helpers
# that the expander's literal lowering and the library need).
_SHARED_TAIL = r"""
(define (%fx-check a)
  (if (%nz %safety)
      (if (%eq (%and a (%raw 7)) (%raw 0)) %sx-unspecified (%fail (%raw 8)))
      %sx-unspecified))

(define (%sx-vector-alloc-raw nraw)
  (let ((v (%alloc (%add nraw (%raw 1)) (%raw 2))))
    (begin (%store v (%raw 6) (%lsl nraw (%raw 3))) v)))
(define (%sx-vector-init! v iraw x)
  (%store v (%add (%lsl iraw (%raw 3)) (%raw 14)) x))
(define (%vector-fill-from! v iraw nraw fill)
  (if (%ult iraw nraw)
      (begin (%sx-vector-init! v iraw fill)
             (%vector-fill-from! v (%add iraw (%raw 1)) nraw fill))
      v))
(define (make-vector n . opt)
  (begin
    (%fx-check n)
    (if (%lt n (%raw 0)) (%fail (%raw 2)) %sx-unspecified)
    (let ((fill (if (null? opt) %sx-unspecified (car opt)))
          (nraw (%asr n (%raw 3))))
      (%vector-fill-from! (%sx-vector-alloc-raw nraw) (%raw 0) nraw fill))))

(define (%sx-string-alloc-raw nraw)
  (let ((s (%alloc (%add nraw (%raw 1)) (%raw 3))))
    (begin (%store s (%raw 5) (%lsl nraw (%raw 3))) s)))
(define (%sx-string-init! s iraw coderaw)
  (%store s (%add (%lsl iraw (%raw 3)) (%raw 13))
          (%or (%lsl coderaw (%raw 8)) (%raw 46))))
(define (%string-fill-from! s iraw nraw fill)
  (if (%ult iraw nraw)
      (begin (%store s (%add (%lsl iraw (%raw 3)) (%raw 13)) fill)
             (%string-fill-from! s (%add iraw (%raw 1)) nraw fill))
      s))
(define (make-string n . opt)
  (begin
    (%fx-check n)
    (if (%lt n (%raw 0)) (%fail (%raw 2)) %sx-unspecified)
    (let ((fill (if (null? opt) (%sx-char (%raw 32)) (car opt)))
          (nraw (%asr n (%raw 3))))
      (begin (%char-check fill)
             (%string-fill-from! (%sx-string-alloc-raw nraw) (%raw 0) nraw fill)))))
"""

_REGISTRATION = r"""
(%register-pointer-rep (%raw 1))
(%register-pointer-rep (%raw 2))
(%register-pointer-rep (%raw 3))
(%register-pointer-rep (%raw 4))
(%register-pointer-rep (%raw 5))
(%register-pair-rep (%raw 1) (%raw 7) (%raw 15))
(%register-nil %sx-nil)
(%register-false %sx-false)
"""


def handcoded_core_source(safety: bool) -> str:
    """The hand-coded replacement for reptypes+types, variant chosen
    textually by ``safety`` (compiler-knowledge style)."""
    ops = _SAFE_OPS if safety else _UNSAFE_OPS
    return "\n".join(
        [
            reptypes_scm.SOURCE,  # machinery kept for the reflect layer
            _REGISTRATION,
            ops,
            _SHARED_TAIL,
        ]
    )
