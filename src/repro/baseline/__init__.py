"""Hand-coded baseline configuration (traditional comparator)."""

from .prelude import handcoded_core_source

__all__ = ["handcoded_core_source"]
