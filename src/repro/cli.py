"""Command-line interface.

Usage (after ``python setup.py develop``):

    python -m repro.cli run program.scm
    python -m repro.cli run -e '(+ 1 2)'
    python -m repro.cli disassemble -e '(define (f x) (car x))' --name f
    python -m repro.cli stats -e '(fib 10)' --config baseline
    python -m repro.cli lint program.scm --Werror
    python -m repro.cli repl
"""

from __future__ import annotations

import argparse
import sys

from . import (
    CompileOptions,
    OptimizerOptions,
    ReproError,
    compile_source,
    decode,
    run_source,
)
from .sexpr import to_write
from .vm.engine import ENGINES
from .vm.heap import DEFAULT_GC_OCCUPANCY


def _options(namespace: argparse.Namespace) -> CompileOptions:
    config = namespace.config
    if config == "optimized":
        options = CompileOptions()
    elif config == "baseline":
        options = CompileOptions.baseline()
    elif config == "unoptimized":
        options = CompileOptions.unoptimized()
    else:
        raise SystemExit(f"unknown --config {config}")
    options.safety = not namespace.unsafe
    if namespace.keep_globals:
        options.optimizer.prune_globals = False
    if getattr(namespace, "no_fuse", False):
        options.fuse = False
    return options


def _heap_words(namespace: argparse.Namespace) -> int | None:
    """The --heap-words value (None defers to $REPRO_HEAP_WORDS/default)."""
    value = getattr(namespace, "heap_words", None)
    if value is not None and value < 16:
        raise SystemExit(f"--heap-words must be at least 16 (got {value})")
    return value


def _gc_occupancy(namespace: argparse.Namespace) -> float | None:
    """The --gc-occupancy value; 0 selects the legacy exhaustion trigger."""
    value = getattr(namespace, "gc_occupancy", DEFAULT_GC_OCCUPANCY)
    if value == 0:
        return None
    if not (0.0 < value <= 1.0):
        raise SystemExit(
            f"--gc-occupancy must be in (0, 1], or 0 to disable (got {value})"
        )
    return value


def _source(namespace: argparse.Namespace) -> str:
    if namespace.expression is not None:
        return namespace.expression
    if namespace.file is None:
        raise SystemExit("provide a FILE or -e EXPRESSION")
    with open(namespace.file) as handle:
        return handle.read()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", nargs="?", help="Scheme source file")
    parser.add_argument("-e", "--expression", help="inline program text")
    parser.add_argument(
        "--config",
        choices=["optimized", "baseline", "unoptimized"],
        default="optimized",
    )
    parser.add_argument("--unsafe", action="store_true", help="omit type checks")
    parser.add_argument(
        "--keep-globals",
        action="store_true",
        help="do not prune unreferenced top-level definitions",
    )
    parser.add_argument(
        "--input",
        default="",
        help="text made available to the program's (read-char)/(read)",
    )
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="VM dispatch engine (default: $REPRO_VM_ENGINE or naive)",
    )
    parser.add_argument(
        "--no-fuse",
        action="store_true",
        help="disable superinstruction fusion in the emitted code",
    )
    parser.add_argument(
        "--heap-words",
        type=int,
        default=None,
        metavar="N",
        help="heap size in 64-bit words "
        "(default: $REPRO_HEAP_WORDS or 1048576)",
    )
    parser.add_argument(
        "--gc-occupancy",
        type=float,
        default=DEFAULT_GC_OCCUPANCY,
        metavar="F",
        help="collect when heap occupancy reaches this fraction "
        "(default 0.9; 0 = legacy collect-on-exhaustion)",
    )


def cmd_run(namespace: argparse.Namespace) -> int:
    result = run_source(
        _source(namespace),
        _options(namespace),
        input_text=namespace.input,
        engine=namespace.engine,
        heap_words=_heap_words(namespace),
        gc_occupancy=_gc_occupancy(namespace),
    )
    sys.stdout.write(result.output)
    value = decode(result)
    print(f"=> {to_write(value)}")
    if namespace.stats:
        pause_ms = result.gc_stats.get("pause_seconds_total", 0.0) * 1000
        print(
            f";; {result.steps} instructions, {result.words_allocated} words "
            f"allocated, {result.gc_count} GCs ({pause_ms:.2f} ms paused)",
            file=sys.stderr,
        )
    return 0


def cmd_disassemble(namespace: argparse.Namespace) -> int:
    compiled = compile_source(_source(namespace), _options(namespace))
    print(compiled.disassemble(namespace.name))
    return 0


def cmd_stats(namespace: argparse.Namespace) -> int:
    compiled = compile_source(_source(namespace), _options(namespace))
    result = compiled.run(
        engine=namespace.engine,
        heap_words=_heap_words(namespace),
        gc_occupancy=_gc_occupancy(namespace),
    )
    print(f"value:        {to_write(decode(result))}")
    print(f"instructions: {result.steps}")
    print(f"allocated:    {result.words_allocated} words")
    print(f"collections:  {result.gc_count}")
    gc = result.gc_stats
    if gc and gc["collections"]:
        triggers = ", ".join(
            f"{k}={v}" for k, v in sorted((gc.get("triggers") or {}).items())
        )
        print(
            f"gc pauses:    {gc['pause_seconds_total'] * 1000:.2f} ms total, "
            f"{gc['pause_seconds_max'] * 1000:.2f} ms max ({triggers})"
        )
        print(f"reclaimed:    {gc['reclaimed_words_total']} words")
    print(f"code size:    {compiled.static_instruction_count()} instructions")
    print("by opcode:")
    for name, count in sorted(
        result.opcode_counts.items(), key=lambda item: -item[1]
    ):
        print(f"  {name:10s} {count}")
    return 0


def cmd_lint(namespace: argparse.Namespace) -> int:
    from .lint import LintOptions, all_rules, lint_source, render_json, render_text

    if namespace.list_rules:
        for rule in all_rules():
            print(f"{rule.id:20s} [{rule.severity:7s}] {rule.description}")
        return 0
    options = LintOptions(
        disabled=frozenset(namespace.disable or ()),
        safety=not namespace.unsafe,
        prelude_only=namespace.prelude_only,
    )
    if namespace.prelude_only:
        source = ""
        filename = "<prelude>"
    else:
        source = _source(namespace)
        filename = namespace.file or "<expression>"
    report = lint_source(source, options)
    if namespace.json:
        print(render_json(report, filename))
    else:
        print(render_text(report, filename))
    return report.exit_code(werror=namespace.werror)


def cmd_profile(namespace: argparse.Namespace) -> int:
    from .vm.profile import profile_program, render_json, render_text

    options = _options(namespace)
    # Mine pairs over base opcodes: candidate ranking only makes sense
    # on unfused code (run with --fused to profile the fused stream).
    if not namespace.fused:
        options.fuse = False
    compiled = compile_source(_source(namespace), options)
    report = profile_program(
        compiled.vm_program,
        input_text=namespace.input,
        heap_words=_heap_words(namespace),
    )
    if namespace.json:
        print(render_json(report, top=namespace.top))
    else:
        print(render_text(report, top=namespace.top))
    return 0


def cmd_repl(namespace: argparse.Namespace) -> int:
    print("repro Scheme — whole-program compiles per input; :q to quit")
    history: list[str] = []
    options = _options(namespace)
    while True:
        try:
            line = input("> ")
        except EOFError:
            return 0
        if line.strip() in (":q", ":quit", "(exit)"):
            return 0
        if not line.strip():
            continue
        program = "\n".join(history + [line])
        try:
            result = run_source(program, options)
        except ReproError as error:
            print(f"error: {error}")
            continue
        sys.stdout.write(result.output)
        print(f"=> {to_write(decode(result))}")
        # Definitions persist; expressions do not accumulate output twice.
        stripped = line.lstrip()
        if stripped.startswith("(define") or stripped.startswith("(define-syntax"):
            history.append(line)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="compile and run a program")
    _add_common(run_parser)
    run_parser.add_argument("--stats", action="store_true")
    run_parser.set_defaults(fn=cmd_run)

    dis_parser = subparsers.add_parser("disassemble", help="show generated code")
    _add_common(dis_parser)
    dis_parser.add_argument("--name", help="one procedure (default: everything)")
    dis_parser.set_defaults(fn=cmd_disassemble)

    stats_parser = subparsers.add_parser("stats", help="run and report counters")
    _add_common(stats_parser)
    stats_parser.set_defaults(fn=cmd_stats)

    profile_parser = subparsers.add_parser(
        "profile",
        help="run with pair mining: opcode histogram + fusion candidates",
    )
    _add_common(profile_parser)
    profile_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    profile_parser.add_argument(
        "--top", type=int, default=20, help="rows per section (default 20)"
    )
    profile_parser.add_argument(
        "--fused",
        action="store_true",
        help="profile the fused instruction stream instead of base opcodes",
    )
    profile_parser.set_defaults(fn=cmd_profile)

    lint_parser = subparsers.add_parser(
        "lint", help="static diagnostics (tag/range analysis + style checks)"
    )
    lint_parser.add_argument("file", nargs="?", help="Scheme source file")
    lint_parser.add_argument("-e", "--expression", help="inline program text")
    lint_parser.add_argument(
        "--Werror",
        dest="werror",
        action="store_true",
        help="exit non-zero on warnings, not just errors",
    )
    lint_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    lint_parser.add_argument(
        "--disable",
        action="append",
        metavar="RULE",
        help="suppress one rule id (repeatable)",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    lint_parser.add_argument(
        "--prelude-only",
        action="store_true",
        help="lint the runtime prelude itself instead of a program",
    )
    lint_parser.add_argument(
        "--unsafe", action="store_true", help="lint the unchecked configuration"
    )
    lint_parser.set_defaults(fn=cmd_lint)

    repl_parser = subparsers.add_parser("repl", help="interactive loop")
    _add_common(repl_parser)
    repl_parser.set_defaults(fn=cmd_repl)

    namespace = parser.parse_args(argv)
    try:
        return namespace.fn(namespace)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
