"""Command-line interface.

Usage (after ``python setup.py develop``):

    python -m repro.cli run program.scm
    python -m repro.cli run -e '(+ 1 2)'
    python -m repro.cli disassemble -e '(define (f x) (car x))' --name f
    python -m repro.cli stats -e '(fib 10)' --config baseline
    python -m repro.cli lint program.scm --Werror
    python -m repro.cli faultsweep examples/scm/*.scm --max-sites 64
    python -m repro.cli serve --smoke 200 --chaos
    python -m repro.cli repl

Exit codes (see docs/DIAGNOSTICS.md): 0 success, 1 other error,
2 reader error, 3 expand/compile error, 4 lint findings under
``--Werror``, 5 VM trap, 6 resource budget exceeded, 7 service
smoke/chaos gate failed.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    CompileOptions,
    OptimizerOptions,
    ReproError,
    compile_source,
    decode,
    run_source,
)
from .errors import BudgetExceeded, CompileError, ExpandError, ReaderError, VMError
from .sexpr import read_all, to_write
from .vm.engine import ENGINES
from .vm.heap import DEFAULT_GC_OCCUPANCY

# Distinct, documented exit codes per error class.
EXIT_OK = 0
EXIT_ERROR = 1  # any other failure
EXIT_READER = 2
EXIT_COMPILE = 3  # expansion or any later compiler stage
EXIT_LINT = 4  # lint findings under --Werror (or lint errors)
EXIT_VM = 5  # a VM trap (type error, heap exhaustion, ...)
EXIT_BUDGET = 6  # a resource budget (steps/deadline/alloc) ran out
EXIT_SERVE = 7  # the service smoke/chaos gate failed


def exit_code_for(error: ReproError) -> int:
    """Map an error to its documented CLI exit code."""
    if isinstance(error, ReaderError):
        return EXIT_READER
    if isinstance(error, (ExpandError, CompileError)):
        return EXIT_COMPILE
    if isinstance(error, BudgetExceeded):  # before VMError: it is one
        return EXIT_BUDGET
    if isinstance(error, VMError):
        return EXIT_VM
    return EXIT_ERROR


def _options(namespace: argparse.Namespace) -> CompileOptions:
    config = namespace.config
    if config == "optimized":
        options = CompileOptions()
    elif config == "baseline":
        options = CompileOptions.baseline()
    elif config == "unoptimized":
        options = CompileOptions.unoptimized()
    else:
        raise SystemExit(f"unknown --config {config}")
    options.safety = not namespace.unsafe
    if namespace.keep_globals:
        options.optimizer.prune_globals = False
    if getattr(namespace, "no_fuse", False):
        options.fuse = False
    return options


def _heap_words(namespace: argparse.Namespace) -> int | None:
    """The --heap-words value (None defers to $REPRO_HEAP_WORDS/default)."""
    value = getattr(namespace, "heap_words", None)
    if value is not None and value < 16:
        raise SystemExit(f"--heap-words must be at least 16 (got {value})")
    return value


def _gc_occupancy(namespace: argparse.Namespace) -> float | None:
    """The --gc-occupancy value; 0 selects the legacy exhaustion trigger."""
    value = getattr(namespace, "gc_occupancy", DEFAULT_GC_OCCUPANCY)
    if value == 0:
        return None
    if not (0.0 < value <= 1.0):
        raise SystemExit(
            f"--gc-occupancy must be in (0, 1], or 0 to disable (got {value})"
        )
    return value


def _source(namespace: argparse.Namespace) -> str:
    if namespace.expression is not None:
        return namespace.expression
    if namespace.file is None:
        raise SystemExit("provide a FILE or -e EXPRESSION")
    with open(namespace.file) as handle:
        return handle.read()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", nargs="?", help="Scheme source file")
    parser.add_argument("-e", "--expression", help="inline program text")
    parser.add_argument(
        "--config",
        choices=["optimized", "baseline", "unoptimized"],
        default="optimized",
    )
    parser.add_argument("--unsafe", action="store_true", help="omit type checks")
    parser.add_argument(
        "--keep-globals",
        action="store_true",
        help="do not prune unreferenced top-level definitions",
    )
    parser.add_argument(
        "--input",
        default="",
        help="text made available to the program's (read-char)/(read)",
    )
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="VM dispatch engine (default: $REPRO_VM_ENGINE or naive)",
    )
    parser.add_argument(
        "--no-fuse",
        action="store_true",
        help="disable superinstruction fusion in the emitted code",
    )
    parser.add_argument(
        "--heap-words",
        type=int,
        default=None,
        metavar="N",
        help="heap size in 64-bit words "
        "(default: $REPRO_HEAP_WORDS or 1048576)",
    )
    parser.add_argument(
        "--gc-occupancy",
        type=float,
        default=DEFAULT_GC_OCCUPANCY,
        metavar="F",
        help="collect when heap occupancy reaches this fraction "
        "(default 0.9; 0 = legacy collect-on-exhaustion)",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=None,
        metavar="N",
        help="step budget: abort (exit 6) after N instructions",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget: abort (exit 6) after this many seconds",
    )
    parser.add_argument(
        "--max-alloc-words",
        type=int,
        default=None,
        metavar="N",
        help="allocation budget: abort (exit 6) after N heap words",
    )


def cmd_run(namespace: argparse.Namespace) -> int:
    result = run_source(
        _source(namespace),
        _options(namespace),
        input_text=namespace.input,
        engine=namespace.engine,
        heap_words=_heap_words(namespace),
        gc_occupancy=_gc_occupancy(namespace),
        max_steps=namespace.max_steps,
        deadline_seconds=namespace.deadline,
        max_alloc_words=namespace.max_alloc_words,
    )
    sys.stdout.write(result.output)
    value = decode(result)
    print(f"=> {to_write(value)}")
    if namespace.stats:
        pause_ms = result.gc_stats.get("pause_seconds_total", 0.0) * 1000
        print(
            f";; {result.steps} instructions, {result.words_allocated} words "
            f"allocated, {result.gc_count} GCs ({pause_ms:.2f} ms paused)",
            file=sys.stderr,
        )
        print(f";; {_engine_identity(result)}", file=sys.stderr)
    return 0


def _engine_identity(result) -> str:
    """One line naming the engine and its cache shape for this run.

    Asks the engine via ``cache_stats()`` — handler tables only exist
    on the threaded tier and emitted functions only on the compiled
    tier, so nothing here may assume a particular cache structure.
    """
    machine = getattr(result, "machine", None)
    engine = getattr(machine, "_engine", None)
    stats = engine.cache_stats() if engine is not None else {}
    if not stats:
        return f"engine: {result.engine}"
    detail = ", ".join(f"{key}={value}" for key, value in sorted(stats.items()))
    return f"engine: {result.engine} ({detail})"


def cmd_disassemble(namespace: argparse.Namespace) -> int:
    compiled = compile_source(_source(namespace), _options(namespace))
    print(compiled.disassemble(namespace.name))
    return 0


def cmd_stats(namespace: argparse.Namespace) -> int:
    compiled = compile_source(_source(namespace), _options(namespace))
    result = compiled.run(
        engine=namespace.engine,
        heap_words=_heap_words(namespace),
        gc_occupancy=_gc_occupancy(namespace),
        max_steps=namespace.max_steps,
        deadline_seconds=namespace.deadline,
        max_alloc_words=namespace.max_alloc_words,
    )
    print(f"value:        {to_write(decode(result))}")
    print(f"{_engine_identity(result)}")
    print(f"instructions: {result.steps}")
    print(f"allocated:    {result.words_allocated} words")
    print(f"collections:  {result.gc_count}")
    gc = result.gc_stats
    if gc and gc["collections"]:
        triggers = ", ".join(
            f"{k}={v}" for k, v in sorted((gc.get("triggers") or {}).items())
        )
        print(
            f"gc pauses:    {gc['pause_seconds_total'] * 1000:.2f} ms total, "
            f"{gc['pause_seconds_max'] * 1000:.2f} ms max ({triggers})"
        )
        print(f"reclaimed:    {gc['reclaimed_words_total']} words")
    print(f"code size:    {compiled.static_instruction_count()} instructions")
    print("by opcode:")
    for name, count in sorted(
        result.opcode_counts.items(), key=lambda item: -item[1]
    ):
        print(f"  {name:10s} {count}")
    return 0


def cmd_lint(namespace: argparse.Namespace) -> int:
    from .lint import LintOptions, all_rules, lint_source, render_json, render_text

    if namespace.list_rules:
        for rule in all_rules():
            print(f"{rule.id:20s} [{rule.severity:7s}] {rule.description}")
        return 0
    options = LintOptions(
        disabled=frozenset(namespace.disable or ()),
        safety=not namespace.unsafe,
        prelude_only=namespace.prelude_only,
    )
    if namespace.prelude_only:
        source = ""
        filename = "<prelude>"
    else:
        source = _source(namespace)
        filename = namespace.file or "<expression>"
    report = lint_source(source, options)
    if namespace.json:
        print(render_json(report, filename))
    else:
        print(render_text(report, filename))
    return EXIT_LINT if report.exit_code(werror=namespace.werror) else EXIT_OK


def cmd_absint(namespace: argparse.Namespace) -> int:
    """Dump the whole-program analysis (summaries, heap facts, owners)."""
    import json as json_module

    from .absint import summarize_program
    from .absint.report import render_summary_text, summary_report
    from .api import _expander_for, _optimized_prelude
    from .ir import Program
    from .opt import optimize_program

    options = CompileOptions()
    # Keep every top-level form (no global pruning) so the analysed
    # region lines up with the frozen prelude prefix.
    options.optimizer.prune_globals = False
    prelude_forms, expander = _expander_for(options)
    opt_prelude, _defined = _optimized_prelude(
        options, prelude_forms, expander.global_names
    )
    if namespace.prelude_only:
        # The prelude is a library: open world, parameters stay ⊤.
        program = Program(list(opt_prelude), expander.global_names)
        summaries = summarize_program(program, open_world=True)
    else:
        user = expander.expand_program(read_all(_source(namespace)))
        program = Program(
            list(opt_prelude) + list(user.forms), expander.global_names
        )
        program = optimize_program(
            program, options.optimizer, frozen_prefix=len(opt_prelude)
        )
        summaries = summarize_program(program, start=len(opt_prelude))
    report = summary_report(summaries)
    if namespace.json:
        print(json_module.dumps(report, indent=2))
    else:
        print(render_summary_text(report))
    return 0


def cmd_profile(namespace: argparse.Namespace) -> int:
    from .vm.profile import profile_program, render_json, render_text

    options = _options(namespace)
    # Mine pairs over base opcodes: candidate ranking only makes sense
    # on unfused code (run with --fused to profile the fused stream).
    if not namespace.fused:
        options.fuse = False
    compiled = compile_source(_source(namespace), options)
    report = profile_program(
        compiled.vm_program,
        input_text=namespace.input,
        heap_words=_heap_words(namespace),
        engine=namespace.engine,
    )
    if namespace.json:
        print(render_json(report, top=namespace.top))
    else:
        print(render_text(report, top=namespace.top))
    return 0


def cmd_faultsweep(namespace: argparse.Namespace) -> int:
    """Sweep programs through deterministic fault-injection schedules.

    Exit 0 when every injected fault honoured the hardened-execution
    contract (completed correctly or trapped with intact invariants),
    1 when any violation was found.
    """
    import glob as _glob
    import json as _json

    from .vm.faultinject import sweep_source

    paths = namespace.files
    if not paths:
        paths = sorted(_glob.glob("examples/scm/*.scm"))
        if not paths:
            raise SystemExit("no files given and no examples/scm/*.scm found")
    engines = [namespace.engine] if namespace.engine else sorted(ENGINES)
    gc_every = tuple(namespace.gc_every) if namespace.gc_every else (1, 3, 7)
    heap_words = _heap_words(namespace) or (1 << 16)

    reports = []
    totals = {
        "runs": 0,
        "completed": 0,
        "trapped": 0,
        "violations": 0,
        "unexpected": 0,
    }
    for path in paths:
        with open(path) as handle:
            source = handle.read()
        for engine in engines:
            report = sweep_source(
                source,
                label=path,
                engine=engine,
                heap_words=heap_words,
                max_sites=namespace.max_sites,
                gc_every=gc_every,
                seed=namespace.seed,
            )
            reports.append((engine, report))
            counts = report.counts()
            for key in totals:
                totals[key] += counts[key]
            if not namespace.json:
                print(
                    f"{path} [{engine}]: {counts['runs']} runs over "
                    f"{report.total_allocs} allocation sites — "
                    f"{counts['completed']} completed, "
                    f"{counts['trapped']} trapped, "
                    f"{counts['violations']} violations"
                )
            for violation in report.violations:
                print(f"  VIOLATION: {violation}", file=sys.stderr)

    if namespace.json:
        print(
            _json.dumps(
                {
                    "totals": totals,
                    "reports": [
                        {
                            "label": report.label,
                            "engine": engine,
                            "total_allocs": report.total_allocs,
                            **report.counts(),
                            "violations": report.violations,
                            # one TrapInfo.to_json() payload per outcome
                            # that trapped (machine-readable fault log)
                            "traps": [
                                {"schedule": o.schedule, **o.trap}
                                for o in report.outcomes
                                if o.trap is not None
                            ],
                        }
                        for engine, report in reports
                    ],
                },
                indent=2,
            )
        )
    else:
        print(
            f"faultsweep: {totals['runs']} runs, {totals['completed']} "
            f"completed, {totals['trapped']} trapped, "
            f"{totals['violations']} violations, "
            f"{totals['unexpected']} unexpected exceptions"
        )
    # Any violation is fatal — including the "unexpected exception
    # class" ones, so a new crash mode can never pass the sweep.
    if totals["violations"] or totals["unexpected"]:
        return EXIT_ERROR
    return EXIT_OK


def _serve_config(namespace: argparse.Namespace, jobs: int):
    from .serve import ServeConfig, TenantQuota

    return ServeConfig(
        pool_size=namespace.pool,
        heap_words=_heap_words(namespace) or (1 << 16),
        engine=namespace.engine,
        slice_steps=namespace.slice_steps,
        queue_limit=namespace.queue_limit or jobs + 64,
        quota=TenantQuota(max_in_flight=namespace.max_in_flight or jobs + 1),
    )


def _render_smoke(report: dict) -> str:
    chaos = report["chaos"]
    hostile = report["hostile"]
    lines = [
        f"serve smoke: {report['jobs']} jobs from {report['tenants']} tenants"
        f" (+{report['hostile_jobs']} hostile) in"
        f" {report['elapsed_seconds']:.2f}s"
        f" ({report['req_per_sec']:.1f} req/s)",
        f"  completed {report['completed']}, failed {report['failed']},"
        f" rejected {report['rejected']}, lost {report['lost']},"
        f" duplicated {report['duplicated']},"
        f" wrong values {report['wrong_values']}",
        f"  latency p50 {report['p50_ms']:.1f} ms,"
        f" p99 {report['p99_ms']:.1f} ms;"
        f" {report['slices']} slices, {report['steps_executed']} steps,"
        f" {report['compiles']} compiles",
        f"  chaos: {chaos['completed']}/{chaos['jobs']} completed"
        f" ({chaos['retried']} via retry, {chaos['retries']} retries);"
        f" hostile: {hostile['failed']} failed, {hostile['rejected']}"
        f" rejected, breaker opened {hostile['breaker_opened']}x",
        f"  conservation violations: {report['conservation_violations']}",
        f"  gate: {'OK' if report['ok'] else 'FAILED'}",
    ]
    for detail in report.get("conservation_detail", []):
        lines.append(f"  VIOLATION: {detail}")
    return "\n".join(lines)


def cmd_serve(namespace: argparse.Namespace) -> int:
    """Run the execution service: self-driving smoke or TCP daemon.

    ``--smoke N`` drives N concurrent jobs (chaos cohort included unless
    ``--no-chaos``) through one service and audits the contract: exit 0
    when no jobs were lost or duplicated and heap conservation held on
    every machine, ``EXIT_SERVE`` (7) otherwise.  Without ``--smoke``
    the service listens on ``--host``/``--port`` speaking JSON lines
    and drains gracefully on SIGINT/SIGTERM.
    """
    import asyncio
    import json as _json

    from .serve import run_smoke

    if namespace.smoke is not None:
        if namespace.smoke < 1:
            raise SystemExit(f"--smoke needs at least 1 job (got {namespace.smoke})")
        report = run_smoke(
            jobs=namespace.smoke,
            tenants=namespace.tenants,
            chaos=namespace.chaos,
            hostile=not namespace.no_hostile,
            seed=namespace.seed,
            config=_serve_config(namespace, namespace.smoke),
            timeout_seconds=namespace.timeout,
            include_events=namespace.events is not None,
        )
        if namespace.events is not None:
            with open(namespace.events, "w") as handle:
                for event in report.pop("events", []):
                    handle.write(_json.dumps(event) + "\n")
        if namespace.json:
            print(_json.dumps(report, indent=2))
        else:
            print(_render_smoke(report))
        return EXIT_OK if report["ok"] else EXIT_SERVE

    async def _daemon() -> None:
        from .serve import ExecutionService, ServeServer

        service = ExecutionService(_serve_config(namespace, jobs=1024))
        server = ServeServer(
            service, host=namespace.host, port=namespace.port
        )
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, stop.set)
        except (ImportError, NotImplementedError):  # pragma: no cover
            pass
        print(f"repro serve: listening on {server.host}:{server.port}",
              flush=True)
        await stop.wait()
        print("repro serve: draining", flush=True)
        await server.close()
        await service.drain()

    asyncio.run(_daemon())
    return EXIT_OK


def cmd_repl(namespace: argparse.Namespace) -> int:
    print("repro Scheme — whole-program compiles per input; :q to quit")
    history: list[str] = []
    options = _options(namespace)
    while True:
        try:
            line = input("> ")
        except EOFError:
            return 0
        if line.strip() in (":q", ":quit", "(exit)"):
            return 0
        if not line.strip():
            continue
        program = "\n".join(history + [line])
        try:
            result = run_source(program, options)
        except ReproError as error:
            print(f"error: {error}")
            continue
        sys.stdout.write(result.output)
        print(f"=> {to_write(decode(result))}")
        # Definitions persist; expressions do not accumulate output twice.
        stripped = line.lstrip()
        if stripped.startswith("(define") or stripped.startswith("(define-syntax"):
            history.append(line)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="compile and run a program")
    _add_common(run_parser)
    run_parser.add_argument("--stats", action="store_true")
    run_parser.set_defaults(fn=cmd_run)

    dis_parser = subparsers.add_parser("disassemble", help="show generated code")
    _add_common(dis_parser)
    dis_parser.add_argument("--name", help="one procedure (default: everything)")
    dis_parser.set_defaults(fn=cmd_disassemble)

    stats_parser = subparsers.add_parser("stats", help="run and report counters")
    _add_common(stats_parser)
    stats_parser.set_defaults(fn=cmd_stats)

    profile_parser = subparsers.add_parser(
        "profile",
        help="run with pair mining: opcode histogram + fusion candidates",
    )
    _add_common(profile_parser)
    profile_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    profile_parser.add_argument(
        "--top", type=int, default=20, help="rows per section (default 20)"
    )
    profile_parser.add_argument(
        "--fused",
        action="store_true",
        help="profile the fused instruction stream instead of base opcodes",
    )
    profile_parser.set_defaults(fn=cmd_profile)

    lint_parser = subparsers.add_parser(
        "lint", help="static diagnostics (tag/range analysis + style checks)"
    )
    lint_parser.add_argument("file", nargs="?", help="Scheme source file")
    lint_parser.add_argument("-e", "--expression", help="inline program text")
    lint_parser.add_argument(
        "--Werror",
        dest="werror",
        action="store_true",
        help="exit non-zero on warnings, not just errors",
    )
    lint_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    lint_parser.add_argument(
        "--disable",
        action="append",
        metavar="RULE",
        help="suppress one rule id (repeatable)",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    lint_parser.add_argument(
        "--prelude-only",
        action="store_true",
        help="lint the runtime prelude itself instead of a program",
    )
    lint_parser.add_argument(
        "--unsafe", action="store_true", help="lint the unchecked configuration"
    )
    lint_parser.set_defaults(fn=cmd_lint)

    absint_parser = subparsers.add_parser(
        "absint",
        help="dump the whole-program analysis (summaries, heap facts)",
    )
    absint_parser.add_argument("file", nargs="?", help="Scheme source file")
    absint_parser.add_argument("-e", "--expression", help="inline program text")
    absint_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    absint_parser.add_argument(
        "--prelude-only",
        action="store_true",
        help="dump the runtime prelude's own (open-world) summaries",
    )
    absint_parser.set_defaults(fn=cmd_absint)

    sweep_parser = subparsers.add_parser(
        "faultsweep",
        help="prove trap recovery under injected heap/budget faults",
    )
    sweep_parser.add_argument(
        "files", nargs="*", help="Scheme sources (default: examples/scm/*.scm)"
    )
    sweep_parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="sweep one engine (default: all engines)",
    )
    sweep_parser.add_argument(
        "--max-sites",
        type=int,
        default=32,
        metavar="N",
        help="cap on allocation-failure injection points per program",
    )
    sweep_parser.add_argument(
        "--gc-every",
        type=int,
        action="append",
        metavar="N",
        help="forced-GC cadence to sweep (repeatable; default 1, 3, 7)",
    )
    sweep_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the injected-deadline dispatch points (default 0)",
    )
    sweep_parser.add_argument(
        "--heap-words",
        type=int,
        default=None,
        metavar="N",
        help="heap size for the swept runs (default 65536)",
    )
    sweep_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    sweep_parser.set_defaults(fn=cmd_faultsweep)

    serve_parser = subparsers.add_parser(
        "serve",
        help="multi-tenant execution service (smoke harness or TCP daemon)",
    )
    serve_parser.add_argument(
        "--smoke",
        type=int,
        default=None,
        metavar="N",
        help="self-driving mode: run N concurrent jobs, audit the "
        "service contract, exit 7 on any violation",
    )
    serve_parser.add_argument(
        "--tenants",
        type=int,
        default=20,
        help="distinct tenants in the smoke population (default 20)",
    )
    serve_parser.add_argument(
        "--chaos",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="include the fault-injected chaos cohort (default on)",
    )
    serve_parser.add_argument(
        "--no-hostile",
        action="store_true",
        help="omit the always-trapping hostile tenant",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=0, help="chaos schedule seed (default 0)"
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="smoke wall-clock limit; unresolved jobs count as lost",
    )
    serve_parser.add_argument(
        "--pool",
        type=int,
        default=8,
        metavar="N",
        help="machine pool size (default 8)",
    )
    serve_parser.add_argument(
        "--slice-steps",
        type=int,
        default=500,
        metavar="N",
        help="preemption slice in VM instructions (default 500)",
    )
    serve_parser.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        metavar="N",
        help="admission queue bound (default: jobs + 64)",
    )
    serve_parser.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant in-flight quota (default: jobs + 1)",
    )
    serve_parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="VM dispatch engine for pooled machines",
    )
    serve_parser.add_argument(
        "--heap-words",
        type=int,
        default=None,
        metavar="N",
        help="heap size per pooled machine (default 65536)",
    )
    serve_parser.add_argument(
        "--events",
        metavar="FILE",
        help="write the service event log as JSON lines (smoke mode)",
    )
    serve_parser.add_argument(
        "--json", action="store_true", help="machine-readable smoke report"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="daemon bind address"
    )
    serve_parser.add_argument(
        "--port", type=int, default=7093, help="daemon port (default 7093)"
    )
    serve_parser.set_defaults(fn=cmd_serve)

    repl_parser = subparsers.add_parser("repl", help="interactive loop")
    _add_common(repl_parser)
    repl_parser.set_defaults(fn=cmd_repl)

    namespace = parser.parse_args(argv)
    try:
        return namespace.fn(namespace)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":
    sys.exit(main())
