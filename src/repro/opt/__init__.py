"""The optimizer: the paper's 'few generally-useful transformations'."""

from .algebra import branch_test, simplify_prim
from .cse import cse_program
from .dce import dce_program, prune_globals
from .letrec import fix_letrec, fix_letrec_program
from .pipeline import optimize_program
from .simplify import GlobalFacts, OptimizerOptions, Simplifier

__all__ = [
    "GlobalFacts",
    "OptimizerOptions",
    "Simplifier",
    "branch_test",
    "cse_program",
    "dce_program",
    "fix_letrec",
    "fix_letrec_program",
    "optimize_program",
    "prune_globals",
    "simplify_prim",
]
