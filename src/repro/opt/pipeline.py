"""The optimizer pipeline: letrec fixing, then rounds of
CSE → simplify → check elimination → DCE, then global pruning."""

from __future__ import annotations

from ..ir import Program, census_program
from .checkelim import checkelim_program
from .cse import cse_program
from .dce import dce_program, prune_globals
from .letrec import fix_letrec_program
from .simplify import GlobalFacts, OptimizerOptions, Simplifier
from .unbox import unbox_program


def optimize_program(
    program: Program,
    options: OptimizerOptions | None = None,
    frozen_prefix: int = 0,
    open_world: bool = False,
    summary_sink: list | None = None,
) -> Program:
    """Run the whole optimizer.  With :meth:`OptimizerOptions.none`
    this is (almost) the identity — only letrec fixing and global
    pruning run, both required for the backend.

    ``frozen_prefix`` marks the first N top-level forms as already
    optimized (an incrementally-reused prelude): analyses still see the
    whole program, but rewriting is confined to the suffix.  The caller
    guarantees the suffix does not assign any name the prefix defines.

    ``open_world`` marks the program as a library other code will later
    link against (the prelude compiled on its own): the interprocedural
    unbox pass then keeps every parameter ⊤ and trusts no heap fact,
    since unseen callers can reach anything.

    ``summary_sink``, when given, receives the interprocedural
    :class:`~repro.absint.summaries.ProgramSummaries` the unbox pass
    computed (appended, so the last entry is freshest).  The backend
    uses them to seed emit-time facts; they describe the program *as
    analysed*, which is why they are handed over rather than recomputed
    after later rewriting rounds.
    """
    options = options or OptimizerOptions()

    def check(stage: str) -> None:
        if options.validate:
            from ..ir.validate import validate_program

            validate_program(program, allow_letrec=False, stage=stage)

    program = _fix_suffix(program, frozen_prefix)
    check("letrec")
    for _ in range(max(1, options.rounds)):
        changed = False
        census = census_program(program)
        facts = GlobalFacts(program, census)
        # CSE runs before simplify: binding-level reuse must be recorded
        # before single-use forwarding dissolves the bindings.  Redundancy
        # *created* by this round's inlining is caught next round.
        if options.cse:
            program, cse_changed = cse_program(
                program, facts.immutable, start=frozen_prefix
            )
            changed |= cse_changed
            check("cse")
        if options.fold or options.inline or options.algebra or options.dce:
            simplifier = Simplifier(options, facts)
            program = simplifier.run(program, start=frozen_prefix)
            changed |= simplifier.changed
            check("simplify")
        if options.absint:
            program, absint_changed = checkelim_program(
                program, start=frozen_prefix
            )
            changed |= absint_changed
            check("checkelim")
        if options.dce:
            defined = {
                name
                for name, info in census_program(program).globals.items()
                if info.assignments >= 1
            }
            program, dce_changed = dce_program(
                program, defined, start=frozen_prefix
            )
            changed |= dce_changed
            check("dce")
        if not changed:
            break
    if options.unbox and options.absint:
        # After the main rounds: inlining has exposed the prelude's
        # check idioms, so the whole-program summaries see them.  The
        # pass is the interprocedural half of the abstract-interpretation
        # framework, so disabling ``absint`` disables it too.
        program, unbox_changed, _summaries = unbox_program(
            program, start=frozen_prefix, open_world=open_world
        )
        if summary_sink is not None:
            summary_sink.append(_summaries)
        check("unbox")
        if unbox_changed:
            # One syntactic cleanup round sweeps the dead tests and
            # constants the elisions left behind.
            census = census_program(program)
            facts = GlobalFacts(program, census)
            if options.fold or options.inline or options.algebra or options.dce:
                simplifier = Simplifier(options, facts)
                program = simplifier.run(program, start=frozen_prefix)
                check("unbox-simplify")
            if options.dce:
                defined = {
                    name
                    for name, info in census_program(program).globals.items()
                    if info.assignments >= 1
                }
                program, _ = dce_program(program, defined, start=frozen_prefix)
                check("unbox-dce")
    if options.prune_globals:
        program = prune_globals(program)
    return program


def _fix_suffix(program: Program, frozen_prefix: int) -> Program:
    if frozen_prefix == 0:
        return fix_letrec_program(program)
    fixed = Program(program.forms[frozen_prefix:], program.globals)
    fixed = fix_letrec_program(fixed)
    return Program(program.forms[:frozen_prefix] + fixed.forms, program.globals)
