"""Algebraic simplification of machine-primitive applications.

These rewrites are what lets abstractly-written representation code
collapse: shift/mask chains produced by inlining tag arithmetic reduce to
the single instruction a hand coder would have written.

All rules are strictly semantics-preserving over 64-bit words.  Rules
only fire when discarded operands are duplicable/droppable (constants and
variable references), so effects and evaluation order are preserved.
"""

from __future__ import annotations

from ..ir import Const, If, Node, Prim, Var
from ..prims import WORD_MASK, wrap

_ALL_ONES = WORD_MASK


def _is_trivial(node: Node) -> bool:
    """May this node be dropped or duplicated freely?"""
    return isinstance(node, (Const, Var))


def _same_var(a: Node, b: Node) -> bool:
    return (
        isinstance(a, Var)
        and isinstance(b, Var)
        and a.var is b.var
        and not a.var.assigned
    )


def _const(node: Node) -> int | None:
    return node.value if isinstance(node, Const) else None


def simplify_prim(op: str, args: list[Node]) -> Node | None:
    """Try to simplify ``(op args...)``; None when no rule applies.

    Constant folding proper happens in the simplifier before this is
    called, so at least one argument is a non-constant here.
    """
    if op == "%add":
        return _simplify_add(args)
    if op == "%sub":
        return _simplify_sub(args)
    if op == "%mul":
        return _simplify_mul(args)
    if op == "%and":
        return _simplify_and(args)
    if op == "%or":
        return _simplify_or(args)
    if op == "%xor":
        return _simplify_xor(args)
    if op in ("%lsl", "%lsr", "%asr"):
        return _simplify_shift(op, args)
    if op in ("%eq", "%neq", "%le", "%ule"):
        return _simplify_compare(op, args)
    if op == "%nz":
        return _simplify_nz(args)
    return None


def _simplify_add(args: list[Node]) -> Node | None:
    a, b = args
    if _const(a) == 0 and _is_trivial(a):
        return b
    if _const(b) == 0:
        return a
    # Reassociate (x + c1) + c2 -> x + (c1+c2); likewise with %sub inside.
    cb = _const(b)
    if cb is not None:
        inner = _peel_add_const(a)
        if inner is not None:
            base, c1 = inner
            return _add_const(base, wrap(c1 + cb))
    ca = _const(a)
    if ca is not None:
        inner = _peel_add_const(b)
        if inner is not None:
            base, c1 = inner
            return _add_const(base, wrap(c1 + ca))
    return None


def _simplify_sub(args: list[Node]) -> Node | None:
    a, b = args
    if _const(b) == 0:
        return a
    if _same_var(a, b):
        return Const(0)
    cb = _const(b)
    if cb is not None:
        # x - c -> x + (-c), which reassociates with other constants.
        return _simplify_add([a, Const(wrap(-cb))]) or Prim(
            "%add", [a, Const(wrap(-cb))]
        )
    return None


def _peel_add_const(node: Node) -> tuple[Node, int] | None:
    """Match ``(%add base c)`` / ``(%add c base)`` returning (base, c)."""
    if isinstance(node, Prim) and node.op == "%add":
        left, right = node.args
        if isinstance(right, Const):
            return left, right.value
        if isinstance(left, Const):
            return right, left.value
    return None


def _add_const(base: Node, constant: int) -> Node:
    if constant == 0:
        return base
    return Prim("%add", [base, Const(constant)])


def _simplify_mul(args: list[Node]) -> Node | None:
    a, b = args
    for x, y in ((a, b), (b, a)):
        c = _const(x)
        if c == 1:
            return y
        if c == 0 and _is_trivial(y):
            return Const(0)
    return None


def _simplify_and(args: list[Node]) -> Node | None:
    a, b = args
    for x, y in ((a, b), (b, a)):
        c = _const(x)
        if c == 0 and _is_trivial(y):
            return Const(0)
        if c == _ALL_ONES:
            return y
    if _same_var(a, b):
        return a
    # (x & c1) & c2 -> x & (c1 & c2)
    cb = _const(b)
    if cb is not None and isinstance(a, Prim) and a.op == "%and":
        inner_c = _const(a.args[1])
        if inner_c is not None:
            return Prim("%and", [a.args[0], Const(inner_c & cb)])
    # ((x | c) & m) -> (x & m) when c contributes no bits under the mask
    # (tag tests over or-combined operands where one side is constant).
    if cb is not None and isinstance(a, Prim) and a.op == "%or":
        left, right = a.args
        inner_c = _const(right)
        if inner_c is not None and inner_c & cb == 0:
            return Prim("%and", [left, Const(cb)])
        inner_c = _const(left)
        if inner_c is not None and inner_c & cb == 0:
            return Prim("%and", [right, Const(cb)])
    return None


def _simplify_or(args: list[Node]) -> Node | None:
    a, b = args
    for x, y in ((a, b), (b, a)):
        c = _const(x)
        if c == 0:
            return y
        if c == _ALL_ONES and _is_trivial(y):
            return Const(_ALL_ONES)
    if _same_var(a, b):
        return a
    return None


def _simplify_xor(args: list[Node]) -> Node | None:
    a, b = args
    for x, y in ((a, b), (b, a)):
        if _const(x) == 0:
            return y
    if _same_var(a, b):
        return Const(0)
    return None


def _simplify_shift(op: str, args: list[Node]) -> Node | None:
    a, b = args
    shift = _const(b)
    if shift is None:
        return None
    shift &= 63
    if shift == 0:
        return a
    if isinstance(a, Prim):
        # (lsl (lsl x m) n) -> (lsl x (m+n)); same for lsr.
        if a.op == op and op in ("%lsl", "%lsr"):
            inner = _const(a.args[1])
            if inner is not None:
                total = (inner & 63) + shift
                if total >= 64:
                    return Const(0)
                return Prim(op, [a.args[0], Const(total)])
        # (lsl (asr x n) n) and (lsl (lsr x n) n) -> (and x ~(2^n-1)):
        # retag-after-untag, the hot pattern in fixnum/vector code.  For
        # asr this is exact because the top bits shifted back in are
        # discarded by the left shift.
        if op == "%lsl" and a.op in ("%asr", "%lsr"):
            inner = _const(a.args[1])
            if inner is not None and (inner & 63) == shift:
                mask = wrap(_ALL_ONES << shift)
                return Prim("%and", [a.args[0], Const(mask)])
    return None


def _simplify_compare(op: str, args: list[Node]) -> Node | None:
    a, b = args
    if _same_var(a, b):
        return Const(1 if op in ("%eq", "%le", "%ule") else 0)
    if op == "%neq" and _const(b) == 0:
        return Prim("%nz", [a])
    if op == "%neq" and _const(a) == 0:
        return Prim("%nz", [b])
    return None


def _simplify_nz(args: list[Node]) -> Node | None:
    (a,) = args
    # (%nz cmp) is the identity on comparison results.
    if isinstance(a, Prim):
        from ..prims import spec

        if spec(a.op).comparison:
            return a
    return None


def branch_test(test: Node) -> tuple[Node, bool]:
    """Normalise an If test; returns (new_test, swapped).

    ``swapped`` means the branches must be exchanged.  Handles
    ``(%eq e 0)`` → not-e, ``(%nz e)`` → e, and tests that are
    two-constant Ifs (``(if c 1 0)`` → c).
    """
    swapped = False
    changed = True
    while changed:
        changed = False
        if isinstance(test, Prim) and test.op == "%nz":
            test = test.args[0]
            changed = True
            continue
        if isinstance(test, Prim) and test.op == "%eq":
            left, right = test.args
            if _const(right) == 0:
                test = left
                swapped = not swapped
                changed = True
                continue
            if _const(left) == 0:
                test = right
                swapped = not swapped
                changed = True
                continue
        if isinstance(test, Prim) and test.op == "%neq":
            left, right = test.args
            if _const(right) == 0:
                test = left
                changed = True
                continue
            if _const(left) == 0:
                test = right
                changed = True
                continue
        if isinstance(test, If):
            then_c = _const(test.then)
            else_c = _const(test.els)
            if then_c is not None and else_c is not None:
                if then_c != 0 and else_c == 0:
                    test = test.test
                    changed = True
                    continue
                if then_c == 0 and else_c != 0:
                    test = test.test
                    swapped = not swapped
                    changed = True
                    continue
    return test, swapped
