"""Fixing letrec (Waddell/Ghuloum-Dybvig style, simplified).

``Letrec`` nodes from the expander are partitioned into:

* **unreferenced** bindings — kept only for their init's effect;
* **simple** bindings — inits that are pure and do not reference any of
  the letrec-bound variables: become an ordinary ``Let``;
* **lambda** bindings (unassigned) — become a :class:`Fix`, the form the
  inliner and backend understand;
* **complex** bindings — bound to a placeholder and initialised with
  ``set!`` in order (letrec* semantics); assignment conversion later
  boxes them.
"""

from __future__ import annotations

from ..ir import (
    Const,
    Fix,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    Node,
    Program,
    Seq,
    free_vars,
    is_pure,
    make_seq,
    map_children,
)
from ..ir.nodes import LocalVar


def fix_letrec_program(program: Program) -> Program:
    return Program([fix_letrec(form) for form in program.forms], program.globals)


def fix_letrec(node: Node) -> Node:
    node = map_children(node, fix_letrec)
    if not isinstance(node, Letrec):
        return node
    return _fix_one(node)


def _fix_one(node: Letrec) -> Node:
    bound = {var for var, _ in node.bindings}
    body_free = free_vars(node.body)
    init_free = [free_vars(init) for _, init in node.bindings]
    referenced: set[LocalVar] = set()
    for var in bound:
        if var in body_free or any(var in fv for fv in init_free):
            referenced.add(var)

    simple: list[tuple[LocalVar, Node]] = []
    lambdas: list[tuple[LocalVar, Lambda]] = []
    complex_: list[tuple[LocalVar, Node]] = []
    effects: list[Node] = []

    for (var, init), fv in zip(node.bindings, init_free):
        if var not in referenced:
            if not is_pure(init):
                # Evaluated in binding order together with the complex
                # initialisations below.
                complex_.append((var, init))
            continue
        if isinstance(init, Lambda) and not var.assigned:
            lambdas.append((var, init))
        elif is_pure(init) and not (fv & bound):
            simple.append((var, init))
        else:
            complex_.append((var, init))

    body: Node = node.body
    if complex_:
        assignments: list[Node] = []
        for var, init in complex_:
            if var in referenced:
                var.assigned = True
                assignments.append(LocalSet(var, init))
            else:
                assignments.append(init)
        body = make_seq(assignments + [body])
    if lambdas:
        body = Fix(lambdas, body)
    outer_bindings = simple + [
        (var, Const(0)) for var, _ in complex_ if var in referenced
    ]
    if outer_bindings:
        body = Let(outer_bindings, body)
    return body
