"""Dead-code elimination: unused local bindings and unreferenced
top-level definitions.

Works bottom-up, returning the set of locals each rewritten subtree still
uses, so dropping one binding can cascade within a single pass.
"""

from __future__ import annotations

from ..ir import (
    Call,
    Const,
    Fix,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    LocalVar,
    Node,
    Prim,
    Program,
    Seq,
    Var,
    census_program,
    is_removable,
    make_seq,
)


class DeadCodeEliminator:
    def __init__(self, defined_globals: set[str]):
        self.defined = defined_globals
        self.changed = False

    def run(self, program: Program, start: int = 0) -> Program:
        forms = list(program.forms[:start])
        for form in program.forms[start:]:
            new_form, _ = self.walk(form)
            forms.append(new_form)
        return Program(forms, program.globals)

    def walk(self, node: Node) -> tuple[Node, set[LocalVar]]:
        if isinstance(node, Const):
            return node, set()
        if isinstance(node, Var):
            return node, {node.var}
        if isinstance(node, GlobalRef):
            return node, set()
        if isinstance(node, GlobalSet):
            value, used = self.walk(node.value)
            return GlobalSet(node.name, value), used
        if isinstance(node, LocalSet):
            value, used = self.walk(node.value)
            return LocalSet(node.var, value), used | {node.var}
        if isinstance(node, If):
            test, u1 = self.walk(node.test)
            then, u2 = self.walk(node.then)
            els, u3 = self.walk(node.els)
            return If(test, then, els), u1 | u2 | u3
        if isinstance(node, Seq):
            return self._walk_seq(node)
        if isinstance(node, Let):
            return self._walk_let(node)
        if isinstance(node, Fix):
            return self._walk_fix(node)
        if isinstance(node, Letrec):
            used: set[LocalVar] = set()
            bindings = []
            for var, expr in node.bindings:
                new_expr, u = self.walk(expr)
                bindings.append((var, new_expr))
                used |= u
            body, u = self.walk(node.body)
            used |= u
            used -= {var for var, _ in node.bindings}
            return Letrec(bindings, body), used
        if isinstance(node, Lambda):
            body, used = self.walk(node.body)
            used -= set(node.params)
            if node.rest is not None:
                used.discard(node.rest)
            return Lambda(node.params, node.rest, body, node.name), used
        if isinstance(node, Call):
            fn, used = self.walk(node.fn)
            args = []
            for arg in node.args:
                new_arg, u = self.walk(arg)
                args.append(new_arg)
                used |= u
            return Call(fn, args), used
        if isinstance(node, Prim):
            used = set()
            args = []
            for arg in node.args:
                new_arg, u = self.walk(arg)
                args.append(new_arg)
                used |= u
            return Prim(node.op, args), used
        raise TypeError(f"dce: unknown node {type(node).__name__}")

    def _walk_seq(self, node: Seq) -> tuple[Node, set[LocalVar]]:
        exprs: list[Node] = []
        used: set[LocalVar] = set()
        walked = [self.walk(expr) for expr in node.exprs]
        for new_expr, u in walked[:-1]:
            if is_removable(new_expr, self.defined):
                self.changed = True
                continue
            exprs.append(new_expr)
            used |= u
        final, u = walked[-1]
        exprs.append(final)
        used |= u
        return make_seq(exprs), used

    def _walk_let(self, node: Let) -> tuple[Node, set[LocalVar]]:
        body, used = self.walk(node.body)
        kept: list[tuple[LocalVar, Node]] = []
        dropped_effects: list[Node] = []
        for var, init in node.bindings:
            new_init, init_used = self.walk(init)
            if var not in used and not var.assigned:
                if is_removable(new_init, self.defined):
                    self.changed = True
                    continue
                # Keep the effect but not the binding.
                dropped_effects.append(new_init)
                used |= init_used
                self.changed = True
                continue
            kept.append((var, new_init))
            used |= init_used
        result: Node = body if not kept else Let(kept, body)
        if dropped_effects:
            # Bindings evaluate before the body; effects must too.  When
            # some bindings are kept this conservatively moves the
            # dropped effects before them, which is safe because Let is
            # parallel (no binding is visible to a sibling init).
            result = make_seq(dropped_effects + [result])
        return result, used

    def _walk_fix(self, node: Fix) -> tuple[Node, set[LocalVar]]:
        body, body_used = self.walk(node.body)
        walked = {var: self.walk(lam) for var, lam in node.bindings}
        # Keep exactly the lambdas reachable from the body.
        needed: set[LocalVar] = set()
        frontier = [var for var, _ in node.bindings if var in body_used]
        while frontier:
            var = frontier.pop()
            if var in needed:
                continue
            needed.add(var)
            _, lam_used = walked[var]
            frontier.extend(
                other for other, _ in node.bindings if other in lam_used
            )
        bindings = []
        used = set(body_used)
        for var, _ in node.bindings:
            if var not in needed:
                self.changed = True
                continue
            new_lam, lam_used = walked[var]
            assert isinstance(new_lam, Lambda)
            bindings.append((var, new_lam))
            used |= lam_used
        used -= {var for var, _ in node.bindings}
        if not bindings:
            return body, used
        return Fix(bindings, body), used


def dce_program(
    program: Program, defined_globals: set[str], start: int = 0
) -> tuple[Program, bool]:
    eliminator = DeadCodeEliminator(defined_globals)
    result = eliminator.run(program, start=start)
    return result, eliminator.changed


def prune_globals(program: Program, keep: set[str] | None = None) -> Program:
    """Iteratively delete top-level definitions nobody references."""
    keep = keep or set()
    forms = list(program.forms)
    while True:
        census = census_program(Program(forms, program.globals))
        defined = {n for n, i in census.globals.items() if i.assignments >= 1}
        removed = False
        new_forms = []
        for form in forms:
            if (
                isinstance(form, GlobalSet)
                and form.name not in keep
                and census.globals[form.name].references == 0
                and census.globals[form.name].assignments == 1
                and is_removable(form.value, defined)
            ):
                removed = True
                continue
            new_forms.append(form)
        forms = new_forms
        if not removed:
            break
    live = {form.name for form in forms if isinstance(form, GlobalSet)}
    globals_order = [name for name in program.globals if name in live]
    return Program(forms, globals_order)
