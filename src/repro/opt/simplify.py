"""The main optimizing pass: fold + propagate + beta + inline + branch
simplification, in one environment-carrying walk.

This pass embodies the paper's claim: it contains *no knowledge of data
representations* — only generally-useful transformations — yet applied to
the representation-type prelude it reduces ``(car x)`` to a single load.

Transformations (each independently switchable for the ablation bench):

* constant folding of machine primitives (exact VM semantics);
* algebraic simplification (see :mod:`repro.opt.algebra`);
* copy/constant propagation through ``let`` of constants, variables, and
  immutable globals;
* beta reduction: ``((lambda (x...) body) a...)`` → ``let``;
* inlining of known procedures — locally ``let``/``fix``-bound lambdas
  and top-level procedures defined once — guarded by a size budget, a
  recursion (SCC) check, and a depth bound;
* branch simplification: known tests, test normalisation, distribution
  of primitives over two-constant ``if`` arms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import prims
from ..ir import (
    Call,
    Census,
    Const,
    Fix,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    LocalVar,
    Node,
    Prim,
    Program,
    Seq,
    Var,
    census_program,
    free_vars,
    make_seq,
    node_size,
)
from ..ir.transform import copy_node
from ..prims import FoldCannot
from .algebra import branch_test, simplify_prim


@dataclass
class OptimizerOptions:
    """Switches and budgets for the optimizer pipeline."""

    inline: bool = True
    fold: bool = True
    algebra: bool = True
    cse: bool = True
    dce: bool = True
    #: flow-sensitive check elimination (tag/range abstract interpretation)
    absint: bool = True
    #: interprocedural unboxing: function summaries + heap-field facts
    #: feed a final check-elision/untag-retag-cancellation pass
    #: (part of the abstract-interpretation framework — requires absint)
    unbox: bool = True
    #: max body size (IR nodes) for multi-use inlining
    max_inline_size: int = 100
    #: max nesting of inline expansions within one walk
    max_inline_depth: int = 30
    #: optimization rounds (simplify → cse → dce)
    rounds: int = 4
    #: drop unreferenced top-level definitions at the end
    prune_globals: bool = True
    #: run the IR well-formedness checker after every pass (debugging)
    validate: bool = False

    @classmethod
    def none(cls) -> "OptimizerOptions":
        """Everything off: the 'unoptimized' configuration of the paper."""
        return cls(
            inline=False,
            fold=False,
            algebra=False,
            cse=False,
            dce=False,
            absint=False,
            unbox=False,
            rounds=1,
            prune_globals=True,
        )

    def without(self, feature: str) -> "OptimizerOptions":
        """A copy with one transformation disabled (ablation benches)."""
        options = OptimizerOptions(**self.__dict__)
        if not hasattr(options, feature):
            raise ValueError(f"unknown optimizer feature {feature!r}")
        setattr(options, feature, False)
        return options


class GlobalFacts:
    """Per-round knowledge about top-level variables."""

    def __init__(self, program: Program, census: Census):
        self.census = census
        self.defined: set[str] = {
            name for name, info in census.globals.items() if info.assignments >= 1
        }
        #: names defined exactly once (safe to treat as immutable)
        self.immutable: set[str] = {
            name for name, info in census.globals.items() if info.assignments == 1
        }
        self.constants: dict[str, int] = {}
        self.lambdas: dict[str, Lambda] = {}
        for form in program.forms:
            if isinstance(form, GlobalSet) and form.name in self.immutable:
                if isinstance(form.value, Const):
                    self.constants[form.name] = form.value.value
                elif isinstance(form.value, Lambda):
                    self.lambdas[form.name] = form.value
        self.non_inlinable = self._recursive_globals()

    def _recursive_globals(self) -> set[str]:
        """Globals whose known-lambda definitions sit on a reference
        cycle; inlining them would unroll recursion indefinitely."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.lambdas)
        for name, lam in self.lambdas.items():
            for target in _referenced_globals(lam):
                if target in self.lambdas:
                    graph.add_edge(name, target)
        out: set[str] = set()
        for scc in nx.strongly_connected_components(graph):
            if len(scc) > 1:
                out.update(scc)
            else:
                (only,) = scc
                if graph.has_edge(only, only):
                    out.add(only)
        return out


def _referenced_globals(node: Node) -> set[str]:
    out: set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, GlobalRef):
            out.add(current.name)
        stack.extend(current.children())
    return out


class Simplifier:
    """One simplify pass over a program."""

    def __init__(self, options: OptimizerOptions, facts: GlobalFacts):
        self.options = options
        self.facts = facts
        self.changed = False
        # substitution environment: LocalVar -> replacement node template
        self.subst: dict[LocalVar, Node] = {}
        # known local procedures: LocalVar -> (Lambda, inlinable)
        self.local_lambdas: dict[LocalVar, Lambda] = {}
        self.inline_stack: list[object] = []

    # ------------------------------------------------------------------

    def run(self, program: Program, start: int = 0) -> Program:
        forms = program.forms[:start] + [
            self.simplify_top(form) for form in program.forms[start:]
        ]
        return Program(forms, program.globals)

    def simplify_top(self, form: Node) -> Node:
        if isinstance(form, GlobalSet):
            value = self.simplify(form.value)
            # Later forms in the same round benefit immediately.
            if form.name in self.facts.immutable:
                if isinstance(value, Const):
                    self.facts.constants[form.name] = value.value
                elif isinstance(value, Lambda):
                    self.facts.lambdas.setdefault(form.name, value)
            return GlobalSet(form.name, value)
        return self.simplify(form)

    # ------------------------------------------------------------------

    def simplify(self, node: Node) -> Node:
        if isinstance(node, Const):
            return node
        if isinstance(node, Var):
            replacement = self.subst.get(node.var)
            if replacement is None:
                return node
            self.changed = True
            return self.simplify(_instantiate(replacement))
        if isinstance(node, GlobalRef):
            if self.options.fold and node.name in self.facts.constants:
                self.changed = True
                return Const(self.facts.constants[node.name])
            return node
        if isinstance(node, GlobalSet):
            return GlobalSet(node.name, self.simplify(node.value))
        if isinstance(node, LocalSet):
            return LocalSet(node.var, self.simplify(node.value))
        if isinstance(node, Prim):
            return self._simplify_prim_node(node)
        if isinstance(node, If):
            return self._simplify_if(node)
        if isinstance(node, Seq):
            return self._simplify_seq(node)
        if isinstance(node, Let):
            return self._simplify_let(node)
        if isinstance(node, Fix):
            return self._simplify_fix(node)
        if isinstance(node, Letrec):
            # letrec fixing runs before optimization; tolerate stragglers.
            return Letrec(
                [(var, self.simplify(expr)) for var, expr in node.bindings],
                self.simplify(node.body),
            )
        if isinstance(node, Lambda):
            body = self.simplify(node.body)
            return Lambda(node.params, node.rest, body, node.name)
        if isinstance(node, Call):
            return self._simplify_call(node)
        raise TypeError(f"simplify: unknown node {type(node).__name__}")

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------

    def _simplify_prim_node(self, node: Prim) -> Node:
        args = [self.simplify(arg) for arg in node.args]
        if self.options.fold:
            hoisted = self._hoist_block_arg(node.op, args)
            if hoisted is not None:
                self.changed = True
                return self.simplify(hoisted)
        return self._rebuild_prim(node.op, args)

    def _hoist_block_arg(self, op: str, args: list[Node]) -> Node | None:
        """Float a Seq/Let argument out of a primitive application:
        ``(%op c (begin es… v))`` → ``(begin es… (%op c v))`` — the step
        that exposes an inlined predicate's result to branch folding.
        Only fires when every argument before the block is trivially
        movable (constants and variables)."""
        def movable(node: Node) -> bool:
            # Reads of assigned variables are ordered w.r.t. set!s and
            # must not swap with the block's statements.
            return isinstance(node, Const) or (
                isinstance(node, Var) and not node.var.assigned
            )

        for i, arg in enumerate(args):
            if isinstance(arg, (Seq, Let)):
                if not all(movable(a) for a in args[:i]):
                    return None
                if isinstance(arg, Seq):
                    new_args = list(args)
                    new_args[i] = arg.exprs[-1]
                    return make_seq(arg.exprs[:-1] + [Prim(op, new_args)])
                new_args = list(args)
                new_args[i] = arg.body
                return Let(arg.bindings, Prim(op, new_args))
            if not movable(arg):
                return None
        return None

    def _rebuild_prim(self, op: str, args: list[Node]) -> Node:
        spec = prims.spec(op)
        if self.options.fold and spec.fold is not None and all(
            isinstance(arg, Const) for arg in args
        ):
            try:
                value = spec.fold(*[arg.value for arg in args])
            except FoldCannot:
                pass
            else:
                self.changed = True
                return Const(value)
        if self.options.algebra:
            rewritten = simplify_prim(op, args)
            if rewritten is not None:
                self.changed = True
                if isinstance(rewritten, Prim):
                    return self._rebuild_prim(rewritten.op, rewritten.args)
                return self.simplify(rewritten) if not isinstance(
                    rewritten, (Const, Var)
                ) else rewritten
            distributed = self._distribute_over_if(op, args, spec)
            if distributed is not None:
                self.changed = True
                return distributed
        return Prim(op, args)

    def _distribute_over_if(
        self, op: str, args: list[Node], spec: prims.PrimSpec
    ) -> Node | None:
        """(%op k.. (if c K1 K2) k..) with constant everything else
        becomes (if c (%op.. K1..) (%op.. K2..)) — the step that turns an
        inlined boolean-returning predicate back into a branch."""
        if not spec.pure:
            return None
        if_index = None
        for i, arg in enumerate(args):
            if isinstance(arg, If):
                if (
                    isinstance(arg.then, Const)
                    and isinstance(arg.els, Const)
                    and if_index is None
                ):
                    if_index = i
                else:
                    return None
            elif not isinstance(arg, Const):
                return None
        if if_index is None:
            return None
        branch = args[if_index]
        then_args = list(args)
        then_args[if_index] = branch.then
        else_args = list(args)
        else_args[if_index] = branch.els
        return If(
            branch.test,
            self._rebuild_prim(op, then_args),
            self._rebuild_prim(op, else_args),
        )

    # ------------------------------------------------------------------
    # conditionals
    # ------------------------------------------------------------------

    def _simplify_if(self, node: If) -> Node:
        test = self.simplify(node.test)
        if self.options.fold and isinstance(test, Seq):
            self.changed = True
            return self.simplify(
                make_seq(test.exprs[:-1] + [If(test.exprs[-1], node.then, node.els)])
            )
        if self.options.fold and isinstance(test, Let):
            self.changed = True
            return self.simplify(
                Let(test.bindings, If(test.body, node.then, node.els))
            )
        then, els = node.then, node.els
        if self.options.algebra or self.options.fold:
            test, swapped = branch_test(test)
            if swapped:
                then, els = els, then
        if isinstance(test, Const) and self.options.fold:
            self.changed = True
            return self.simplify(then if test.value != 0 else els)
        then_node = self.simplify(then)
        else_node = self.simplify(els)
        if (
            self.options.fold
            and isinstance(then_node, Const)
            and isinstance(else_node, Const)
            and then_node.value == else_node.value
            and _droppable(test)
        ):
            self.changed = True
            return then_node
        return If(test, then_node, else_node)

    # ------------------------------------------------------------------
    # sequencing and binding
    # ------------------------------------------------------------------

    def _simplify_seq(self, node: Seq) -> Node:
        exprs: list[Node] = []
        simplified = [self.simplify(expr) for expr in node.exprs]
        for expr in simplified[:-1]:
            if isinstance(expr, Seq):
                exprs.extend(expr.exprs)
            else:
                exprs.append(expr)
        exprs.append(simplified[-1])
        if self.options.dce:
            kept = [
                expr
                for expr in exprs[:-1]
                if not _droppable_with_globals(expr, self.facts.defined)
            ]
            if len(kept) != len(exprs) - 1:
                self.changed = True
            exprs = kept + [exprs[-1]]
        return make_seq(exprs)

    def _simplify_let(self, node: Let) -> Node:
        kept: list[tuple[LocalVar, Node]] = []
        for var, init in node.bindings:
            init = self.simplify(init)
            if not var.assigned and self._propagatable(init):
                self.subst[var] = init
                self.changed = True
                continue
            if isinstance(init, Lambda) and not var.assigned:
                self.local_lambdas[var] = init
            kept.append((var, init))
        body = self.simplify(node.body)
        if not kept:
            return body
        if (
            isinstance(body, Var)
            and len(kept) == 1
            and body.var is kept[0][0]
            and not kept[0][0].assigned
        ):
            self.changed = True
            return kept[0][1]
        # Forward single-use pure bindings into the body (outside any
        # lambda), so e.g. (let ((t (%add a 16))) (%add t 16)) exposes
        # reassociation.  Pure inits may move freely.
        if self.options.fold:
            remaining: list[tuple[LocalVar, Node]] = []
            for var, init in kept:
                if (
                    not var.assigned
                    and _is_pure(init)
                    # Reads of assigned variables are ordered with
                    # respect to their set!s: they must not move.
                    and not _references_assigned(init)
                    and _count_direct_uses(body, var) == 1
                ):
                    body = _substitute_once(body, var, init)
                    self.changed = True
                else:
                    remaining.append((var, init))
            kept = remaining
            # Exposed redexes are picked up by the next round.
            if not kept:
                return body
        return Let(kept, body)

    def _propagatable(self, init: Node) -> bool:
        if not self.options.fold:
            return False
        if isinstance(init, Const):
            return True
        if isinstance(init, Var) and not init.var.assigned:
            return True
        if isinstance(init, GlobalRef) and init.name in self.facts.immutable:
            return True
        return False

    def _simplify_fix(self, node: Fix) -> Node:
        fix_vars = {var for var, _ in node.bindings}
        bindings: list[tuple[LocalVar, Lambda]] = []
        for var, lam in node.bindings:
            new_lam = self.simplify(lam)
            assert isinstance(new_lam, Lambda)
            if not (free_vars(new_lam) & fix_vars):
                # Non-recursive: eligible for inlining at call sites.
                self.local_lambdas[var] = new_lam
            bindings.append((var, new_lam))
        body = self.simplify(node.body)
        return Fix(bindings, body)

    # ------------------------------------------------------------------
    # calls, beta, inlining
    # ------------------------------------------------------------------

    def _simplify_call(self, node: Call) -> Node:
        fn = self.simplify(node.fn)
        args = [self.simplify(arg) for arg in node.args]
        if isinstance(fn, Lambda) and fn.rest is None and len(fn.params) == len(args):
            self.changed = True
            return self.simplify(Let(list(zip(fn.params, args)), fn.body))
        if self.options.inline:
            inlined = self._try_inline(fn, args)
            if inlined is not None:
                self.changed = True
                return inlined
        return Call(fn, args)

    def _try_inline(self, fn: Node, args: list[Node]) -> Node | None:
        lam: Lambda | None = None
        key: object = None
        single_use = False
        census = self.facts.census
        if isinstance(fn, Var):
            lam = self.local_lambdas.get(fn.var)
            key = fn.var
            if lam is not None:
                info = census.locals.get(fn.var)
                single_use = info is not None and info.references == 1
        elif isinstance(fn, GlobalRef):
            if fn.name in self.facts.non_inlinable:
                return None
            lam = self.facts.lambdas.get(fn.name)
            key = fn.name
            info = census.globals.get(fn.name)
            single_use = info is not None and info.references == 1
        if lam is None:
            return None
        if lam.rest is not None or len(lam.params) != len(args):
            return None
        if key in self.inline_stack:
            return None
        if len(self.inline_stack) >= self.options.max_inline_depth:
            return None
        if node_size(lam.body) > self.options.max_inline_size and not single_use:
            return None
        fresh = copy_node(lam)
        assert isinstance(fresh, Lambda)
        self.inline_stack.append(key)
        try:
            result = self.simplify(Let(list(zip(fresh.params, args)), fresh.body))
        finally:
            self.inline_stack.pop()
        return result


def _is_pure(node: Node) -> bool:
    from ..ir import is_pure

    return is_pure(node)


def _references_assigned(node: Node) -> bool:
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Var) and current.var.assigned:
            return True
        stack.extend(current.children())
    return False


def _count_direct_uses(node: Node, var: LocalVar) -> int:
    """Occurrences of ``var`` outside lambda bodies (capped at 2).

    Any occurrence under a lambda counts as 2, blocking forwarding: a
    forwarded init would otherwise be re-evaluated per call.
    """
    count = 0
    stack = [node]
    while stack and count < 2:
        current = stack.pop()
        if isinstance(current, Var) and current.var is var:
            count += 1
        elif isinstance(current, LocalSet) and current.var is var:
            return 2
        elif isinstance(current, (Lambda, Fix)):
            if var in free_vars(current):
                return 2
        else:
            stack.extend(current.children())
    return count


def _substitute_once(node: Node, var: LocalVar, init: Node) -> Node:
    """Replace the single direct occurrence of ``var`` with ``init``."""
    from ..ir import map_children

    if isinstance(node, Var) and node.var is var:
        return init
    if isinstance(node, (Lambda, Fix)):
        return node
    return map_children(node, lambda child: _substitute_once(child, var, init))


def _instantiate(template: Node) -> Node:
    if isinstance(template, Const):
        return Const(template.value)
    if isinstance(template, Var):
        return Var(template.var)
    if isinstance(template, GlobalRef):
        return GlobalRef(template.name)
    raise TypeError(f"non-template substitution {type(template).__name__}")


def _droppable(node: Node) -> bool:
    from ..ir import is_removable

    return is_removable(node)


def _droppable_with_globals(node: Node, defined: set[str]) -> bool:
    from ..ir import is_removable

    return is_removable(node, defined)
