"""The interprocedural unboxing / check-elision pass (``unbox``).

``checkelim`` spends the abstract interpreter's facts one top-level form
at a time; this pass spends the *whole-program* facts computed by
:mod:`repro.absint.summaries`:

* **summary-decided branches** — a safety check inside a procedure whose
  call sites all pass, say, tag-0 fixnums is decided by the parameter
  summary and deleted, and a check downstream of a call folds when the
  callee's result summary guarantees it;
* **heap-fact folds** — a ``%load`` of a field proven immutable-and-
  immediate (e.g. a vector's length word, always ``(%lsl n 3)``) carries
  tag 0, deciding the tag probes that guard arithmetic on it;
* **untag/retag cancellation** — ``(%asr (%lsl x 3) 3)`` round trips and
  ``(%and i -8)`` masks recorded by the analyzer as ``replacements``
  collapse to their operand when the value flow proves the bits cannot
  change (scalar replacement of the boxing traffic itself).

The pass reuses the decided/fold/reduction application logic of
:mod:`repro.opt.checkelim` and adds the replacement shapes on top.  It
runs once after the main optimizer rounds: the fixpoint is expensive
relative to a syntactic pass, and the main rounds must first inline the
prelude's check idioms for the summaries to see them.
"""

from __future__ import annotations

from ..absint.summaries import ProgramSummaries, summarize_program
from ..ir import Node, Prim, Program, is_pure, make_seq
from .checkelim import _Rewriter as _CheckelimRewriter


def unbox_program(
    program: Program, start: int = 0, open_world: bool = False
) -> tuple[Program, bool, ProgramSummaries]:
    """Apply summary-driven rewrites to every form from ``start``."""
    summaries = summarize_program(program, start=start, open_world=open_world)
    forms: list[Node] = list(program.forms[:start])
    changed = False
    for (_label, analyzer), form in zip(
        summaries.analyzers, program.forms[start:]
    ):
        if _has_wins(analyzer):
            rewriter = _Rewriter(analyzer)
            forms.append(rewriter.rewrite(form))
            changed |= rewriter.changed
        else:
            forms.append(form)
    if not changed:
        return program, False, summaries
    return Program(forms, program.globals), True, summaries


def _has_wins(analyzer) -> bool:
    return (
        any(truth is not None for truth in analyzer.decided.values())
        or any(word is not None for word in analyzer.folds.values())
        or any(red is not None for red in analyzer.reductions.values())
        or any(rep is not None for rep in analyzer.replacements.values())
    )


class _Rewriter(_CheckelimRewriter):
    """checkelim's rewriter plus the unbox replacement shapes."""

    def rewrite(self, node: Node) -> Node:
        if isinstance(node, Prim):
            replacement = self.analyzer.replacements.get(id(node))
            if replacement is not None:
                # folds/decisions outrank replacements, mirroring the
                # recording side (a replacement is only recorded when
                # the result did not fold).
                if self.analyzer.folds.get(id(node)) is None:
                    rewritten = self._apply_replacement(node, replacement)
                    if rewritten is not None:
                        self.changed = True
                        return rewritten
        return super().rewrite(node)

    def _apply_replacement(self, node: Prim, replacement: tuple) -> Node | None:
        kind = replacement[0]
        if kind == "arg":
            # (%and x m) → x; the dropped mask operand is a Const.
            keep = replacement[1]
            kept = self.rewrite(node.args[keep])
            effects = [
                self.rewrite(arg)
                for i, arg in enumerate(node.args)
                if i != keep and not is_pure(arg)
            ]
            return make_seq(effects + [kept])
        if kind == "narrow-or":
            # (%and (%or a b) m) → (%and kept m); the dropped side was
            # proven pure with its masked bits all zero.
            keep = replacement[1]
            inner = node.args[0]
            if not (isinstance(inner, Prim) and inner.op == "%or"):
                return None
            kept = self.rewrite(inner.args[keep])
            return Prim(node.op, [kept, self.rewrite(node.args[1])])
        if kind == "unshift":
            # (%asr (%lsl x k) k) / (%lsl (%asr x k) k) → x.
            inner = node.args[0]
            if not isinstance(inner, Prim):
                return None
            return self.rewrite(inner.args[0])
        return None
