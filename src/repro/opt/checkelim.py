"""Flow-sensitive check elimination (the ``absint`` pass).

The syntactic dominating-check trick in :mod:`repro.opt.cse` removes a
safety check only when an *identical* check expression dominates it.
That misses flow facts: a loop counter initialised to a fixnum constant
and bumped with ``%add i 8`` keeps tag 0 forever, so the prelude's
``(if (%and i 7) (%fail 8) …)`` guard can never fire — but no dominating
occurrence of ``(%and i 7)`` exists for CSE to key on.

This pass runs the abstract interpreter of :mod:`repro.absint` over each
top-level form and consumes its three result maps:

* **decided branches** — an ``If`` whose test is proven true/false
  collapses to the taken arm (keeping the test for effect when impure);
* **folds** — a pure primitive proven to yield one word becomes that
  constant (impure subexpressions are kept in a ``Seq``);
* **strength reductions** — ``%div``/``%mod`` by a power of two on a
  provably non-negative word drop to ``%lsr``/``%and``, and ``%asr`` of
  a non-negative word drops to ``%lsr``.

The pass is part of the optimizer fixpoint: earlier inlining exposes the
prelude's check idioms, CSE canonicalises them, and whatever survives
with a provable answer is folded here; the following DCE round sweeps
the dead tests.
"""

from __future__ import annotations

from ..absint.analyze import Analyzer
from ..ir import (
    Const,
    GlobalSet,
    If,
    Node,
    Prim,
    Program,
    is_pure,
    make_seq,
)
from ..ir.transform import map_children


def checkelim_program(program: Program, start: int = 0) -> tuple[Program, bool]:
    """Eliminate provably-decided checks in every form from ``start``."""
    forms: list[Node] = list(program.forms[:start])
    changed = False
    for form in program.forms[start:]:
        analyzer = Analyzer(form.name if isinstance(form, GlobalSet) else "<expr>")
        analyzer.analyze_form(form)
        if _has_wins(analyzer):
            rewriter = _Rewriter(analyzer)
            forms.append(rewriter.rewrite(form))
            changed |= rewriter.changed
        else:
            forms.append(form)
    if not changed:
        return program, False
    return Program(forms, program.globals), True


def _has_wins(analyzer: Analyzer) -> bool:
    return (
        any(truth is not None for truth in analyzer.decided.values())
        or any(word is not None for word in analyzer.folds.values())
        or any(red is not None for red in analyzer.reductions.values())
    )


class _Rewriter:
    """Apply one form's analysis results bottom-up."""

    def __init__(self, analyzer: Analyzer):
        self.analyzer = analyzer
        self.changed = False

    def rewrite(self, node: Node) -> Node:
        if isinstance(node, If):
            truth = self.analyzer.decided.get(id(node))
            if truth is not None:
                self.changed = True
                test = self.rewrite(node.test)
                arm = self.rewrite(node.then if truth else node.els)
                if is_pure(test):
                    return arm
                return make_seq([test, arm])
        if isinstance(node, Prim):
            word = self.analyzer.folds.get(id(node))
            if word is not None:
                self.changed = True
                effects = [
                    self.rewrite(arg) for arg in node.args if not is_pure(arg)
                ]
                return make_seq(effects + [Const(word)])
            reduction = self.analyzer.reductions.get(id(node))
            if reduction is not None and all(is_pure(arg) for arg in node.args):
                op, second = reduction
                self.changed = True
                left = self.rewrite(node.args[0])
                if second is None:
                    right = self.rewrite(node.args[1])
                else:
                    right = Const(second)
                return Prim(op, [left, right])
        return map_children(node, self.rewrite)
