"""Common-subexpression and dominating-check elimination.

Two related transformations share one walk:

* **available expressions** — a ``let``-bound pure (or read-only)
  expression makes later syntactically-identical inits reuse the bound
  variable.  Read-only entries are invalidated by stores, allocations,
  calls, and I/O.
* **dominating checks** — inside the arms of ``(if T …)`` with a pure
  test ``T``, the truth value of ``T`` is a known fact; identical nested
  tests fold to constants.  This is what removes the repeated tag checks
  of safe-mode accessors, e.g. ``(if (pair? x) (car x) …)``.
"""

from __future__ import annotations

from .. import prims
from ..ir import (
    Call,
    Const,
    Fix,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    Node,
    Prim,
    Program,
    Seq,
    Var,
    make_seq,
)

_CLOBBER_EFFECTS = {
    prims.Effect.WRITE,
    prims.Effect.ALLOC,
    prims.Effect.IO,
    prims.Effect.CONTROL,
}

Key = tuple


class _State:
    """Walk state: available expressions and known test facts."""

    __slots__ = ("available", "facts")

    def __init__(self, available: dict, facts: dict):
        self.available = available
        self.facts = facts

    def child(self) -> "_State":
        return _State(dict(self.available), dict(self.facts))

    def clobber_reads(self) -> None:
        self.available = {
            key: var for key, var in self.available.items() if not key_reads(key)
        }


def key_of(node: Node, immutable_globals: set[str]) -> Key | None:
    """A structural key for pure/read-only expressions; None otherwise."""
    if isinstance(node, Const):
        return ("const", node.value)
    if isinstance(node, Var):
        if node.var.assigned:
            return None
        return ("var", node.var.uid)
    if isinstance(node, GlobalRef):
        if node.name not in immutable_globals:
            return None
        return ("global", node.name)
    if isinstance(node, Prim):
        spec = prims.lookup(node.op)
        if spec is None or spec.effect not in (prims.Effect.PURE, prims.Effect.READ):
            return None
        child_keys = []
        for arg in node.args:
            child_key = key_of(arg, immutable_globals)
            if child_key is None:
                return None
            child_keys.append(child_key)
        return ("prim", node.op, tuple(child_keys))
    if isinstance(node, If):
        test = key_of(node.test, immutable_globals)
        then = key_of(node.then, immutable_globals)
        els = key_of(node.els, immutable_globals)
        if None in (test, then, els):
            return None
        return ("if", test, then, els)
    return None


def key_reads(key: Key) -> bool:
    if key[0] == "prim":
        if prims.spec(key[1]).effect is prims.Effect.READ:
            return True
        return any(key_reads(child) for child in key[2])
    if key[0] == "if":
        return any(key_reads(part) for part in key[1:])
    return False


class CSE:
    def __init__(self, immutable_globals: set[str]):
        self.immutable = immutable_globals
        self.changed = False

    def run(self, program: Program, start: int = 0) -> Program:
        forms = list(program.forms[:start])
        for form in program.forms[start:]:
            state = _State({}, {})
            new_form, _ = self.walk(form, state)
            forms.append(new_form)
        return Program(forms, program.globals)

    # The walk returns (node, clobbered) where clobbered means the
    # subtree may have invalidated read-only availability.
    def walk(self, node: Node, state: _State) -> tuple[Node, bool]:
        if isinstance(node, (Const, Var, GlobalRef)):
            return node, False
        if isinstance(node, GlobalSet):
            value, clobbered = self.walk(node.value, state)
            return GlobalSet(node.name, value), True
        if isinstance(node, LocalSet):
            value, clobbered = self.walk(node.value, state)
            return LocalSet(node.var, value), clobbered
        if isinstance(node, Prim):
            return self._walk_prim(node, state)
        if isinstance(node, If):
            return self._walk_if(node, state)
        if isinstance(node, Seq):
            clobbered = False
            exprs = []
            for expr in node.exprs:
                new_expr, c = self.walk(expr, state)
                exprs.append(new_expr)
                clobbered |= c
            return make_seq(exprs), clobbered
        if isinstance(node, Let):
            return self._walk_let(node, state)
        if isinstance(node, (Letrec, Fix)):
            cls = type(node)
            clobbered = False
            bindings = []
            for var, expr in node.bindings:
                new_expr, c = self.walk(expr, state)
                bindings.append((var, new_expr))
                clobbered |= c
            body, c = self.walk(node.body, state)
            return cls(bindings, body), clobbered | c
        if isinstance(node, Lambda):
            # A lambda body runs later, under unknown heap state: fresh
            # read availability, but pure facts from enclosing scope
            # still hold (its free variables are immutable bindings).
            inner = _State(
                {k: v for k, v in state.available.items() if not key_reads(k)},
                dict(state.facts),
            )
            body, _ = self.walk(node.body, inner)
            return Lambda(node.params, node.rest, body, node.name), False
        if isinstance(node, Call):
            fn, c1 = self.walk(node.fn, state)
            clobbered = c1
            args = []
            for arg in node.args:
                new_arg, c = self.walk(arg, state)
                args.append(new_arg)
                clobbered |= c
            state.clobber_reads()
            return Call(fn, args), True
        raise TypeError(f"cse: unknown node {type(node).__name__}")

    def _walk_prim(self, node: Prim, state: _State) -> tuple[Node, bool]:
        clobbered = False
        args = []
        for arg in node.args:
            new_arg, c = self.walk(arg, state)
            args.append(new_arg)
            clobbered |= c
        new_node = Prim(node.op, args)
        spec = prims.spec(node.op)
        if spec.effect in _CLOBBER_EFFECTS:
            state.clobber_reads()
            return new_node, True
        key = key_of(new_node, self.immutable)
        if key is not None:
            hit = state.available.get(key)
            if hit is not None:
                self.changed = True
                return Var(hit), clobbered
            fact = state.facts.get(key)
            if fact is not None and not key_reads(key):
                self.changed = True
                return Const(fact), clobbered
        return new_node, clobbered

    def _walk_if(self, node: If, state: _State) -> tuple[Node, bool]:
        test, c1 = self.walk(node.test, state)
        test_key = key_of(test, self.immutable)
        if test_key is not None and not key_reads(test_key):
            fact = state.facts.get(test_key)
            if fact is not None:
                self.changed = True
                branch = node.then if fact != 0 else node.els
                return self.walk(branch, state)
        then_state = state.child()
        else_state = state.child()
        if test_key is not None and not key_reads(test_key):
            # Comparison prims yield exactly 0 or 1; remember both sides.
            if isinstance(test, Prim) and prims.spec(test.op).comparison:
                then_state.facts[test_key] = 1
                negated = _negate_key(test_key)
                if negated is not None:
                    then_state.facts[negated] = 0
                    else_state.facts[negated] = 1
            else_state.facts[test_key] = 0
        then, c2 = self.walk(node.then, then_state)
        els, c3 = self.walk(node.els, else_state)
        clobbered = c1 | c2 | c3
        if c2 or c3:
            state.clobber_reads()
        # When one arm cannot return (it fails), reaching the code after
        # the If proves the other arm was taken: its facts persist.
        # This is what eliminates repeated safety checks in straight-line
        # code -- (%fx-check n) dominating later (%fx-check n).
        if diverges(els) and not diverges(then):
            state.facts.update(then_state.facts)
        elif diverges(then) and not diverges(els):
            state.facts.update(else_state.facts)
        return If(test, then, els), clobbered

    def _walk_let(self, node: Let, state: _State) -> tuple[Node, bool]:
        clobbered = False
        bindings = []
        new_keys: list[tuple[Key, object]] = []
        for var, init in node.bindings:
            new_init, c = self.walk(init, state)
            clobbered |= c
            key = key_of(new_init, self.immutable)
            if key is not None and not var.assigned:
                hit = state.available.get(key)
                if hit is not None:
                    self.changed = True
                    new_init = Var(hit)
                elif key[0] in ("prim", "if"):
                    # Record after all parallel inits are processed.
                    new_keys.append((key, var))
            bindings.append((var, new_init))
        # Entries are valid only while their variable is in scope: the
        # Let body.  They are removed afterwards (the walk of an init
        # expression containing a nested Let must not leak its vars).
        added = []
        for key, var in new_keys:
            if key not in state.available:
                state.available[key] = var
                added.append(key)
        body, c = self.walk(node.body, state)
        for key in added:
            state.available.pop(key, None)
        return Let(bindings, body), clobbered | c


def diverges(node: Node) -> bool:
    """Conservatively: does evaluating this node never return normally?"""
    if isinstance(node, Prim):
        if node.op == "%fail":
            return True
        return any(diverges(arg) for arg in node.args)
    if isinstance(node, Seq):
        return any(diverges(expr) for expr in node.exprs)
    if isinstance(node, Let):
        return any(diverges(init) for _, init in node.bindings) or diverges(node.body)
    if isinstance(node, If):
        return diverges(node.test) or (diverges(node.then) and diverges(node.els))
    return False


def _negate_key(key: Key) -> Key | None:
    """The key of the logically-negated comparison, when expressible."""
    if key[0] != "prim":
        return None
    opposites = {"%eq": "%neq", "%neq": "%eq", "%lt": None, "%le": None}
    opposite = opposites.get(key[1])
    if opposite is None:
        return None
    return ("prim", opposite, key[2])


def cse_program(
    program: Program, immutable_globals: set[str], start: int = 0
) -> tuple[Program, bool]:
    cse = CSE(immutable_globals)
    result = cse.run(program, start=start)
    return result, cse.changed
