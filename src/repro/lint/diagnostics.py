"""The diagnostic model shared by every lint rule and reporter."""

from __future__ import annotations

from dataclasses import dataclass, field


#: severity levels, in increasing order of, well, severity
SEVERITIES = ("note", "warning", "error")


@dataclass(frozen=True)
class Diagnostic:
    """One finding.

    ``rule`` is the registry id (``unreachable-branch`` …), ``form`` the
    top-level form it was found in (a global's name, or a positional
    label for anonymous top-level expressions).  ``detail`` carries
    rule-specific structured data for the JSON reporter.
    """

    rule: str
    severity: str
    form: str
    message: str
    detail: dict = field(default_factory=dict, compare=False)

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "severity": self.severity,
            "form": self.form,
            "message": self.message,
        }
        if self.detail:
            out["detail"] = dict(self.detail)
        return out

    def render(self) -> str:
        return f"{self.form}: {self.severity}: {self.message} [{self.rule}]"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: rules that ran (after suppression) — lets reporters distinguish
    #: "clean" from "switched off"
    rules_run: tuple[str, ...] = ()

    def count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def worst(self) -> str | None:
        worst = None
        for diag in self.diagnostics:
            if worst is None or SEVERITIES.index(diag.severity) > SEVERITIES.index(worst):
                worst = diag.severity
        return worst

    def exit_code(self, werror: bool = False) -> int:
        """The CLI convention: 1 on any error, or on any warning under
        ``--Werror``; 0 otherwise."""
        if self.count("error"):
            return 1
        if werror and self.count("warning"):
            return 1
        return 0
