"""The lint engine: parse → expand → optimize (without ``absint``) →
abstract-interpret → run the rule registry.

The flow rules deliberately lint the program optimized with the
*syntactic* pipeline only (``OptimizerOptions.without("absint")``, no
global pruning): whatever the constant folder and CSE already removed is
not worth reporting, and whatever only the flow analysis can decide is
still present in the IR to be pointed at.  That makes ``repro lint``
exactly the user-facing face of the ``absint`` optimizer pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..absint.analyze import analyze_program
from ..absint.summaries import summarize_program
from ..errors import ReproError
from ..ir import Program
from ..opt import OptimizerOptions, optimize_program
from ..sexpr import read_all
from .diagnostics import Diagnostic, LintReport
from .rules import RULES, LintContext, all_rules


@dataclass
class LintOptions:
    """Configuration for one lint run."""

    #: rule ids to skip
    disabled: frozenset = frozenset()
    #: prelude configuration (mirrors CompileOptions)
    prelude: str = "reptype"
    safety: bool = True
    extra_prelude: str = ""
    #: lint the prelude itself instead of a user program
    prelude_only: bool = False


def lint_source(source: str, options: LintOptions | None = None) -> LintReport:
    """Lint one program; returns every diagnostic the enabled rules found."""
    options = options or LintOptions()
    ctx, expand_error = _build_context(source, options)
    report = LintReport()
    run: list[str] = []
    for rule in all_rules():
        if rule.id in options.disabled or rule.id == "expand-error":
            continue  # expand-error is emitted by the engine below
        if options.prelude_only and rule.kind != "flow":
            # Source/syntax rules are about a user program's own forms.
            continue
        if expand_error is not None and rule.kind != "source":
            # Nothing to expand or analyse; source rules still run (they
            # usually explain *why* expansion failed).
            continue
        run.append(rule.id)
        report.diagnostics.extend(rule.run(ctx))
    if expand_error is not None and "expand-error" not in options.disabled:
        run.append("expand-error")
        report.diagnostics.append(
            Diagnostic(
                "expand-error",
                "error",
                "<program>",
                f"program does not expand: {expand_error}",
            )
        )
    report.rules_run = tuple(run)
    return report


def _build_context(
    source: str, options: LintOptions
) -> tuple[LintContext, Exception | None]:
    from ..api import CompileOptions, _expander_for, _optimized_prelude

    # The syntactic pipeline only, keeping every form (stable labels):
    # both flow passes stay off so whatever only the flow analysis can
    # decide is still present in the IR to be pointed at.
    opt = OptimizerOptions().without("absint").without("unbox")
    opt.prune_globals = False
    compile_options = CompileOptions(
        optimizer=opt,
        prelude=options.prelude,
        safety=options.safety,
        extra_prelude=options.extra_prelude,
    )
    prelude_forms, expander = _expander_for(compile_options)
    opt_prelude, _defined = _optimized_prelude(
        compile_options, prelude_forms, expander.global_names
    )

    data = read_all(source) if not options.prelude_only else []
    user_forms: list = []
    expand_error: Exception | None = None
    if data:
        try:
            user_forms = list(expander.expand_program(data).forms)
        except ReproError as error:
            expand_error = error
    if expand_error is not None:
        return (
            LintContext(
                data=list(data),
                prelude_forms=prelude_forms,
            ),
            expand_error,
        )

    program = Program(
        list(opt_prelude) + user_forms,
        expander.global_names,
    )
    optimized = optimize_program(
        program, opt, frozen_prefix=len(opt_prelude)
    )
    if len(optimized.forms) < len(opt_prelude):
        raise ReproError("lint: optimizer changed the top-level form count")
    start = 0 if options.prelude_only else len(opt_prelude)
    analyses = analyze_program(optimized, start=start)
    # Whole-program summaries for the interprocedural rules; the user
    # suffix resolves call sites into the cached prelude prefix.  The
    # prelude by itself is a library — lint it open-world, as any user
    # program may call any of its procedures with anything.
    summaries = summarize_program(
        optimized, start=start, open_world=options.prelude_only
    )

    prelude_defined = frozenset(
        name for name in _defined_names(prelude_forms) if not name.startswith("%")
    )
    return (
        LintContext(
            data=list(data),
            user_forms=user_forms,
            prelude_forms=prelude_forms,
            prelude_defined=prelude_defined,
            analyses=analyses,
            summaries=summaries,
            flow_forms=list(optimized.forms[start:]),
        ),
        None,
    )


def _defined_names(forms) -> set[str]:
    from ..ir import GlobalSet

    return {form.name for form in forms if isinstance(form, GlobalSet)}
