"""The lint rule registry.

Rules come in three kinds, by what they inspect:

* **source** rules see the parsed (pre-expansion) s-expressions;
* **syntax** rules see the expanded but unoptimized user forms;
* **flow** rules see the abstract-interpretation results
  (:mod:`repro.absint`) of the user forms optimized *without* the
  ``absint`` pass — so every check the flow analysis can decide is still
  present in the IR to be reported, and everything reported is exactly
  the residue the syntactic optimizer could not see.

Each rule is a function from a :class:`LintContext` to an iterable of
:class:`~repro.lint.diagnostics.Diagnostic`.  The registry is the single
source of truth for ``repro lint --list-rules`` and per-rule
suppression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..absint.analyze import Analyzer
from ..ir import Call, Const, GlobalRef, GlobalSet, If, Lambda, Node, Prim, iter_tree
from .diagnostics import Diagnostic

_FIXNUM_BITS = 61
FIXNUM_MAX = (1 << (_FIXNUM_BITS - 1)) - 1
FIXNUM_MIN = -(1 << (_FIXNUM_BITS - 1))


@dataclass
class LintContext:
    """Everything the rules may inspect."""

    #: parsed user source (list of sexpr data), pre-expansion
    data: list = field(default_factory=list)
    #: expanded, unoptimized user forms
    user_forms: list = field(default_factory=list)
    #: expanded prelude forms (for cross-checking registrations)
    prelude_forms: list = field(default_factory=list)
    #: names the (optimized) prelude defines
    prelude_defined: frozenset = frozenset()
    #: flow analysis of the optimized-without-absint program suffix
    analyses: list = field(default_factory=list)  # [(label, Analyzer)]
    #: whole-program function summaries (:mod:`repro.absint.summaries`),
    #: or None when the program failed to expand
    summaries: object = None
    #: the optimized forms the summaries analysed (program suffix, or
    #: the whole prelude under ``prelude_only``) — summary-driven rules
    #: walk these so call sites resolve by node identity
    flow_forms: list = field(default_factory=list)


@dataclass(frozen=True)
class Rule:
    id: str
    description: str
    severity: str
    kind: str  # "source" | "syntax" | "flow"
    run: Callable[[LintContext], Iterable[Diagnostic]] = field(compare=False)


RULES: dict[str, Rule] = {}


def rule(id: str, description: str, severity: str, kind: str):
    def install(fn):
        RULES[id] = Rule(id, description, severity, kind, fn)
        return fn

    return install


def all_rules() -> list[Rule]:
    return [RULES[key] for key in sorted(RULES)]


# ----------------------------------------------------------------------
# flow rules
# ----------------------------------------------------------------------


@rule(
    "unreachable-branch",
    "an `if` branch can never be taken (test decided by tag/range analysis)",
    "warning",
    "flow",
)
def _unreachable_branch(ctx: LintContext) -> Iterator[Diagnostic]:
    for label, analyzer in ctx.analyses:
        guards = _intentional_guards(analyzer)
        for event in analyzer.events:
            if event.kind != "branch-decided" or event.truth is None:
                continue
            if id(event.node) in guards:
                continue
            if isinstance(event.node, If) and _is_bool_if(event.node):
                continue  # reported as constant-predicate instead
            dead = "false" if event.truth else "true"
            yield Diagnostic(
                "unreachable-branch",
                "warning",
                label,
                f"condition is always {'true' if event.truth else 'false'}; "
                f"the {dead} arm is unreachable",
                {"truth": event.truth},
            )


@rule(
    "constant-predicate",
    "a type predicate or comparison always yields the same answer",
    "warning",
    "flow",
)
def _constant_predicate(ctx: LintContext) -> Iterator[Diagnostic]:
    for label, analyzer in ctx.analyses:
        for event in analyzer.events:
            if event.kind == "predicate-constant" and not event.is_branch_test:
                op = event.node.op if isinstance(event.node, Prim) else "?"
                yield Diagnostic(
                    "constant-predicate",
                    "warning",
                    label,
                    f"{op} always yields {'true' if event.truth else 'false'} "
                    "here",
                    {"op": op, "truth": event.truth},
                )
            elif (
                event.kind == "branch-decided"
                and event.truth is not None
                and isinstance(event.node, If)
                and _is_bool_if(event.node)
            ):
                # The residue of an inlined predicate in value position:
                # ``(if test #t #f)`` with a decided test.
                yield Diagnostic(
                    "constant-predicate",
                    "warning",
                    label,
                    "predicate always yields "
                    f"{'true' if event.truth else 'false'} here",
                    {"truth": event.truth},
                )


@rule(
    "guaranteed-failure",
    "a procedure body or top-level form provably always fails",
    "warning",
    "flow",
)
def _guaranteed_failure(ctx: LintContext) -> Iterator[Diagnostic]:
    for label, analyzer in ctx.analyses:
        for event in analyzer.events:
            if event.kind != "always-fails":
                continue
            node = event.node
            if isinstance(node, Lambda) and _spine_fails(node.body):
                # A body with an unconditional `%fail` on its main spine
                # is an intentional error helper, not a derived fact.
                continue
            what = "procedure body" if isinstance(node, Lambda) else "form"
            yield Diagnostic(
                "guaranteed-failure",
                "warning",
                label,
                f"this {what} always raises a runtime failure "
                "(a type or range check can never pass)",
                {"lambda": isinstance(node, Lambda)},
            )


def _flow_form_label(index: int, form: Node) -> str:
    if isinstance(form, GlobalSet):
        return form.name
    return f"<toplevel expression #{index + 1}>"


def _iter_resolved_calls(ctx: LintContext):
    """Every ``Call`` in the summarised forms whose callee has a
    function summary, as ``(label, call, summary)``."""
    summaries = ctx.summaries
    if summaries is None or summaries.context is None:
        return
    for index, form in enumerate(ctx.flow_forms):
        label = _flow_form_label(index, form)
        for node in iter_tree(form):
            if not isinstance(node, Call):
                continue
            info = summaries.context.resolve(node.fn)
            if info is not None:
                yield label, node, info


@rule(
    "wrong-arity-call",
    "a call passes a different number of arguments than the callee accepts",
    "error",
    "flow",
)
def _wrong_arity_call(ctx: LintContext) -> Iterator[Diagnostic]:
    for label, call, info in _iter_resolved_calls(ctx):
        if info.variadic:
            continue
        if len(call.args) != len(info.params):
            yield Diagnostic(
                "wrong-arity-call",
                "error",
                label,
                f"call passes {len(call.args)} argument"
                f"{'s' if len(call.args) != 1 else ''} but "
                f"`{info.label}` takes {len(info.params)}",
                {"callee": info.label, "got": len(call.args),
                 "want": len(info.params)},
            )


@rule(
    "never-returning-call",
    "a call to a procedure whose summary proves it never returns normally",
    "warning",
    "flow",
)
def _never_returning_call(ctx: LintContext) -> Iterator[Diagnostic]:
    summaries = ctx.summaries
    if summaries is None or not summaries.stable:
        return
    for label, call, info in _iter_resolved_calls(ctx):
        if not info.analyzable or info.variadic:
            continue
        if label == info.label:
            continue  # a recursive self-call: report the outside callers
        if len(call.args) != len(info.params):
            continue  # reported by wrong-arity-call
        if any(param.is_bottom for param in info.params):
            # ⊥ parameters mean the body was never analysed under a
            # feasible input (an unreached recursive function), not
            # that it always fails.
            continue
        if not info.result.is_bottom:
            continue
        if _spine_fails(info.lam.body):
            # An intentional error helper (unconditional `%fail` on its
            # spine): calling it is the point, not a finding.
            continue
        if _intentional_failure(info.lam.body, summaries.context):
            # The callee inherits its ⊥ result from deliberately
            # invoking an error helper on some path; that is
            # intentional propagation, not a derived check failure.
            continue
        yield Diagnostic(
            "never-returning-call",
            "warning",
            label,
            f"`{info.label}` provably never returns from this call: "
            "every path through its body fails a check or diverges",
            {"callee": info.label},
        )


@rule(
    "dead-record-field",
    "a record field whose accessor is never used — the field is never read",
    "warning",
    "syntax",
)
def _dead_record_field(ctx: LintContext) -> Iterator[Diagnostic]:
    # define-record-type expands each read clause to
    #   (define accessor (record-field-accessor type '<field>))
    # so an accessor name with zero references means the field can
    # never be read back.
    accessors: list[tuple[str, str, str]] = []  # (accessor, type, field)
    for form in ctx.user_forms:
        if not (isinstance(form, GlobalSet) and isinstance(form.value, Call)):
            continue
        call = form.value
        if not (
            isinstance(call.fn, GlobalRef)
            and call.fn.name == "record-field-accessor"
            and len(call.args) == 2
        ):
            continue
        type_name = (
            call.args[0].name if isinstance(call.args[0], GlobalRef) else "?"
        )
        field_name = _hoisted_symbol_name(ctx, call.args[1]) or form.name
        accessors.append((form.name, type_name, field_name))
    if not accessors:
        return
    referenced: dict[str, int] = {}
    for form in ctx.user_forms:
        for node in iter_tree(form):
            if isinstance(node, GlobalRef):
                referenced[node.name] = referenced.get(node.name, 0) + 1
    for accessor, type_name, field_name in accessors:
        if referenced.get(accessor, 0) == 0:
            yield Diagnostic(
                "dead-record-field",
                "warning",
                accessor,
                f"field `{field_name}` of record type `{type_name}` is "
                f"never read (accessor `{accessor}` is unused)",
                {"accessor": accessor, "type": type_name,
                 "field": field_name},
            )


def _calls_error_helper(body: Node, context) -> bool:
    """Does ``body`` call any summarised procedure whose own spine
    unconditionally fails (an intentional error helper)?"""
    for node in iter_tree(body):
        if not isinstance(node, Call):
            continue
        callee = context.resolve(node.fn)
        if callee is not None and _spine_fails(callee.lam.body):
            return True
    return False


def _intentional_failure(body: Node, context) -> bool:
    """Does ``body`` fail *on purpose* on some path?  Compiler-inserted
    check residue is a bare ``(%fail k)`` branch arm; a deliberate error
    path does work first (prints a message, calls an error helper)."""
    if _calls_error_helper(body, context):
        return True
    for node in iter_tree(body):
        if not isinstance(node, If):
            continue
        for arm in (node.then, node.els):
            if _spine_fails(arm) and not _fails_before_work(arm):
                return True
    return False


def _fails_before_work(node: Node) -> bool:
    """Does evaluating ``node`` reach a ``%fail`` before any ``Call``?
    Check residue fails immediately; a deliberate error path does work
    (prints a message, builds an error value) first."""
    return _first_spine_effect(node) == "fail"


def _first_spine_effect(node: Node) -> str | None:
    from ..ir import Fix, Let, Letrec, Seq

    if isinstance(node, Prim):
        for arg in node.args:
            found = _first_spine_effect(arg)
            if found:
                return found
        return "fail" if node.op == "%fail" else None
    if isinstance(node, Seq):
        for expr in node.exprs:
            found = _first_spine_effect(expr)
            if found:
                return found
        return None
    if isinstance(node, (Let, Letrec)):
        for _var, init in node.bindings:
            found = _first_spine_effect(init)
            if found:
                return found
        return _first_spine_effect(node.body)
    if isinstance(node, Fix):
        return _first_spine_effect(node.body)
    if isinstance(node, Call):
        found = _first_spine_effect(node.fn)
        if found:
            return found
        for arg in node.args:
            found = _first_spine_effect(arg)
            if found:
                return found
        return "work"
    return None


def _hoisted_symbol_name(ctx: LintContext, node: Node) -> str | None:
    """Decode the quoted symbol a ``%lit:`` hoist interns: its define
    builds the name with one ``%sx-string-init!`` call per character."""
    if not (isinstance(node, GlobalRef) and node.name.startswith("%lit:")):
        return None
    for form in ctx.user_forms:
        if not (isinstance(form, GlobalSet) and form.name == node.name):
            continue
        chars: list[tuple[int, int]] = []
        for sub in iter_tree(form.value):
            if (
                isinstance(sub, Call)
                and isinstance(sub.fn, GlobalRef)
                and sub.fn.name == "%sx-string-init!"
                and len(sub.args) == 3
                and isinstance(sub.args[1], Const)
                and isinstance(sub.args[2], Const)
            ):
                chars.append((sub.args[1].value, sub.args[2].value))
        if chars:
            return "".join(chr(code) for _i, code in sorted(chars))
    return None


def _has_branch(node: Node) -> bool:
    return any(isinstance(sub, If) for sub in iter_tree(node))


def _spine_fails(node: Node) -> bool:
    """Does evaluation *unconditionally* reach a ``%fail``?  Walks the
    straight-line spine only: Seq elements, Let/Letrec/Fix inits and
    bodies, Prim/Call argument positions — never into an If arm or a
    nested lambda."""
    from ..ir import Call, Fix, Let, Letrec, Seq

    if isinstance(node, Prim):
        if node.op == "%fail":
            return True
        return any(_spine_fails(arg) for arg in node.args)
    if isinstance(node, Seq):
        return any(_spine_fails(expr) for expr in node.exprs)
    if isinstance(node, (Let, Letrec)):
        return any(_spine_fails(init) for _v, init in node.bindings) or _spine_fails(
            node.body
        )
    if isinstance(node, Fix):
        return _spine_fails(node.body)
    if isinstance(node, Call):
        return _spine_fails(node.fn) or any(_spine_fails(a) for a in node.args)
    return False


#: the default prelude's immediate words for ``#t`` / ``#f``
_TRUE_WORD = (1 << 3) | 6
_FALSE_WORD = 6
_BOOL_WORDS = {_TRUE_WORD, _FALSE_WORD}
_BOOL_GLOBALS = {"%sx-true", "%sx-false"}


def _is_bool_literal(node: Node) -> bool:
    if isinstance(node, Const):
        return node.value in _BOOL_WORDS
    return isinstance(node, GlobalRef) and node.name in _BOOL_GLOBALS


def _is_bool_if(node: If) -> bool:
    """``(if test #t #f)`` (or inverted): an inlined predicate used for
    its value rather than for control."""
    return _is_bool_literal(node.then) and _is_bool_literal(node.els)


def _intentional_guards(analyzer: Analyzer) -> set[int]:
    """Decided branches whose unreachable arm is exactly a ``%fail``.

    Those are prelude-inserted safety checks the analysis proved can
    never fire — the optimizer's job, and good news, not a user-facing
    finding.  Reporting each would bury real dead-code findings."""
    out: set[int] = set()
    for event in analyzer.events:
        if event.kind != "branch-decided" or event.truth is None:
            continue
        node = event.node
        if not isinstance(node, If):
            continue
        dead_arm = node.els if event.truth else node.then
        if isinstance(dead_arm, Prim) and dead_arm.op == "%fail":
            out.add(id(node))
    return out


# ----------------------------------------------------------------------
# syntax rules (expanded, unoptimized user forms)
# ----------------------------------------------------------------------


def _user_defines(ctx: LintContext) -> list[tuple[int, str]]:
    out = []
    for index, form in enumerate(ctx.user_forms):
        if isinstance(form, GlobalSet) and not form.name.startswith("%"):
            out.append((index, form.name))
    return out


@rule(
    "shadowed-define",
    "a top-level define shadows a prelude binding or an earlier define",
    "warning",
    "syntax",
)
def _shadowed_define(ctx: LintContext) -> Iterator[Diagnostic]:
    seen: set[str] = set()
    for _index, name in _user_defines(ctx):
        if name in ctx.prelude_defined:
            yield Diagnostic(
                "shadowed-define",
                "warning",
                name,
                f"define of `{name}` shadows the prelude's binding",
                {"name": name, "shadows": "prelude"},
            )
        elif name in seen:
            yield Diagnostic(
                "shadowed-define",
                "warning",
                name,
                f"`{name}` is defined more than once; the last define wins",
                {"name": name, "shadows": "earlier define"},
            )
        seen.add(name)


@rule(
    "unused-define",
    "a top-level define is never referenced",
    "warning",
    "syntax",
)
def _unused_define(ctx: LintContext) -> Iterator[Diagnostic]:
    defined = _user_defines(ctx)
    if not defined:
        return
    referenced: set[str] = set()
    for form in ctx.user_forms:
        for node in iter_tree(form):
            if isinstance(node, GlobalRef):
                referenced.add(node.name)
    for _index, name in defined:
        if name not in referenced:
            yield Diagnostic(
                "unused-define",
                "warning",
                name,
                f"`{name}` is defined but never used",
                {"name": name},
            )


@rule(
    "double-register",
    "a pointer representation tag is registered twice",
    "error",
    "syntax",
)
def _double_register(ctx: LintContext) -> Iterator[Diagnostic]:
    def registrations(forms):
        for index, form in enumerate(forms):
            for node in iter_tree(form):
                if (
                    isinstance(node, Prim)
                    and node.op == "%register-pointer-rep"
                    and node.args
                    and isinstance(node.args[0], Const)
                ):
                    yield index, node.args[0].value

    prelude_tags = {tag for _i, tag in registrations(ctx.prelude_forms)}
    seen: set[int] = set()
    for index, tag in registrations(ctx.user_forms):
        label = f"<toplevel form #{index + 1}>"
        if tag in prelude_tags:
            yield Diagnostic(
                "double-register",
                "error",
                label,
                f"pointer tag {tag} is already registered by the prelude",
                {"tag": tag, "conflict": "prelude"},
            )
        elif tag in seen:
            yield Diagnostic(
                "double-register",
                "error",
                label,
                f"pointer tag {tag} is registered twice",
                {"tag": tag, "conflict": "user"},
            )
        seen.add(tag)


# ----------------------------------------------------------------------
# source rules (parsed s-expressions)
# ----------------------------------------------------------------------


@rule(
    "expand-error",
    "the program fails to macro-expand (reported by the engine)",
    "error",
    "source",
)
def _expand_error(ctx: LintContext) -> Iterator[Diagnostic]:
    # The engine emits this one itself (it owns the expansion attempt);
    # registering it here gives it a --list-rules entry and makes
    # per-rule suppression uniform.
    return iter(())


@rule(
    "fixnum-overflow",
    "an integer literal exceeds the 61-bit fixnum range",
    "error",
    "source",
)
def _fixnum_overflow(ctx: LintContext) -> Iterator[Diagnostic]:
    from ..sexpr import Pair

    def walk(datum, path):
        if isinstance(datum, bool):
            return
        if isinstance(datum, int):
            if not (FIXNUM_MIN <= datum <= FIXNUM_MAX):
                yield datum, path
            return
        if isinstance(datum, Pair):
            yield from walk(datum.car, path)
            yield from walk(datum.cdr, path)
        elif isinstance(datum, (list, tuple)):
            for item in datum:
                yield from walk(item, path)

    for index, datum in enumerate(ctx.data):
        label = f"<toplevel form #{index + 1}>"
        for value, _path in walk(datum, label):
            yield Diagnostic(
                "fixnum-overflow",
                "error",
                label,
                f"integer literal {value} exceeds the fixnum range "
                f"[{FIXNUM_MIN}, {FIXNUM_MAX}]",
                {"value": str(value)},
            )
