"""Render a :class:`~repro.lint.diagnostics.LintReport` for humans
(text) or tools (JSON)."""

from __future__ import annotations

import json

from .diagnostics import LintReport

#: bump when the JSON shape changes (documented in docs/DIAGNOSTICS.md)
JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport, filename: str = "<source>") -> str:
    lines = []
    for diag in report.diagnostics:
        lines.append(f"{filename}:{diag.render()}")
    errors = report.count("error")
    warnings = report.count("warning")
    if errors or warnings:
        lines.append(
            f"{filename}: {errors} error(s), {warnings} warning(s)"
        )
    else:
        lines.append(f"{filename}: clean ({len(report.rules_run)} rules)")
    return "\n".join(lines)


def render_json(report: LintReport, filename: str = "<source>") -> str:
    payload = {
        "schema": JSON_SCHEMA_VERSION,
        "file": filename,
        "rules_run": list(report.rules_run),
        "summary": {
            "errors": report.count("error"),
            "warnings": report.count("warning"),
            "notes": report.count("note"),
        },
        "diagnostics": [diag.to_dict() for diag in report.diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
