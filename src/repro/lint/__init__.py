"""User-facing diagnostics (`repro lint`).

The engine runs the abstract interpreter of :mod:`repro.absint` plus a
set of syntactic checks over a program and reports what it finds as
:class:`Diagnostic` values; see docs/DIAGNOSTICS.md for the rule
catalogue, suppression syntax, and the JSON schema.
"""

from .diagnostics import Diagnostic, LintReport  # noqa: F401
from .engine import LintOptions, lint_source  # noqa: F401
from .reporters import render_json, render_text  # noqa: F401
from .rules import RULES, Rule, all_rules  # noqa: F401

__all__ = [
    "Diagnostic",
    "LintOptions",
    "LintReport",
    "RULES",
    "Rule",
    "all_rules",
    "lint_source",
    "render_json",
    "render_text",
]
