"""The virtual machine: executes :class:`~repro.vm.isa.VMProgram`.

A register machine with deterministic instruction-count statistics —
the reproduction's stand-in for the paper's machine-code measurements.
The *execution engine* (how instructions are dispatched) is pluggable:
see :mod:`repro.vm.engine` for the naive switch interpreter and the
threaded-dispatch engine.  All engines produce identical results,
identical (decomposed) instruction counts, and identical errors; they
differ only in wall-clock speed.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from time import perf_counter

from ..errors import SchemeError, VMError
from ..prims import WORD_MASK, signed, wrap
from . import isa
from .heap import DEFAULT_GC_OCCUPANCY, Heap, default_heap_words
from .registry import TypeRegistry

# Error codes for %fail, shared by convention with the prelude sources
# (src/repro/runtime/scm/*): the library passes these raw codes.
FAIL_MESSAGES = {
    1: "type check failed",
    2: "index out of range",
    3: "error signalled",
    4: "arity mismatch",
    5: "car/cdr of non-pair",
    6: "vector operation on non-vector",
    7: "string operation on non-string",
    8: "arithmetic on non-fixnum",
    9: "fixnum overflow",
    10: "division by zero",
    11: "char operation on non-char",
    12: "not a procedure",
    13: "improper argument list",
    14: "symbol operation on non-symbol",
}

_CLOSURE_TAG = 7
# code-id sentinel marking a closure as an escape continuation; its one
# "free variable" slot holds the frame depth to unwind to.
_ESCAPE_CODE = (1 << 32) - 1


@dataclass
class RunResult:
    """Outcome of one VM run.

    ``opcode_counts`` is keyed by *base* opcode names (strings from
    :data:`~repro.vm.isa.OPCODE_NAMES`), never raw opcode numbers, and
    fused superinstructions are charged to their constituents — so the
    counts are identical whether the program ran fused or unfused, on
    any engine.  ``steps`` counts base instructions (a fused pair is two
    steps); ``dispatches`` counts actual dispatch events (a fused pair
    is one dispatch).
    """

    value: int
    output: str
    steps: int
    opcode_counts: dict[str, int]
    gc_count: int
    words_allocated: int
    #: synthetic conses performed by the substrate for rest-args/apply
    rest_conses: int = 0
    #: dispatch events (== steps when no superinstructions executed)
    dispatches: int = 0
    #: which engine produced this result
    engine: str = "naive"
    #: wall-clock duration of the run (set by :meth:`Machine.run`)
    elapsed_seconds: float = 0.0
    #: GC telemetry aggregates (see :meth:`repro.vm.heap.Heap.gc_telemetry`)
    gc_stats: dict = field(default_factory=dict)

    def count(self, opcode_name: str) -> int:
        """Decomposed dynamic count for one *base* opcode name."""
        return self.opcode_counts.get(opcode_name, 0)


class Machine:
    def __init__(
        self,
        program: isa.VMProgram,
        heap_words: int | None = None,
        max_steps: int | None = None,
        count_instructions: bool = True,
        input_text: str = "",
        engine: str | None = None,
        profile: bool = False,
        gc_occupancy: float | None = DEFAULT_GC_OCCUPANCY,
    ):
        self.program = program
        self.codes = program.code_objects
        if heap_words is None:
            heap_words = default_heap_words()
        self.heap = Heap(heap_words, gc_occupancy=gc_occupancy)
        self.heap.register_pointer_tag(_CLOSURE_TAG)  # compiler-owned layout
        self.registry = TypeRegistry()
        self.globals = [0] * len(program.global_names)
        self.global_defined = bytearray(len(program.global_names))
        self.output: list[str] = []
        self.input_codes = [ord(ch) for ch in input_text]
        self.input_pos = 0
        self.max_steps = max_steps
        self.count_instructions = count_instructions
        self.counts = [0] * isa.NUM_BASE_OPCODES
        self.steps = 0
        self.dispatches = 0
        self.rest_conses = 0
        # frame stack: entries are [code, regs, pc, dest_reg]
        self.frames: list[list] = []
        # transient roots protected across allocations inside the VM
        self._scratch_roots: list[int] = []
        # hot-pair mining (naive engine only): (op1, op2) -> fall-through
        # adjacency count; fed by the profiler.
        self.profile = profile
        self.pair_counts: dict[tuple[int, int], int] = {}
        from .engine import create_engine

        self._engine = create_engine(engine, self)

    # ------------------------------------------------------------------
    # GC plumbing
    # ------------------------------------------------------------------

    def _roots(self):
        out = []
        for frame in self.frames:
            out.extend(frame[1])
        for i, value in enumerate(self.globals):
            if self.global_defined[i]:
                out.append(value)
        out.extend(self._scratch_roots)
        return out

    def _alloc(self, nwords: int, tag: int) -> int:
        return self.heap.allocate(nwords, tag, self._roots)

    # ------------------------------------------------------------------
    # procedure invocation
    # ------------------------------------------------------------------

    def _closure_code_id(self, word: int) -> int:
        if word & 7 != _CLOSURE_TAG:
            raise SchemeError(FAIL_MESSAGES[12], word)
        return self.heap.load((word & ~7) + 8)

    def _closure_free(self, word: int, index: int) -> int:
        return self.heap.load((word & ~7) + 16 + 8 * index)

    def _make_regs(self, code: isa.CodeObject, args: list[int], closure: int) -> list[int]:
        regs = [0] * code.nregs
        n = code.nparams
        if code.has_rest:
            if len(args) < n:
                raise SchemeError(
                    f"arity mismatch calling {code.name!r}: "
                    f"expected at least {n} arguments, got {len(args)}"
                )
            regs[:n] = args[:n]
            regs[n] = self._build_rest(args[n:])
            slot = n + 1
        else:
            if len(args) != n:
                raise SchemeError(
                    f"arity mismatch calling {code.name!r}: "
                    f"expected {n} arguments, got {len(args)}"
                )
            regs[:n] = args
            slot = n
        if code.nfree:
            regs[slot] = closure
        return regs

    def _build_rest(self, extra: list[int]) -> int:
        registry = self.registry
        registry.require_pairs("a rest-argument list")
        result = registry.nil_word
        tag = registry.pair_tag
        car_disp = registry.car_disp
        cdr_disp = registry.cdr_disp
        nwords = registry.pair_words
        # Protect the extras and the partial list across allocations.
        self._scratch_roots = list(extra)
        try:
            for word in reversed(extra):
                self._scratch_roots.append(result)
                pair = self._alloc(nwords, tag)
                self._scratch_roots.pop()
                self.heap.store(wrap(pair + car_disp), word)
                self.heap.store(wrap(pair + cdr_disp), result)
                result = pair
                self.rest_conses += 1
        finally:
            self._scratch_roots = []
        return result

    def _unpack_list(self, word: int) -> list[int]:
        registry = self.registry
        registry.require_pairs("apply")
        out = []
        seen = 0
        while word != registry.nil_word:
            if word & 7 != registry.pair_tag:
                raise SchemeError(FAIL_MESSAGES[13], word)
            out.append(self.heap.load(wrap(word + registry.car_disp)))
            word = self.heap.load(wrap(word + registry.cdr_disp))
            seen += 1
            if seen > 10_000_000:
                raise VMError("apply argument list is cyclic or too long")
        return out

    def _unwind(self, escape_word: int, args: list[int]):
        """Invoke an escape continuation: discard frames down to its
        capture depth and return to the %callec call site."""
        if len(args) != 1:
            raise SchemeError(
                f"arity mismatch calling an escape continuation: "
                f"expected 1 argument, got {len(args)}"
            )
        depth = self.heap.load((escape_word & ~7) + 16) >> 3
        if depth < 1 or depth > len(self.frames):
            raise SchemeError(
                "escape continuation invoked after its extent ended"
            )
        del self.frames[depth:]
        frame = self.frames.pop()
        frame[1][frame[3]] = args[0]
        return frame

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute to completion on the configured engine.

        Cyclic GC is suspended for the duration: the VM's own
        allocations are reference-counted and acyclic at steady state
        (frames, argument lists, handler closures), but creating them
        triggers collections that re-scan the multi-megaword heap list
        and every handler table for cycles that cannot exist.  Suspend
        and restore rather than tune thresholds so embedders see no
        lasting change.
        """
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        started = perf_counter()
        try:
            result = self._engine.run()
        finally:
            if was_enabled:
                gc.enable()
        result.elapsed_seconds = perf_counter() - started
        return result

    @property
    def engine_name(self) -> str:
        return self._engine.name

    def _count_step(self, op: int) -> None:
        """Count one base instruction and enforce the step budget.

        Fused superinstructions call this once per *constituent*, in
        order, so counting — including the step index at which a
        ``max_steps`` budget trips — is identical to an unfused run.
        """
        self.counts[op] += 1
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            raise VMError(f"execution exceeded {self.max_steps} steps")

    # ------------------------------------------------------------------

    @staticmethod
    def _div(a: int, b: int) -> int:
        if b == 0:
            raise SchemeError(FAIL_MESSAGES[10])
        quotient = abs(signed(a)) // abs(signed(b))
        if (signed(a) < 0) != (signed(b) < 0):
            quotient = -quotient
        return wrap(quotient)

    @staticmethod
    def _mod(a: int, b: int) -> int:
        if b == 0:
            raise SchemeError(FAIL_MESSAGES[10])
        remainder = abs(signed(a)) % abs(signed(b))
        if signed(a) < 0:
            remainder = -remainder
        return wrap(remainder)

    def _result(self, value: int) -> RunResult:
        named = {}
        for opcode, count in enumerate(self.counts):
            if count:
                named[isa.OPCODE_NAMES[opcode]] = count
        # The engines defer block registration on the bump-allocation
        # fast path; settle the books before reading any statistics.
        sync = getattr(self.heap, "sync_allocations", None)
        if sync is not None:
            sync()
        telemetry = getattr(self.heap, "gc_telemetry", None)
        return RunResult(
            value=value,
            output="".join(self.output),
            steps=self.steps,
            opcode_counts=named,
            gc_count=self.heap.gc_count,
            words_allocated=self.heap.words_allocated,
            rest_conses=self.rest_conses,
            dispatches=self.dispatches,
            engine=self._engine.name,
            gc_stats=telemetry() if telemetry is not None else {},
        )
