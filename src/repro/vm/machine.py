"""The virtual machine: executes :class:`~repro.vm.isa.VMProgram`.

A straightforward register-machine interpreter with deterministic
instruction-count statistics — the reproduction's stand-in for the
paper's machine-code measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchemeError, VMError
from ..prims import WORD_MASK, signed, wrap
from . import isa
from .heap import Heap
from .registry import TypeRegistry

# Error codes for %fail, shared by convention with the prelude sources
# (src/repro/runtime/scm/*): the library passes these raw codes.
FAIL_MESSAGES = {
    1: "type check failed",
    2: "index out of range",
    3: "error signalled",
    4: "arity mismatch",
    5: "car/cdr of non-pair",
    6: "vector operation on non-vector",
    7: "string operation on non-string",
    8: "arithmetic on non-fixnum",
    9: "fixnum overflow",
    10: "division by zero",
    11: "char operation on non-char",
    12: "not a procedure",
    13: "improper argument list",
    14: "symbol operation on non-symbol",
}

_CLOSURE_TAG = 7
# code-id sentinel marking a closure as an escape continuation; its one
# "free variable" slot holds the frame depth to unwind to.
_ESCAPE_CODE = (1 << 32) - 1


@dataclass
class RunResult:
    """Outcome of one VM run."""

    value: int
    output: str
    steps: int
    opcode_counts: dict[str, int]
    gc_count: int
    words_allocated: int
    #: synthetic conses performed by the substrate for rest-args/apply
    rest_conses: int = 0

    def count(self, opcode_name: str) -> int:
        return self.opcode_counts.get(opcode_name, 0)


class Machine:
    def __init__(
        self,
        program: isa.VMProgram,
        heap_words: int = 1 << 20,
        max_steps: int | None = None,
        count_instructions: bool = True,
        input_text: str = "",
    ):
        self.program = program
        self.codes = program.code_objects
        self.heap = Heap(heap_words)
        self.heap.register_pointer_tag(_CLOSURE_TAG)  # compiler-owned layout
        self.registry = TypeRegistry()
        self.globals = [0] * len(program.global_names)
        self.global_defined = bytearray(len(program.global_names))
        self.output: list[str] = []
        self.input_codes = [ord(ch) for ch in input_text]
        self.input_pos = 0
        self.max_steps = max_steps
        self.count_instructions = count_instructions
        self.counts = [0] * isa.NUM_OPCODES
        self.steps = 0
        self.rest_conses = 0
        # frame stack: entries are [code, regs, pc, dest_reg]
        self.frames: list[list] = []
        # transient roots protected across allocations inside the VM
        self._scratch_roots: list[int] = []

    # ------------------------------------------------------------------
    # GC plumbing
    # ------------------------------------------------------------------

    def _roots(self):
        out = []
        for frame in self.frames:
            out.extend(frame[1])
        for i, value in enumerate(self.globals):
            if self.global_defined[i]:
                out.append(value)
        out.extend(self._scratch_roots)
        return out

    def _alloc(self, nwords: int, tag: int) -> int:
        return self.heap.allocate(nwords, tag, self._roots)

    # ------------------------------------------------------------------
    # procedure invocation
    # ------------------------------------------------------------------

    def _closure_code_id(self, word: int) -> int:
        if word & 7 != _CLOSURE_TAG:
            raise SchemeError(FAIL_MESSAGES[12], word)
        return self.heap.load((word & ~7) + 8)

    def _closure_free(self, word: int, index: int) -> int:
        return self.heap.load((word & ~7) + 16 + 8 * index)

    def _make_regs(self, code: isa.CodeObject, args: list[int], closure: int) -> list[int]:
        regs = [0] * code.nregs
        n = code.nparams
        if code.has_rest:
            if len(args) < n:
                raise SchemeError(
                    f"arity mismatch calling {code.name!r}: "
                    f"expected at least {n} arguments, got {len(args)}"
                )
            regs[:n] = args[:n]
            regs[n] = self._build_rest(args[n:])
            slot = n + 1
        else:
            if len(args) != n:
                raise SchemeError(
                    f"arity mismatch calling {code.name!r}: "
                    f"expected {n} arguments, got {len(args)}"
                )
            regs[:n] = args
            slot = n
        if code.nfree:
            regs[slot] = closure
        return regs

    def _build_rest(self, extra: list[int]) -> int:
        registry = self.registry
        registry.require_pairs("a rest-argument list")
        result = registry.nil_word
        tag = registry.pair_tag
        car_disp = registry.car_disp
        cdr_disp = registry.cdr_disp
        nwords = registry.pair_words
        # Protect the extras and the partial list across allocations.
        self._scratch_roots = list(extra)
        try:
            for word in reversed(extra):
                self._scratch_roots.append(result)
                pair = self._alloc(nwords, tag)
                self._scratch_roots.pop()
                self.heap.store(wrap(pair + car_disp), word)
                self.heap.store(wrap(pair + cdr_disp), result)
                result = pair
                self.rest_conses += 1
        finally:
            self._scratch_roots = []
        return result

    def _unpack_list(self, word: int) -> list[int]:
        registry = self.registry
        registry.require_pairs("apply")
        out = []
        seen = 0
        while word != registry.nil_word:
            if word & 7 != registry.pair_tag:
                raise SchemeError(FAIL_MESSAGES[13], word)
            out.append(self.heap.load(wrap(word + registry.car_disp)))
            word = self.heap.load(wrap(word + registry.cdr_disp))
            seen += 1
            if seen > 10_000_000:
                raise VMError("apply argument list is cyclic or too long")
        return out

    def _unwind(self, escape_word: int, args: list[int]):
        """Invoke an escape continuation: discard frames down to its
        capture depth and return to the %callec call site."""
        if len(args) != 1:
            raise SchemeError(
                f"arity mismatch calling an escape continuation: "
                f"expected 1 argument, got {len(args)}"
            )
        depth = self.heap.load((escape_word & ~7) + 16) >> 3
        if depth < 1 or depth > len(self.frames):
            raise SchemeError(
                "escape continuation invoked after its extent ended"
            )
        del self.frames[depth:]
        code, regs, pc, dest = self.frames.pop()
        regs[dest] = args[0]
        return code, regs, pc

    # ------------------------------------------------------------------
    # the interpreter loop
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        main = self.codes[self.program.main_id]
        code = main
        regs = [0] * main.nregs
        pc = 0
        instructions = code.instructions
        counts = self.counts
        counting = self.count_instructions
        heap = self.heap
        result_value = 0

        while True:
            ins = instructions[pc]
            pc += 1
            op = ins[0]
            if counting:
                counts[op] += 1
                self.steps += 1
                if self.max_steps is not None and self.steps > self.max_steps:
                    raise VMError(f"execution exceeded {self.max_steps} steps")

            if op == isa.LD:
                address = wrap(regs[ins[2]] + ins[3])
                regs[ins[1]] = heap.load(address)
            elif op == isa.ST:
                address = wrap(regs[ins[1]] + ins[2])
                heap.store(address, regs[ins[3]])
            elif op == isa.LDC:
                regs[ins[1]] = ins[2]
            elif op == isa.MOV:
                regs[ins[1]] = regs[ins[2]]
            elif op == isa.ADD:
                regs[ins[1]] = (regs[ins[2]] + regs[ins[3]]) & WORD_MASK
            elif op == isa.ADDI:
                regs[ins[1]] = (regs[ins[2]] + ins[3]) & WORD_MASK
            elif op == isa.SUB:
                regs[ins[1]] = (regs[ins[2]] - regs[ins[3]]) & WORD_MASK
            elif op == isa.SUBI:
                regs[ins[1]] = (regs[ins[2]] - ins[3]) & WORD_MASK
            elif op == isa.MUL:
                regs[ins[1]] = (signed(regs[ins[2]]) * signed(regs[ins[3]])) & WORD_MASK
            elif op == isa.MULI:
                regs[ins[1]] = (signed(regs[ins[2]]) * signed(ins[3])) & WORD_MASK
            elif op == isa.DIV:
                regs[ins[1]] = self._div(regs[ins[2]], regs[ins[3]])
            elif op == isa.MOD:
                regs[ins[1]] = self._mod(regs[ins[2]], regs[ins[3]])
            elif op == isa.AND:
                regs[ins[1]] = regs[ins[2]] & regs[ins[3]]
            elif op == isa.ANDI:
                regs[ins[1]] = regs[ins[2]] & ins[3]
            elif op == isa.OR:
                regs[ins[1]] = regs[ins[2]] | regs[ins[3]]
            elif op == isa.ORI:
                regs[ins[1]] = regs[ins[2]] | ins[3]
            elif op == isa.XOR:
                regs[ins[1]] = regs[ins[2]] ^ regs[ins[3]]
            elif op == isa.XORI:
                regs[ins[1]] = regs[ins[2]] ^ ins[3]
            elif op == isa.NOT:
                regs[ins[1]] = (~regs[ins[2]]) & WORD_MASK
            elif op == isa.SHL:
                regs[ins[1]] = (regs[ins[2]] << (regs[ins[3]] & 63)) & WORD_MASK
            elif op == isa.SHLI:
                regs[ins[1]] = (regs[ins[2]] << (ins[3] & 63)) & WORD_MASK
            elif op == isa.SHR:
                regs[ins[1]] = regs[ins[2]] >> (regs[ins[3]] & 63)
            elif op == isa.SHRI:
                regs[ins[1]] = regs[ins[2]] >> (ins[3] & 63)
            elif op == isa.SAR:
                regs[ins[1]] = (signed(regs[ins[2]]) >> (regs[ins[3]] & 63)) & WORD_MASK
            elif op == isa.SARI:
                regs[ins[1]] = (signed(regs[ins[2]]) >> (ins[3] & 63)) & WORD_MASK
            elif op == isa.CMPEQ:
                regs[ins[1]] = 1 if regs[ins[2]] == regs[ins[3]] else 0
            elif op == isa.CMPEQI:
                regs[ins[1]] = 1 if regs[ins[2]] == ins[3] else 0
            elif op == isa.CMPNE:
                regs[ins[1]] = 1 if regs[ins[2]] != regs[ins[3]] else 0
            elif op == isa.CMPNEI:
                regs[ins[1]] = 1 if regs[ins[2]] != ins[3] else 0
            elif op == isa.CMPLT:
                regs[ins[1]] = 1 if signed(regs[ins[2]]) < signed(regs[ins[3]]) else 0
            elif op == isa.CMPLTI:
                regs[ins[1]] = 1 if signed(regs[ins[2]]) < signed(ins[3]) else 0
            elif op == isa.CMPLE:
                regs[ins[1]] = 1 if signed(regs[ins[2]]) <= signed(regs[ins[3]]) else 0
            elif op == isa.CMPLEI:
                regs[ins[1]] = 1 if signed(regs[ins[2]]) <= signed(ins[3]) else 0
            elif op == isa.CMPULT:
                regs[ins[1]] = 1 if regs[ins[2]] < regs[ins[3]] else 0
            elif op == isa.CMPULE:
                regs[ins[1]] = 1 if regs[ins[2]] <= regs[ins[3]] else 0
            elif op == isa.CMPNZ:
                regs[ins[1]] = 1 if regs[ins[2]] != 0 else 0
            elif op == isa.JMP:
                pc = ins[1]
            elif op == isa.JT:
                if regs[ins[1]] != 0:
                    pc = ins[2]
            elif op == isa.JF:
                if regs[ins[1]] == 0:
                    pc = ins[2]
            elif op == isa.JEQ:
                if regs[ins[1]] == regs[ins[2]]:
                    pc = ins[3]
            elif op == isa.JNE:
                if regs[ins[1]] != regs[ins[2]]:
                    pc = ins[3]
            elif op == isa.JEQI:
                if regs[ins[1]] == ins[2]:
                    pc = ins[3]
            elif op == isa.JNEI:
                if regs[ins[1]] != ins[2]:
                    pc = ins[3]
            elif op == isa.JLTI:
                if signed(regs[ins[1]]) < signed(ins[2]):
                    pc = ins[3]
            elif op == isa.JGEI:
                if signed(regs[ins[1]]) >= signed(ins[2]):
                    pc = ins[3]
            elif op == isa.JLEI:
                if signed(regs[ins[1]]) <= signed(ins[2]):
                    pc = ins[3]
            elif op == isa.JGTI:
                if signed(regs[ins[1]]) > signed(ins[2]):
                    pc = ins[3]
            elif op == isa.JLT:
                if signed(regs[ins[1]]) < signed(regs[ins[2]]):
                    pc = ins[3]
            elif op == isa.JGE:
                if signed(regs[ins[1]]) >= signed(regs[ins[2]]):
                    pc = ins[3]
            elif op == isa.JLE:
                if signed(regs[ins[1]]) <= signed(regs[ins[2]]):
                    pc = ins[3]
            elif op == isa.JGT:
                if signed(regs[ins[1]]) > signed(regs[ins[2]]):
                    pc = ins[3]
            elif op == isa.JULT:
                if regs[ins[1]] < regs[ins[2]]:
                    pc = ins[3]
            elif op == isa.JUGE:
                if regs[ins[1]] >= regs[ins[2]]:
                    pc = ins[3]
            elif op == isa.JULE:
                if regs[ins[1]] <= regs[ins[2]]:
                    pc = ins[3]
            elif op == isa.JUGT:
                if regs[ins[1]] > regs[ins[2]]:
                    pc = ins[3]
            elif op == isa.ALLOC:
                self.frames.append([code, regs, pc, -1])
                regs[ins[1]] = self._alloc(regs[ins[2]], regs[ins[3]] & 7)
                self.frames.pop()
            elif op == isa.ALLOCI:
                self.frames.append([code, regs, pc, -1])
                regs[ins[1]] = self._alloc(ins[2], ins[3])
                self.frames.pop()
            elif op == isa.GLD:
                index = ins[2]
                if not self.global_defined[index]:
                    raise VMError(
                        f"undefined global variable "
                        f"{self.program.global_names[index]!r}"
                    )
                regs[ins[1]] = self.globals[index]
            elif op == isa.GST:
                index = ins[2]
                self.globals[index] = regs[ins[1]]
                self.global_defined[index] = 1
            elif op == isa.CLOSURE:
                free_regs = ins[3]
                self.frames.append([code, regs, pc, -1])
                pointer = self._alloc(1 + len(free_regs), _CLOSURE_TAG)
                self.frames.pop()
                base = pointer & ~7
                heap.store(base + 8, ins[2])
                for i, reg in enumerate(free_regs):
                    heap.store(base + 16 + 8 * i, regs[reg])
                regs[ins[1]] = pointer
            elif op == isa.CALL or op == isa.CALLL:
                if op == isa.CALL:
                    closure = regs[ins[2]]
                    code_id = self._closure_code_id(closure)
                    if code_id == _ESCAPE_CODE:
                        args = [regs[r] for r in ins[3]]
                        code, regs, pc = self._unwind(closure, args)
                        instructions = code.instructions
                        continue
                else:
                    closure = 0
                    code_id = ins[2]
                args = [regs[r] for r in ins[3]]
                callee = self.codes[code_id]
                self.frames.append([code, regs, pc, ins[1]])
                if len(self.frames) > 8000:
                    raise VMError("call stack overflow (deep non-tail recursion)")
                code = callee
                self._scratch_roots = [closure]
                regs = self._make_regs(callee, args, closure)
                self._scratch_roots = []
                instructions = code.instructions
                pc = 0
            elif op == isa.TAILCALL or op == isa.TAILL:
                if op == isa.TAILCALL:
                    closure = regs[ins[1]]
                    code_id = self._closure_code_id(closure)
                    if code_id == _ESCAPE_CODE:
                        args = [regs[r] for r in ins[2]]
                        code, regs, pc = self._unwind(closure, args)
                        instructions = code.instructions
                        continue
                else:
                    closure = 0
                    code_id = ins[1]
                args = [regs[r] for r in ins[2]]
                callee = self.codes[code_id]
                code = callee
                self._scratch_roots = [closure] + args
                self.frames.append([code, regs, pc, -1])
                new_regs = self._make_regs(callee, args, closure)
                self.frames.pop()
                self._scratch_roots = []
                regs = new_regs
                instructions = code.instructions
                pc = 0
            elif op == isa.RET:
                value = regs[ins[1]]
                if not self.frames:
                    return self._result(value)
                code, regs, pc, dest = self.frames.pop()
                instructions = code.instructions
                regs[dest] = value
            elif op == isa.CALLEC:
                closure = regs[ins[2]]
                code_id = self._closure_code_id(closure)
                if code_id == _ESCAPE_CODE:
                    raise SchemeError(FAIL_MESSAGES[12], closure)
                callee = self.codes[code_id]
                self.frames.append([code, regs, pc, ins[1]])
                if len(self.frames) > 8000:
                    raise VMError("call stack overflow (deep non-tail recursion)")
                depth = len(self.frames)
                self._scratch_roots = [closure]
                escape = self._alloc(2, _CLOSURE_TAG)
                base = escape & ~7
                heap.store(base + 8, _ESCAPE_CODE)
                heap.store(base + 16, depth << 3)  # fixnum-tagged: GC-inert
                code = callee
                new_regs = self._make_regs(callee, [escape], closure)
                self._scratch_roots = []
                regs = new_regs
                instructions = code.instructions
                pc = 0
            elif op == isa.APPLY or op == isa.TAILAPPLY:
                tail = op == isa.TAILAPPLY
                freg = ins[2] if not tail else ins[1]
                lreg = ins[3] if not tail else ins[2]
                closure = regs[freg]
                code_id = self._closure_code_id(closure)
                args = self._unpack_list(regs[lreg])
                if code_id == _ESCAPE_CODE:
                    code, regs, pc = self._unwind(closure, args)
                    instructions = code.instructions
                    continue
                callee = self.codes[code_id]
                if not tail:
                    self.frames.append([code, regs, pc, ins[1]])
                    if len(self.frames) > 8000:
                        raise VMError("call stack overflow (deep non-tail recursion)")
                code = callee
                self._scratch_roots = [closure] + args
                self.frames.append([code, regs, pc, -1])
                new_regs = self._make_regs(callee, args, closure)
                self.frames.pop()
                self._scratch_roots = []
                regs = new_regs
                instructions = code.instructions
                pc = 0
            elif op == isa.PUTC:
                self.output.append(chr(regs[ins[1]] & 0x10FFFF))
            elif op == isa.GETC:
                if self.input_pos < len(self.input_codes):
                    regs[ins[1]] = self.input_codes[self.input_pos]
                    self.input_pos += 1
                else:
                    regs[ins[1]] = WORD_MASK
            elif op == isa.PEEKC:
                if self.input_pos < len(self.input_codes):
                    regs[ins[1]] = self.input_codes[self.input_pos]
                else:
                    regs[ins[1]] = WORD_MASK
            elif op == isa.REGPTR:
                heap.register_pointer_tag(regs[ins[1]])
            elif op == isa.REGPAIR:
                self.registry.register_pair(
                    regs[ins[1]], signed(regs[ins[2]]), signed(regs[ins[3]])
                )
            elif op == isa.REGNIL:
                self.registry.register_nil(regs[ins[1]])
            elif op == isa.REGFALSE:
                self.registry.register_false(regs[ins[1]])
            elif op == isa.FAIL:
                fail_code = regs[ins[1]]
                message = FAIL_MESSAGES.get(fail_code, f"runtime failure {fail_code}")
                raise SchemeError(message)
            elif op == isa.HALT:
                return self._result(regs[ins[1]])
            else:
                raise VMError(f"unknown opcode {op}")

    # ------------------------------------------------------------------

    @staticmethod
    def _div(a: int, b: int) -> int:
        if b == 0:
            raise SchemeError(FAIL_MESSAGES[10])
        quotient = abs(signed(a)) // abs(signed(b))
        if (signed(a) < 0) != (signed(b) < 0):
            quotient = -quotient
        return wrap(quotient)

    @staticmethod
    def _mod(a: int, b: int) -> int:
        if b == 0:
            raise SchemeError(FAIL_MESSAGES[10])
        remainder = abs(signed(a)) % abs(signed(b))
        if signed(a) < 0:
            remainder = -remainder
        return wrap(remainder)

    def _result(self, value: int) -> RunResult:
        named = {}
        for opcode, count in enumerate(self.counts):
            if count:
                named[isa.OPCODE_NAMES[opcode]] = count
        return RunResult(
            value=value,
            output="".join(self.output),
            steps=self.steps,
            opcode_counts=named,
            gc_count=self.heap.gc_count,
            words_allocated=self.heap.words_allocated,
            rest_conses=self.rest_conses,
        )
