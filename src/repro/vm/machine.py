"""The virtual machine: executes :class:`~repro.vm.isa.VMProgram`.

A register machine with deterministic instruction-count statistics —
the reproduction's stand-in for the paper's machine-code measurements.
The *execution engine* (how instructions are dispatched) is pluggable:
see :mod:`repro.vm.engine` for the naive switch interpreter and the
threaded-dispatch engine.  All engines produce identical results,
identical (decomposed) instruction counts, and identical errors; they
differ only in wall-clock speed.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from time import perf_counter

from ..errors import (
    AllocBudgetExceeded,
    DeadlineExceeded,
    ReproError,
    SchemeError,
    StepBudgetExceeded,
    VMError,
)
from ..prims import WORD_MASK, signed, wrap
from . import isa
from .budget import BUDGET_CHECK_INTERVAL, Budget, TrapInfo, trap_kind
from .heap import DEFAULT_GC_OCCUPANCY, Heap, default_heap_words
from .registry import TypeRegistry

_UNSET = object()  # sentinel for "keep the current budget" in resume()

# Error codes for %fail, shared by convention with the prelude sources
# (src/repro/runtime/scm/*): the library passes these raw codes.
FAIL_MESSAGES = {
    1: "type check failed",
    2: "index out of range",
    3: "error signalled",
    4: "arity mismatch",
    5: "car/cdr of non-pair",
    6: "vector operation on non-vector",
    7: "string operation on non-string",
    8: "arithmetic on non-fixnum",
    9: "fixnum overflow",
    10: "division by zero",
    11: "char operation on non-char",
    12: "not a procedure",
    13: "improper argument list",
    14: "symbol operation on non-symbol",
}

_CLOSURE_TAG = 7
# code-id sentinel marking a closure as an escape continuation; its one
# "free variable" slot holds the frame depth to unwind to.
_ESCAPE_CODE = (1 << 32) - 1


@dataclass
class RunResult:
    """Outcome of one VM run.

    ``opcode_counts`` is keyed by *base* opcode names (strings from
    :data:`~repro.vm.isa.OPCODE_NAMES`), never raw opcode numbers, and
    fused superinstructions are charged to their constituents — so the
    counts are identical whether the program ran fused or unfused, on
    any engine.  ``steps`` counts base instructions (a fused pair is two
    steps); ``dispatches`` counts actual dispatch events (a fused pair
    is one dispatch).
    """

    value: int
    output: str
    steps: int
    opcode_counts: dict[str, int]
    gc_count: int
    words_allocated: int
    #: synthetic conses performed by the substrate for rest-args/apply
    rest_conses: int = 0
    #: dispatch events (== steps when no superinstructions executed)
    dispatches: int = 0
    #: which engine produced this result
    engine: str = "naive"
    #: wall-clock duration of the run (set by :meth:`Machine.run`)
    elapsed_seconds: float = 0.0
    #: GC telemetry aggregates (see :meth:`repro.vm.heap.Heap.gc_telemetry`)
    gc_stats: dict = field(default_factory=dict)

    def count(self, opcode_name: str) -> int:
        """Decomposed dynamic count for one *base* opcode name."""
        return self.opcode_counts.get(opcode_name, 0)


class Machine:
    """One VM instance: a program, a heap, and an execution engine.

    **Reusable-state contract** (see docs/INTERNALS.md §11): after a run
    completes *or traps*, the machine is left with its heap and
    registry invariants intact.  Calling :meth:`run` again performs a
    fresh run of the same program on the same heap (per-run state —
    counters, output, globals, frames — is reset; the heap is not, its
    garbage is simply unreachable and will be collected).  After a
    *budget* trap specifically, :meth:`resume` instead continues the
    suspended run under new limits.  :meth:`load` swaps in a different
    program while keeping the heap.
    """

    def __init__(
        self,
        program: isa.VMProgram,
        heap_words: int | None = None,
        max_steps: int | None = None,
        count_instructions: bool = True,
        input_text: str = "",
        engine: str | None = None,
        profile: bool = False,
        gc_occupancy: float | None = DEFAULT_GC_OCCUPANCY,
        deadline_seconds: float | None = None,
        max_alloc_words: int | None = None,
        budget: Budget | None = None,
    ):
        self.program = program
        self.codes = program.code_objects
        if heap_words is None:
            heap_words = default_heap_words()
        self.heap = Heap(heap_words, gc_occupancy=gc_occupancy)
        self.heap.register_pointer_tag(_CLOSURE_TAG)  # compiler-owned layout
        self.registry = TypeRegistry()
        self.globals = [0] * len(program.global_names)
        self.global_defined = bytearray(len(program.global_names))
        self.output: list[str] = []
        self.input_codes = [ord(ch) for ch in input_text]
        self.input_pos = 0
        if budget is None:
            budget = Budget(max_steps, deadline_seconds, max_alloc_words)
        self.max_steps = budget.max_steps
        self.deadline_seconds = budget.deadline_seconds
        self.max_alloc_words = budget.max_alloc_words
        # Budgets are enforced on the counted dispatch path; a budgeted
        # run therefore always counts.
        if not budget.unlimited:
            count_instructions = True
        self.count_instructions = count_instructions
        self.counts = [0] * isa.NUM_BASE_OPCODES
        self.steps = 0
        self.dispatches = 0
        self.rest_conses = 0
        # frame stack: entries are [code, regs, pc, dest_reg]
        self.frames: list[list] = []
        # transient roots protected across allocations inside the VM
        self._scratch_roots: list[int] = []
        # hot-pair mining (naive engine only): (op1, op2) -> fall-through
        # adjacency count; fed by the profiler.
        self.profile = profile
        self.pair_counts: dict[tuple[int, int], int] = {}
        # --- budget / trap state --------------------------------------
        #: unified fast-path limit: min(max_steps, next periodic check)
        self._step_limit: int | None = None
        #: absolute perf_counter() time at which the deadline expires
        self._deadline_at: float | None = None
        self._deadline_started: float = 0.0
        #: fault injection: pretend the deadline expired past this step
        self._injected_deadline_step: int | None = None
        #: opcode charged-but-not-executed at the last budget overrun
        self._overrun_rollback: int | None = None
        #: engine state saved at the last budget trip (resumable)
        self._suspension = None
        #: TrapInfo for the last fault, or None
        self.last_trap: TrapInfo | None = None
        self._run_consumed = False
        #: programs retired by load(); kept alive so engine caches keyed
        #: by id(code) can never collide with recycled ids
        self._retired_programs: list[isa.VMProgram] = []
        # Step budgets work even for callers that drive the engine
        # directly; deadlines arm in run()/resume().
        self._recompute_step_limit()
        from .engine import create_engine

        self._engine = create_engine(engine, self)

    # ------------------------------------------------------------------
    # GC plumbing
    # ------------------------------------------------------------------

    def _roots(self):
        out = []
        for frame in self.frames:
            out.extend(frame[1])
        for i, value in enumerate(self.globals):
            if self.global_defined[i]:
                out.append(value)
        out.extend(self._scratch_roots)
        return out

    def _alloc(self, nwords: int, tag: int) -> int:
        return self.heap.allocate(nwords, tag, self._roots)

    # ------------------------------------------------------------------
    # procedure invocation
    # ------------------------------------------------------------------

    def _closure_code_id(self, word: int) -> int:
        if word & 7 != _CLOSURE_TAG:
            raise SchemeError(FAIL_MESSAGES[12], word)
        return self.heap.load((word & ~7) + 8)

    def _closure_free(self, word: int, index: int) -> int:
        return self.heap.load((word & ~7) + 16 + 8 * index)

    def _make_regs(self, code: isa.CodeObject, args: list[int], closure: int) -> list[int]:
        regs = [0] * code.nregs
        n = code.nparams
        if code.has_rest:
            if len(args) < n:
                raise SchemeError(
                    f"arity mismatch calling {code.name!r}: "
                    f"expected at least {n} arguments, got {len(args)}"
                )
            regs[:n] = args[:n]
            regs[n] = self._build_rest(args[n:])
            slot = n + 1
        else:
            if len(args) != n:
                raise SchemeError(
                    f"arity mismatch calling {code.name!r}: "
                    f"expected {n} arguments, got {len(args)}"
                )
            regs[:n] = args
            slot = n
        if code.nfree:
            regs[slot] = closure
        return regs

    def _build_rest(self, extra: list[int]) -> int:
        registry = self.registry
        registry.require_pairs("a rest-argument list")
        result = registry.nil_word
        tag = registry.pair_tag
        car_disp = registry.car_disp
        cdr_disp = registry.cdr_disp
        nwords = registry.pair_words
        # Protect the extras and the partial list across allocations.
        self._scratch_roots = list(extra)
        try:
            for word in reversed(extra):
                self._scratch_roots.append(result)
                pair = self._alloc(nwords, tag)
                self._scratch_roots.pop()
                self.heap.store(wrap(pair + car_disp), word)
                self.heap.store(wrap(pair + cdr_disp), result)
                result = pair
                self.rest_conses += 1
        finally:
            self._scratch_roots = []
        return result

    def _unpack_list(self, word: int) -> list[int]:
        registry = self.registry
        registry.require_pairs("apply")
        out = []
        seen = 0
        while word != registry.nil_word:
            if word & 7 != registry.pair_tag:
                raise SchemeError(FAIL_MESSAGES[13], word)
            out.append(self.heap.load(wrap(word + registry.car_disp)))
            word = self.heap.load(wrap(word + registry.cdr_disp))
            seen += 1
            if seen > 10_000_000:
                raise VMError("apply argument list is cyclic or too long")
        return out

    def _unwind(self, escape_word: int, args: list[int]):
        """Invoke an escape continuation: discard frames down to its
        capture depth and return to the %callec call site."""
        if len(args) != 1:
            raise SchemeError(
                f"arity mismatch calling an escape continuation: "
                f"expected 1 argument, got {len(args)}"
            )
        depth = self.heap.load((escape_word & ~7) + 16) >> 3
        if depth < 1 or depth > len(self.frames):
            raise SchemeError(
                "escape continuation invoked after its extent ended"
            )
        del self.frames[depth:]
        frame = self.frames.pop()
        frame[1][frame[3]] = args[0]
        return frame

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute to completion on the configured engine.

        Cyclic GC is suspended for the duration: the VM's own
        allocations are reference-counted and acyclic at steady state
        (frames, argument lists, handler closures), but creating them
        triggers collections that re-scan the multi-megaword heap list
        and every handler table for cycles that cannot exist.  Suspend
        and restore rather than tune thresholds so embedders see no
        lasting change.

        On any fault the machine unwinds through :meth:`trap` before
        the exception propagates, so the heap stays consistent and the
        machine stays reusable; a later ``run()`` starts a fresh run of
        the program on the same heap.
        """
        if self._run_consumed:
            self._reset_run_state()
        self._run_consumed = True
        self.last_trap = None
        self._suspension = None
        self._arm_budgets()
        return self._drive(self._engine.run)

    def resume(
        self,
        max_steps=_UNSET,
        deadline_seconds=_UNSET,
        max_alloc_words=_UNSET,
    ) -> RunResult:
        """Continue a run suspended by a budget trip.

        Only valid when the last fault was a :class:`BudgetExceeded`
        (``machine.last_trap.resumable``).  Passed limits *replace* the
        corresponding budget (``None`` removes it); omitted limits are
        kept — a kept deadline restarts its clock from now.  The
        returned :class:`RunResult` carries cumulative counters for the
        whole run, and ``elapsed_seconds`` for this segment only.
        """
        suspension = self._suspension
        if suspension is None:
            raise VMError(
                "nothing to resume: the machine is not suspended at a "
                "budget trap"
            )
        if max_steps is not _UNSET:
            self.max_steps = max_steps
        if deadline_seconds is not _UNSET:
            self.deadline_seconds = deadline_seconds
        if max_alloc_words is not _UNSET:
            self.max_alloc_words = max_alloc_words
        if self.max_steps is not None and self.steps > self.max_steps + 1:
            raise VMError(
                f"resume needs a larger step budget: {self.steps} steps "
                f"already executed, max_steps={self.max_steps}"
            )
        self._suspension = None
        self._injected_deadline_step = None
        self.last_trap = None
        self._arm_budgets()
        return self._drive(lambda: self._engine.resume(suspension))

    def _drive(self, thunk) -> RunResult:
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        started = perf_counter()
        try:
            result = thunk()
        except BaseException as error:
            self.trap(error)
            raise
        finally:
            if was_enabled:
                gc.enable()
        result.elapsed_seconds = perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # trap recovery and machine reuse
    # ------------------------------------------------------------------

    def trap(self, error: BaseException) -> TrapInfo:
        """The single unwind path for every VM fault.

        Restores the heap/registry invariants the engines' inline fast
        paths defer (``sync_allocations``), drops transient GC roots,
        snapshots a :class:`TrapInfo`, and — unless the fault is a
        resumable budget trip — clears the frame stack so the machine
        satisfies the reusable-state contract.  The info record is also
        attached to the exception (``error.trap``) when it is a
        :class:`ReproError`.
        """
        self._scratch_roots = []
        sync = getattr(self.heap, "sync_allocations", None)
        if sync is not None:
            sync()
        resumable = self._suspension is not None
        deadline_remaining = None
        if self._deadline_at is not None:
            deadline_remaining = self._deadline_at - perf_counter()
        info = TrapInfo(
            error=type(error).__name__,
            message=str(error),
            kind=trap_kind(error),
            pc=getattr(error, "trap_pc", None),
            opcode=getattr(error, "trap_opcode", None),
            steps=self.steps,
            dispatches=self.dispatches,
            frame_depth=len(self.frames),
            engine=self._engine.name,
            resumable=resumable,
            gc_count=self.heap.gc_count,
            words_allocated=self.heap.words_allocated,
            deadline_remaining_seconds=deadline_remaining,
        )
        self.last_trap = info
        if isinstance(error, ReproError):
            error.trap = info
        if not resumable:
            self.frames.clear()
        return info

    def _reset_run_state(self) -> None:
        """Clear per-run state; the heap (and its garbage) persists."""
        self.counts = [0] * isa.NUM_BASE_OPCODES
        self.steps = 0
        self.dispatches = 0
        self.rest_conses = 0
        self.output = []
        self.input_pos = 0
        self.frames.clear()
        self._scratch_roots = []
        self.pair_counts = {}
        self.globals = [0] * len(self.program.global_names)
        self.global_defined = bytearray(len(self.program.global_names))
        self.registry = TypeRegistry()
        self._suspension = None
        self._overrun_rollback = None
        self._injected_deadline_step = None
        self.last_trap = None

    def reset(
        self, budget: Budget | None = None, input_text: str | None = None
    ) -> None:
        """Re-arm the machine for a fresh run of its program, in one call.

        The pool entry point (docs/SERVING.md): clears every piece of
        per-run state — counters, frames, globals, output, the pending
        budget suspension including any charged fused-pair half, and
        ``last_trap`` — and re-arms the budgets, so the next :meth:`run`
        behaves exactly like the first run on a new machine with the
        same heap.  ``budget`` replaces all three limits when given
        (otherwise the configured limits are kept and their clocks
        restart on the next run); ``input_text`` replaces the program's
        input stream when given.
        """
        self._reset_run_state()
        self._run_consumed = False
        if budget is not None:
            self.max_steps = budget.max_steps
            self.deadline_seconds = budget.deadline_seconds
            self.max_alloc_words = budget.max_alloc_words
        if input_text is not None:
            self.input_codes = [ord(ch) for ch in input_text]
        self._deadline_at = None
        self._recompute_step_limit()

    def run_slice(self, max_steps: int) -> RunResult | None:
        """Run at most ``max_steps`` more counted instructions.

        The cooperative-preemption primitive the execution service
        schedules tenants with (docs/SERVING.md): the first call starts
        the run under a step budget, later calls resume the suspended
        run under a cumulative budget ``steps + max_steps``.  Returns
        the final :class:`RunResult` when the program completes within
        the slice, or ``None`` when the slice budget tripped and the
        machine is suspended (``last_trap`` holds the resumable
        snapshot).  Non-step faults — deadline/allocation budgets, heap
        exhaustion, Scheme traps — propagate to the caller unchanged.
        """
        if max_steps < 1:
            raise VMError(f"run_slice needs a positive budget (got {max_steps})")
        try:
            if self._suspension is not None:
                return self.resume(max_steps=self.steps + max_steps)
            self.max_steps = max_steps
            return self.run()
        except StepBudgetExceeded:
            return None

    def load(self, program: isa.VMProgram, input_text: str = "") -> None:
        """Bind a different program to this machine, keeping the heap.

        The previous program's code objects are retained (not just for
        the caller's convenience: the engines cache handler tables by
        ``id(code)``, so retiring them keeps recycled ids impossible).
        Retention is by identity and deduplicated, so a pooled machine
        cycling through a bounded set of cached programs (the execution
        service) retires each at most once.
        """
        if not any(retired is self.program for retired in self._retired_programs):
            self._retired_programs.append(self.program)
        self.program = program
        self.codes = program.code_objects
        self.input_codes = [ord(ch) for ch in input_text]
        self._reset_run_state()
        self._run_consumed = False

    def install_heap(self, heap) -> None:
        """Replace the heap between runs (bench/fault/recovery harnesses).

        Engine handler caches close over the heap's arrays, so they are
        invalidated; any pending budget suspension references them too
        and is dropped (a swapped heap cannot resume the old run).
        """
        heap.register_pointer_tag(_CLOSURE_TAG)
        self.heap = heap
        self._suspension = None
        self._engine.heap_changed()

    @property
    def engine_name(self) -> str:
        return self._engine.name

    # ------------------------------------------------------------------
    # resource budgets
    # ------------------------------------------------------------------

    def _arm_budgets(self) -> None:
        """(Re)start the budget clocks; recompute the fast-path limit."""
        self._deadline_started = perf_counter()
        if self.deadline_seconds is not None:
            self._deadline_at = self._deadline_started + self.deadline_seconds
        else:
            self._deadline_at = None
        self._recompute_step_limit()

    def _recompute_step_limit(self) -> int | None:
        """The unified fast-path limit the engines compare against."""
        limit = self.max_steps
        if (
            self._deadline_at is not None
            or self.max_alloc_words is not None
            or self._injected_deadline_step is not None
        ):
            checkpoint = self.steps + BUDGET_CHECK_INTERVAL
            if self._injected_deadline_step is not None:
                checkpoint = min(checkpoint, self._injected_deadline_step)
            limit = checkpoint if limit is None else min(limit, checkpoint)
        self._step_limit = limit
        return limit

    def _step_overrun(self, op: int) -> int | None:
        """Leave the fast path: raise a budget error or move the limit.

        Called with ``steps`` already past ``_step_limit`` and the
        tripping instruction (base opcode ``op``) charged but not yet
        executed.  Raising records ``op`` for the resume rollback;
        returning hands the engine the recomputed limit.
        """
        steps = self.steps
        # Deadline/allocation checks run before the step-budget check so
        # a step-budget trip doubles as a checkpoint for them.  Without
        # this, a run sliced by ``max_steps`` smaller than
        # BUDGET_CHECK_INTERVAL (the execution service's preemption
        # quantum) would never reach a cadence checkpoint and the other
        # budgets would silently not bind.
        if (
            self._injected_deadline_step is not None
            and steps > self._injected_deadline_step
        ):
            self._overrun_rollback = op
            raise DeadlineExceeded(
                perf_counter() - self._deadline_started,
                self.deadline_seconds or 0.0,
                message=f"injected deadline expiry at step {steps}",
            )
        if self._deadline_at is not None:
            now = perf_counter()
            if now >= self._deadline_at:
                self._overrun_rollback = op
                raise DeadlineExceeded(
                    now - self._deadline_started, self.deadline_seconds
                )
        if self.max_alloc_words is not None:
            self.heap.sync_allocations()
            if self.heap.words_allocated > self.max_alloc_words:
                self._overrun_rollback = op
                raise AllocBudgetExceeded(
                    self.heap.words_allocated, self.max_alloc_words
                )
        if self.max_steps is not None and steps > self.max_steps:
            self._overrun_rollback = op
            raise StepBudgetExceeded(steps, self.max_steps)
        return self._recompute_step_limit()

    def _count_step(self, op: int) -> None:
        """Count one base instruction and enforce the budgets.

        Fused superinstructions call this once per *constituent*, in
        order, so counting — including the step index at which a
        ``max_steps`` budget trips — is identical to an unfused run.
        The budget check is one compare against the unified limit; all
        slow-path work lives in :meth:`_step_overrun`.
        """
        self.counts[op] += 1
        self.steps += 1
        limit = self._step_limit
        if limit is not None and self.steps > limit:
            self._step_overrun(op)

    # ------------------------------------------------------------------

    @staticmethod
    def _div(a: int, b: int) -> int:
        if b == 0:
            raise SchemeError(FAIL_MESSAGES[10])
        quotient = abs(signed(a)) // abs(signed(b))
        if (signed(a) < 0) != (signed(b) < 0):
            quotient = -quotient
        return wrap(quotient)

    @staticmethod
    def _mod(a: int, b: int) -> int:
        if b == 0:
            raise SchemeError(FAIL_MESSAGES[10])
        remainder = abs(signed(a)) % abs(signed(b))
        if signed(a) < 0:
            remainder = -remainder
        return wrap(remainder)

    def _result(self, value: int) -> RunResult:
        named = {}
        for opcode, count in enumerate(self.counts):
            if count:
                named[isa.OPCODE_NAMES[opcode]] = count
        # The engines defer block registration on the bump-allocation
        # fast path; settle the books before reading any statistics.
        sync = getattr(self.heap, "sync_allocations", None)
        if sync is not None:
            sync()
        telemetry = getattr(self.heap, "gc_telemetry", None)
        result = RunResult(
            value=value,
            output="".join(self.output),
            steps=self.steps,
            opcode_counts=named,
            gc_count=self.heap.gc_count,
            words_allocated=self.heap.words_allocated,
            rest_conses=self.rest_conses,
            dispatches=self.dispatches,
            engine=self._engine.name,
            gc_stats=telemetry() if telemetry is not None else {},
        )
        # Results are decodable without going back through the api layer
        # (resume() returns from here directly).
        result.machine = self  # type: ignore[attr-defined]
        return result
