"""The target instruction set: a three-address register machine.

This plays the role of the paper's machine code.  Instructions are
Python lists ``[opcode, operand…]`` (lists, not tuples, so the assembler
can backpatch branch targets).  Registers are per-frame and virtual
(no spilling); the calling convention places arguments in ``r0…rN-1``,
the rest-argument list (if the callee is variadic) in ``rN``, and the
callee's own closure (when it has captured variables) in the next slot.

Everything the compiler emits for *data* is expressible in LDC/arith/
bit/LD/ST/ALLOC — the machine has no idea what a pair or a fixnum is.
The only representation knowledge in the VM is (a) the closure/cell
layout, which the compiler owns, and (b) whatever the *library registers
at run time* (pair layout and nil for rest-lists and apply, via the
``%register-…`` primitives).
"""

from __future__ import annotations

_NAMES: list[str] = []


def _op(name: str) -> int:
    _NAMES.append(name)
    return len(_NAMES) - 1


# --- constants and moves ------------------------------------------------
LDC = _op("LDC")          # d, imm        d := imm (64-bit word)
MOV = _op("MOV")          # d, s

# --- arithmetic (64-bit wrap; DIV/MOD signed truncating) ------------------
ADD = _op("ADD")          # d, s1, s2
SUB = _op("SUB")
MUL = _op("MUL")
DIV = _op("DIV")
MOD = _op("MOD")

# --- bit operations -------------------------------------------------------
AND = _op("AND")
OR = _op("OR")
XOR = _op("XOR")
NOT = _op("NOT")          # d, s
SHL = _op("SHL")
SHR = _op("SHR")
SAR = _op("SAR")

# --- immediate-operand forms (the assembler picks these when the second
# --- operand is a small constant; real ISAs have them, and instruction
# --- counts shouldn't charge abstraction for materialising constants) ----
ADDI = _op("ADDI")        # d, s, imm
SUBI = _op("SUBI")
MULI = _op("MULI")
ANDI = _op("ANDI")
ORI = _op("ORI")
XORI = _op("XORI")
SHLI = _op("SHLI")
SHRI = _op("SHRI")
SARI = _op("SARI")

# --- comparisons to a register (raw 0/1) ----------------------------------
CMPEQ = _op("CMPEQ")      # d, s1, s2
CMPNE = _op("CMPNE")
CMPLT = _op("CMPLT")
CMPLE = _op("CMPLE")
CMPULT = _op("CMPULT")
CMPULE = _op("CMPULE")
CMPNZ = _op("CMPNZ")      # d, s
CMPEQI = _op("CMPEQI")    # d, s, imm
CMPNEI = _op("CMPNEI")
CMPLTI = _op("CMPLTI")
CMPLEI = _op("CMPLEI")

# --- control flow ----------------------------------------------------------
JMP = _op("JMP")          # target
JT = _op("JT")            # s, target      jump when s != 0
JF = _op("JF")            # s, target      jump when s == 0
JEQ = _op("JEQ")          # s1, s2, target
JNE = _op("JNE")
JLT = _op("JLT")
JGE = _op("JGE")
JLE = _op("JLE")
JGT = _op("JGT")
JULT = _op("JULT")
JUGE = _op("JUGE")
JULE = _op("JULE")
JUGT = _op("JUGT")
JEQI = _op("JEQI")        # s, imm, target
JNEI = _op("JNEI")
JLTI = _op("JLTI")        # s, imm, target (signed)
JGEI = _op("JGEI")
JLEI = _op("JLEI")
JGTI = _op("JGTI")

# --- memory ----------------------------------------------------------------
LD = _op("LD")            # d, s, disp     d := mem[(s + disp) >> 3]
ST = _op("ST")            # s, disp, v     mem[(s + disp) >> 3] := v
ALLOC = _op("ALLOC")      # d, s_nwords, s_tag   allocate (regs) payload words
ALLOCI = _op("ALLOCI")    # d, nwords, tag       immediate form

# --- globals -----------------------------------------------------------------
GLD = _op("GLD")          # d, index       (checks definedness)
GST = _op("GST")          # s, index

# --- procedures --------------------------------------------------------------
CLOSURE = _op("CLOSURE")  # d, code_id, [free regs]
CALL = _op("CALL")        # d, f, [arg regs]
CALLL = _op("CALLL")      # d, code_id, [arg regs]   direct call
TAILCALL = _op("TAILCALL")  # f, [arg regs]
TAILL = _op("TAILL")      # code_id, [arg regs]
RET = _op("RET")          # s
CALLEC = _op("CALLEC")    # d, f           call f with an escape continuation
APPLY = _op("APPLY")      # d, f, lst
TAILAPPLY = _op("TAILAPPLY")  # f, lst

# --- runtime registry, I/O, termination ---------------------------------------
REGPTR = _op("REGPTR")    # s              register a pointer tag
REGPAIR = _op("REGPAIR")  # tag, cardisp, cddisp  (regs)
REGNIL = _op("REGNIL")    # s
REGFALSE = _op("REGFALSE")  # s
PUTC = _op("PUTC")        # s              raw character code
GETC = _op("GETC")        # d              next input char code or ~0
PEEKC = _op("PEEKC")      # d              like GETC without consuming
FAIL = _op("FAIL")        # s              raw error code
HALT = _op("HALT")        # s

OPCODE_NAMES = tuple(_NAMES)
NUM_OPCODES = len(_NAMES)


class CodeObject:
    """One compiled procedure (or the top-level main)."""

    __slots__ = ("name", "nparams", "has_rest", "nfree", "nregs", "instructions")

    def __init__(self, name: str, nparams: int, has_rest: bool, nfree: int):
        self.name = name
        self.nparams = nparams
        self.has_rest = has_rest
        self.nfree = nfree
        self.nregs = 0
        self.instructions: list[list] = []

    def __repr__(self) -> str:
        return (
            f"<code {self.name!r} params={self.nparams}"
            f"{'+rest' if self.has_rest else ''} free={self.nfree}"
            f" regs={self.nregs} len={len(self.instructions)}>"
        )


class VMProgram:
    """A fully compiled program: code objects plus the global table."""

    __slots__ = ("code_objects", "global_names", "main_id")

    def __init__(self, code_objects: list[CodeObject], global_names: list[str]):
        self.code_objects = code_objects
        self.global_names = global_names
        self.main_id = 0

    def static_instruction_count(self, name: str | None = None) -> int:
        """Total emitted instructions (optionally for one code object)."""
        if name is None:
            return sum(len(code.instructions) for code in self.code_objects)
        for code in self.code_objects:
            if code.name == name:
                return len(code.instructions)
        raise KeyError(name)

    def code_named(self, name: str) -> CodeObject:
        for code in self.code_objects:
            if code.name == name:
                return code
        raise KeyError(name)


def format_instruction(ins: list) -> str:
    op = ins[0]
    parts = [OPCODE_NAMES[op]]
    for operand in ins[1:]:
        if isinstance(operand, list):
            parts.append("[" + " ".join(f"r{r}" for r in operand) + "]")
        else:
            parts.append(str(operand))
    return " ".join(parts)


def disassemble(code: CodeObject) -> str:
    lines = [repr(code)]
    for i, ins in enumerate(code.instructions):
        lines.append(f"  {i:4d}: {format_instruction(ins)}")
    return "\n".join(lines)
