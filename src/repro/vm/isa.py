"""The target instruction set: a three-address register machine.

This plays the role of the paper's machine code.  Instructions are
Python lists ``[opcode, operand…]`` (lists, not tuples, so the assembler
can backpatch branch targets).  Registers are per-frame and virtual
(no spilling); the calling convention places arguments in ``r0…rN-1``,
the rest-argument list (if the callee is variadic) in ``rN``, and the
callee's own closure (when it has captured variables) in the next slot.

Everything the compiler emits for *data* is expressible in LDC/arith/
bit/LD/ST/ALLOC — the machine has no idea what a pair or a fixnum is.
The only representation knowledge in the VM is (a) the closure/cell
layout, which the compiler owns, and (b) whatever the *library registers
at run time* (pair layout and nil for rest-lists and apply, via the
``%register-…`` primitives).
"""

from __future__ import annotations

_NAMES: list[str] = []


def _op(name: str) -> int:
    _NAMES.append(name)
    return len(_NAMES) - 1


# --- constants and moves ------------------------------------------------
LDC = _op("LDC")          # d, imm        d := imm (64-bit word)
MOV = _op("MOV")          # d, s

# --- arithmetic (64-bit wrap; DIV/MOD signed truncating) ------------------
ADD = _op("ADD")          # d, s1, s2
SUB = _op("SUB")
MUL = _op("MUL")
DIV = _op("DIV")
MOD = _op("MOD")

# --- bit operations -------------------------------------------------------
AND = _op("AND")
OR = _op("OR")
XOR = _op("XOR")
NOT = _op("NOT")          # d, s
SHL = _op("SHL")
SHR = _op("SHR")
SAR = _op("SAR")

# --- immediate-operand forms (the assembler picks these when the second
# --- operand is a small constant; real ISAs have them, and instruction
# --- counts shouldn't charge abstraction for materialising constants) ----
ADDI = _op("ADDI")        # d, s, imm
SUBI = _op("SUBI")
MULI = _op("MULI")
ANDI = _op("ANDI")
ORI = _op("ORI")
XORI = _op("XORI")
SHLI = _op("SHLI")
SHRI = _op("SHRI")
SARI = _op("SARI")

# --- comparisons to a register (raw 0/1) ----------------------------------
CMPEQ = _op("CMPEQ")      # d, s1, s2
CMPNE = _op("CMPNE")
CMPLT = _op("CMPLT")
CMPLE = _op("CMPLE")
CMPULT = _op("CMPULT")
CMPULE = _op("CMPULE")
CMPNZ = _op("CMPNZ")      # d, s
CMPEQI = _op("CMPEQI")    # d, s, imm
CMPNEI = _op("CMPNEI")
CMPLTI = _op("CMPLTI")
CMPLEI = _op("CMPLEI")

# --- control flow ----------------------------------------------------------
JMP = _op("JMP")          # target
JT = _op("JT")            # s, target      jump when s != 0
JF = _op("JF")            # s, target      jump when s == 0
JEQ = _op("JEQ")          # s1, s2, target
JNE = _op("JNE")
JLT = _op("JLT")
JGE = _op("JGE")
JLE = _op("JLE")
JGT = _op("JGT")
JULT = _op("JULT")
JUGE = _op("JUGE")
JULE = _op("JULE")
JUGT = _op("JUGT")
JEQI = _op("JEQI")        # s, imm, target
JNEI = _op("JNEI")
JLTI = _op("JLTI")        # s, imm, target (signed)
JGEI = _op("JGEI")
JLEI = _op("JLEI")
JGTI = _op("JGTI")

# --- memory ----------------------------------------------------------------
LD = _op("LD")            # d, s, disp     d := mem[(s + disp) >> 3]
ST = _op("ST")            # s, disp, v     mem[(s + disp) >> 3] := v
ALLOC = _op("ALLOC")      # d, s_nwords, s_tag   allocate (regs) payload words
ALLOCI = _op("ALLOCI")    # d, nwords, tag       immediate form

# --- globals -----------------------------------------------------------------
GLD = _op("GLD")          # d, index       (checks definedness)
GST = _op("GST")          # s, index

# --- procedures --------------------------------------------------------------
CLOSURE = _op("CLOSURE")  # d, code_id, [free regs]
CALL = _op("CALL")        # d, f, [arg regs]
CALLL = _op("CALLL")      # d, code_id, [arg regs]   direct call
TAILCALL = _op("TAILCALL")  # f, [arg regs]
TAILL = _op("TAILL")      # code_id, [arg regs]
RET = _op("RET")          # s
CALLEC = _op("CALLEC")    # d, f           call f with an escape continuation
APPLY = _op("APPLY")      # d, f, lst
TAILAPPLY = _op("TAILAPPLY")  # f, lst

# --- runtime registry, I/O, termination ---------------------------------------
REGPTR = _op("REGPTR")    # s              register a pointer tag
REGPAIR = _op("REGPAIR")  # tag, cardisp, cddisp  (regs)
REGNIL = _op("REGNIL")    # s
REGFALSE = _op("REGFALSE")  # s
PUTC = _op("PUTC")        # s              raw character code
GETC = _op("GETC")        # d              next input char code or ~0
PEEKC = _op("PEEKC")      # d              like GETC without consuming
FAIL = _op("FAIL")        # s              raw error code
HALT = _op("HALT")        # s

# ---------------------------------------------------------------------------
# superinstructions
# ---------------------------------------------------------------------------
#
# A fused opcode is the exact concatenation of two base instructions: its
# operand list is the first instruction's operands followed by the second's,
# and executing it is defined as executing the two halves in order.  Fusion
# is purely a dispatch optimisation — instruction *counting* always
# decomposes a fused opcode back into its constituents (see
# :func:`decompose`), so static and dynamic counts are identical whether a
# program runs fused or not.  The pairs below are the dominant adjacent
# pairs measured on the Table-2 workloads (``repro profile`` re-derives the
# ranking from any workload).

NUM_BASE_OPCODES = len(_NAMES)
FIRST_FUSED = NUM_BASE_OPCODES

#: operand count per fixed-width opcode (variable-width ops — CLOSURE and
#: the call family — are absent; they are never fused).
OPERAND_COUNT = {
    LDC: 2, MOV: 2,
    ADD: 3, SUB: 3, MUL: 3, DIV: 3, MOD: 3,
    AND: 3, OR: 3, XOR: 3, NOT: 2, SHL: 3, SHR: 3, SAR: 3,
    ADDI: 3, SUBI: 3, MULI: 3, ANDI: 3, ORI: 3, XORI: 3,
    SHLI: 3, SHRI: 3, SARI: 3,
    CMPEQ: 3, CMPNE: 3, CMPLT: 3, CMPLE: 3, CMPULT: 3, CMPULE: 3,
    CMPNZ: 2, CMPEQI: 3, CMPNEI: 3, CMPLTI: 3, CMPLEI: 3,
    JMP: 1, JT: 2, JF: 2,
    JEQ: 3, JNE: 3, JLT: 3, JGE: 3, JLE: 3, JGT: 3,
    JULT: 3, JUGE: 3, JULE: 3, JUGT: 3,
    JEQI: 3, JNEI: 3, JLTI: 3, JGEI: 3, JLEI: 3, JGTI: 3,
    LD: 3, ST: 3, ALLOC: 3, ALLOCI: 3,
    GLD: 2, GST: 2,
    RET: 1, REGPTR: 1, REGNIL: 1, REGFALSE: 1, REGPAIR: 3,
    PUTC: 1, GETC: 1, PEEKC: 1, FAIL: 1, HALT: 1,
}

_CONDITIONAL_BRANCHES = {
    JT, JF, JEQ, JNE, JLT, JGE, JLE, JGT, JULT, JUGE, JULE, JUGT,
    JEQI, JNEI, JLTI, JGEI, JLEI, JGTI,
}

#: opcodes legal as the *first* half of a fused pair: fixed-width,
#: guaranteed fall-through, no allocation/GC interaction.
FUSABLE_FIRST = frozenset(
    op
    for op in OPERAND_COUNT
    if op not in _CONDITIONAL_BRANCHES
    and op not in {
        JMP, ALLOC, ALLOCI, GLD, GST, RET, REGPTR, REGNIL, REGFALSE,
        REGPAIR, PUTC, GETC, PEEKC, FAIL, HALT,
    }
)
#: opcodes legal as the *second* half: the above plus conditional
#: branches (the pair then branches as its final action).
FUSABLE_SECOND = FUSABLE_FIRST | _CONDITIONAL_BRANCHES

#: fused opcode -> (first constituent, second constituent)
FUSED_PAIRS: dict[int, tuple[int, int]] = {}
#: (first, second) -> fused opcode, for the peephole fusion pass
FUSION_TABLE: dict[tuple[int, int], int] = {}


def _fused(op1: int, op2: int) -> int:
    assert op1 in FUSABLE_FIRST and op2 in FUSABLE_SECOND
    fop = _op(f"{_NAMES[op1]}.{_NAMES[op2]}")
    FUSED_PAIRS[fop] = (op1, op2)
    FUSION_TABLE[(op1, op2)] = fop
    return fop


# Tag tests (safe-mode checks): mask then compare or branch on the tag.
ANDI_JNEI = _fused(ANDI, JNEI)
ANDI_JEQI = _fused(ANDI, JEQI)
ANDI_JF = _fused(ANDI, JF)
ANDI_CMPEQI = _fused(ANDI, CMPEQI)
ANDI_ADDI = _fused(ANDI, ADDI)
# Fixnum untag/retag arithmetic.
SARI_ADD = _fused(SARI, ADD)
ADDI_ADD = _fused(ADDI, ADD)
OR_ANDI = _fused(OR, ANDI)
LD_OR = _fused(LD, OR)
SHLI_ORI = _fused(SHLI, ORI)
# Field fetch then fetch/mask/compare/branch (list traversal, dispatch,
# string/vector bounds checks).
LD_LD = _fused(LD, LD)
LD_ANDI = _fused(LD, ANDI)
LD_CMPEQI = _fused(LD, CMPEQI)
LD_JEQI = _fused(LD, JEQI)
LD_JNEI = _fused(LD, JNEI)
LD_JUGE = _fused(LD, JUGE)
# Store/initialise sequences (object construction, field updates).
LDC_ST = _fused(LDC, ST)
ST_LDC = _fused(ST, LDC)
ST_ST = _fused(ST, ST)
ST_ADDI = _fused(ST, ADDI)
ADD_ST = _fused(ADD, ST)
ADD_LD = _fused(ADD, LD)

OPCODE_NAMES = tuple(_NAMES)
NUM_OPCODES = len(_NAMES)


def is_fused(op: int) -> bool:
    return op >= FIRST_FUSED


def opcode_name(op: int) -> str:
    """Canonical name for an opcode number (reporters must use these)."""
    return OPCODE_NAMES[op]


def instruction_width(ins: list) -> int:
    """How many base instructions this instruction stands for."""
    return 2 if ins[0] >= FIRST_FUSED else 1


def decompose(ins: list) -> list[list]:
    """Split an instruction into base instructions (identity if unfused).

    The decomposition is exact: executing the returned sequence is
    equivalent to executing ``ins``, and counting charges each
    constituent under its own base opcode.
    """
    op = ins[0]
    if op < FIRST_FUSED:
        return [ins]
    op1, op2 = FUSED_PAIRS[op]
    w1 = OPERAND_COUNT[op1]
    return [[op1, *ins[1 : 1 + w1]], [op2, *ins[1 + w1 :]]]


class CodeObject:
    """One compiled procedure (or the top-level main)."""

    __slots__ = (
        "name", "nparams", "has_rest", "nfree", "nregs", "instructions",
        "meta",
    )

    def __init__(self, name: str, nparams: int, has_rest: bool, nfree: int):
        self.name = name
        self.nparams = nparams
        self.has_rest = has_rest
        self.nfree = nfree
        self.nregs = 0
        self.instructions: list[list] = []
        #: backend-attached facts (e.g. ``emit_hints`` for vm.codegen);
        #: advisory only — engines must run correctly with it None
        self.meta: dict | None = None

    def __repr__(self) -> str:
        return (
            f"<code {self.name!r} params={self.nparams}"
            f"{'+rest' if self.has_rest else ''} free={self.nfree}"
            f" regs={self.nregs} len={len(self.instructions)}>"
        )


class VMProgram:
    """A fully compiled program: code objects plus the global table."""

    __slots__ = ("code_objects", "global_names", "main_id")

    def __init__(self, code_objects: list[CodeObject], global_names: list[str]):
        self.code_objects = code_objects
        self.global_names = global_names
        self.main_id = 0

    def static_instruction_count(self, name: str | None = None) -> int:
        """Total emitted instructions (optionally for one code object).

        Fused superinstructions count as their constituent width, so the
        number is invariant under superinstruction fusion and stays
        comparable across configurations.
        """
        if name is None:
            return sum(
                sum(instruction_width(ins) for ins in code.instructions)
                for code in self.code_objects
            )
        for code in self.code_objects:
            if code.name == name:
                return sum(instruction_width(ins) for ins in code.instructions)
        raise KeyError(name)

    def code_named(self, name: str) -> CodeObject:
        for code in self.code_objects:
            if code.name == name:
                return code
        raise KeyError(name)


def format_instruction(ins: list) -> str:
    op = ins[0]
    parts = [OPCODE_NAMES[op]]
    for operand in ins[1:]:
        if isinstance(operand, list):
            parts.append("[" + " ".join(f"r{r}" for r in operand) + "]")
        else:
            parts.append(str(operand))
    return " ".join(parts)


def disassemble(code: CodeObject) -> str:
    lines = [repr(code)]
    for i, ins in enumerate(code.instructions):
        lines.append(f"  {i:4d}: {format_instruction(ins)}")
    return "\n".join(lines)
