"""Compile VM code objects to real Python functions (``compiled`` engine).

Where the threaded engine builds one closure per instruction, this
module emits one Python *function per code object*: every instruction
becomes inline statements with its operands folded in as literals, the
heap arrays are bound as namespace constants, fused superinstruction
pairs collapse into adjacent plain statements (no executor chaining),
and emit-time facts (``CodeObject.meta["emit_hints"]``, produced by the
backend from absint/unbox summaries) elide provably dead checks — the
division-by-zero test when the divisor is known nonzero, the alignment
test when the address tag is known.

Layout of an emitted function::

    def _vm_fib(regs, pc):
        while True:
            if pc < 4:          # binary entry tree over basic blocks
                ...block 0...
            ...block 1...

The entry tree dispatches an arbitrary entry pc (function entry, branch
target, return point, budget resume) to its basic block in O(log n)
compares.  Within the ``while`` body, falling off the end of a block
continues textually into the next one; ``pc`` is only *reassigned* by
taken branches, which ``continue`` back to the tree.  The stale ``pc``
during fallthrough is always smaller than every later guard's start, so
every guard encountered stays true and control descends left — i.e.
sequential execution — which is what makes the tree sound.

Control transfers that leave the code object (calls, returns, unwinds)
write ``engine._state`` and ``return``; the engine trampoline reloads
and re-enters.  Faulting instructions record their pc in the engine's
one-slot ``_fpc`` list first, so traps and budget suspensions attribute
to the exact instruction, matching the other engines bit for bit.

Two emission variants exist per code object, selected by
:class:`CodegenOptions` (the cache key, together with the code object):

* **fast** (``counted=False``): no step accounting, blocks are
  leader-delimited spans, self-tail-calls loop in place.  Used whenever
  the machine runs without instruction counting.
* **counted** (``counted=True``): every instruction is its own entry
  unit and is preceded by the exact ``dispatches``/``_count_step``
  accounting the other engines perform, including the mid-fused-pair
  suspension protocol (the charged second half is handed to the engine
  as a prebuilt executor).

Under fault injection (or a heap with no bump region) all heap access
falls back to ``heap.load``/``heap.store``/``Machine._alloc`` calls so
the injecting heap observes every operation — the compiled tier's
equivalent of the interpreters' fast-path disable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..prims import WORD_MASK, signed
from . import isa
from .machine import _ESCAPE_CODE as _ESCAPE

# instruction families whose emitted code can raise (or allocate, which
# can raise): these update the engine's fault-pc slot in fast mode so
# trap attribution matches the interpreters
_FAULTING = {
    isa.LD, isa.ST, isa.ALLOC, isa.ALLOCI, isa.GLD, isa.CLOSURE,
    isa.DIV, isa.MOD, isa.CALL, isa.CALLL, isa.TAILCALL, isa.TAILL,
    isa.CALLEC, isa.APPLY, isa.TAILAPPLY, isa.FAIL,
    isa.REGPTR, isa.REGPAIR, isa.REGNIL, isa.REGFALSE,
}

# ---------------------------------------------------------------------------
# branch-target operand index (local copy: importing the backend's
# peephole table from here would cycle through repro.vm.__init__)
# ---------------------------------------------------------------------------

_TARGET_INDEX: dict[int, int] = {isa.JMP: 1, isa.JT: 2, isa.JF: 2}
for _o in (
    isa.JEQ, isa.JNE, isa.JLT, isa.JGE, isa.JLE, isa.JGT,
    isa.JULT, isa.JUGE, isa.JULE, isa.JUGT,
    isa.JEQI, isa.JNEI, isa.JLTI, isa.JGEI, isa.JLEI, isa.JGTI,
):
    _TARGET_INDEX[_o] = 3
for (_f, _s), _fop in isa.FUSION_TABLE.items():
    _ti = _TARGET_INDEX.get(_s)
    if _ti is not None:
        _TARGET_INDEX[_fop] = isa.OPERAND_COUNT[_f] + _ti


def branch_target(ins: list) -> int | None:
    """The static branch target of ``ins``, or None if it has none."""
    index = _TARGET_INDEX.get(ins[0])
    return None if index is None else ins[index]


@dataclass(frozen=True)
class CodegenOptions:
    """The compile-options half of the function-cache key."""

    counted: bool = False
    fault_injection: bool = False
    inline_heap: bool = True
    hints: bool = True


def _lit(value: int) -> str:
    """An immediate as a Python literal, parenthesised when negative."""
    return str(value) if value >= 0 else f"({value})"


class _Emitter:
    """Emit one code object as Python source and compile it."""

    def __init__(self, code: isa.CodeObject, options: CodegenOptions,
                 machine, engine):
        self.code = code
        self.options = options
        self.m = machine
        self.engine = engine
        self.lines: list[str] = []
        self.depth = 2  # inside `def` + `while True:`
        heap = machine.heap
        from .engine import _STACK_LIMIT
        self.stack_limit = _STACK_LIMIT
        self.inline_heap = options.inline_heap and not options.fault_injection
        self.limitb = getattr(heap, "size_words", 0) << 3
        hints = None
        if options.hints:
            meta = getattr(code, "meta", None)
            if meta:
                hints = meta.get("emit_hints")
        self.div_nonzero = hints["div_nonzero"] if hints else frozenset()
        self.aligned = hints["aligned"] if hints else frozenset()
        self.ns: dict = {
            "m": machine,
            "eng": engine,
            "ST": engine._state,
            "F": engine._fpc,
            "FR": machine.frames,
            "HL": heap.load,
            "HS": heap.store,
            "AL": machine._alloc,
            "M": WORD_MASK,
            "SG": signed,
            "CODE": code,
            "FN": None,  # patched to the compiled function after exec
            # indirect-call inline cache: code id -> emitted function,
            # shared (by identity) with every variant-mate of this fn
            "FC": engine._id_fns_for(options),
        }
        if self.inline_heap:
            from .heap import ZEROS, _NZEROS
            self.ns["MEM"] = heap.mem
            self.ns["B"] = heap.bump
            self.ns["ZL"] = ZEROS
            self.nzeros = _NZEROS
        if options.counted:
            from ..errors import BudgetExceeded
            self.ns["BE"] = BudgetExceeded

    # -- low-level line output -----------------------------------------

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    # -- public entry ---------------------------------------------------

    def build(self):
        name = "_vm_" + "".join(
            ch if ch.isalnum() else "_" for ch in self.code.name
        )
        units = self._units()
        self.lines.append(f"def {name}(regs, pc):")
        self.lines.append("    while True:")
        if units:
            self._tree(units, 0, len(units))
            # Falling off the end of the instruction stream reproduces
            # the interpreters' IndexError on instructions[len].
            self.line(f"CODE.instructions[{len(self.code.instructions)}]")
        else:
            self.line("CODE.instructions[0]")
        source = "\n".join(self.lines) + "\n"
        exec(compile(source, f"<vm:{self.code.name}>", "exec"), self.ns)
        fn = self.ns[name]
        self.ns["FN"] = fn
        return fn, source

    # -- unit discovery -------------------------------------------------

    def _units(self) -> list[tuple[int, int]]:
        """(start, end) spans that need their own entry-tree leaf.

        Counted mode must be able to resume at *any* pc, so every
        instruction is a unit.  Fast mode only needs function entry,
        branch targets, and post-call return points.
        """
        instructions = self.code.instructions
        n = len(instructions)
        if n == 0:
            return []
        if self.options.counted:
            starts = list(range(n))
        else:
            leaders = {0}
            for k, ins in enumerate(instructions):
                target = branch_target(ins)
                if target is not None and target < n:
                    leaders.add(target)
                if ins[0] in (isa.CALL, isa.CALLL, isa.CALLEC, isa.APPLY):
                    if k + 1 < n:
                        leaders.add(k + 1)
            starts = sorted(leaders)
        units = []
        for i, start in enumerate(starts):
            end = starts[i + 1] if i + 1 < len(starts) else n
            units.append((start, end))
        return units

    def _tree(self, units, lo: int, hi: int) -> None:
        if hi - lo == 1:
            start, end = units[lo]
            for k in range(start, end):
                self._emit_ins(k, self.code.instructions[k])
            return
        mid = (lo + hi) // 2
        self.line(f"if pc < {units[mid][0]}:")
        self.depth += 1
        self._tree(units, lo, mid)
        self.depth -= 1
        self._tree(units, mid, hi)

    # -- per-instruction emission --------------------------------------

    def _emit_ins(self, k: int, ins: list) -> None:
        op = ins[0]
        if self.options.counted:
            self.line(f"F[0] = {k}")
            self.line("m.dispatches += 1")
            if op >= isa.FIRST_FUSED:
                self._emit_fused_counted(k, ins)
            else:
                self.line(f"m._count_step({op})")
                self._emit_base(k, ins)
            return
        if op >= isa.FIRST_FUSED:
            first, second = isa.decompose(ins)
            if first[0] in _FAULTING or second[0] in _FAULTING:
                self.line(f"F[0] = {k}")
            self._emit_base(k, first)
            self._emit_base(k, second)
        else:
            if op in _FAULTING:
                self.line(f"F[0] = {k}")
            self._emit_base(k, ins)

    def _emit_fused_counted(self, k: int, ins: list) -> None:
        """Counted fused pair: charge/execute each half like _exec_fused.

        When the budget trips between the halves the charged second half
        is handed to the engine as a prebuilt single-instruction
        executor (the suspension resumes by running it, then continuing
        at its returned pc).
        """
        first, second = isa.decompose(ins)
        from .engine import _SINGLE_MAKERS
        pending_name = f"P{k}"
        maker = _SINGLE_MAKERS[second[0]]
        self.ns[pending_name] = (
            second[0], maker(*second[1:], k + 1, self.m.heap)
        )
        self.line(f"m._count_step({first[0]})")
        self._emit_base(k, first)
        self.line("try:")
        self.depth += 1
        self.line(f"m._count_step({second[0]})")
        self.depth -= 1
        self.line("except BE:")
        self.depth += 1
        self.line(f"eng._pending = {pending_name}")
        self.line("raise")
        self.depth -= 1
        self._emit_base(k, second)

    # -- base instruction bodies ---------------------------------------

    def _emit_base(self, k: int, ins: list) -> None:
        op = ins[0]
        emit = self._BASE.get(op)
        if emit is not None:
            emit(self, k, ins)
            return
        stmt = self._value_stmt(k, ins)
        if stmt is not None:
            self.line(stmt)
            return
        cond, target = self._branch_cond(ins)
        if cond is not None:
            self.line(f"if {cond}:")
            self.depth += 1
            self.line(f"pc = {target}")
            self.line("continue")
            self.depth -= 1
            return
        # unknown opcode: defer the failure to run time, like the
        # interpreters (the instruction may be unreachable)
        self.line(f"eng._unknown({op})")

    # value-op statement (None when `ins` is not a plain value op)
    def _value_stmt(self, k: int, ins: list) -> str | None:
        op = ins[0]
        r = lambda i: f"regs[{ins[i]}]"  # noqa: E731
        if op == isa.LDC:
            return f"{r(1)} = {_lit(ins[2])}"
        if op == isa.MOV:
            return f"{r(1)} = {r(2)}"
        if op == isa.ADD:
            return f"{r(1)} = ({r(2)} + {r(3)}) & M"
        if op == isa.ADDI:
            return f"{r(1)} = ({r(2)} + {_lit(ins[3])}) & M"
        if op == isa.SUB:
            return f"{r(1)} = ({r(2)} - {r(3)}) & M"
        if op == isa.SUBI:
            return f"{r(1)} = ({r(2)} - {_lit(ins[3])}) & M"
        if op == isa.MUL:
            return f"{r(1)} = (SG({r(2)}) * SG({r(3)})) & M"
        if op == isa.MULI:
            return f"{r(1)} = (SG({r(2)}) * {_lit(signed(ins[3]))}) & M"
        if op == isa.AND:
            return f"{r(1)} = {r(2)} & {r(3)}"
        if op == isa.ANDI:
            return f"{r(1)} = {r(2)} & {_lit(ins[3])}"
        if op == isa.OR:
            return f"{r(1)} = {r(2)} | {r(3)}"
        if op == isa.ORI:
            return f"{r(1)} = {r(2)} | {_lit(ins[3])}"
        if op == isa.XOR:
            return f"{r(1)} = {r(2)} ^ {r(3)}"
        if op == isa.XORI:
            return f"{r(1)} = {r(2)} ^ {_lit(ins[3])}"
        if op == isa.NOT:
            return f"{r(1)} = (~{r(2)}) & M"
        if op == isa.SHL:
            return f"{r(1)} = ({r(2)} << ({r(3)} & 63)) & M"
        if op == isa.SHLI:
            return f"{r(1)} = ({r(2)} << {ins[3] & 63}) & M"
        if op == isa.SHR:
            return f"{r(1)} = {r(2)} >> ({r(3)} & 63)"
        if op == isa.SHRI:
            return f"{r(1)} = {r(2)} >> {ins[3] & 63}"
        if op == isa.SAR:
            return f"{r(1)} = (SG({r(2)}) >> ({r(3)} & 63)) & M"
        if op == isa.SARI:
            return f"{r(1)} = (SG({r(2)}) >> {ins[3] & 63}) & M"
        if op == isa.CMPEQ:
            return f"{r(1)} = 1 if {r(2)} == {r(3)} else 0"
        if op == isa.CMPEQI:
            return f"{r(1)} = 1 if {r(2)} == {_lit(ins[3])} else 0"
        if op == isa.CMPNE:
            return f"{r(1)} = 1 if {r(2)} != {r(3)} else 0"
        if op == isa.CMPNEI:
            return f"{r(1)} = 1 if {r(2)} != {_lit(ins[3])} else 0"
        if op == isa.CMPLT:
            return f"{r(1)} = 1 if SG({r(2)}) < SG({r(3)}) else 0"
        if op == isa.CMPLTI:
            return f"{r(1)} = 1 if SG({r(2)}) < {_lit(signed(ins[3]))} else 0"
        if op == isa.CMPLE:
            return f"{r(1)} = 1 if SG({r(2)}) <= SG({r(3)}) else 0"
        if op == isa.CMPLEI:
            return f"{r(1)} = 1 if SG({r(2)}) <= {_lit(signed(ins[3]))} else 0"
        if op == isa.CMPULT:
            return f"{r(1)} = 1 if {r(2)} < {r(3)} else 0"
        if op == isa.CMPULE:
            return f"{r(1)} = 1 if {r(2)} <= {r(3)} else 0"
        if op == isa.CMPNZ:
            return f"{r(1)} = 1 if {r(2)} != 0 else 0"
        return None

    def _branch_cond(self, ins: list) -> tuple[str | None, int]:
        op = ins[0]
        r = lambda i: f"regs[{ins[i]}]"  # noqa: E731
        if op == isa.JT:
            return f"{r(1)} != 0", ins[2]
        if op == isa.JF:
            return f"{r(1)} == 0", ins[2]
        if op == isa.JEQ:
            return f"{r(1)} == {r(2)}", ins[3]
        if op == isa.JNE:
            return f"{r(1)} != {r(2)}", ins[3]
        if op == isa.JEQI:
            return f"{r(1)} == {_lit(ins[2])}", ins[3]
        if op == isa.JNEI:
            return f"{r(1)} != {_lit(ins[2])}", ins[3]
        if op == isa.JLT:
            return f"SG({r(1)}) < SG({r(2)})", ins[3]
        if op == isa.JGE:
            return f"SG({r(1)}) >= SG({r(2)})", ins[3]
        if op == isa.JLE:
            return f"SG({r(1)}) <= SG({r(2)})", ins[3]
        if op == isa.JGT:
            return f"SG({r(1)}) > SG({r(2)})", ins[3]
        if op == isa.JULT:
            return f"{r(1)} < {r(2)}", ins[3]
        if op == isa.JUGE:
            return f"{r(1)} >= {r(2)}", ins[3]
        if op == isa.JULE:
            return f"{r(1)} <= {r(2)}", ins[3]
        if op == isa.JUGT:
            return f"{r(1)} > {r(2)}", ins[3]
        if op == isa.JLTI:
            return f"SG({r(1)}) < {_lit(signed(ins[2]))}", ins[3]
        if op == isa.JGEI:
            return f"SG({r(1)}) >= {_lit(signed(ins[2]))}", ins[3]
        if op == isa.JLEI:
            return f"SG({r(1)}) <= {_lit(signed(ins[2]))}", ins[3]
        if op == isa.JGTI:
            return f"SG({r(1)}) > {_lit(signed(ins[2]))}", ins[3]
        return None, -1

    # -- structured emitters (memory, globals, control, runtime) --------

    def _emit_jmp(self, k: int, ins: list) -> None:
        self.line(f"pc = {ins[1]}")
        self.line("continue")

    def _emit_div(self, k: int, ins: list) -> None:
        d, a, b = ins[1], ins[2], ins[3]
        if k in self.div_nonzero:
            # divisor provably nonzero: inline the exact signed
            # truncating division Machine._div performs
            self.line(f"x = SG(regs[{a}])")
            self.line(f"y = SG(regs[{b}])")
            self.line("q = abs(x) // abs(y)")
            self.line(f"regs[{d}] = (-q if (x < 0) != (y < 0) else q) & M")
        else:
            self.line(f"regs[{d}] = m._div(regs[{a}], regs[{b}])")

    def _emit_mod(self, k: int, ins: list) -> None:
        d, a, b = ins[1], ins[2], ins[3]
        if k in self.div_nonzero:
            self.line(f"x = SG(regs[{a}])")
            self.line(f"y = SG(regs[{b}])")
            self.line("q = abs(x) % abs(y)")
            self.line(f"regs[{d}] = (-q if x < 0 else q) & M")
        else:
            self.line(f"regs[{d}] = m._mod(regs[{a}], regs[{b}])")

    def _emit_ld(self, k: int, ins: list) -> None:
        d, s, disp = ins[1], ins[2], ins[3]
        address = f"(regs[{s}] + {_lit(disp)}) & M"
        if not self.inline_heap:
            self.line(f"regs[{d}] = HL({address})")
            return
        self.line(f"a = {address}")
        if k in self.aligned:
            guard = f"a < {self.limitb}"
        else:
            guard = f"a < {self.limitb} and not a & 7"
        self.line(f"regs[{d}] = MEM[a >> 3] if {guard} else HL(a)")

    def _emit_st(self, k: int, ins: list) -> None:
        s, disp, v = ins[1], ins[2], ins[3]
        address = f"(regs[{s}] + {_lit(disp)}) & M"
        if not self.inline_heap:
            self.line(f"HS({address}, regs[{v}])")
            return
        self.line(f"a = {address}")
        if k in self.aligned:
            guard = f"a < {self.limitb}"
        else:
            guard = f"a < {self.limitb} and not a & 7"
        self.line(f"if {guard}:")
        self.depth += 1
        self.line(f"MEM[a >> 3] = regs[{v}] & M")
        self.depth -= 1
        self.line("else:")
        self.depth += 1
        self.line(f"HS(a, regs[{v}])")
        self.depth -= 1

    def _slow_alloc(self, k: int, dest: int, nwords: str, tag: str) -> None:
        self.line(f"FR.append([CODE, regs, {k + 1}, -1])")
        self.line(f"regs[{dest}] = AL({nwords}, {tag})")
        self.line("FR.pop()")

    def _emit_alloc(self, k: int, ins: list) -> None:
        d, sn, st = ins[1], ins[2], ins[3]
        if not self.inline_heap:
            self._slow_alloc(k, d, f"regs[{sn}]", f"regs[{st}] & 7")
            return
        self.line(f"n = regs[{sn}]")
        self.line("t = n + 1")
        self.line("b = B[0]")
        self.line("if b + t <= B[1]:")
        self.depth += 1
        self.line("B[0] = b + t")
        self.line("MEM[b] = n")
        self.line("if n:")
        self.depth += 1
        self.line(f"MEM[b + 1 : b + t] = ZL[n] if n < {self.nzeros} else [0] * n")
        self.depth -= 1
        self.line(f"regs[{d}] = (b << 3) | (regs[{st}] & 7)")
        self.depth -= 1
        self.line("else:")
        self.depth += 1
        self._slow_alloc(k, d, "n", f"regs[{st}] & 7")
        self.depth -= 1

    def _emit_alloci(self, k: int, ins: list) -> None:
        d, nwords, tag = ins[1], ins[2], ins[3]
        if not self.inline_heap or nwords < 0:
            self._slow_alloc(k, d, _lit(nwords), _lit(tag))
            return
        total = nwords + 1
        self.line("b = B[0]")
        self.line(f"if b + {total} <= B[1]:")
        self.depth += 1
        self.line(f"B[0] = b + {total}")
        self.line(f"MEM[b] = {nwords}")
        if 0 < nwords <= 4:
            for i in range(1, total):
                self.line(f"MEM[b + {i}] = 0")
        elif nwords:
            from .heap import ZEROS, _NZEROS
            zname = f"Z{k}"
            self.ns[zname] = (
                ZEROS[nwords] if nwords < _NZEROS else [0] * nwords
            )
            self.line(f"MEM[b + 1 : b + {total}] = {zname}")
        self.line(f"regs[{d}] = (b << 3) | {tag & 7}")
        self.depth -= 1
        self.line("else:")
        self.depth += 1
        self._slow_alloc(k, d, _lit(nwords), _lit(tag))
        self.depth -= 1

    def _emit_gld(self, k: int, ins: list) -> None:
        d, index = ins[1], ins[2]
        self.line(f"if not m.global_defined[{index}]:")
        self.depth += 1
        self.line(f"eng._undef({index})")
        self.depth -= 1
        self.line(f"regs[{d}] = m.globals[{index}]")

    def _emit_gst(self, k: int, ins: list) -> None:
        s, index = ins[1], ins[2]
        self.line(f"m.globals[{index}] = regs[{s}]")
        self.line(f"m.global_defined[{index}] = 1")

    def _emit_closure(self, k: int, ins: list) -> None:
        d, code_id, free_regs = ins[1], ins[2], ins[3]
        self.line(f"FR.append([CODE, regs, {k + 1}, -1])")
        self.line(f"p = AL({1 + len(free_regs)}, 7)")
        self.line("FR.pop()")
        self.line("base = p & -8")
        self.line(f"HS(base + 8, {code_id})")
        for i, reg in enumerate(free_regs):
            self.line(f"HS(base + {16 + 8 * i}, regs[{reg}])")
        self.line(f"regs[{d}] = p")

    # call family ------------------------------------------------------

    def _args_list(self, arg_regs: list) -> str:
        return "[" + ", ".join(f"regs[{r}]" for r in arg_regs) + "]"

    def _closure_cid(self) -> None:
        """Emit ``cid = <code id of `closure`>`` with the fast path open.

        The closure layout puts the code id one word past the 8-aligned
        base, so the address is always aligned and only the bounds
        guard remains; the slow paths reproduce the interpreters' exact
        errors (SchemeError on a non-closure tag, VMError out of
        bounds).
        """
        if self.inline_heap:
            self.line("if closure & 7 == 7:")
            self.depth += 1
            self.line("a = (closure & -8) + 8")
            self.line(f"cid = MEM[a >> 3] if a < {self.limitb} else HL(a)")
            self.depth -= 1
            self.line("else:")
            self.depth += 1
            self.line("cid = m._closure_code_id(closure)")
            self.depth -= 1
        else:
            self.line("cid = m._closure_code_id(closure)")

    def _enter_callee(self, fn_expr: str) -> None:
        self.line(f"ST[0] = {fn_expr}")
        self.line("ST[1] = new_regs")
        self.line("ST[2] = 0")
        self.line("return")

    def _spread_args(self, nargs: int) -> None:
        """Pad `args` into a fresh register file, mirroring h_call."""
        self.line(f"if callee.has_rest or callee.nparams != {nargs}:")
        self.depth += 1
        self.line("m._scratch_roots = [closure]")
        self.line("new_regs = m._make_regs(callee, args, closure)")
        self.line("m._scratch_roots = []")
        self.depth -= 1
        self.line("elif callee.nfree:")
        self.depth += 1
        self.line("args.append(closure)")
        self.line(f"args.extend([0] * (callee.nregs - {nargs + 1}))")
        self.line("new_regs = args")
        self.depth -= 1
        self.line("else:")
        self.depth += 1
        self.line(f"args.extend([0] * (callee.nregs - {nargs}))")
        self.line("new_regs = args")
        self.depth -= 1

    def _emit_call(self, k: int, ins: list) -> None:
        dest, freg, arg_regs = ins[1], ins[2], ins[3]
        self.line(f"closure = regs[{freg}]")
        self._closure_cid()
        self.line(f"args = {self._args_list(arg_regs)}")
        self.line(f"if cid == {_ESCAPE}:")
        self.depth += 1
        self.line("eng._transfer(m._unwind(closure, args))")
        self.line("return")
        self.depth -= 1
        self.line("callee = m.codes[cid]")
        self.line(f"FR.append([CODE, regs, {k + 1}, {dest}, FN])")
        self.line(f"if len(FR) > {self.stack_limit}:")
        self.depth += 1
        self.line("eng._overflow()")
        self.depth -= 1
        self._spread_args(len(arg_regs))
        self._enter_callee("FC.get(cid) or eng._function(callee)")

    def _callee_cell(self, code_id: int) -> str:
        """Expression resolving a known callee's compiled function."""
        callee = self.m.codes[code_id]
        cell_name = f"C{code_id}"
        code_name = f"K{code_id}"
        self.ns[cell_name] = self.engine._fn_cell(callee)
        self.ns[code_name] = callee
        return f"({cell_name}[0] or eng._function({code_name}))"

    def _emit_calll(self, k: int, ins: list) -> None:
        dest, code_id, arg_regs = ins[1], ins[2], ins[3]
        callee = self.m.codes[code_id]
        fn_expr = self._callee_cell(code_id)
        if not callee.has_rest and callee.nparams == len(arg_regs):
            pad = callee.nregs - len(arg_regs)
            self.line(f"new_regs = {self._args_list(arg_regs)}")
            if pad:
                self.line(f"new_regs.extend([0] * {pad})")
            self.line(f"FR.append([CODE, regs, {k + 1}, {dest}, FN])")
            self.line(f"if len(FR) > {self.stack_limit}:")
            self.depth += 1
            self.line("eng._overflow()")
            self.depth -= 1
            self._enter_callee(fn_expr)
            return
        code_name = f"K{code_id}"
        self.line(f"args = {self._args_list(arg_regs)}")
        self.line(f"FR.append([CODE, regs, {k + 1}, {dest}, FN])")
        self.line(f"if len(FR) > {self.stack_limit}:")
        self.depth += 1
        self.line("eng._overflow()")
        self.depth -= 1
        self.line("m._scratch_roots = [0]")
        self.line(f"new_regs = m._make_regs({code_name}, args, 0)")
        self.line("m._scratch_roots = []")
        self._enter_callee(fn_expr)

    def _emit_tailcall(self, k: int, ins: list) -> None:
        freg, arg_regs = ins[1], ins[2]
        nargs = len(arg_regs)
        self.line(f"closure = regs[{freg}]")
        self._closure_cid()
        self.line(f"args = {self._args_list(arg_regs)}")
        self.line(f"if cid == {_ESCAPE}:")
        self.depth += 1
        self.line("eng._transfer(m._unwind(closure, args))")
        self.line("return")
        self.depth -= 1
        self.line("callee = m.codes[cid]")
        self.line(f"if callee.has_rest or callee.nparams != {nargs}:")
        self.depth += 1
        self.line("m._scratch_roots = [closure] + args")
        self.line(f"FR.append([callee, regs, {k + 1}, -1])")
        self.line("new_regs = m._make_regs(callee, args, closure)")
        self.line("FR.pop()")
        self.line("m._scratch_roots = []")
        self.depth -= 1
        self.line("elif callee.nfree:")
        self.depth += 1
        self.line("args.append(closure)")
        self.line(f"args.extend([0] * (callee.nregs - {nargs + 1}))")
        self.line("new_regs = args")
        self.depth -= 1
        self.line("else:")
        self.depth += 1
        self.line(f"args.extend([0] * (callee.nregs - {nargs}))")
        self.line("new_regs = args")
        self.depth -= 1
        self._enter_callee("FC.get(cid) or eng._function(callee)")

    def _emit_taill(self, k: int, ins: list) -> None:
        code_id, arg_regs = ins[1], ins[2]
        callee = self.m.codes[code_id]
        if not callee.has_rest and callee.nparams == len(arg_regs):
            pad = callee.nregs - len(arg_regs)
            if callee is self.code and not self.options.counted:
                # self tail call: loop in place instead of bouncing
                # through the trampoline (fast mode only — counted mode
                # must keep `regs` identity for suspension capture)
                self.line(f"regs = {self._args_list(arg_regs)}")
                if pad:
                    self.line(f"regs.extend([0] * {pad})")
                self.line("pc = 0")
                self.line("continue")
                return
            fn_expr = self._callee_cell(code_id)
            self.line(f"new_regs = {self._args_list(arg_regs)}")
            if pad:
                self.line(f"new_regs.extend([0] * {pad})")
            self._enter_callee(fn_expr)
            return
        fn_expr = self._callee_cell(code_id)
        code_name = f"K{code_id}"
        self.line(f"args = {self._args_list(arg_regs)}")
        self.line("m._scratch_roots = [0] + args")
        self.line(f"FR.append([{code_name}, regs, {k + 1}, -1])")
        self.line(f"new_regs = m._make_regs({code_name}, args, 0)")
        self.line("FR.pop()")
        self.line("m._scratch_roots = []")
        self._enter_callee(fn_expr)

    def _emit_ret(self, k: int, ins: list) -> None:
        self.line(f"value = regs[{ins[1]}]")
        self.line("if not FR:")
        self.depth += 1
        self.line("eng._halted = True")
        self.line("eng._value = value")
        self.line("return")
        self.depth -= 1
        self.line("f = FR.pop()")
        self.line("f[1][f[3]] = value")
        self.line("ST[0] = f[4]")
        self.line("ST[1] = f[1]")
        self.line("ST[2] = f[2]")
        self.line("return")

    def _emit_callec(self, k: int, ins: list) -> None:
        dest, freg = ins[1], ins[2]
        self.line(f"closure = regs[{freg}]")
        self.line("cid = m._closure_code_id(closure)")
        self.line(f"if cid == {_ESCAPE}:")
        self.depth += 1
        self.line("eng._not_proc(closure)")
        self.depth -= 1
        self.line("callee = m.codes[cid]")
        self.line(f"FR.append([CODE, regs, {k + 1}, {dest}, FN])")
        self.line(f"if len(FR) > {self.stack_limit}:")
        self.depth += 1
        self.line("eng._overflow()")
        self.depth -= 1
        self.line("depth = len(FR)")
        self.line("m._scratch_roots = [closure]")
        self.line("p = AL(2, 7)")
        self.line("base = p & -8")
        self.line(f"HS(base + 8, {_ESCAPE})")
        self.line("HS(base + 16, depth << 3)")
        self.line("new_regs = m._make_regs(callee, [p], closure)")
        self.line("m._scratch_roots = []")
        self._enter_callee("FC.get(cid) or eng._function(callee)")

    def _emit_apply(self, k: int, ins: list) -> None:
        tail = ins[0] == isa.TAILAPPLY
        if tail:
            dest, freg, lreg = -1, ins[1], ins[2]
        else:
            dest, freg, lreg = ins[1], ins[2], ins[3]
        self.line(f"closure = regs[{freg}]")
        self._closure_cid()
        self.line(f"args = m._unpack_list(regs[{lreg}])")
        self.line(f"if cid == {_ESCAPE}:")
        self.depth += 1
        self.line("eng._transfer(m._unwind(closure, args))")
        self.line("return")
        self.depth -= 1
        self.line("callee = m.codes[cid]")
        if not tail:
            self.line(f"FR.append([CODE, regs, {k + 1}, {dest}, FN])")
            self.line(f"if len(FR) > {self.stack_limit}:")
            self.depth += 1
            self.line("eng._overflow()")
            self.depth -= 1
        self.line("m._scratch_roots = [closure] + args")
        self.line(f"FR.append([callee, regs, {k + 1}, -1])")
        self.line("new_regs = m._make_regs(callee, args, closure)")
        self.line("FR.pop()")
        self.line("m._scratch_roots = []")
        self._enter_callee("FC.get(cid) or eng._function(callee)")

    # runtime registry, I/O, termination --------------------------------

    def _emit_putc(self, k: int, ins: list) -> None:
        self.line(f"m.output.append(chr(regs[{ins[1]}] & 0x10FFFF))")

    def _emit_getc(self, k: int, ins: list) -> None:
        d = ins[1]
        self.line("if m.input_pos < len(m.input_codes):")
        self.depth += 1
        self.line(f"regs[{d}] = m.input_codes[m.input_pos]")
        self.line("m.input_pos += 1")
        self.depth -= 1
        self.line("else:")
        self.depth += 1
        self.line(f"regs[{d}] = M")
        self.depth -= 1

    def _emit_peekc(self, k: int, ins: list) -> None:
        d = ins[1]
        self.line("if m.input_pos < len(m.input_codes):")
        self.depth += 1
        self.line(f"regs[{d}] = m.input_codes[m.input_pos]")
        self.depth -= 1
        self.line("else:")
        self.depth += 1
        self.line(f"regs[{d}] = M")
        self.depth -= 1

    def _emit_regptr(self, k: int, ins: list) -> None:
        self.line(f"m.heap.register_pointer_tag(regs[{ins[1]}])")

    def _emit_regpair(self, k: int, ins: list) -> None:
        a, b, c = ins[1], ins[2], ins[3]
        self.line(
            f"m.registry.register_pair(regs[{a}], SG(regs[{b}]), SG(regs[{c}]))"
        )

    def _emit_regnil(self, k: int, ins: list) -> None:
        self.line(f"m.registry.register_nil(regs[{ins[1]}])")

    def _emit_regfalse(self, k: int, ins: list) -> None:
        self.line(f"m.registry.register_false(regs[{ins[1]}])")

    def _emit_fail(self, k: int, ins: list) -> None:
        self.line(f"eng._fail(regs[{ins[1]}])")

    def _emit_halt(self, k: int, ins: list) -> None:
        self.line("eng._halted = True")
        self.line(f"eng._value = regs[{ins[1]}]")
        self.line("return")

    _BASE = {
        isa.JMP: _emit_jmp,
        isa.DIV: _emit_div,
        isa.MOD: _emit_mod,
        isa.LD: _emit_ld,
        isa.ST: _emit_st,
        isa.ALLOC: _emit_alloc,
        isa.ALLOCI: _emit_alloci,
        isa.GLD: _emit_gld,
        isa.GST: _emit_gst,
        isa.CLOSURE: _emit_closure,
        isa.CALL: _emit_call,
        isa.CALLL: _emit_calll,
        isa.TAILCALL: _emit_tailcall,
        isa.TAILL: _emit_taill,
        isa.RET: _emit_ret,
        isa.CALLEC: _emit_callec,
        isa.APPLY: _emit_apply,
        isa.TAILAPPLY: _emit_apply,
        isa.PUTC: _emit_putc,
        isa.GETC: _emit_getc,
        isa.PEEKC: _emit_peekc,
        isa.REGPTR: _emit_regptr,
        isa.REGPAIR: _emit_regpair,
        isa.REGNIL: _emit_regnil,
        isa.REGFALSE: _emit_regfalse,
        isa.FAIL: _emit_fail,
        isa.HALT: _emit_halt,
    }


def compile_function(code: isa.CodeObject, options: CodegenOptions,
                     machine, engine):
    """Emit, exec, and return ``(function, source)`` for one code object."""
    return _Emitter(code, options, machine, engine).build()
