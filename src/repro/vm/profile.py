"""VM execution profiler: opcode histograms and hot-pair mining.

The profiler answers two questions about a real run:

* *Where do the dispatches go?* — a per-opcode histogram of the
  decomposed dynamic instruction counts (the same numbers the paper's
  tables use).
* *Which adjacent pairs dominate?* — fall-through adjacency counts
  ``(op1, op2)`` mined by the naive engine when ``Machine(profile=True)``
  is set.  Ranking the pairs that are *legal to fuse* (see
  ``isa.FUSABLE_FIRST``/``FUSABLE_SECOND``) is exactly the evidence the
  superinstruction table in :mod:`repro.vm.isa` was chosen from, and
  ``repro profile`` re-derives it from any workload.

Pair mining hooks live in the naive interpreter loop only, so pair
mining always executes on the naive engine; profile programs compiled
with ``fuse=False`` so pairs are reported over *base* opcodes (mining
fused code instead reports pairs of superinstructions, which is
occasionally useful for finding three-long chains).

Profiling a *different* engine (``profile_program(..., engine=...)``)
runs that engine for real — no pair mining, since only the naive loop
has the hooks — and reports its identity instead: every engine exposes
``cache_stats()`` (handler-table sizes for threaded, emitted-function
hit/miss counts for compiled), so the report never assumes a
particular engine's cache structure exists.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from . import isa
from .machine import Machine, RunResult


@dataclass
class PairStat:
    """One fall-through adjacency, ranked by dynamic frequency."""

    first: str
    second: str
    count: int
    #: legal for superinstruction fusion (both halves fixed-width, the
    #: first a guaranteed fall-through)?
    fusable: bool
    #: already in the ISA's fusion table?
    fused: bool

    @property
    def name(self) -> str:
        return f"{self.first}.{self.second}"


@dataclass
class ProfileReport:
    """Everything one profiled run reveals."""

    engine: str
    steps: int
    dispatches: int
    value: int
    #: decomposed per-opcode dynamic counts, descending
    histogram: list[tuple[str, int]] = field(default_factory=list)
    #: fall-through pair counts, descending
    pairs: list[PairStat] = field(default_factory=list)
    #: GC telemetry aggregates (heap.gc_telemetry() at end of run)
    gc: dict = field(default_factory=dict)
    #: wall-clock run duration (seconds)
    elapsed_seconds: float = 0.0
    #: words allocated over the run (headers included)
    words_allocated: int = 0
    #: engine-specific cache identity (``Engine.cache_stats()``):
    #: handler tables for threaded, emitted functions for compiled
    engine_cache: dict = field(default_factory=dict)

    def fusion_candidates(self, top: int = 10) -> list[PairStat]:
        """The highest-frequency fusable pairs not yet in the ISA."""
        out = [p for p in self.pairs if p.fusable and not p.fused]
        return out[:top]

    def covered_by_table(self) -> int:
        """Dispatches the current fusion table would eliminate."""
        return sum(p.count for p in self.pairs if p.fused)


def profile_program(
    program: isa.VMProgram,
    heap_words: int | None = None,
    max_steps: int | None = None,
    input_text: str = "",
    engine: str | None = None,
) -> ProfileReport:
    """Run ``program`` under the profiler and report.

    With no ``engine`` (or ``"naive"``) the run mines fall-through
    pairs on the naive loop.  Any other engine runs for real — pair
    mining is naive-only — and the report carries that engine's cache
    identity instead of adjacency counts.
    """
    mine_pairs = engine is None or engine == "naive"
    machine = Machine(
        program,
        heap_words=heap_words,
        max_steps=max_steps,
        input_text=input_text,
        engine=None if mine_pairs else engine,
        profile=mine_pairs,
    )
    result = machine.run()
    return build_report(machine, result)


def build_report(machine: Machine, result: RunResult) -> ProfileReport:
    histogram = sorted(
        result.opcode_counts.items(), key=lambda item: (-item[1], item[0])
    )
    pairs = []
    for (op1, op2), count in sorted(
        machine.pair_counts.items(), key=lambda item: -item[1]
    ):
        pairs.append(
            PairStat(
                first=isa.opcode_name(op1),
                second=isa.opcode_name(op2),
                count=count,
                fusable=op1 in isa.FUSABLE_FIRST and op2 in isa.FUSABLE_SECOND,
                fused=(op1, op2) in isa.FUSION_TABLE,
            )
        )
    # every engine answers cache_stats(); never reach into an engine
    # for handler tables (threaded) or emitted functions (compiled)
    # directly — older engines may not have either
    stats_fn = getattr(machine._engine, "cache_stats", None)
    engine_cache = stats_fn() if stats_fn is not None else {}
    return ProfileReport(
        engine=result.engine,
        steps=result.steps,
        dispatches=result.dispatches,
        value=result.value,
        histogram=histogram,
        pairs=pairs,
        gc=result.gc_stats,
        elapsed_seconds=result.elapsed_seconds,
        words_allocated=result.words_allocated,
        engine_cache=engine_cache,
    )


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def render_gc_text(report: ProfileReport) -> list[str]:
    """The GC-telemetry section of the text report."""
    gc = report.gc
    if not gc:
        return []
    lines = ["GC telemetry:"]
    occupancy = gc.get("gc_occupancy")
    trigger = "legacy (exhaustion)" if occupancy is None else f"{occupancy:.0%} occupancy"
    lines.append(
        f"  collections  {gc['collections']:10d}  (trigger: {trigger})"
    )
    by_trigger = gc.get("triggers") or {}
    if by_trigger:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(by_trigger.items()))
        lines.append(f"  triggers     {detail:>10s}")
    lines.append(
        f"  pause total  {gc['pause_seconds_total'] * 1000:10.2f} ms"
        f"  (max {gc['pause_seconds_max'] * 1000:.2f} ms)"
    )
    lines.append(f"  reclaimed    {gc['reclaimed_words_total']:10d} words")
    lines.append(
        f"  heap         {gc['live_words']:10d} live / "
        f"{gc['size_words']} words at exit"
    )
    if report.elapsed_seconds > 0:
        rate = report.words_allocated / report.elapsed_seconds
        overhead = 100.0 * gc["pause_seconds_total"] / report.elapsed_seconds
        lines.append(
            f"  alloc rate   {rate / 1e6:10.2f} Mwords/s"
            f"  (GC overhead {overhead:.1f}%)"
        )
    return lines


def render_text(report: ProfileReport, top: int = 20) -> str:
    lines = []
    lines.append(
        f"{report.steps} instructions in {report.dispatches} dispatches "
        f"({report.engine} engine)"
    )
    if report.engine_cache:
        detail = ", ".join(
            f"{key}={value}" for key, value in sorted(report.engine_cache.items())
        )
        lines.append(f"engine cache: {detail}")
    lines.append("")
    lines.append("opcode histogram (decomposed counts):")
    total = max(report.steps, 1)
    for name, count in report.histogram[:top]:
        share = 100.0 * count / total
        lines.append(f"  {name:12s} {count:10d}  {share:5.1f}%")
    shown = sum(count for _, count in report.histogram[:top])
    rest = report.steps - shown
    if rest > 0:
        lines.append(f"  {'(other)':12s} {rest:10d}  {100.0 * rest / total:5.1f}%")
    if report.pairs:
        lines.append("")
        lines.append("hot fall-through pairs:")
        for pair in report.pairs[:top]:
            marker = "fused" if pair.fused else ("fusable" if pair.fusable else "-")
            lines.append(f"  {pair.name:24s} {pair.count:10d}  [{marker}]")
        lines.append("")
        covered = report.covered_by_table()
        lines.append(
            f"current fusion table covers {covered} pair occurrences "
            f"(would save {covered} dispatches)"
        )
        candidates = report.fusion_candidates()
        if candidates:
            lines.append("top unfused candidates:")
            for pair in candidates:
                lines.append(f"  {pair.name:24s} {pair.count:10d}")
    gc_lines = render_gc_text(report)
    if gc_lines:
        lines.append("")
        lines.extend(gc_lines)
    return "\n".join(lines)


def render_json(report: ProfileReport, top: int | None = None) -> str:
    payload = {
        "engine": report.engine,
        "steps": report.steps,
        "dispatches": report.dispatches,
        "histogram": dict(report.histogram[:top] if top else report.histogram),
        "pairs": [
            {
                "first": p.first,
                "second": p.second,
                "count": p.count,
                "fusable": p.fusable,
                "fused": p.fused,
            }
            for p in (report.pairs[:top] if top else report.pairs)
        ],
        "covered_by_table": report.covered_by_table(),
        "candidates": [
            {"pair": p.name, "count": p.count} for p in report.fusion_candidates()
        ],
        "elapsed_seconds": report.elapsed_seconds,
        "words_allocated": report.words_allocated,
        "gc": report.gc,
        "engine_cache": report.engine_cache,
    }
    return json.dumps(payload, indent=2)
