"""Deterministic fault injection for the VM heap and budgets.

The hardened execution layer promises that every VM fault — allocation
failure, forced collection at an awkward moment, budget expiry mid
fused-pair — either completes correctly after recovery or raises a
structured trap that leaves the heap invariants intact and the machine
reusable.  This module *proves* it, per program, by sweeping schedules:

* **GC-every-N** — force a collection before every Nth allocation, then
  require the run to complete with the reference value and output.
  Exercises the collector at allocation points the occupancy trigger
  would never pick, including mid rest-list construction.
* **Allocation failure at the k-th site** — raise ``HeapExhausted`` at
  exactly the k-th allocation, for k swept across the run.  Requires a
  structured trap, an intact word-conservation invariant afterwards,
  and a correct clean re-run on the *same* machine and heap.
* **Deadline expiry at seeded dispatch points** — trip the deadline
  budget at pseudo-random (seeded) step indices, then require
  ``resume()`` to finish the run with reference results and counters.

All schedules are deterministic: same program, same seed, same faults.

:class:`FaultInjectingHeap` guarantees the schedule observes *every*
allocation by keeping the bump region permanently exhausted (so the
engines' inline compare-and-add can never hit) and by setting
``fault_injection = True``, which makes the engines skip their inline
ALLOC/ALLOCI fast paths wholesale — including the threaded engine's
exact-fit bin handlers, which bypass the bump region entirely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import BudgetExceeded, HeapExhausted, ReproError
from .heap import DEFAULT_GC_OCCUPANCY, Heap
from .machine import Machine


class FaultSchedule:
    """One deterministic allocation-fault plan (see module docstring).

    ``fail_at`` is 1-based and fires exactly once — after the injected
    failure the counter has moved past it, so a recovery run on the
    same machine proceeds cleanly.
    """

    def __init__(self, gc_every: int | None = None, fail_at: int | None = None):
        self.gc_every = gc_every
        self.fail_at = fail_at
        self.allocs = 0
        self.forced_gcs = 0
        self.injected_failures = 0

    def on_alloc(self, heap: Heap, roots) -> None:
        """Called by the heap before every allocation it serves."""
        self.allocs += 1
        if self.fail_at is not None and self.allocs == self.fail_at:
            self.injected_failures += 1
            raise HeapExhausted(
                f"injected allocation failure at allocation {self.allocs}"
            )
        if self.gc_every and self.allocs % self.gc_every == 0:
            heap.collect(roots(), trigger="injected")
            self.forced_gcs += 1


class FaultInjectingHeap(Heap):
    """A heap that routes every allocation through the schedule.

    The bump limit is re-clamped to the bump pointer after every
    operation that could raise it, so the engines' inline fast path
    (which only checks the bump region) always falls through to
    :meth:`allocate`; ``fault_injection`` disables the threaded
    engine's bin fast paths at handler-build time.  Word conservation
    is unaffected: free-space accounting uses the real region end, not
    the clamped limit.
    """

    fault_injection = True

    def __init__(
        self,
        size_words: int,
        schedule: FaultSchedule,
        gc_occupancy: float | None = DEFAULT_GC_OCCUPANCY,
    ):
        super().__init__(size_words, gc_occupancy=gc_occupancy)
        self.schedule = schedule
        self.bump[1] = self.bump[0]

    def allocate(self, nwords: int, tag: int, roots) -> int:
        self.schedule.on_alloc(self, roots)
        try:
            return super().allocate(nwords, tag, roots)
        finally:
            self.bump[1] = self.bump[0]

    def collect(self, roots, trigger: str = "explicit") -> int:
        try:
            return super().collect(roots, trigger=trigger)
        finally:
            self.bump[1] = self.bump[0]


@dataclass
class FaultOutcome:
    """What one injected-fault run did."""

    schedule: str
    engine: str
    #: "completed" (GC-retry or fault never reached) or "trapped"
    status: str
    trap_kind: str | None = None
    #: machine-readable fault snapshot (:meth:`TrapInfo.to_json`)
    trap: dict | None = None
    #: problems found; empty means the outcome honours the contract
    violations: list[str] = field(default_factory=list)
    #: an exception class outside the structured-trap contract escaped
    #: the run (always also recorded as a violation — a new crash mode
    #: must never pass silently)
    unexpected: bool = False


@dataclass
class SweepReport:
    """Aggregated result of one program's fault sweep."""

    label: str
    total_allocs: int = 0
    outcomes: list[FaultOutcome] = field(default_factory=list)

    @property
    def violations(self) -> list[str]:
        out = []
        for outcome in self.outcomes:
            out.extend(
                f"{self.label} [{outcome.engine}] {outcome.schedule}: {v}"
                for v in outcome.violations
            )
        return out

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        completed = sum(1 for o in self.outcomes if o.status == "completed")
        trapped = sum(1 for o in self.outcomes if o.status == "trapped")
        return {
            "runs": len(self.outcomes),
            "completed": completed,
            "trapped": trapped,
            "violations": len(self.violations),
            "unexpected": sum(1 for o in self.outcomes if o.unexpected),
        }


def _fault_machine(
    vm_program, schedule: FaultSchedule, heap_words: int, engine: str
) -> Machine:
    machine = Machine(vm_program, heap_words=heap_words, engine=engine)
    machine.install_heap(FaultInjectingHeap(heap_words, schedule))
    return machine


def _decoded(machine: Machine, word: int):
    # decode_word lives in repro.api, which imports repro.vm: import
    # lazily to keep the package acyclic.
    from ..api import decode_word

    return decode_word(machine, word)


def _check_trap(machine: Machine, error: ReproError, out: FaultOutcome) -> None:
    """A structured trap must carry its snapshot and leave a sound heap."""
    if error.trap is None or machine.last_trap is not error.trap:
        out.violations.append("trap carried no TrapInfo snapshot")
    else:
        out.trap = error.trap.to_json()
    try:
        machine.heap.check_conservation()
    except ReproError as conservation_error:
        out.violations.append(str(conservation_error))


def _record_unexpected(out: FaultOutcome, error: BaseException) -> None:
    """An exception class outside the contract escaped a swept run.

    Recorded as a violation (so sweeps — and the CI fault-sweep job —
    exit nonzero) rather than propagated, so one new crash mode cannot
    abort the rest of the sweep.
    """
    out.status = "trapped"
    out.unexpected = True
    out.violations.append(
        f"unexpected exception class {type(error).__name__}: {error}"
    )


def _run_reference(vm_program, heap_words: int, engine: str):
    """Clean run on a fault heap with an empty schedule.

    The empty-schedule fault heap sees (and counts) every allocation
    while injecting nothing, so it doubles as the site census for the
    allocation-failure sweep.
    """
    schedule = FaultSchedule()
    machine = _fault_machine(vm_program, schedule, heap_words, engine)
    result = machine.run()
    return machine, result, schedule.allocs


def sweep_program(
    vm_program,
    label: str = "<program>",
    engine: str = "naive",
    heap_words: int = 1 << 16,
    max_sites: int = 32,
    gc_every: tuple[int, ...] = (1, 3, 7),
    seed: int = 0,
    deadline_points: int = 3,
) -> SweepReport:
    """Sweep one compiled program through every fault schedule."""
    report = SweepReport(label=label)
    ref_machine, reference, total_allocs = _run_reference(
        vm_program, heap_words, engine
    )
    report.total_allocs = total_allocs
    ref_value = _decoded(ref_machine, reference.value)

    def check_result(machine: Machine, result, out: FaultOutcome) -> None:
        if _decoded(machine, result.value) != ref_value:
            out.violations.append(
                f"value diverged: {_decoded(machine, result.value)!r} "
                f"!= {ref_value!r}"
            )
        if result.output != reference.output:
            out.violations.append("output diverged")
        try:
            machine.heap.check_conservation()
        except ReproError as error:
            out.violations.append(str(error))

    # -- forced collection before every Nth allocation ------------------
    for every in gc_every:
        out = FaultOutcome(schedule=f"gc-every-{every}", engine=engine,
                           status="completed")
        schedule = FaultSchedule(gc_every=every)
        machine = _fault_machine(vm_program, schedule, heap_words, engine)
        try:
            result = machine.run()
        except ReproError as error:
            out.status = "trapped"
            out.trap_kind = error.trap.kind if error.trap else None
            out.trap = error.trap.to_json() if error.trap else None
            out.violations.append(
                f"gc-every-{every} run trapped unexpectedly: {error}"
            )
        except Exception as error:
            _record_unexpected(out, error)
        else:
            check_result(machine, result, out)
            if result.steps != reference.steps:
                out.violations.append(
                    f"steps diverged: {result.steps} != {reference.steps}"
                )
        report.outcomes.append(out)

    # -- allocation failure at the k-th site ----------------------------
    sites = min(total_allocs, max_sites)
    if sites == total_allocs:
        fail_points = range(1, total_allocs + 1)
    else:
        # an even, deterministic spread that always includes both ends
        fail_points = sorted(
            {1 + (i * (total_allocs - 1)) // (sites - 1) for i in range(sites)}
        )
    for k in fail_points:
        out = FaultOutcome(schedule=f"fail-at-{k}", engine=engine,
                           status="trapped")
        schedule = FaultSchedule(fail_at=k)
        machine = _fault_machine(vm_program, schedule, heap_words, engine)
        try:
            result = machine.run()
        except HeapExhausted as error:
            if "injected allocation failure" not in str(error):
                out.violations.append(f"unexpected heap trap: {error}")
            out.trap_kind = error.trap.kind if error.trap else None
            _check_trap(machine, error, out)
            # the machine must complete a clean re-run on the same heap
            try:
                retry = machine.run()
            except ReproError as retry_error:
                out.violations.append(
                    f"re-run after trap failed: {retry_error}"
                )
            except Exception as retry_error:
                _record_unexpected(out, retry_error)
            else:
                check_result(machine, retry, out)
        except ReproError as error:
            out.violations.append(f"non-heap trap for injected failure: {error}")
        except Exception as error:
            _record_unexpected(out, error)
        else:
            # the schedule never fired (k past the last allocation)
            out.status = "completed"
            check_result(machine, result, out)
        report.outcomes.append(out)

    # -- deadline expiry at seeded dispatch points -----------------------
    rng = random.Random(seed)
    steps_total = reference.steps
    for _ in range(min(deadline_points, steps_total)):
        at_step = rng.randint(1, steps_total - 1) if steps_total > 1 else 1
        out = FaultOutcome(schedule=f"deadline-at-{at_step}", engine=engine,
                           status="trapped")
        machine = Machine(vm_program, heap_words=heap_words, engine=engine)
        machine._injected_deadline_step = at_step
        try:
            machine.run()
        except BudgetExceeded as error:
            out.trap_kind = error.trap.kind if error.trap else None
            _check_trap(machine, error, out)
            if not (error.trap and error.trap.resumable):
                out.violations.append("deadline trap not resumable")
            else:
                try:
                    result = machine.resume()
                except ReproError as resume_error:
                    out.violations.append(f"resume failed: {resume_error}")
                except Exception as resume_error:
                    _record_unexpected(out, resume_error)
                else:
                    check_result(machine, result, out)
                    if result.steps != reference.steps:
                        out.violations.append(
                            f"resumed steps diverged: {result.steps} "
                            f"!= {reference.steps}"
                        )
        except ReproError as error:
            out.violations.append(f"unexpected trap: {error}")
        except Exception as error:
            _record_unexpected(out, error)
        else:
            out.status = "completed"
            out.violations.append(
                f"injected deadline at step {at_step} never tripped"
            )
        report.outcomes.append(out)

    return report


def sweep_source(
    source: str,
    label: str = "<source>",
    engine: str = "naive",
    heap_words: int = 1 << 16,
    max_sites: int = 32,
    gc_every: tuple[int, ...] = (1, 3, 7),
    seed: int = 0,
    deadline_points: int = 3,
    options=None,
) -> SweepReport:
    """Compile Scheme source and sweep it (see :func:`sweep_program`)."""
    from ..api import compile_source

    compiled = compile_source(source, options)
    return sweep_program(
        compiled.vm_program,
        label=label,
        engine=engine,
        heap_words=heap_words,
        max_sites=max_sites,
        gc_every=gc_every,
        seed=seed,
        deadline_points=deadline_points,
    )
