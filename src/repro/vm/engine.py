"""Pluggable VM execution engines.

Three engines execute :class:`~repro.vm.isa.VMProgram` code:

* :class:`NaiveEngine` — the classic switch interpreter: one big
  if/elif chain over the opcode, executed per instruction.  Simple,
  easy to audit, and the reference for differential testing.  It is
  also the only engine that supports hot-pair profiling
  (``Machine(profile=True)``).

* :class:`ThreadedEngine` — (closure-)threaded dispatch: each code
  object's instruction list is precompiled, once, into a parallel table
  of per-instruction handler closures with their operands bound as
  closure constants.  Dispatch is then one list index plus one call —
  no opcode comparison chain, no per-step operand unpacking.  Handler
  tables are built lazily per code object, so dead procedures cost
  nothing.

* :class:`CompiledEngine` — compile-to-Python: ``vm.codegen`` emits one
  real Python function per code object (operands inlined as literals,
  heap arrays bound as constants, fused pairs flattened to adjacent
  statements, absint emit hints eliding dead checks) and the engine
  trampolines between the ``exec``-compiled functions.  The fastest
  tier; under fault injection it falls back to uninlined heap access so
  the injecting heap observes every operation.

All engines execute fused superinstructions (see ``isa.FUSED_PAIRS``)
and all charge them to their *constituent* base opcodes when counting,
including the exact step index at which a ``max_steps`` budget trips
mid-pair.  The engines are observationally identical — same results,
same output, same decomposed counts, same errors — which the
cross-engine differential suite (``tests/test_engine_differential.py``)
enforces; they differ only in wall-clock speed.

Engine selection: ``Machine(engine="threaded")``, the ``--engine`` CLI
flag, or the ``REPRO_VM_ENGINE`` environment variable (the default when
neither is given is ``naive``).
"""

from __future__ import annotations

import os
import sys

from ..errors import BudgetExceeded, ReproError, SchemeError, VMError
from ..prims import WORD_MASK, signed, wrap
from . import isa
from .budget import Suspension
from .heap import MAX_BIN_PAYLOAD, ZEROS, _NZEROS
from .machine import FAIL_MESSAGES, _CLOSURE_TAG, _ESCAPE_CODE

_STACK_LIMIT = 8000
_STACK_OVERFLOW = "call stack overflow (deep non-tail recursion)"


# ----------------------------------------------------------------------
# fused-handler generation
# ----------------------------------------------------------------------
#
# A fused superinstruction executed as two chained closures costs more
# than the dispatch it saves, so fused handlers are generated *flat*: a
# statement template per base opcode, concatenated into one closure per
# fused pair.  The templates must mirror the naive interpreter arms
# exactly — the differential suite holds both engines to that.

_STMT = {
    isa.LD: "regs[{0}] = heap.load((regs[{1}] + {2}) & M)",
    isa.ST: "heap.store((regs[{0}] + {1}) & M, regs[{2}])",
    isa.LDC: "regs[{0}] = {1}",
    isa.MOV: "regs[{0}] = regs[{1}]",
    isa.ADD: "regs[{0}] = (regs[{1}] + regs[{2}]) & M",
    isa.ADDI: "regs[{0}] = (regs[{1}] + {2}) & M",
    isa.SUB: "regs[{0}] = (regs[{1}] - regs[{2}]) & M",
    isa.SUBI: "regs[{0}] = (regs[{1}] - {2}) & M",
    isa.MUL: "regs[{0}] = (signed(regs[{1}]) * signed(regs[{2}])) & M",
    isa.MULI: "regs[{0}] = (signed(regs[{1}]) * signed({2})) & M",
    isa.AND: "regs[{0}] = regs[{1}] & regs[{2}]",
    isa.ANDI: "regs[{0}] = regs[{1}] & {2}",
    isa.OR: "regs[{0}] = regs[{1}] | regs[{2}]",
    isa.ORI: "regs[{0}] = regs[{1}] | {2}",
    isa.XOR: "regs[{0}] = regs[{1}] ^ regs[{2}]",
    isa.XORI: "regs[{0}] = regs[{1}] ^ {2}",
    isa.NOT: "regs[{0}] = (~regs[{1}]) & M",
    isa.SHL: "regs[{0}] = (regs[{1}] << (regs[{2}] & 63)) & M",
    isa.SHLI: "regs[{0}] = (regs[{1}] << ({2} & 63)) & M",
    isa.SHR: "regs[{0}] = regs[{1}] >> (regs[{2}] & 63)",
    isa.SHRI: "regs[{0}] = regs[{1}] >> ({2} & 63)",
    isa.SAR: "regs[{0}] = (signed(regs[{1}]) >> (regs[{2}] & 63)) & M",
    isa.SARI: "regs[{0}] = (signed(regs[{1}]) >> ({2} & 63)) & M",
    isa.CMPEQ: "regs[{0}] = 1 if regs[{1}] == regs[{2}] else 0",
    isa.CMPEQI: "regs[{0}] = 1 if regs[{1}] == {2} else 0",
    isa.CMPNE: "regs[{0}] = 1 if regs[{1}] != regs[{2}] else 0",
    isa.CMPNEI: "regs[{0}] = 1 if regs[{1}] != {2} else 0",
    isa.CMPLT: "regs[{0}] = 1 if signed(regs[{1}]) < signed(regs[{2}]) else 0",
    isa.CMPLTI: "regs[{0}] = 1 if signed(regs[{1}]) < signed({2}) else 0",
    isa.CMPLE: "regs[{0}] = 1 if signed(regs[{1}]) <= signed(regs[{2}]) else 0",
    isa.CMPLEI: "regs[{0}] = 1 if signed(regs[{1}]) <= signed({2}) else 0",
    isa.CMPULT: "regs[{0}] = 1 if regs[{1}] < regs[{2}] else 0",
    isa.CMPULE: "regs[{0}] = 1 if regs[{1}] <= regs[{2}] else 0",
    isa.CMPNZ: "regs[{0}] = 1 if regs[{1}] != 0 else 0",
}

# Branch templates end the handler: return the target or fall through.
_BRANCH_STMT = {
    isa.JT: "return {1} if regs[{0}] != 0 else nxt",
    isa.JF: "return {1} if regs[{0}] == 0 else nxt",
    isa.JEQ: "return {2} if regs[{0}] == regs[{1}] else nxt",
    isa.JNE: "return {2} if regs[{0}] != regs[{1}] else nxt",
    isa.JEQI: "return {2} if regs[{0}] == {1} else nxt",
    isa.JNEI: "return {2} if regs[{0}] != {1} else nxt",
    isa.JLT: "return {2} if signed(regs[{0}]) < signed(regs[{1}]) else nxt",
    isa.JGE: "return {2} if signed(regs[{0}]) >= signed(regs[{1}]) else nxt",
    isa.JLE: "return {2} if signed(regs[{0}]) <= signed(regs[{1}]) else nxt",
    isa.JGT: "return {2} if signed(regs[{0}]) > signed(regs[{1}]) else nxt",
    isa.JULT: "return {2} if regs[{0}] < regs[{1}] else nxt",
    isa.JUGE: "return {2} if regs[{0}] >= regs[{1}] else nxt",
    isa.JULE: "return {2} if regs[{0}] <= regs[{1}] else nxt",
    isa.JUGT: "return {2} if regs[{0}] > regs[{1}] else nxt",
    isa.JLTI: "return {2} if signed(regs[{0}]) < signed({1}) else nxt",
    isa.JGEI: "return {2} if signed(regs[{0}]) >= signed({1}) else nxt",
    isa.JLEI: "return {2} if signed(regs[{0}]) <= signed({1}) else nxt",
    isa.JGTI: "return {2} if signed(regs[{0}]) > signed({1}) else nxt",
}


def _fused_maker(fop: int):
    """Compile ``make(*operands, nxt, heap) -> handler`` for one fused op.

    The handler executes both halves in one flat closure and returns the
    next pc: ``nxt`` on fall-through, the branch target when the second
    half is a taken branch.  Callers that have no meaningful ``nxt``
    (the naive engine) pass ``None`` and treat ``None`` as fall-through.
    Returns ``None`` when a half has no template (e.g. DIV); callers
    then fall back to composing single-instruction executors.
    """
    op1, op2 = isa.FUSED_PAIRS[fop]
    if op1 not in _STMT or (op2 not in _STMT and op2 not in _BRANCH_STMT):
        return None
    p1 = [f"x{i}" for i in range(isa.OPERAND_COUNT[op1])]
    p2 = [f"y{i}" for i in range(isa.OPERAND_COUNT[op2])]
    body1 = _STMT[op1].format(*p1)
    if op2 in _BRANCH_STMT:
        body2 = _BRANCH_STMT[op2].format(*p2)
    else:
        body2 = _STMT[op2].format(*p2) + "\n        return nxt"
    source = (
        f"def make({', '.join(p1 + p2)}, nxt, heap):\n"
        f"    def handler(regs):\n"
        f"        {body1}\n"
        f"        {body2}\n"
        f"    return handler\n"
    )
    namespace = {"M": WORD_MASK, "signed": signed}
    exec(source, namespace)
    return namespace["make"]


_FUSED_MAKERS = {fop: _fused_maker(fop) for fop in isa.FUSED_PAIRS}


def _single_maker(op: int):
    """Compile ``make(*operands, nxt, heap) -> handler`` for one base op.

    Covers every templated value op and conditional branch — the bulk of
    handler-table construction — so building a handler is one dict
    lookup plus one closure, not a trip through an opcode chain.
    """
    ps = [f"x{i}" for i in range(isa.OPERAND_COUNT[op])]
    if op in _BRANCH_STMT:
        body = _BRANCH_STMT[op].format(*ps)
    elif op in _STMT:
        body = _STMT[op].format(*ps) + "\n        return nxt"
    else:
        return None
    source = (
        f"def make({', '.join(ps)}, nxt, heap):\n"
        f"    def handler(regs):\n"
        f"        {body}\n"
        f"    return handler\n"
    )
    namespace = {"M": WORD_MASK, "signed": signed}
    exec(source, namespace)
    return namespace["make"]


_SINGLE_MAKERS = {
    op: maker
    for op in isa.OPERAND_COUNT
    if (maker := _single_maker(op)) is not None
}


class Engine:
    """Base class: an engine executes one Machine to completion."""

    name = "abstract"

    def __init__(self, machine):
        self.m = machine

    def run(self):
        raise NotImplementedError

    def resume(self, suspension):
        """Continue from a budget :class:`Suspension` (Machine.resume)."""
        raise NotImplementedError

    def heap_changed(self):
        """Invalidate any cached state that bakes in heap identity.

        Handler tables and fused executors close over ``heap.mem`` /
        ``heap.bump`` at build time; after ``Machine.install_heap`` they
        must be rebuilt against the new arrays.
        """

    def cache_stats(self) -> dict:
        """Engine-specific identity counters for ``repro profile``/--stats.

        Keys vary by engine (handler tables for threaded, emitted
        functions and hit/miss counts for compiled); an empty dict means
        the engine caches nothing worth reporting.
        """
        return {}


# ----------------------------------------------------------------------
# the naive switch interpreter
# ----------------------------------------------------------------------


class NaiveEngine(Engine):
    name = "naive"

    def __init__(self, machine):
        super().__init__(machine)
        # decomposition cache for fused instructions: id(ins) -> halves
        self._halves: dict[int, tuple[list, list]] = {}
        # per-code tables of flat fused-pair executors, indexed by pc and
        # filled on first execution (id(code) -> list)
        self._fused_tables: dict[int, list] = {}
        # the charged-but-unexecuted second half of a fused pair whose
        # budget tripped between the halves (see _exec_fused)
        self._midpair: list | None = None

    def heap_changed(self):
        # fused executors built by _FUSED_MAKERS capture the heap arrays
        self._fused_tables.clear()

    def cache_stats(self) -> dict:
        return {
            "fused_tables": len(self._fused_tables),
            "fused_executors_built": sum(
                1
                for table in self._fused_tables.values()
                for handler in table
                if handler is not None
            ),
        }

    # -- fused-instruction support -------------------------------------

    def _exec_base(self, ins: list, regs: list) -> int | None:
        """Execute one fixed-width base instruction.

        Returns the branch target when the instruction is a taken
        branch, else None.  Only the fusable subset of the ISA needs to
        be handled here (control transfer and allocation never fuse).
        """
        m = self.m
        op = ins[0]
        if op == isa.LD:
            regs[ins[1]] = m.heap.load(wrap(regs[ins[2]] + ins[3]))
        elif op == isa.ST:
            m.heap.store(wrap(regs[ins[1]] + ins[2]), regs[ins[3]])
        elif op == isa.LDC:
            regs[ins[1]] = ins[2]
        elif op == isa.MOV:
            regs[ins[1]] = regs[ins[2]]
        elif op == isa.ADD:
            regs[ins[1]] = (regs[ins[2]] + regs[ins[3]]) & WORD_MASK
        elif op == isa.ADDI:
            regs[ins[1]] = (regs[ins[2]] + ins[3]) & WORD_MASK
        elif op == isa.SUB:
            regs[ins[1]] = (regs[ins[2]] - regs[ins[3]]) & WORD_MASK
        elif op == isa.SUBI:
            regs[ins[1]] = (regs[ins[2]] - ins[3]) & WORD_MASK
        elif op == isa.MUL:
            regs[ins[1]] = (signed(regs[ins[2]]) * signed(regs[ins[3]])) & WORD_MASK
        elif op == isa.MULI:
            regs[ins[1]] = (signed(regs[ins[2]]) * signed(ins[3])) & WORD_MASK
        elif op == isa.AND:
            regs[ins[1]] = regs[ins[2]] & regs[ins[3]]
        elif op == isa.ANDI:
            regs[ins[1]] = regs[ins[2]] & ins[3]
        elif op == isa.OR:
            regs[ins[1]] = regs[ins[2]] | regs[ins[3]]
        elif op == isa.ORI:
            regs[ins[1]] = regs[ins[2]] | ins[3]
        elif op == isa.XOR:
            regs[ins[1]] = regs[ins[2]] ^ regs[ins[3]]
        elif op == isa.XORI:
            regs[ins[1]] = regs[ins[2]] ^ ins[3]
        elif op == isa.NOT:
            regs[ins[1]] = (~regs[ins[2]]) & WORD_MASK
        elif op == isa.SHL:
            regs[ins[1]] = (regs[ins[2]] << (regs[ins[3]] & 63)) & WORD_MASK
        elif op == isa.SHLI:
            regs[ins[1]] = (regs[ins[2]] << (ins[3] & 63)) & WORD_MASK
        elif op == isa.SHR:
            regs[ins[1]] = regs[ins[2]] >> (regs[ins[3]] & 63)
        elif op == isa.SHRI:
            regs[ins[1]] = regs[ins[2]] >> (ins[3] & 63)
        elif op == isa.SAR:
            regs[ins[1]] = (signed(regs[ins[2]]) >> (regs[ins[3]] & 63)) & WORD_MASK
        elif op == isa.SARI:
            regs[ins[1]] = (signed(regs[ins[2]]) >> (ins[3] & 63)) & WORD_MASK
        elif op == isa.CMPEQ:
            regs[ins[1]] = 1 if regs[ins[2]] == regs[ins[3]] else 0
        elif op == isa.CMPEQI:
            regs[ins[1]] = 1 if regs[ins[2]] == ins[3] else 0
        elif op == isa.CMPNE:
            regs[ins[1]] = 1 if regs[ins[2]] != regs[ins[3]] else 0
        elif op == isa.CMPNEI:
            regs[ins[1]] = 1 if regs[ins[2]] != ins[3] else 0
        elif op == isa.CMPLT:
            regs[ins[1]] = 1 if signed(regs[ins[2]]) < signed(regs[ins[3]]) else 0
        elif op == isa.CMPLTI:
            regs[ins[1]] = 1 if signed(regs[ins[2]]) < signed(ins[3]) else 0
        elif op == isa.CMPLE:
            regs[ins[1]] = 1 if signed(regs[ins[2]]) <= signed(regs[ins[3]]) else 0
        elif op == isa.CMPLEI:
            regs[ins[1]] = 1 if signed(regs[ins[2]]) <= signed(ins[3]) else 0
        elif op == isa.CMPULT:
            regs[ins[1]] = 1 if regs[ins[2]] < regs[ins[3]] else 0
        elif op == isa.CMPULE:
            regs[ins[1]] = 1 if regs[ins[2]] <= regs[ins[3]] else 0
        elif op == isa.CMPNZ:
            regs[ins[1]] = 1 if regs[ins[2]] != 0 else 0
        elif op == isa.JT:
            if regs[ins[1]] != 0:
                return ins[2]
        elif op == isa.JF:
            if regs[ins[1]] == 0:
                return ins[2]
        elif op == isa.JEQ:
            if regs[ins[1]] == regs[ins[2]]:
                return ins[3]
        elif op == isa.JNE:
            if regs[ins[1]] != regs[ins[2]]:
                return ins[3]
        elif op == isa.JEQI:
            if regs[ins[1]] == ins[2]:
                return ins[3]
        elif op == isa.JNEI:
            if regs[ins[1]] != ins[2]:
                return ins[3]
        elif op == isa.JLT:
            if signed(regs[ins[1]]) < signed(regs[ins[2]]):
                return ins[3]
        elif op == isa.JGE:
            if signed(regs[ins[1]]) >= signed(regs[ins[2]]):
                return ins[3]
        elif op == isa.JLE:
            if signed(regs[ins[1]]) <= signed(regs[ins[2]]):
                return ins[3]
        elif op == isa.JGT:
            if signed(regs[ins[1]]) > signed(regs[ins[2]]):
                return ins[3]
        elif op == isa.JULT:
            if regs[ins[1]] < regs[ins[2]]:
                return ins[3]
        elif op == isa.JUGE:
            if regs[ins[1]] >= regs[ins[2]]:
                return ins[3]
        elif op == isa.JULE:
            if regs[ins[1]] <= regs[ins[2]]:
                return ins[3]
        elif op == isa.JUGT:
            if regs[ins[1]] > regs[ins[2]]:
                return ins[3]
        elif op == isa.JLTI:
            if signed(regs[ins[1]]) < signed(ins[2]):
                return ins[3]
        elif op == isa.JGEI:
            if signed(regs[ins[1]]) >= signed(ins[2]):
                return ins[3]
        elif op == isa.JLEI:
            if signed(regs[ins[1]]) <= signed(ins[2]):
                return ins[3]
        elif op == isa.JGTI:
            if signed(regs[ins[1]]) > signed(ins[2]):
                return ins[3]
        elif op == isa.DIV:
            regs[ins[1]] = m._div(regs[ins[2]], regs[ins[3]])
        elif op == isa.MOD:
            regs[ins[1]] = m._mod(regs[ins[2]], regs[ins[3]])
        else:
            raise VMError(f"opcode {isa.opcode_name(op)} cannot be fused")
        return None

    def _fused_table(self, code: isa.CodeObject) -> list:
        """Per-pc slots for this code's fused-pair executors."""
        key = id(code)
        table = self._fused_tables.get(key)
        if table is None:
            table = [None] * len(code.instructions)
            self._fused_tables[key] = table
        return table

    def _make_fused(self, ins: list):
        """Flat executor for one fused pair: regs -> branch target | None."""
        maker = _FUSED_MAKERS[ins[0]]
        if maker is not None:
            return maker(*ins[1:], None, self.m.heap)
        first, second = isa.decompose(ins)

        def handler(regs, first=first, second=second):
            self._exec_base(first, regs)
            return self._exec_base(second, regs)

        return handler

    def _exec_fused(self, ins: list, pc: int, regs: list) -> int:
        """Counted fused execution: decompose, charging each half."""
        m = self.m
        halves = self._halves.get(id(ins))
        if halves is None:
            first, second = isa.decompose(ins)
            halves = (first, second)
            self._halves[id(ins)] = halves
        first, second = halves
        m._count_step(first[0])
        self._exec_base(first, regs)
        try:
            m._count_step(second[0])
        except BudgetExceeded:
            # The first half executed, the second is charged but not
            # executed: remember it so the suspension can finish the
            # pair on resume instead of rolling back.
            self._midpair = second
            raise
        target = self._exec_base(second, regs)
        return pc if target is None else target

    # -- the interpreter loop ------------------------------------------

    def run(self):
        m = self.m
        main = m.codes[m.program.main_id]
        return self._execute(main, [0] * main.nregs, 0)

    def resume(self, suspension):
        m = self.m
        regs = suspension.regs
        pc = suspension.pc
        if suspension.rollback_op is not None:
            # The trip instruction was charged but never executed: undo
            # the charge (one step, one dispatch) and re-dispatch it.
            op = suspension.rollback_op
            m.counts[op] -= 1
            m.steps -= 1
            m.dispatches -= 1
        elif suspension.pending is not None:
            # Mid-fused-pair trip: the second half is already charged;
            # execute it without re-charging, honouring a taken branch.
            target = self._exec_base(suspension.pending, regs)
            if target is not None:
                pc = target
        return self._execute(suspension.code, regs, pc)

    def _execute(self, code, regs, pc):
        m = self.m
        instructions = code.instructions
        fused = self._fused_table(code)
        counts = m.counts
        counting = m.count_instructions
        profiling = m.profile and counting
        pair_counts = m.pair_counts
        heap = m.heap
        # Inline allocation fast path: a bump-region hit is a two-int
        # compare-and-add plus a header write, with no calls and no GC
        # possibility (so no frame rooting); block registration is
        # deferred to heap.sync_allocations().  Heaps without a bump
        # region (e.g. the legacy baseline in benchmarks) get a dummy
        # always-full region and take the slow path every time; so do
        # fault-injecting heaps, which must see every allocation.
        mem = heap.mem
        bump = getattr(heap, "bump", None)
        if bump is None or getattr(heap, "fault_injection", False):
            bump = [0, 0]
        # Unified budget limit: min(max_steps, next deadline/alloc
        # checkpoint).  One compare per counted instruction; overruns
        # leave the fast path through Machine._step_overrun, which
        # raises or hands back the advanced checkpoint.
        step_limit = m._step_limit
        first_fused = isa.FIRST_FUSED
        prev_code = None
        prev_pc = -2
        prev_op = -1

        try:
            while True:
                ins = instructions[pc]
                pc += 1
                op = ins[0]
                if counting:
                    m.dispatches += 1
                    if profiling:
                        if code is prev_code and pc - 2 == prev_pc:
                            key = (prev_op, op)
                            pair_counts[key] = pair_counts.get(key, 0) + 1
                        prev_code = code
                        prev_pc = pc - 1
                        prev_op = op
                    if op < first_fused:
                        counts[op] += 1
                        m.steps += 1
                        if step_limit is not None and m.steps > step_limit:
                            step_limit = m._step_overrun(op)

                if op >= first_fused:
                    if counting:
                        pc = self._exec_fused(ins, pc, regs)
                    else:
                        handler = fused[pc - 1]
                        if handler is None:
                            handler = fused[pc - 1] = self._make_fused(ins)
                        target = handler(regs)
                        if target is not None:
                            pc = target
                elif op == isa.LD:
                    address = wrap(regs[ins[2]] + ins[3])
                    regs[ins[1]] = heap.load(address)
                elif op == isa.ST:
                    address = wrap(regs[ins[1]] + ins[2])
                    heap.store(address, regs[ins[3]])
                elif op == isa.LDC:
                    regs[ins[1]] = ins[2]
                elif op == isa.MOV:
                    regs[ins[1]] = regs[ins[2]]
                elif op == isa.ADD:
                    regs[ins[1]] = (regs[ins[2]] + regs[ins[3]]) & WORD_MASK
                elif op == isa.ADDI:
                    regs[ins[1]] = (regs[ins[2]] + ins[3]) & WORD_MASK
                elif op == isa.SUB:
                    regs[ins[1]] = (regs[ins[2]] - regs[ins[3]]) & WORD_MASK
                elif op == isa.SUBI:
                    regs[ins[1]] = (regs[ins[2]] - ins[3]) & WORD_MASK
                elif op == isa.MUL:
                    regs[ins[1]] = (signed(regs[ins[2]]) * signed(regs[ins[3]])) & WORD_MASK
                elif op == isa.MULI:
                    regs[ins[1]] = (signed(regs[ins[2]]) * signed(ins[3])) & WORD_MASK
                elif op == isa.DIV:
                    regs[ins[1]] = m._div(regs[ins[2]], regs[ins[3]])
                elif op == isa.MOD:
                    regs[ins[1]] = m._mod(regs[ins[2]], regs[ins[3]])
                elif op == isa.AND:
                    regs[ins[1]] = regs[ins[2]] & regs[ins[3]]
                elif op == isa.ANDI:
                    regs[ins[1]] = regs[ins[2]] & ins[3]
                elif op == isa.OR:
                    regs[ins[1]] = regs[ins[2]] | regs[ins[3]]
                elif op == isa.ORI:
                    regs[ins[1]] = regs[ins[2]] | ins[3]
                elif op == isa.XOR:
                    regs[ins[1]] = regs[ins[2]] ^ regs[ins[3]]
                elif op == isa.XORI:
                    regs[ins[1]] = regs[ins[2]] ^ ins[3]
                elif op == isa.NOT:
                    regs[ins[1]] = (~regs[ins[2]]) & WORD_MASK
                elif op == isa.SHL:
                    regs[ins[1]] = (regs[ins[2]] << (regs[ins[3]] & 63)) & WORD_MASK
                elif op == isa.SHLI:
                    regs[ins[1]] = (regs[ins[2]] << (ins[3] & 63)) & WORD_MASK
                elif op == isa.SHR:
                    regs[ins[1]] = regs[ins[2]] >> (regs[ins[3]] & 63)
                elif op == isa.SHRI:
                    regs[ins[1]] = regs[ins[2]] >> (ins[3] & 63)
                elif op == isa.SAR:
                    regs[ins[1]] = (signed(regs[ins[2]]) >> (regs[ins[3]] & 63)) & WORD_MASK
                elif op == isa.SARI:
                    regs[ins[1]] = (signed(regs[ins[2]]) >> (ins[3] & 63)) & WORD_MASK
                elif op == isa.CMPEQ:
                    regs[ins[1]] = 1 if regs[ins[2]] == regs[ins[3]] else 0
                elif op == isa.CMPEQI:
                    regs[ins[1]] = 1 if regs[ins[2]] == ins[3] else 0
                elif op == isa.CMPNE:
                    regs[ins[1]] = 1 if regs[ins[2]] != regs[ins[3]] else 0
                elif op == isa.CMPNEI:
                    regs[ins[1]] = 1 if regs[ins[2]] != ins[3] else 0
                elif op == isa.CMPLT:
                    regs[ins[1]] = 1 if signed(regs[ins[2]]) < signed(regs[ins[3]]) else 0
                elif op == isa.CMPLTI:
                    regs[ins[1]] = 1 if signed(regs[ins[2]]) < signed(ins[3]) else 0
                elif op == isa.CMPLE:
                    regs[ins[1]] = 1 if signed(regs[ins[2]]) <= signed(regs[ins[3]]) else 0
                elif op == isa.CMPLEI:
                    regs[ins[1]] = 1 if signed(regs[ins[2]]) <= signed(ins[3]) else 0
                elif op == isa.CMPULT:
                    regs[ins[1]] = 1 if regs[ins[2]] < regs[ins[3]] else 0
                elif op == isa.CMPULE:
                    regs[ins[1]] = 1 if regs[ins[2]] <= regs[ins[3]] else 0
                elif op == isa.CMPNZ:
                    regs[ins[1]] = 1 if regs[ins[2]] != 0 else 0
                elif op == isa.JMP:
                    pc = ins[1]
                elif op == isa.JT:
                    if regs[ins[1]] != 0:
                        pc = ins[2]
                elif op == isa.JF:
                    if regs[ins[1]] == 0:
                        pc = ins[2]
                elif op == isa.JEQ:
                    if regs[ins[1]] == regs[ins[2]]:
                        pc = ins[3]
                elif op == isa.JNE:
                    if regs[ins[1]] != regs[ins[2]]:
                        pc = ins[3]
                elif op == isa.JEQI:
                    if regs[ins[1]] == ins[2]:
                        pc = ins[3]
                elif op == isa.JNEI:
                    if regs[ins[1]] != ins[2]:
                        pc = ins[3]
                elif op == isa.JLTI:
                    if signed(regs[ins[1]]) < signed(ins[2]):
                        pc = ins[3]
                elif op == isa.JGEI:
                    if signed(regs[ins[1]]) >= signed(ins[2]):
                        pc = ins[3]
                elif op == isa.JLEI:
                    if signed(regs[ins[1]]) <= signed(ins[2]):
                        pc = ins[3]
                elif op == isa.JGTI:
                    if signed(regs[ins[1]]) > signed(ins[2]):
                        pc = ins[3]
                elif op == isa.JLT:
                    if signed(regs[ins[1]]) < signed(regs[ins[2]]):
                        pc = ins[3]
                elif op == isa.JGE:
                    if signed(regs[ins[1]]) >= signed(regs[ins[2]]):
                        pc = ins[3]
                elif op == isa.JLE:
                    if signed(regs[ins[1]]) <= signed(regs[ins[2]]):
                        pc = ins[3]
                elif op == isa.JGT:
                    if signed(regs[ins[1]]) > signed(regs[ins[2]]):
                        pc = ins[3]
                elif op == isa.JULT:
                    if regs[ins[1]] < regs[ins[2]]:
                        pc = ins[3]
                elif op == isa.JUGE:
                    if regs[ins[1]] >= regs[ins[2]]:
                        pc = ins[3]
                elif op == isa.JULE:
                    if regs[ins[1]] <= regs[ins[2]]:
                        pc = ins[3]
                elif op == isa.JUGT:
                    if regs[ins[1]] > regs[ins[2]]:
                        pc = ins[3]
                elif op == isa.ALLOC:
                    nwords = regs[ins[2]]
                    total = nwords + 1
                    nbase = bump[0]
                    if nbase + total <= bump[1]:
                        # Registration in heap.blocks and the allocation
                        # counter are deferred: heap.sync_allocations()
                        # reconstructs both from the headers in the bump
                        # span before they are needed.
                        bump[0] = nbase + total
                        mem[nbase] = nwords
                        if nwords:
                            mem[nbase + 1 : nbase + total] = (
                                ZEROS[nwords] if nwords < _NZEROS else [0] * nwords
                            )
                        regs[ins[1]] = (nbase << 3) | (regs[ins[3]] & 7)
                    else:
                        m.frames.append([code, regs, pc, -1])
                        regs[ins[1]] = m._alloc(regs[ins[2]], regs[ins[3]] & 7)
                        m.frames.pop()
                elif op == isa.ALLOCI:
                    nwords = ins[2]
                    total = nwords + 1
                    nbase = bump[0]
                    if 0 <= nwords and nbase + total <= bump[1]:
                        bump[0] = nbase + total
                        mem[nbase] = nwords
                        if nwords:
                            mem[nbase + 1 : nbase + total] = (
                                ZEROS[nwords] if nwords < _NZEROS else [0] * nwords
                            )
                        regs[ins[1]] = (nbase << 3) | (ins[3] & 7)
                    else:
                        m.frames.append([code, regs, pc, -1])
                        regs[ins[1]] = m._alloc(ins[2], ins[3])
                        m.frames.pop()
                elif op == isa.GLD:
                    index = ins[2]
                    if not m.global_defined[index]:
                        raise VMError(
                            f"undefined global variable "
                            f"{m.program.global_names[index]!r}"
                        )
                    regs[ins[1]] = m.globals[index]
                elif op == isa.GST:
                    index = ins[2]
                    m.globals[index] = regs[ins[1]]
                    m.global_defined[index] = 1
                elif op == isa.CLOSURE:
                    free_regs = ins[3]
                    m.frames.append([code, regs, pc, -1])
                    pointer = m._alloc(1 + len(free_regs), _CLOSURE_TAG)
                    m.frames.pop()
                    base = pointer & ~7
                    heap.store(base + 8, ins[2])
                    for i, reg in enumerate(free_regs):
                        heap.store(base + 16 + 8 * i, regs[reg])
                    regs[ins[1]] = pointer
                elif op == isa.CALL or op == isa.CALLL:
                    if op == isa.CALL:
                        closure = regs[ins[2]]
                        code_id = m._closure_code_id(closure)
                        if code_id == _ESCAPE_CODE:
                            args = [regs[r] for r in ins[3]]
                            frame = m._unwind(closure, args)
                            code, regs, pc = frame[0], frame[1], frame[2]
                            instructions = code.instructions
                            fused = self._fused_table(code)
                            continue
                    else:
                        closure = 0
                        code_id = ins[2]
                    args = [regs[r] for r in ins[3]]
                    callee = m.codes[code_id]
                    m.frames.append([code, regs, pc, ins[1]])
                    if len(m.frames) > _STACK_LIMIT:
                        raise VMError(_STACK_OVERFLOW)
                    code = callee
                    m._scratch_roots = [closure]
                    regs = m._make_regs(callee, args, closure)
                    m._scratch_roots = []
                    instructions = code.instructions
                    fused = self._fused_table(code)
                    pc = 0
                elif op == isa.TAILCALL or op == isa.TAILL:
                    if op == isa.TAILCALL:
                        closure = regs[ins[1]]
                        code_id = m._closure_code_id(closure)
                        if code_id == _ESCAPE_CODE:
                            args = [regs[r] for r in ins[2]]
                            frame = m._unwind(closure, args)
                            code, regs, pc = frame[0], frame[1], frame[2]
                            instructions = code.instructions
                            fused = self._fused_table(code)
                            continue
                    else:
                        closure = 0
                        code_id = ins[1]
                    args = [regs[r] for r in ins[2]]
                    callee = m.codes[code_id]
                    code = callee
                    m._scratch_roots = [closure] + args
                    m.frames.append([code, regs, pc, -1])
                    new_regs = m._make_regs(callee, args, closure)
                    m.frames.pop()
                    m._scratch_roots = []
                    regs = new_regs
                    instructions = code.instructions
                    fused = self._fused_table(code)
                    pc = 0
                elif op == isa.RET:
                    value = regs[ins[1]]
                    if not m.frames:
                        return m._result(value)
                    frame = m.frames.pop()
                    code, regs, pc, dest = frame[0], frame[1], frame[2], frame[3]
                    instructions = code.instructions
                    fused = self._fused_table(code)
                    regs[dest] = value
                elif op == isa.CALLEC:
                    closure = regs[ins[2]]
                    code_id = m._closure_code_id(closure)
                    if code_id == _ESCAPE_CODE:
                        raise SchemeError(FAIL_MESSAGES[12], closure)
                    callee = m.codes[code_id]
                    m.frames.append([code, regs, pc, ins[1]])
                    if len(m.frames) > _STACK_LIMIT:
                        raise VMError(_STACK_OVERFLOW)
                    depth = len(m.frames)
                    m._scratch_roots = [closure]
                    escape = m._alloc(2, _CLOSURE_TAG)
                    base = escape & ~7
                    heap.store(base + 8, _ESCAPE_CODE)
                    heap.store(base + 16, depth << 3)  # fixnum-tagged: GC-inert
                    code = callee
                    new_regs = m._make_regs(callee, [escape], closure)
                    m._scratch_roots = []
                    regs = new_regs
                    instructions = code.instructions
                    fused = self._fused_table(code)
                    pc = 0
                elif op == isa.APPLY or op == isa.TAILAPPLY:
                    tail = op == isa.TAILAPPLY
                    freg = ins[2] if not tail else ins[1]
                    lreg = ins[3] if not tail else ins[2]
                    closure = regs[freg]
                    code_id = m._closure_code_id(closure)
                    args = m._unpack_list(regs[lreg])
                    if code_id == _ESCAPE_CODE:
                        frame = m._unwind(closure, args)
                        code, regs, pc = frame[0], frame[1], frame[2]
                        instructions = code.instructions
                        fused = self._fused_table(code)
                        continue
                    callee = m.codes[code_id]
                    if not tail:
                        m.frames.append([code, regs, pc, ins[1]])
                        if len(m.frames) > _STACK_LIMIT:
                            raise VMError(_STACK_OVERFLOW)
                    code = callee
                    m._scratch_roots = [closure] + args
                    m.frames.append([code, regs, pc, -1])
                    new_regs = m._make_regs(callee, args, closure)
                    m.frames.pop()
                    m._scratch_roots = []
                    regs = new_regs
                    instructions = code.instructions
                    fused = self._fused_table(code)
                    pc = 0
                elif op == isa.PUTC:
                    m.output.append(chr(regs[ins[1]] & 0x10FFFF))
                elif op == isa.GETC:
                    if m.input_pos < len(m.input_codes):
                        regs[ins[1]] = m.input_codes[m.input_pos]
                        m.input_pos += 1
                    else:
                        regs[ins[1]] = WORD_MASK
                elif op == isa.PEEKC:
                    if m.input_pos < len(m.input_codes):
                        regs[ins[1]] = m.input_codes[m.input_pos]
                    else:
                        regs[ins[1]] = WORD_MASK
                elif op == isa.REGPTR:
                    heap.register_pointer_tag(regs[ins[1]])
                elif op == isa.REGPAIR:
                    m.registry.register_pair(
                        regs[ins[1]], signed(regs[ins[2]]), signed(regs[ins[3]])
                    )
                elif op == isa.REGNIL:
                    m.registry.register_nil(regs[ins[1]])
                elif op == isa.REGFALSE:
                    m.registry.register_false(regs[ins[1]])
                elif op == isa.FAIL:
                    fail_code = regs[ins[1]]
                    message = FAIL_MESSAGES.get(fail_code, f"runtime failure {fail_code}")
                    raise SchemeError(message)
                elif op == isa.HALT:
                    return m._result(regs[ins[1]])
                else:
                    raise VMError(f"unknown opcode {op}")
        except BudgetExceeded as error:
            # Budget trips suspend rather than abort: capture enough
            # state for Machine.resume to continue the run exactly.
            pending = self._midpair
            self._midpair = None
            rollback = m._overrun_rollback
            m._overrun_rollback = None
            error.trap_pc = pc - 1
            if pending is not None:
                error.trap_opcode = isa.OPCODE_NAMES[pending[0]]
                m._suspension = Suspension(
                    code=code, table=None, regs=regs, pc=pc,
                    pending_op=pending[0], pending=pending,
                )
            else:
                if rollback is not None:
                    error.trap_opcode = isa.OPCODE_NAMES[rollback]
                m._suspension = Suspension(
                    code=code, table=None, regs=regs, pc=pc - 1,
                    rollback_op=rollback,
                )
            raise
        except ReproError as error:
            if error.trap_pc is None:
                error.trap_pc = pc - 1
                error.trap_opcode = isa.opcode_name(instructions[pc - 1][0])
            raise


# ----------------------------------------------------------------------
# threaded dispatch
# ----------------------------------------------------------------------


class ThreadedEngine(Engine):
    """Closure-threaded dispatch.

    Handler protocol: ``handler(regs) -> next_pc | None``.  An int is
    the next pc *within the current code object*; ``None`` means the
    control state changed (call, return, unwind, or halt) and the outer
    loop must reload ``self._state`` — or finish, when
    ``self._halted`` is set.

    Frames pushed by call handlers carry the caller's handler table as
    a fifth element so returns do not need a table lookup.
    """

    name = "threaded"

    def __init__(self, machine):
        super().__init__(machine)
        self._tables: dict[int, list] = {}
        self._code_of: dict[int, isa.CodeObject] = {}
        #: pending control transfer: [handler table, regs, pc].  A slot
        #: list (not attributes) because handlers write it on every
        #: call/return and list stores are markedly cheaper.
        self._state: list = [None, None, 0]
        self._halted = False
        self._value = 0
        # the charged-but-unexecuted second half of a fused pair whose
        # budget tripped between the halves: (base opcode, executor)
        self._pending_exec: tuple | None = None

    def heap_changed(self):
        # every built handler closes over the old heap's mem/bump/bins
        self._tables.clear()
        self._code_of.clear()

    def cache_stats(self) -> dict:
        return {
            "handler_tables": len(self._tables),
            "handlers_built": sum(
                1
                for table in self._tables.values()
                for handler in table
                if handler is not None
            ),
        }

    def run(self):
        m = self.m
        main = m.codes[m.program.main_id]
        return self._loop(self._table(main), [0] * main.nregs, 0)

    def resume(self, suspension):
        m = self.m
        regs = suspension.regs
        pc = suspension.pc
        if suspension.rollback_op is not None:
            # The trip instruction was charged but never executed: undo
            # the charge (one step, one dispatch) and re-dispatch it.
            op = suspension.rollback_op
            m.counts[op] -= 1
            m.steps -= 1
            m.dispatches -= 1
        elif suspension.pending is not None:
            # Mid-fused-pair trip: the second half is already charged;
            # its executor returns the next pc (fall-through or taken
            # branch), so running it here re-charges nothing.
            pc = suspension.pending(regs)
        return self._loop(suspension.table, regs, pc)

    def _loop(self, handlers, regs, pc):
        m = self.m
        self._halted = False
        while True:
            try:
                target = handlers[pc](regs)
            except TypeError:
                # A ``None`` slot: this instruction has never executed.
                # Build its handler now and re-dispatch.  Exceptions are
                # zero-cost until raised (3.11+), so lazy construction
                # adds nothing to the hot path.
                if handlers[pc] is not None:
                    raise
                code = self._code_of[id(handlers)]
                handlers[pc] = self._make_handler(
                    code, pc, code.instructions[pc], handlers
                )
                continue
            except BudgetExceeded as error:
                # Budget trips suspend rather than abort: capture
                # enough state for Machine.resume to continue exactly.
                pending = self._pending_exec
                self._pending_exec = None
                rollback = m._overrun_rollback
                m._overrun_rollback = None
                error.trap_pc = pc
                code = self._code_of.get(id(handlers))
                if pending is not None:
                    pending_op, pending_exec = pending
                    error.trap_opcode = isa.OPCODE_NAMES[pending_op]
                    m._suspension = Suspension(
                        code=code, table=handlers, regs=regs, pc=pc + 1,
                        pending_op=pending_op, pending=pending_exec,
                    )
                else:
                    if rollback is not None:
                        error.trap_opcode = isa.OPCODE_NAMES[rollback]
                    m._suspension = Suspension(
                        code=code, table=handlers, regs=regs, pc=pc,
                        rollback_op=rollback,
                    )
                raise
            except ReproError as error:
                if error.trap_pc is None:
                    error.trap_pc = pc
                    code = self._code_of.get(id(handlers))
                    if code is not None:
                        error.trap_opcode = isa.opcode_name(
                            code.instructions[pc][0]
                        )
                raise
            if target is not None:
                pc = target
            elif self._halted:
                return m._result(self._value)
            else:
                state = self._state
                handlers = state[0]
                regs = state[1]
                pc = state[2]

    # -- handler-table construction ------------------------------------

    def _table(self, code: isa.CodeObject) -> list:
        """The handler table for ``code`` — slots fill in on first use."""
        key = id(code)
        table = self._tables.get(key)
        if table is None:
            table = [None] * len(code.instructions)
            self._tables[key] = table
            self._code_of[id(table)] = code
        return table

    def _transfer(self, frame: list) -> None:
        """Load engine state from a popped frame (RET/unwind target)."""
        state = self._state
        state[0] = frame[4] if len(frame) > 4 else self._table(frame[0])
        state[1] = frame[1]
        state[2] = frame[2]

    def _make_handler(self, code, pc, ins, table):
        executor = self._build_exec(code, pc, ins, table)
        if not self.m.count_instructions:
            return executor
        m = self.m
        op = ins[0]
        if op < isa.FIRST_FUSED:

            def counted(regs, m=m, op=op, executor=executor):
                m.dispatches += 1
                m._count_step(op)
                return executor(regs)

            return counted
        first, second = isa.decompose(ins)
        op1, op2 = first[0], second[0]
        exec1 = self._build_exec(code, pc, first, table)
        exec2 = self._build_exec(code, pc, second, table)

        def counted_fused(
            regs, m=m, op1=op1, op2=op2, exec1=exec1, exec2=exec2, eng=self
        ):
            m.dispatches += 1
            m._count_step(op1)
            exec1(regs)
            try:
                m._count_step(op2)
            except BudgetExceeded:
                # First half executed, second charged but not executed:
                # hand its executor to the suspension (see _loop).
                eng._pending_exec = (op2, exec2)
                raise
            return exec2(regs)

        return counted_fused

    def _build_exec(self, code, pc, ins, table):
        """Build the uncounted executor closure for one instruction."""
        m = self.m
        heap = m.heap
        state = self._state
        op = ins[0]
        nxt = pc + 1

        if op >= isa.FIRST_FUSED:
            maker = _FUSED_MAKERS[op]
            if maker is not None:
                return maker(*ins[1:], nxt, heap)
            first, second = isa.decompose(ins)
            exec1 = self._build_exec(code, pc, first, table)
            exec2 = self._build_exec(code, pc, second, table)

            def h_fused(regs, exec1=exec1, exec2=exec2):
                exec1(regs)
                return exec2(regs)

            return h_fused

        maker = _SINGLE_MAKERS.get(op)
        if maker is not None:
            return maker(*ins[1:], nxt, heap)

        if op == isa.JMP:
            target = ins[1]

            def h_jmp(regs, target=target):
                return target

            return h_jmp
        if op == isa.DIV:
            d, a, b = ins[1], ins[2], ins[3]

            def h_div(regs, d=d, a=a, b=b, nxt=nxt, m=m):
                regs[d] = m._div(regs[a], regs[b])
                return nxt

            return h_div
        if op == isa.MOD:
            d, a, b = ins[1], ins[2], ins[3]

            def h_mod(regs, d=d, a=a, b=b, nxt=nxt, m=m):
                regs[d] = m._mod(regs[a], regs[b])
                return nxt

            return h_mod

        # -- memory and globals -----------------------------------------
        # ALLOC/ALLOCI handlers bind the heap's bump region (and, for
        # static small sizes, the exact-fit bin) at build time: the
        # two-slot bump list, the bin lists, `heap.mem`, and
        # `heap.blocks` are identity-stable across collections.  A
        # fast-path hit cannot trigger GC, so no frame rooting is
        # needed; overflow falls back to the general allocator.
        # Fault-injecting heaps must observe every allocation, so they
        # disable the inline bump *and* bin paths wholesale.
        bump = getattr(heap, "bump", None)
        if bump is not None and getattr(heap, "fault_injection", False):
            bump = None
        if op == isa.ALLOC:
            d, sn, st = ins[1], ins[2], ins[3]
            if bump is not None:
                mem = heap.mem

                def h_alloc_fast(
                    regs, d=d, sn=sn, st=st, nxt=nxt, m=m, code=code,
                    bump=bump, mem=mem,
                ):
                    # Bump-span registration is deferred to
                    # heap.sync_allocations(): the fast path only
                    # advances the pointer and writes the header.
                    nwords = regs[sn]
                    total = nwords + 1
                    base = bump[0]
                    if base + total <= bump[1]:
                        bump[0] = base + total
                        mem[base] = nwords
                        if nwords:
                            mem[base + 1 : base + total] = (
                                ZEROS[nwords] if nwords < _NZEROS else [0] * nwords
                            )
                        regs[d] = (base << 3) | (regs[st] & 7)
                        return nxt
                    m.frames.append([code, regs, nxt, -1])
                    regs[d] = m._alloc(nwords, regs[st] & 7)
                    m.frames.pop()
                    return nxt

                return h_alloc_fast

            def h_alloc(regs, d=d, sn=sn, st=st, nxt=nxt, m=m, code=code):
                m.frames.append([code, regs, nxt, -1])
                regs[d] = m._alloc(regs[sn], regs[st] & 7)
                m.frames.pop()
                return nxt

            return h_alloc
        if op == isa.ALLOCI:
            d, nwords, tag = ins[1], ins[2], ins[3]
            if bump is not None and 0 <= nwords:
                total = nwords + 1
                tagbits = tag & 7
                mem = heap.mem
                blocks = heap.blocks
                bin_list = (
                    heap.bins[nwords] if nwords <= MAX_BIN_PAYLOAD else None
                )
                zeros = ZEROS[nwords] if nwords < _NZEROS else [0] * nwords

                if nwords == 2:
                    # Pairs (and two-word cells) dominate allocation;
                    # a dedicated handler with unrolled zero stores
                    # beats the general slice-assignment path.  The
                    # untagged base is below 2^61, so no masking.  On
                    # the bump path, registration is deferred to
                    # heap.sync_allocations(); a bin hit registers
                    # eagerly (its base is outside the bump span).
                    def h_alloci_pair(
                        regs, d=d, tagbits=tagbits, nxt=nxt, m=m,
                        code=code, bump=bump, mem=mem, blocks=blocks,
                        bin_list=bin_list, heap=heap, tag=tag,
                    ):
                        base = bump[0]
                        if base + 3 <= bump[1]:
                            bump[0] = base + 3
                            mem[base] = 2
                            mem[base + 1] = 0
                            mem[base + 2] = 0
                            regs[d] = (base << 3) | tagbits
                            return nxt
                        if bin_list:
                            base = bin_list.pop()
                            mem[base] = 2
                            mem[base + 1] = 0
                            mem[base + 2] = 0
                            blocks[base] = 2
                            heap.words_allocated += 3
                            regs[d] = (base << 3) | tagbits
                            return nxt
                        m.frames.append([code, regs, nxt, -1])
                        regs[d] = m._alloc(2, tag)
                        m.frames.pop()
                        return nxt

                    return h_alloci_pair

                def h_alloci_fast(
                    regs, d=d, nwords=nwords, total=total, tagbits=tagbits,
                    nxt=nxt, m=m, code=code, bump=bump, mem=mem,
                    blocks=blocks, bin_list=bin_list, zeros=zeros, heap=heap,
                    tag=tag,
                ):
                    base = bump[0]
                    if base + total <= bump[1]:
                        bump[0] = base + total
                        mem[base] = nwords
                        if nwords:
                            mem[base + 1 : base + total] = zeros
                        regs[d] = (base << 3) | tagbits
                        return nxt
                    if bin_list:
                        base = bin_list.pop()
                        mem[base] = nwords
                        if nwords:
                            mem[base + 1 : base + total] = zeros
                        blocks[base] = nwords
                        heap.words_allocated += total
                        regs[d] = (base << 3) | tagbits
                        return nxt
                    m.frames.append([code, regs, nxt, -1])
                    regs[d] = m._alloc(nwords, tag)
                    m.frames.pop()
                    return nxt

                return h_alloci_fast

            def h_alloci(regs, d=d, nwords=nwords, tag=tag, nxt=nxt, m=m, code=code):
                m.frames.append([code, regs, nxt, -1])
                regs[d] = m._alloc(nwords, tag)
                m.frames.pop()
                return nxt

            return h_alloci
        if op == isa.GLD:
            d, index = ins[1], ins[2]

            def h_gld(regs, d=d, index=index, nxt=nxt, m=m):
                if not m.global_defined[index]:
                    raise VMError(
                        f"undefined global variable "
                        f"{m.program.global_names[index]!r}"
                    )
                regs[d] = m.globals[index]
                return nxt

            return h_gld
        if op == isa.GST:
            s, index = ins[1], ins[2]

            def h_gst(regs, s=s, index=index, nxt=nxt, m=m):
                m.globals[index] = regs[s]
                m.global_defined[index] = 1
                return nxt

            return h_gst
        if op == isa.CLOSURE:
            d, code_id, free_regs = ins[1], ins[2], tuple(ins[3])

            def h_closure(
                regs, d=d, code_id=code_id, free_regs=free_regs,
                nxt=nxt, m=m, code=code, heap=heap,
            ):
                m.frames.append([code, regs, nxt, -1])
                pointer = m._alloc(1 + len(free_regs), _CLOSURE_TAG)
                m.frames.pop()
                base = pointer & ~7
                heap.store(base + 8, code_id)
                for i, reg in enumerate(free_regs):
                    heap.store(base + 16 + 8 * i, regs[reg])
                regs[d] = pointer
                return nxt

            return h_closure

        # -- calls and returns -------------------------------------------
        if op == isa.CALL:
            dest, freg, arg_regs = ins[1], ins[2], tuple(ins[3])
            nargs = len(arg_regs)

            def h_call(
                regs, dest=dest, freg=freg, arg_regs=arg_regs,
                nargs=nargs, nxt=nxt, m=m, code=code, table=table,
            ):
                closure = regs[freg]
                code_id = m._closure_code_id(closure)
                args = [regs[r] for r in arg_regs]
                if code_id == _ESCAPE_CODE:
                    self._transfer(m._unwind(closure, args))
                    return None
                callee = m.codes[code_id]
                m.frames.append([code, regs, nxt, dest, table])
                if len(m.frames) > _STACK_LIMIT:
                    raise VMError(_STACK_OVERFLOW)
                if callee.has_rest or callee.nparams != nargs:
                    # may cons a rest list (can GC): root and go general
                    m._scratch_roots = [closure]
                    new_regs = m._make_regs(callee, args, closure)
                    m._scratch_roots = []
                elif callee.nfree:
                    args.append(closure)
                    args.extend([0] * (callee.nregs - nargs - 1))
                    new_regs = args
                else:
                    args.extend([0] * (callee.nregs - nargs))
                    new_regs = args
                state[0] = self._table(callee)
                state[1] = new_regs
                state[2] = 0
                return None

            return h_call
        if op == isa.CALLL:
            dest, code_id, arg_regs = ins[1], ins[2], tuple(ins[3])
            callee = m.codes[code_id]
            # tables are just lazily-filled slot lists, so the callee's
            # can be resolved at build time
            callee_table = self._table(callee)
            if not callee.has_rest and callee.nparams == len(arg_regs):
                # arity verified at build time; no rest list means no
                # allocation, so no GC rooting is needed either
                pad = callee.nregs - len(arg_regs)

                def h_calll(
                    regs, dest=dest, arg_regs=arg_regs, pad=pad, nxt=nxt,
                    m=m, code=code, table=table, callee_table=callee_table,
                ):
                    new_regs = [regs[r] for r in arg_regs]
                    if pad:
                        new_regs.extend([0] * pad)
                    m.frames.append([code, regs, nxt, dest, table])
                    if len(m.frames) > _STACK_LIMIT:
                        raise VMError(_STACK_OVERFLOW)
                    state[0] = callee_table
                    state[1] = new_regs
                    state[2] = 0
                    return None

                return h_calll

            def h_calll_rest(
                regs, dest=dest, arg_regs=arg_regs, callee=callee, nxt=nxt,
                m=m, code=code, table=table, callee_table=callee_table,
            ):
                args = [regs[r] for r in arg_regs]
                m.frames.append([code, regs, nxt, dest, table])
                if len(m.frames) > _STACK_LIMIT:
                    raise VMError(_STACK_OVERFLOW)
                m._scratch_roots = [0]
                new_regs = m._make_regs(callee, args, 0)
                m._scratch_roots = []
                state[0] = callee_table
                state[1] = new_regs
                state[2] = 0
                return None

            return h_calll_rest
        if op == isa.TAILCALL:
            freg, arg_regs = ins[1], tuple(ins[2])
            nargs = len(arg_regs)

            def h_tailcall(
                regs, freg=freg, arg_regs=arg_regs, nargs=nargs,
                nxt=nxt, m=m, code=code,
            ):
                closure = regs[freg]
                code_id = m._closure_code_id(closure)
                args = [regs[r] for r in arg_regs]
                if code_id == _ESCAPE_CODE:
                    self._transfer(m._unwind(closure, args))
                    return None
                callee = m.codes[code_id]
                if callee.has_rest or callee.nparams != nargs:
                    m._scratch_roots = [closure] + args
                    m.frames.append([callee, regs, nxt, -1])
                    new_regs = m._make_regs(callee, args, closure)
                    m.frames.pop()
                    m._scratch_roots = []
                elif callee.nfree:
                    args.append(closure)
                    args.extend([0] * (callee.nregs - nargs - 1))
                    new_regs = args
                else:
                    args.extend([0] * (callee.nregs - nargs))
                    new_regs = args
                state[0] = self._table(callee)
                state[1] = new_regs
                state[2] = 0
                return None

            return h_tailcall
        if op == isa.TAILL:
            code_id, arg_regs = ins[1], tuple(ins[2])
            callee = m.codes[code_id]
            callee_table = self._table(callee)
            if not callee.has_rest and callee.nparams == len(arg_regs):
                pad = callee.nregs - len(arg_regs)

                def h_taill(
                    regs, arg_regs=arg_regs, pad=pad,
                    callee_table=callee_table,
                ):
                    new_regs = [regs[r] for r in arg_regs]
                    if pad:
                        new_regs.extend([0] * pad)
                    state[0] = callee_table
                    state[1] = new_regs
                    state[2] = 0
                    return None

                return h_taill

            def h_taill_rest(
                regs, arg_regs=arg_regs, callee=callee, nxt=nxt, m=m,
                callee_table=callee_table,
            ):
                args = [regs[r] for r in arg_regs]
                m._scratch_roots = [0] + args
                m.frames.append([callee, regs, nxt, -1])
                new_regs = m._make_regs(callee, args, 0)
                m.frames.pop()
                m._scratch_roots = []
                state[0] = callee_table
                state[1] = new_regs
                state[2] = 0
                return None

            return h_taill_rest
        if op == isa.RET:
            s = ins[1]

            def h_ret(regs, s=s, m=m):
                value = regs[s]
                if not m.frames:
                    self._halted = True
                    self._value = value
                    return None
                # call-family frames always carry the caller's table
                frame = m.frames.pop()
                frame[1][frame[3]] = value
                state[0] = frame[4]
                state[1] = frame[1]
                state[2] = frame[2]
                return None

            return h_ret
        if op == isa.CALLEC:
            dest, freg = ins[1], ins[2]

            def h_callec(
                regs, dest=dest, freg=freg, nxt=nxt, m=m, code=code,
                table=table, heap=heap,
            ):
                closure = regs[freg]
                code_id = m._closure_code_id(closure)
                if code_id == _ESCAPE_CODE:
                    raise SchemeError(FAIL_MESSAGES[12], closure)
                callee = m.codes[code_id]
                m.frames.append([code, regs, nxt, dest, table])
                if len(m.frames) > _STACK_LIMIT:
                    raise VMError(_STACK_OVERFLOW)
                depth = len(m.frames)
                m._scratch_roots = [closure]
                escape = m._alloc(2, _CLOSURE_TAG)
                base = escape & ~7
                heap.store(base + 8, _ESCAPE_CODE)
                heap.store(base + 16, depth << 3)  # fixnum-tagged: GC-inert
                new_regs = m._make_regs(callee, [escape], closure)
                m._scratch_roots = []
                state[0] = self._table(callee)
                state[1] = new_regs
                state[2] = 0
                return None

            return h_callec
        if op in (isa.APPLY, isa.TAILAPPLY):
            tail = op == isa.TAILAPPLY
            if tail:
                dest, freg, lreg = -1, ins[1], ins[2]
            else:
                dest, freg, lreg = ins[1], ins[2], ins[3]

            def h_apply(
                regs, tail=tail, dest=dest, freg=freg, lreg=lreg,
                nxt=nxt, m=m, code=code, table=table,
            ):
                closure = regs[freg]
                code_id = m._closure_code_id(closure)
                args = m._unpack_list(regs[lreg])
                if code_id == _ESCAPE_CODE:
                    self._transfer(m._unwind(closure, args))
                    return None
                callee = m.codes[code_id]
                if not tail:
                    m.frames.append([code, regs, nxt, dest, table])
                    if len(m.frames) > _STACK_LIMIT:
                        raise VMError(_STACK_OVERFLOW)
                m._scratch_roots = [closure] + args
                m.frames.append([callee, regs, nxt, -1])
                new_regs = m._make_regs(callee, args, closure)
                m.frames.pop()
                m._scratch_roots = []
                state[0] = self._table(callee)
                state[1] = new_regs
                state[2] = 0
                return None

            return h_apply

        # -- I/O, registry, termination ----------------------------------
        if op == isa.PUTC:
            s = ins[1]

            def h_putc(regs, s=s, nxt=nxt, m=m):
                m.output.append(chr(regs[s] & 0x10FFFF))
                return nxt

            return h_putc
        if op == isa.GETC:
            d = ins[1]

            def h_getc(regs, d=d, nxt=nxt, m=m):
                if m.input_pos < len(m.input_codes):
                    regs[d] = m.input_codes[m.input_pos]
                    m.input_pos += 1
                else:
                    regs[d] = WORD_MASK
                return nxt

            return h_getc
        if op == isa.PEEKC:
            d = ins[1]

            def h_peekc(regs, d=d, nxt=nxt, m=m):
                if m.input_pos < len(m.input_codes):
                    regs[d] = m.input_codes[m.input_pos]
                else:
                    regs[d] = WORD_MASK
                return nxt

            return h_peekc
        if op == isa.REGPTR:
            s = ins[1]

            def h_regptr(regs, s=s, nxt=nxt, heap=heap):
                heap.register_pointer_tag(regs[s])
                return nxt

            return h_regptr
        if op == isa.REGPAIR:
            a, b, c = ins[1], ins[2], ins[3]

            def h_regpair(regs, a=a, b=b, c=c, nxt=nxt, m=m):
                m.registry.register_pair(regs[a], signed(regs[b]), signed(regs[c]))
                return nxt

            return h_regpair
        if op == isa.REGNIL:
            s = ins[1]

            def h_regnil(regs, s=s, nxt=nxt, m=m):
                m.registry.register_nil(regs[s])
                return nxt

            return h_regnil
        if op == isa.REGFALSE:
            s = ins[1]

            def h_regfalse(regs, s=s, nxt=nxt, m=m):
                m.registry.register_false(regs[s])
                return nxt

            return h_regfalse
        if op == isa.FAIL:
            s = ins[1]

            def h_fail(regs, s=s):
                fail_code = regs[s]
                message = FAIL_MESSAGES.get(
                    fail_code, f"runtime failure {fail_code}"
                )
                raise SchemeError(message)

            return h_fail
        if op == isa.HALT:
            s = ins[1]

            def h_halt(regs, s=s):
                self._halted = True
                self._value = regs[s]
                return None

            return h_halt

        def h_unknown(regs, op=op):
            raise VMError(f"unknown opcode {op}")

        return h_unknown


# ----------------------------------------------------------------------
# compile-to-Python dispatch
# ----------------------------------------------------------------------


class CompiledEngine(Engine):
    """Compile-to-Python execution: one emitted function per code object.

    ``vm.codegen`` turns each code object into real Python source (a
    ``while``-loop body with a binary entry tree over basic blocks and
    every instruction inlined with literal operands), ``exec``s it, and
    this engine trampolines between the resulting functions.  Emitted
    functions follow one protocol: ``fn(regs, pc)`` executes until
    control leaves the code object; it either sets ``_halted``/``_value``
    and returns, or writes ``[next fn, next regs, next pc]`` into
    ``self._state`` and returns.  Faulting instructions record their pc
    in the one-slot ``self._fpc`` first, which is how traps and budget
    suspensions are attributed exactly like the interpreters.

    Functions are cached keyed on ``(id(code object), CodegenOptions)``;
    ``CodegenOptions`` captures everything the emitted source bakes in
    (step counting, fault injection, heap inlining, emit hints), so
    toggling any of those compiles a fresh variant instead of reusing a
    stale one.  ``heap_changed`` drops the whole cache — the emitted
    code binds ``heap.mem``/``heap.bump`` and the bound ``load``/
    ``store``/``_alloc`` methods by identity, exactly the bug class
    handler tables have.
    """

    name = "compiled"

    def __init__(self, machine):
        super().__init__(machine)
        # (id(code), CodegenOptions) -> emitted function / source text
        self._fns: dict = {}
        self._sources: dict = {}
        # id(function) -> code object, for trap attribution
        self._fn_code: dict = {}
        # (id(code), CodegenOptions) -> one-slot [fn | None] cell, bound
        # into callers at emit time for monomorphic direct calls
        self._cells: dict = {}
        # CodegenOptions -> {code id -> emitted function}: the indirect
        # call inline cache, bound into emitted code as ``FC`` so hot
        # CALL/TAILCALL sites skip the keyed-cache lookup entirely
        self._id_fns: dict = {}
        self._code_index: dict | None = None
        #: pending control transfer: [function, regs, pc]
        self._state: list = [None, None, 0]
        #: pc of the last faulting instruction in the running function
        self._fpc: list = [0]
        self._halted = False
        self._value = 0
        # the charged-but-unexecuted second half of a fused pair whose
        # budget tripped between the halves: (base opcode, executor)
        self._pending: tuple | None = None
        self._active = None  # CodegenOptions for the current run
        self.cache_hits = 0
        self.cache_misses = 0

    def heap_changed(self):
        # emitted functions bind mem/bump and the heap's bound methods
        self._fns.clear()
        self._sources.clear()
        self._fn_code.clear()
        self._cells.clear()
        self._id_fns.clear()

    def cache_stats(self) -> dict:
        return {
            "functions_emitted": self.cache_misses,
            "functions_cached": len(self._fns),
            "cache_hits": self.cache_hits,
            "source_lines": sum(
                source.count("\n") for source in self._sources.values()
            ),
        }

    # -- function cache -------------------------------------------------

    def _options(self):
        from .codegen import CodegenOptions

        m = self.m
        heap = m.heap
        fault = bool(getattr(heap, "fault_injection", False))
        return CodegenOptions(
            counted=bool(m.count_instructions),
            fault_injection=fault,
            inline_heap=getattr(heap, "bump", None) is not None and not fault,
        )

    def _function(self, code):
        key = (id(code), self._active)
        fn = self._fns.get(key)
        if fn is not None:
            self.cache_hits += 1
            return fn
        from .codegen import compile_function

        self.cache_misses += 1
        fn, source = compile_function(code, self._active, self.m, self)
        self._fns[key] = fn
        self._sources[key] = source
        self._fn_code[id(fn)] = code
        self._fn_cell(code)[0] = fn
        index = self._code_index
        if index is None:
            index = self._code_index = {
                id(c): i for i, c in enumerate(self.m.codes)
            }
        code_id = index.get(id(code))
        if code_id is not None:
            self._id_fns_for(self._active)[code_id] = fn
        return fn

    def _id_fns_for(self, options) -> dict:
        """The {code id -> function} map for one options variant.

        One stable dict per variant: emitted code binds it by identity
        (as ``FC``), so entries added by later compilations are visible
        to every already-emitted call site.
        """
        table = self._id_fns.get(options)
        if table is None:
            table = {}
            self._id_fns[options] = table
        return table

    def _fn_cell(self, code) -> list:
        key = (id(code), self._active)
        cell = self._cells.get(key)
        if cell is None:
            cell = [None]
            self._cells[key] = cell
        return cell

    def compiled_source(self, code) -> str:
        """The Python source emitted for ``code`` under current options."""
        self._active = self._options()
        self._function(code)
        return self._sources[(id(code), self._active)]

    # -- emitted-code helpers (called from generated source) ------------

    def _transfer(self, frame: list) -> None:
        """Load engine state from a popped frame (RET/unwind target)."""
        state = self._state
        state[0] = frame[4] if len(frame) > 4 else self._function(frame[0])
        state[1] = frame[1]
        state[2] = frame[2]

    def _overflow(self):
        raise VMError(_STACK_OVERFLOW)

    def _undef(self, index: int):
        raise VMError(
            f"undefined global variable {self.m.program.global_names[index]!r}"
        )

    def _not_proc(self, closure: int):
        raise SchemeError(FAIL_MESSAGES[12], closure)

    def _fail(self, fail_code: int):
        raise SchemeError(
            FAIL_MESSAGES.get(fail_code, f"runtime failure {fail_code}")
        )

    def _unknown(self, op: int):
        raise VMError(f"unknown opcode {op}")

    # -- the trampoline -------------------------------------------------

    def run(self):
        m = self.m
        self._active = self._options()
        main = m.codes[m.program.main_id]
        return self._loop(self._function(main), [0] * main.nregs, 0)

    def resume(self, suspension):
        m = self.m
        self._active = self._options()
        regs = suspension.regs
        pc = suspension.pc
        if suspension.rollback_op is not None:
            # The trip instruction was charged but never executed: undo
            # the charge (one step, one dispatch) and re-dispatch it.
            op = suspension.rollback_op
            m.counts[op] -= 1
            m.steps -= 1
            m.dispatches -= 1
        elif suspension.pending is not None:
            # Mid-fused-pair trip: the second half is already charged;
            # its executor returns the next pc (fall-through or taken
            # branch), so running it here re-charges nothing.
            pc = suspension.pending(regs)
        return self._loop(self._function(suspension.code), regs, pc)

    def _loop(self, fn, regs, pc):
        m = self.m
        state = self._state
        self._halted = False
        while True:
            try:
                fn(regs, pc)
            except BudgetExceeded as error:
                # Budget trips suspend rather than abort: capture
                # enough state for Machine.resume to continue exactly.
                pending = self._pending
                self._pending = None
                rollback = m._overrun_rollback
                m._overrun_rollback = None
                fault_pc = self._fpc[0]
                error.trap_pc = fault_pc
                code = self._fn_code.get(id(fn))
                if pending is not None:
                    pending_op, pending_exec = pending
                    error.trap_opcode = isa.OPCODE_NAMES[pending_op]
                    m._suspension = Suspension(
                        code=code, table=None, regs=regs, pc=fault_pc + 1,
                        pending_op=pending_op, pending=pending_exec,
                    )
                else:
                    if rollback is not None:
                        error.trap_opcode = isa.OPCODE_NAMES[rollback]
                    m._suspension = Suspension(
                        code=code, table=None, regs=regs, pc=fault_pc,
                        rollback_op=rollback,
                    )
                raise
            except ReproError as error:
                if error.trap_pc is None:
                    fault_pc = self._fpc[0]
                    error.trap_pc = fault_pc
                    code = self._fn_code.get(id(fn))
                    if code is not None and fault_pc < len(code.instructions):
                        error.trap_opcode = isa.opcode_name(
                            code.instructions[fault_pc][0]
                        )
                raise
            if self._halted:
                return m._result(self._value)
            fn = state[0]
            regs = state[1]
            pc = state[2]


# ----------------------------------------------------------------------
# engine registry
# ----------------------------------------------------------------------

ENGINES: dict[str, type[Engine]] = {
    NaiveEngine.name: NaiveEngine,
    ThreadedEngine.name: ThreadedEngine,
    CompiledEngine.name: CompiledEngine,
}

DEFAULT_ENGINE = NaiveEngine.name


def default_engine_name() -> str:
    """The engine used when none is requested (REPRO_VM_ENGINE or naive)."""
    name = os.environ.get("REPRO_VM_ENGINE", "").strip()
    if name and name not in ENGINES:
        print(
            f"warning: ignoring REPRO_VM_ENGINE={name!r} "
            f"(available: {', '.join(sorted(ENGINES))})",
            file=sys.stderr,
        )
        return DEFAULT_ENGINE
    return name if name in ENGINES else DEFAULT_ENGINE


def create_engine(name: str | None, machine) -> Engine:
    """Instantiate the engine ``name`` (or the default) for ``machine``.

    Hot-pair profiling hooks live in the naive loop only, so
    ``Machine(profile=True)`` always executes on the naive engine.
    """
    if machine.profile:
        return NaiveEngine(machine)
    if name is None:
        name = default_engine_name()
    engine_class = ENGINES.get(name)
    if engine_class is None:
        raise ValueError(
            f"unknown VM engine {name!r}; available: {', '.join(sorted(ENGINES))}"
        )
    return engine_class(machine)
