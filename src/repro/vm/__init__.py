"""The virtual machine substrate."""

from . import isa
from .heap import Heap
from .machine import FAIL_MESSAGES, Machine, RunResult
from .registry import TypeRegistry

__all__ = [
    "FAIL_MESSAGES",
    "Heap",
    "Machine",
    "RunResult",
    "TypeRegistry",
    "isa",
]
