"""The virtual machine substrate."""

from . import isa
from .budget import BUDGET_CHECK_INTERVAL, Budget, TrapInfo
from .engine import ENGINES, create_engine, default_engine_name
from .faultinject import (
    FaultInjectingHeap,
    FaultSchedule,
    SweepReport,
    sweep_program,
    sweep_source,
)
from .heap import Heap
from .machine import FAIL_MESSAGES, Machine, RunResult
from .profile import ProfileReport, build_report, profile_program
from .registry import TypeRegistry

__all__ = [
    "BUDGET_CHECK_INTERVAL",
    "Budget",
    "ENGINES",
    "FAIL_MESSAGES",
    "FaultInjectingHeap",
    "FaultSchedule",
    "Heap",
    "Machine",
    "ProfileReport",
    "RunResult",
    "SweepReport",
    "TrapInfo",
    "TypeRegistry",
    "build_report",
    "create_engine",
    "default_engine_name",
    "isa",
    "profile_program",
    "sweep_program",
    "sweep_source",
]
