"""The virtual machine substrate."""

from . import isa
from .engine import ENGINES, create_engine, default_engine_name
from .heap import Heap
from .machine import FAIL_MESSAGES, Machine, RunResult
from .profile import ProfileReport, build_report, profile_program
from .registry import TypeRegistry

__all__ = [
    "ENGINES",
    "FAIL_MESSAGES",
    "Heap",
    "Machine",
    "ProfileReport",
    "RunResult",
    "TypeRegistry",
    "build_report",
    "create_engine",
    "default_engine_name",
    "isa",
    "profile_program",
]
