"""The VM heap: linear word memory with conservative mark-sweep GC.

Layout: the heap is a Python list of 64-bit words; byte address =
word index * 8.  A block of N payload words occupies N+1 words; the
header word (at the block base) stores the payload size.  Pointers are
``base_byte_address | tag`` where the base addresses the header, so a
block's field *i* lives at byte displacement ``8*(i+1) - tag`` from the
tagged pointer — precisely the constant the representation library
computes and the optimizer folds.

GC is conservative mark-sweep: a root word is treated as a pointer when
its low tag is a *registered pointer tag* and the untagged address is a
live block base.  Conservatism is required because optimized code may
hold raw untagged intermediates in registers across an allocation; a
misidentified integer can only retain garbage, never corrupt, because
nothing moves.

The allocator (see docs/INTERNALS.md §10) is built for throughput:

* **Bump region** — the common path is a two-int compare-and-add into a
  contiguous region; the execution engines inline it directly into
  their ALLOC/ALLOCI handlers.  ``self.bump`` is a two-slot list
  ``[pointer, limit]`` whose *identity never changes*, so handlers can
  bind it once.
* **Size-class free lists** — exact-fit bins for payloads of 0–16 words
  (pairs, cells, closures, small vectors), popped in O(1).  Bin lists
  also keep their identity so threaded handlers can bind them.
* **Lazy sweep** — a collection only marks (into a ``bytearray`` mark
  bitmap) and unlinks dead blocks onto a pending queue; dead space is
  binned incrementally, on allocation demand, instead of re-sorting the
  whole heap into an address-ordered free list on every collection.
* **Occupancy trigger** — with ``gc_occupancy=T`` the bump limit is
  capped so a collection happens near ``T`` heap occupancy instead of
  at exhaustion; ``gc_occupancy=None`` restores the legacy
  allocate-until-exhausted policy.  The heap-exhausted fallback (and a
  full coalescing pass as a last resort against fragmentation) is
  preserved in both modes.

Identity invariants relied on by the engines' inline fast paths:
``self.mem``, ``self.blocks``, ``self.bump``, and each ``self.bins[i]``
list are mutated in place, never reassigned.
"""

from __future__ import annotations

import os
import sys
from bisect import bisect_left, insort
from dataclasses import dataclass
from time import perf_counter

from ..errors import HeapExhausted, VMError
from ..prims import WORD_MASK

DEFAULT_HEAP_WORDS = 1 << 20
#: default occupancy fraction at which a collection is triggered
DEFAULT_GC_OCCUPANCY = 0.9
#: largest payload (words) served by an exact-fit bin
MAX_BIN_PAYLOAD = 16
_MAX_BIN_TOTAL = MAX_BIN_PAYLOAD + 1  # bins hold chunks of 1..17 words
#: shared zero slices for the slice-assignment zeroing fast path
ZEROS = [[0] * n for n in range(65)]
_NZEROS = len(ZEROS)


def default_heap_words() -> int:
    """Heap size used when none is requested ($REPRO_HEAP_WORDS or 1M)."""
    raw = os.environ.get("REPRO_HEAP_WORDS", "").strip()
    if raw:
        try:
            value = int(raw, 0)
        except ValueError:
            value = -1
        if value >= 16:
            return value
        print(
            f"warning: ignoring REPRO_HEAP_WORDS={raw!r} "
            f"(need an integer >= 16)",
            file=sys.stderr,
        )
    return DEFAULT_HEAP_WORDS


@dataclass
class GCEvent:
    """Telemetry for one collection."""

    trigger: str  # "occupancy", "exhausted", or "explicit"
    pause_seconds: float
    reclaimed_words: int
    live_words: int  # after the sweep
    free_words: int  # after the sweep


class Heap:
    #: subclasses set this to route *every* allocation through
    #: :meth:`allocate` (the engines then skip their inline bump/bin
    #: fast paths — see repro.vm.faultinject)
    fault_injection = False

    def __init__(
        self,
        size_words: int = DEFAULT_HEAP_WORDS,
        gc_occupancy: float | None = DEFAULT_GC_OCCUPANCY,
    ):
        if size_words < 16:
            raise ValueError("heap too small")
        if gc_occupancy is not None and not (0.0 < gc_occupancy <= 1.0):
            raise ValueError(f"gc_occupancy must be in (0, 1], got {gc_occupancy}")
        self.size_words = size_words
        self.gc_occupancy = gc_occupancy
        self.mem = [0] * size_words
        #: base word-index -> payload word count, for every live block
        self.blocks: dict[int, int] = {}
        #: low tags that the library (or compiler) declared to be pointers
        self.pointer_tags: set[int] = set()
        self._tag_is_ptr = bytearray(8)
        self.gc_count = 0
        self.words_allocated = 0
        # --- allocator structures -------------------------------------
        # word 0 reserved so that byte address 0 is never a valid block
        #: the bump region: [pointer, limit]; identity-stable
        self.bump: list[int] = [1, size_words]
        #: real end of the bump region (the limit may be capped below it
        #: to realise the occupancy trigger)
        self._bump_end = size_words
        #: exact-fit bins: bins[n] holds bases of free n-payload chunks
        self.bins: list[list[int]] = [[] for _ in range(MAX_BIN_PAYLOAD + 1)]
        #: free extents above bin size, as (length, base), length-sorted
        self.large: list[tuple[int, int]] = []
        #: dead blocks awaiting the lazy sweep (bases; size in header)
        self.pending: list[int] = []
        #: start of the bump span whose blocks are not yet registered in
        #: ``self.blocks`` (the engines' inline fast path defers
        #: registration; see :meth:`sync_allocations`)
        self._sync_pos = 1
        #: reusable mark bitmap, indexed by block base word-index
        self._mark = bytearray(size_words)
        #: words_allocated snapshot at the last collection (occupancy
        #: trigger thrash guard)
        self._words_at_gc = 0
        self._gc_min_alloc = max(64, size_words >> 4)
        # --- telemetry ------------------------------------------------
        self.gc_events: list[GCEvent] = []
        self._apply_cap()

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------

    def load(self, byte_address: int) -> int:
        if byte_address & 7:
            raise VMError(f"unaligned load at {byte_address:#x}")
        index = byte_address >> 3
        if not (0 <= index < self.size_words):
            raise VMError(f"load out of heap bounds at {byte_address:#x}")
        return self.mem[index]

    def store(self, byte_address: int, value: int) -> None:
        if byte_address & 7:
            raise VMError(f"unaligned store at {byte_address:#x}")
        index = byte_address >> 3
        if not (0 <= index < self.size_words):
            raise VMError(f"store out of heap bounds at {byte_address:#x}")
        self.mem[index] = value & WORD_MASK

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def allocate(self, nwords: int, tag: int, roots) -> int:
        """Allocate ``nwords`` zeroed payload words; return base|tag.

        ``roots`` is a callable yielding root words, invoked if a
        collection is needed.
        """
        if nwords < 0 or nwords > self.size_words:
            raise VMError(f"bad allocation size {nwords}")
        total = nwords + 1
        bump = self.bump
        base = bump[0]
        if base + total <= bump[1]:
            bump[0] = base + total
        elif nwords <= MAX_BIN_PAYLOAD and self.bins[nwords]:
            base = self.bins[nwords].pop()
        else:
            base = self._allocate_slow(total, roots)
            if base is None:
                raise HeapExhausted(
                    f"heap exhausted allocating {nwords} words "
                    f"({len(self.blocks)} live blocks)"
                )
        mem = self.mem
        mem[base] = nwords
        if nwords:
            mem[base + 1 : base + total] = (
                ZEROS[nwords] if nwords < _NZEROS else [0] * nwords
            )
        self.blocks[base] = nwords
        self.words_allocated += total
        return ((base << 3) | (tag & 7)) & WORD_MASK

    def sync_allocations(self) -> None:
        """Register bump-allocated blocks the engines deferred.

        The engines' inline allocation fast path only advances the bump
        pointer and writes the header word; the ``blocks`` registry and
        the allocation counter are reconstructed here by walking the
        headers of the span bump-allocated since the last sync.  Every
        consumer of complete metadata (collection, the slow allocation
        path, end-of-run statistics) syncs first; eagerly-registered
        blocks inside the span (from direct ``allocate`` calls) are
        detected and not double-counted.
        """
        pos = self._sync_pos
        end = self.bump[0]
        if pos >= end:
            return
        mem = self.mem
        blocks = self.blocks
        blocks_get = blocks.get
        extra = 0
        while pos < end:
            nwords = mem[pos]
            if blocks_get(pos) is None:
                blocks[pos] = nwords
                extra += nwords + 1
            pos += nwords + 1
        self.words_allocated += extra
        self._sync_pos = end

    def _allocate_slow(self, total: int, roots) -> int | None:
        """Everything past the bump/bin fast path.

        Order: lazy-sweep the pending queue, then the large-extent list,
        then (if the bump limit was an occupancy cap) collect or lift
        the cap, then collect on exhaustion, then coalesce the whole
        free space as a last resort against fragmentation.
        """
        self.sync_allocations()
        base = self._sweep_pending(total)
        if base is not None:
            return base
        base = self._take_large(total)
        if base is not None:
            return base
        bump = self.bump
        if bump[1] < self._bump_end:
            # The bump pointer stopped at the occupancy trigger line,
            # not at the end of the region.
            if (
                self.gc_occupancy is not None
                and self.words_allocated - self._words_at_gc >= self._gc_min_alloc
            ):
                self.collect(roots(), trigger="occupancy")
                base = self._retake(total)
                if base is not None:
                    return base
            # Collection didn't help (or too little mutator progress to
            # justify one): consume the reserve instead of thrashing.
            bump[1] = self._bump_end
            base = bump[0]
            if base + total <= bump[1]:
                bump[0] = base + total
                return base
        self.collect(roots(), trigger="exhausted")
        base = self._retake(total)
        if base is not None:
            return base
        self._coalesce()
        self.bump[1] = self._bump_end  # last resort: the reserve too
        return self._retake(total)

    def _retake(self, total: int) -> int | None:
        """Retry every free structure after a collection/coalesce."""
        bump = self.bump
        base = bump[0]
        if base + total <= bump[1]:
            bump[0] = base + total
            return base
        if total <= _MAX_BIN_TOTAL and self.bins[total - 1]:
            return self.bins[total - 1].pop()
        base = self._sweep_pending(total)
        if base is not None:
            return base
        return self._take_large(total)

    def _sweep_pending(self, total: int) -> int | None:
        """Lazy sweep: bin dead blocks until one exactly fits ``total``."""
        pending = self.pending
        mem = self.mem
        bins = self.bins
        while pending:
            base = pending.pop()
            chunk = mem[base] + 1
            if chunk == total:
                return base
            if chunk <= _MAX_BIN_TOTAL:
                bins[chunk - 1].append(base)
            else:
                insort(self.large, (chunk, base))
        return None

    def _take_large(self, total: int) -> int | None:
        """Best-fit from the length-sorted large-extent list, splitting."""
        large = self.large
        index = bisect_left(large, (total, -1))
        if index >= len(large):
            return None
        length, base = large.pop(index)
        remainder = length - total
        if remainder:
            self._free_chunk(base + total, remainder)
        return base

    def _free_chunk(self, base: int, length: int) -> None:
        if length <= 0:
            return
        if length <= _MAX_BIN_TOTAL:
            self.bins[length - 1].append(base)
        else:
            insort(self.large, (length, base))

    def _carve_bump(self) -> None:
        """After a collection: bump from the largest known extent.

        Only called with the bump span synced, so resetting
        ``_sync_pos`` to the (possibly relocated) bump pointer is safe.
        """
        bump = self.bump
        remainder = self._bump_end - bump[0]
        if self.large and self.large[-1][0] > remainder:
            length, base = self.large.pop()
            self._free_chunk(bump[0], remainder)
            bump[0] = base
            self._bump_end = base + length
        self._sync_pos = bump[0]
        self._apply_cap()

    def _apply_cap(self) -> None:
        """Cap the bump limit at the occupancy trigger line."""
        bump = self.bump
        end = self._bump_end
        if self.gc_occupancy is None:
            bump[1] = end
            return
        reserve = int(self.size_words * (1.0 - self.gc_occupancy))
        headroom = self.free_words() - reserve
        if headroom < end - bump[0]:
            bump[1] = bump[0] + max(0, headroom)
        else:
            bump[1] = end

    def _coalesce(self) -> None:
        """Merge every free chunk into maximal extents (defrag).

        Only runs when an allocation still fails after a collection:
        the lazy structures can fragment space that is contiguous, and
        the pre-overhaul allocator (which rebuilt an address-ordered
        extent list on every collection) would have merged it.
        """
        chunks: list[list[int]] = []
        bump = self.bump
        if self._bump_end > bump[0]:
            chunks.append([bump[0], self._bump_end - bump[0]])
        for index, bin_list in enumerate(self.bins):
            length = index + 1
            chunks.extend([base, length] for base in bin_list)
            bin_list.clear()
        mem = self.mem
        pending = self.pending
        while pending:
            base = pending.pop()
            chunks.append([base, mem[base] + 1])
        chunks.extend([base, length] for length, base in self.large)
        self.large.clear()
        chunks.sort()
        merged: list[list[int]] = []
        for base, length in chunks:
            if merged and merged[-1][0] + merged[-1][1] == base:
                merged[-1][1] += length
            else:
                merged.append([base, length])
        if merged:
            largest = max(merged, key=lambda extent: extent[1])
            bump[0] = largest[0]
            self._bump_end = largest[0] + largest[1]
            for extent in merged:
                if extent is not largest:
                    self._free_chunk(extent[0], extent[1])
        else:
            self._bump_end = bump[0]
        self._sync_pos = bump[0]
        self._apply_cap()

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------

    def collect(self, roots, trigger: str = "explicit") -> int:
        """Mark from ``roots`` (iterable of words) and sweep.

        Marking uses the reusable bitmap; the sweep unlinks dead blocks
        from ``self.blocks`` onto the pending queue (they are binned
        lazily, on allocation demand).  Returns the number of words
        reclaimed.
        """
        started = perf_counter()
        self.sync_allocations()
        self.gc_count += 1
        mark = self._mark
        tag_is_ptr = self._tag_is_ptr
        mem = self.mem
        blocks = self.blocks
        blocks_get = blocks.get
        stack = list(roots)
        pop = stack.pop
        extend = stack.extend
        while stack:
            word = pop()
            if not tag_is_ptr[word & 7]:
                continue
            base = (word & WORD_MASK) >> 3
            nwords = blocks_get(base)
            if nwords is None or mark[base]:
                continue
            mark[base] = 1
            if nwords:
                extend(mem[base + 1 : base + 1 + nwords])
        reclaimed = 0
        dead = []
        for base, nwords in blocks.items():
            if mark[base]:
                mark[base] = 0  # reset for the next collection
            else:
                reclaimed += nwords + 1
                dead.append(base)
        for base in dead:
            del blocks[base]
        self.pending.extend(dead)
        self._words_at_gc = self.words_allocated
        self._carve_bump()
        self.gc_events.append(
            GCEvent(
                trigger=trigger,
                pause_seconds=perf_counter() - started,
                reclaimed_words=reclaimed,
                live_words=self.live_words(),
                free_words=self.free_words(),
            )
        )
        return reclaimed

    def _block_of(self, word: int) -> int | None:
        tag = word & 7
        if tag not in self.pointer_tags:
            return None
        base = (word & WORD_MASK) >> 3
        if base in self.blocks:
            return base
        return None

    # ------------------------------------------------------------------

    def live_words(self) -> int:
        self.sync_allocations()
        return sum(n + 1 for n in self.blocks.values())

    def free_words(self) -> int:
        """Total free words: bump remainder + bins + pending + extents."""
        mem = self.mem
        total = self._bump_end - self.bump[0]
        for index, bin_list in enumerate(self.bins):
            total += (index + 1) * len(bin_list)
        for base in self.pending:
            total += mem[base] + 1
        for length, _base in self.large:
            total += length
        return total

    def occupancy(self) -> float:
        return 1.0 - self.free_words() / self.size_words

    def check_conservation(self) -> None:
        """Assert the word-conservation invariant.

        Every word is either live, free, or the reserved word 0 —
        always, including immediately after a trap.  Raises
        :class:`VMError` on violation (the fault-injection sweep and
        the heap test suite both lean on this).
        """
        live = self.live_words()  # syncs deferred registrations
        free = self.free_words()
        expected = self.size_words - 1
        if live + free != expected:
            raise VMError(
                f"heap word-conservation violated: live {live} + free "
                f"{free} != {expected} (size {self.size_words} - 1 "
                f"reserved)"
            )

    def register_pointer_tag(self, tag: int) -> None:
        if not (0 <= tag <= 7):
            raise VMError(f"bad pointer tag {tag}")
        self.pointer_tags.add(tag)
        self._tag_is_ptr[tag] = 1

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def gc_telemetry(self) -> dict:
        """Aggregated GC statistics for stats/profile reporting."""
        events = self.gc_events
        pauses = [event.pause_seconds for event in events]
        triggers: dict[str, int] = {}
        for event in events:
            triggers[event.trigger] = triggers.get(event.trigger, 0) + 1
        return {
            "collections": self.gc_count,
            "pause_seconds_total": sum(pauses),
            "pause_seconds_max": max(pauses, default=0.0),
            "reclaimed_words_total": sum(e.reclaimed_words for e in events),
            "triggers": triggers,
            "live_words": self.live_words(),
            "free_words": self.free_words(),
            "size_words": self.size_words,
            "gc_occupancy": self.gc_occupancy,
        }
