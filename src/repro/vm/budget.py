"""The resource-budget subsystem and trap-recovery records.

A :class:`Budget` bundles the three run limits the machine enforces:

* ``max_steps`` — counted base instructions (exact: the instruction
  that would exceed the budget is charged but not executed);
* ``deadline_seconds`` — wall clock, measured from the start of
  :meth:`~repro.vm.machine.Machine.run` (or of each
  :meth:`~repro.vm.machine.Machine.resume` segment).  Checked every
  :data:`BUDGET_CHECK_INTERVAL` steps, so resolution is the time those
  steps take (well under a millisecond in practice);
* ``max_alloc_words`` — cumulative heap words allocated (header
  included), checked on the same cadence after settling the engines'
  deferred allocation bookkeeping.

All three ride the engines' *existing* step-budget fast path: the hot
loops keep exactly one ``limit is not None and steps > limit`` compare
per counted instruction (the historical ``max_steps`` cost), against a
unified limit that is the minimum of ``max_steps`` and the next
deadline/allocation checkpoint.  Overruns leave the fast path through
:meth:`Machine._step_overrun`, which either raises a structured
:class:`~repro.errors.BudgetExceeded` subclass or advances the
checkpoint and returns.

Budget trips suspend the machine at an instruction boundary: the engine
records a :class:`Suspension` (registers, pc, and — when the trip lands
on the second half of a fused superinstruction — the already-charged
pending half), and :meth:`Machine.resume` continues the run under new
limits.  Every VM fault, budget or not, unwinds through
:meth:`Machine.trap`, which restores heap/registry invariants and
snapshots a :class:`TrapInfo`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

#: steps between deadline / allocation-budget checks (power of two so
#: the checkpoint arithmetic stays cheap); exactness is only promised
#: for ``max_steps``
BUDGET_CHECK_INTERVAL = 4096


@dataclass
class Budget:
    """The three run limits, bundled.  ``None`` means unlimited."""

    max_steps: int | None = None
    deadline_seconds: float | None = None
    max_alloc_words: int | None = None

    @property
    def unlimited(self) -> bool:
        return (
            self.max_steps is None
            and self.deadline_seconds is None
            and self.max_alloc_words is None
        )


@dataclass
class TrapInfo:
    """Snapshot of one VM fault, taken by :meth:`Machine.trap`.

    ``kind`` classifies the fault domain: ``"steps"``/``"deadline"``/
    ``"alloc"`` (budget trips), ``"heap"`` (exhaustion after GC),
    ``"scheme"`` (an error signalled by compiled Scheme code),
    ``"vm"`` (any other machine fault), or ``"internal"`` (a Python
    exception escaping an engine — a bug, but invariants are still
    restored).  ``resumable`` is true exactly when
    :meth:`Machine.resume` can continue the run.
    """

    error: str
    message: str
    kind: str
    pc: int | None
    opcode: str | None
    steps: int
    dispatches: int
    frame_depth: int
    engine: str
    resumable: bool
    gc_count: int
    words_allocated: int
    #: wall-clock seconds left on the armed deadline at the fault (negative
    #: when the deadline itself tripped), or None when no deadline was set
    deadline_remaining_seconds: float | None = None

    def to_json(self) -> dict:
        """Stable machine-readable payload for one fault.

        Consumed by ``repro faultsweep --json`` and the execution
        service's event log (docs/SERVING.md); every field is a JSON
        scalar, keyed by the dataclass field names above.
        """
        payload = asdict(self)
        if payload["deadline_remaining_seconds"] is not None:
            payload["deadline_remaining_seconds"] = round(
                payload["deadline_remaining_seconds"], 6
            )
        return payload


def trap_kind(error: BaseException) -> str:
    """Classify an exception into a :class:`TrapInfo` fault domain."""
    from ..errors import (
        BudgetExceeded,
        HeapExhausted,
        ReproError,
        SchemeError,
    )

    if isinstance(error, BudgetExceeded):
        return error.budget
    if isinstance(error, HeapExhausted):
        return "heap"
    if isinstance(error, SchemeError):
        return "scheme"
    if isinstance(error, ReproError):
        return "vm"
    return "internal"


@dataclass
class Suspension:
    """Resumable engine state saved at a budget trip.

    ``rollback_op`` is the base opcode that was charged but not
    executed (the trip instruction); resuming un-charges it (one step,
    one dispatch) and re-dispatches at ``pc``.  When the trip lands on
    the *second* half of a fused pair the first half has already
    executed, so instead ``pending``/``pending_op`` carry the charged
    second half: resuming executes it without re-charging and continues
    at ``pc`` (the pair's fall-through) or at the half's branch target.
    """

    code: object  # the CodeObject being executed
    table: list | None  # threaded handler table (None for naive)
    regs: list
    pc: int
    rollback_op: int | None = None
    pending_op: int | None = None
    #: naive: the decomposed instruction; threaded: its executor closure
    pending: object = None
