"""The runtime type registry.

The compiler knows nothing about pairs — but two substrate services
need them at run time: collecting rest-arguments into a list, and
unpacking the list handed to ``apply``.  The *library* therefore
registers its pair representation (tag and field displacements) and its
nil value during bootstrap, via the ``%register-…`` primitives.  The GC
likewise learns which low tags denote heap pointers from
``%register-pointer-rep``.
"""

from __future__ import annotations

from ..errors import VMError


class TypeRegistry:
    def __init__(self):
        self.pair_tag: int | None = None
        self.car_disp: int | None = None
        self.cdr_disp: int | None = None
        self.pair_words: int | None = None
        self.nil_word: int | None = None
        self.false_word: int | None = None

    def register_pair(self, tag: int, car_disp: int, cdr_disp: int) -> None:
        if not (0 <= tag <= 7):
            raise VMError(f"bad pair tag {tag}")
        for disp in (car_disp, cdr_disp):
            if (disp + tag) % 8 != 0 or disp + tag <= 0:
                raise VMError(f"bad pair field displacement {disp} for tag {tag}")
        self.pair_tag = tag
        self.car_disp = car_disp
        self.cdr_disp = cdr_disp
        car_index = (car_disp + tag) // 8 - 1
        cdr_index = (cdr_disp + tag) // 8 - 1
        self.pair_words = max(car_index, cdr_index) + 1

    def register_nil(self, word: int) -> None:
        self.nil_word = word

    def register_false(self, word: int) -> None:
        self.false_word = word

    @property
    def pairs_ready(self) -> bool:
        return self.pair_tag is not None and self.nil_word is not None

    def require_pairs(self, why: str) -> None:
        if not self.pairs_ready:
            raise VMError(
                f"{why} needs the pair representation, but the library has "
                "not registered one (%register-pair-rep / %register-nil)"
            )
