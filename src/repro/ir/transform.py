"""Structural transformation helpers for the core IR.

The central tool is :func:`copy_node`, a deep copier that renames every
binding it passes (alpha conversion) and substitutes expressions for free
variables.  The inliner uses it to instantiate a lambda body per call
site; optimizer passes use :func:`map_children` for single-level rewrites.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..errors import CompileError
from .nodes import (
    Call,
    Const,
    Fix,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    LocalVar,
    Node,
    Prim,
    Seq,
    Var,
)


def copy_node(node: Node, substitution: Mapping[LocalVar, Node] | None = None) -> Node:
    """Return a deep copy of ``node``.

    Every binding occurrence in the copy gets a fresh :class:`LocalVar`,
    so the result shares no binding identity with the original (safe to
    splice anywhere).  Free occurrences of variables in ``substitution``
    are replaced by a *copy* of the mapped expression — callers must
    ensure mapped expressions are safe to duplicate (the inliner maps
    only to ``Var``/``Const`` nodes or binds non-trivial arguments with a
    ``Let`` first).
    """
    subst: dict[LocalVar, Node] = dict(substitution or {})
    return _copy(node, subst)


def _copy(node: Node, subst: dict[LocalVar, Node]) -> Node:
    if isinstance(node, Const):
        return Const(node.value)
    if isinstance(node, Var):
        replacement = subst.get(node.var)
        if replacement is None:
            return Var(node.var)
        return _copy(replacement, {})
    if isinstance(node, GlobalRef):
        return GlobalRef(node.name)
    if isinstance(node, GlobalSet):
        return GlobalSet(node.name, _copy(node.value, subst))
    if isinstance(node, LocalSet):
        target = subst.get(node.var)
        if target is None:
            new_var = node.var
        elif isinstance(target, Var):
            new_var = target.var
        else:
            raise CompileError(
                f"cannot substitute a non-variable for assigned variable {node.var}"
            )
        return LocalSet(new_var, _copy(node.value, subst))
    if isinstance(node, If):
        return If(
            _copy(node.test, subst), _copy(node.then, subst), _copy(node.els, subst)
        )
    if isinstance(node, Seq):
        return Seq([_copy(expr, subst) for expr in node.exprs])
    if isinstance(node, Let):
        new_bindings = []
        inner = dict(subst)
        for var, expr in node.bindings:
            copied = _copy(expr, subst)
            fresh = _fresh(var)
            inner[var] = Var(fresh)
            new_bindings.append((fresh, copied))
        return Let(new_bindings, _copy(node.body, inner))
    if isinstance(node, (Letrec, Fix)):
        inner = dict(subst)
        fresh_vars = []
        for var, _ in node.bindings:
            fresh = _fresh(var)
            inner[var] = Var(fresh)
            fresh_vars.append(fresh)
        new_bindings = [
            (fresh, _copy(expr, inner))
            for fresh, (_, expr) in zip(fresh_vars, node.bindings)
        ]
        cls = Letrec if isinstance(node, Letrec) else Fix
        return cls(new_bindings, _copy(node.body, inner))  # type: ignore[arg-type]
    if isinstance(node, Lambda):
        inner = dict(subst)
        new_params = []
        for param in node.params:
            fresh = _fresh(param)
            inner[param] = Var(fresh)
            new_params.append(fresh)
        new_rest = None
        if node.rest is not None:
            new_rest = _fresh(node.rest)
            inner[node.rest] = Var(new_rest)
        return Lambda(new_params, new_rest, _copy(node.body, inner), node.name)
    if isinstance(node, Call):
        return Call(_copy(node.fn, subst), [_copy(arg, subst) for arg in node.args])
    if isinstance(node, Prim):
        return Prim(node.op, [_copy(arg, subst) for arg in node.args])
    raise CompileError(f"copy_node: unknown node {type(node).__name__}")


def _fresh(var: LocalVar) -> LocalVar:
    fresh = LocalVar(var.name)
    fresh.assigned = var.assigned
    fresh.boxed = var.boxed
    return fresh


def map_children(node: Node, fn: Callable[[Node], Node]) -> Node:
    """Rebuild ``node`` with ``fn`` applied to each direct child.

    Binding structure is preserved (no renaming); passes that use this
    must keep variable identity intact.
    """
    if isinstance(node, (Const, Var, GlobalRef)):
        return node
    if isinstance(node, GlobalSet):
        return GlobalSet(node.name, fn(node.value))
    if isinstance(node, LocalSet):
        return LocalSet(node.var, fn(node.value))
    if isinstance(node, If):
        return If(fn(node.test), fn(node.then), fn(node.els))
    if isinstance(node, Seq):
        return Seq([fn(expr) for expr in node.exprs])
    if isinstance(node, Let):
        return Let([(var, fn(expr)) for var, expr in node.bindings], fn(node.body))
    if isinstance(node, Letrec):
        return Letrec([(var, fn(expr)) for var, expr in node.bindings], fn(node.body))
    if isinstance(node, Fix):
        return Fix([(var, fn(expr)) for var, expr in node.bindings], fn(node.body))
    if isinstance(node, Lambda):
        return Lambda(node.params, node.rest, fn(node.body), node.name)
    if isinstance(node, Call):
        return Call(fn(node.fn), [fn(arg) for arg in node.args])
    if isinstance(node, Prim):
        return Prim(node.op, [fn(arg) for arg in node.args])
    raise CompileError(f"map_children: unknown node {type(node).__name__}")
