"""Static analyses over the core IR.

Everything here is purely syntactic: free variables, expression size,
effect classification, and a reference/assignment census used by the
inliner and dead-code eliminator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import prims
from .nodes import (
    Call,
    Const,
    Fix,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    LocalVar,
    Node,
    Prim,
    Program,
    Seq,
    Var,
)


def free_vars(node: Node) -> set[LocalVar]:
    """The set of local variables occurring free in ``node``."""
    out: set[LocalVar] = set()
    _free_into(node, out)
    return out


def _free_into(node: Node, out: set[LocalVar]) -> None:
    if isinstance(node, Var):
        out.add(node.var)
    elif isinstance(node, LocalSet):
        out.add(node.var)
        _free_into(node.value, out)
    elif isinstance(node, Lambda):
        inner: set[LocalVar] = set()
        _free_into(node.body, inner)
        inner.difference_update(node.params)
        if node.rest is not None:
            inner.discard(node.rest)
        out.update(inner)
    elif isinstance(node, Let):
        for _, expr in node.bindings:
            _free_into(expr, out)
        inner = set()
        _free_into(node.body, inner)
        inner.difference_update(var for var, _ in node.bindings)
        out.update(inner)
    elif isinstance(node, (Letrec, Fix)):
        inner = set()
        for _, expr in node.bindings:
            _free_into(expr, inner)
        _free_into(node.body, inner)
        inner.difference_update(var for var, _ in node.bindings)
        out.update(inner)
    else:
        for child in node.children():
            _free_into(child, out)


def node_size(node: Node) -> int:
    """A size measure used for inlining budgets (roughly: node count)."""
    size = 0
    stack = [node]
    while stack:
        current = stack.pop()
        size += 1
        stack.extend(current.children())
    return size


def is_pure(node: Node) -> bool:
    """True when evaluating ``node`` has no observable effect and cannot
    fail, so it may be deleted or duplicated.

    Calls are never pure (they may not terminate); loads are treated as
    pure for *deletion* purposes by the DCE pass, which asks
    :func:`is_removable` instead.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (Call, LocalSet, GlobalSet, Letrec)):
            return False
        if isinstance(current, GlobalRef):
            # Reading an unbound global faults; treated as effect-free
            # only after the census proves the global is defined, which
            # the optimizer handles separately.  Be conservative here.
            return False
        if isinstance(current, Prim):
            spec = prims.lookup(current.op)
            if spec is None or not spec.pure:
                return False
        if isinstance(current, Lambda):
            continue  # a lambda's body does not run at evaluation time
        stack.extend(current.children())
    return True


def is_removable(node: Node, known_globals: set[str] | None = None) -> bool:
    """True when an unused evaluation of ``node`` may be deleted.

    Loads and reads of globals known to be defined are removable even
    though they are not pure (their value cannot be observed if unused).
    """
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (Call, LocalSet, GlobalSet, Letrec)):
            return False
        if isinstance(current, GlobalRef):
            if known_globals is not None and current.name not in known_globals:
                return False
        if isinstance(current, Prim):
            spec = prims.lookup(current.op)
            if spec is None or not spec.removable:
                return False
        if isinstance(current, Lambda):
            continue
        stack.extend(current.children())
    return True


@dataclass
class VarInfo:
    """Census data for one local variable."""

    references: int = 0
    assignments: int = 0


@dataclass
class GlobalInfo:
    """Census data for one top-level variable."""

    references: int = 0
    #: number of GlobalSet forms targeting the name (defines included)
    assignments: int = 0
    #: the unique defining expression, when assignments == 1
    definition: Node | None = None


@dataclass
class Census:
    locals: dict[LocalVar, VarInfo] = field(default_factory=dict)
    globals: dict[str, GlobalInfo] = field(default_factory=dict)

    def local(self, var: LocalVar) -> VarInfo:
        info = self.locals.get(var)
        if info is None:
            info = VarInfo()
            self.locals[var] = info
        return info

    def global_(self, name: str) -> GlobalInfo:
        info = self.globals.get(name)
        if info is None:
            info = GlobalInfo()
            self.globals[name] = info
        return info


def census_node(node: Node, census: Census) -> None:
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Var):
            census.local(current.var).references += 1
        elif isinstance(current, LocalSet):
            census.local(current.var).assignments += 1
            current.var.assigned = True
        elif isinstance(current, GlobalRef):
            census.global_(current.name).references += 1
        elif isinstance(current, GlobalSet):
            info = census.global_(current.name)
            info.assignments += 1
            info.definition = current.value if info.assignments == 1 else None
        stack.extend(current.children())


def census_program(program: Program) -> Census:
    """Count references and assignments across a whole program."""
    census = Census()
    for form in program.forms:
        census_node(form, census)
    return census


def mark_assigned(node: Node) -> None:
    """Set the ``assigned`` flag on every local targeted by a LocalSet."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, LocalSet):
            current.var.assigned = True
        stack.extend(current.children())
