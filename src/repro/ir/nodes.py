"""The core intermediate representation.

The expander lowers full Scheme to this tiny direct-style language.  It is
the *whole* language the rest of the compiler understands:

* raw machine-word constants (:class:`Const`)
* local variables (:class:`Var` referring to a :class:`LocalVar` binding)
* global variables (:class:`GlobalRef` / :class:`GlobalSet`)
* ``lambda``, application, ``if``, ``let``, ``letrec``, ``set!``, ``begin``
* machine primitives (:class:`Prim`) — the only "built-in operations"

Everything a Scheme programmer would call a data type (pairs, booleans,
vectors, strings, characters, fixnums…) is *absent* here; those are defined
by library code, which is the point of the paper.

All locals are resolved: a :class:`LocalVar` is created once at its binding
site and shared by every reference, so identity comparison replaces name
lookup and alpha-conversion is a matter of allocating new ``LocalVar``
objects during copying.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class LocalVar:
    """A resolved local variable binding."""

    __slots__ = ("name", "uid", "assigned", "boxed")
    _counter = [0]

    def __init__(self, name: str):
        LocalVar._counter[0] += 1
        self.name = name
        self.uid = LocalVar._counter[0]
        # True when some LocalSet targets this variable (filled by census
        # or set eagerly by the expander).
        self.assigned = False
        # True once assignment conversion has rewritten the variable to
        # hold a heap cell.
        self.boxed = False

    def __repr__(self) -> str:
        return f"{self.name}.{self.uid}"


class Node:
    """Base class of every IR node."""

    __slots__ = ()

    def children(self) -> Iterator["Node"]:
        """Iterate over direct sub-expressions."""
        return iter(())

    def __repr__(self) -> str:
        from .pretty import pretty

        text = pretty(self)
        return text if len(text) <= 200 else text[:197] + "..."


class Const(Node):
    """A raw 64-bit machine word (already encoded; not a Scheme datum)."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value & 0xFFFFFFFFFFFFFFFF


class Var(Node):
    """A reference to a local variable."""

    __slots__ = ("var",)

    def __init__(self, var: LocalVar):
        self.var = var


class GlobalRef(Node):
    """A reference to a top-level variable, by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class GlobalSet(Node):
    """Assignment to a top-level variable (also used for ``define``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Node):
        self.name = name
        self.value = value

    def children(self):
        yield self.value


class LocalSet(Node):
    """``set!`` on a local variable (removed by assignment conversion)."""

    __slots__ = ("var", "value")

    def __init__(self, var: LocalVar, value: Node):
        self.var = var
        self.value = value

    def children(self):
        yield self.value


class If(Node):
    """Two-armed conditional.

    The test is a machine word: zero is false, anything else is true.  The
    *library* arranges for Scheme ``#f`` to be the only value whose word
    equals the false word; the expander wraps Scheme tests in the
    ``%false?`` comparison, so by the time code reaches the backend the
    test is a raw word truth test.
    """

    __slots__ = ("test", "then", "els")

    def __init__(self, test: Node, then: Node, els: Node):
        self.test = test
        self.then = then
        self.els = els

    def children(self):
        yield self.test
        yield self.then
        yield self.els


class Seq(Node):
    """``begin``: evaluate every expression, yield the last."""

    __slots__ = ("exprs",)

    def __init__(self, exprs: list[Node]):
        assert exprs, "Seq requires at least one expression"
        self.exprs = exprs

    def children(self):
        return iter(self.exprs)


class Let(Node):
    """Parallel ``let``."""

    __slots__ = ("bindings", "body")

    def __init__(self, bindings: list[tuple[LocalVar, Node]], body: Node):
        self.bindings = bindings
        self.body = body

    def children(self):
        for _, expr in self.bindings:
            yield expr
        yield self.body


class Letrec(Node):
    """``letrec*`` as produced by the expander (fixed by a later pass)."""

    __slots__ = ("bindings", "body")

    def __init__(self, bindings: list[tuple[LocalVar, Node]], body: Node):
        self.bindings = bindings
        self.body = body

    def children(self):
        for _, expr in self.bindings:
            yield expr
        yield self.body


class Fix(Node):
    """``letrec`` restricted to lambda right-hand sides (backend-ready)."""

    __slots__ = ("bindings", "body")

    def __init__(self, bindings: list[tuple[LocalVar, "Lambda"]], body: Node):
        self.bindings = bindings
        self.body = body

    def children(self):
        for _, expr in self.bindings:
            yield expr
        yield self.body


class Lambda(Node):
    """A procedure.

    ``rest`` is the rest-parameter for variadic procedures; when present
    the caller's extra arguments are collected into a library-defined list
    (the VM consults the runtime type registry for the pair representation).
    """

    __slots__ = ("params", "rest", "body", "name")

    def __init__(
        self,
        params: list[LocalVar],
        rest: Optional[LocalVar],
        body: Node,
        name: str = "",
    ):
        self.params = params
        self.rest = rest
        self.body = body
        self.name = name

    def children(self):
        yield self.body

    @property
    def arity(self) -> int:
        return len(self.params)


class Call(Node):
    """Procedure application."""

    __slots__ = ("fn", "args")

    def __init__(self, fn: Node, args: list[Node]):
        self.fn = fn
        self.args = args

    def children(self):
        yield self.fn
        yield from self.args


class Prim(Node):
    """Application of a machine primitive (``%add``, ``%load``, …)."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, args: list[Node]):
        self.op = op
        self.args = args

    def children(self):
        return iter(self.args)


class Program:
    """A whole program: an ordered list of top-level forms.

    ``define`` becomes :class:`GlobalSet`; other top-level expressions
    appear as bare nodes evaluated for effect.  ``globals`` lists every
    top-level name in first-definition order (the backend assigns global
    slots from it).
    """

    __slots__ = ("forms", "globals")

    def __init__(self, forms: list[Node], global_names: list[str]):
        self.forms = forms
        self.globals = global_names

    def __repr__(self) -> str:
        return f"<Program {len(self.forms)} forms, {len(self.globals)} globals>"


def iter_tree(node: Node) -> Iterator[Node]:
    """Yield ``node`` and every descendant, preorder, iteratively."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(current.children())


def iter_program(program: Program) -> Iterator[Node]:
    for form in program.forms:
        yield from iter_tree(form)


def make_seq(exprs: Iterable[Node]) -> Node:
    """Build a Seq, flattening nested Seqs and dropping all but one expr
    when there is only one."""
    flat: list[Node] = []
    for expr in exprs:
        if isinstance(expr, Seq):
            flat.extend(expr.exprs)
        else:
            flat.append(expr)
    if len(flat) == 1:
        return flat[0]
    return Seq(flat)
