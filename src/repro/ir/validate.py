"""IR well-formedness checking.

Used by tests (and by the optimizer pipeline when
``OptimizerOptions.validate`` is on) to catch pass bugs at their source:
scoping violations, primitive arity errors, stray ``Letrec``/``LocalSet``
nodes after the passes that are supposed to eliminate them, and binding
duplication (the same ``LocalVar`` bound at two sites — a broken copy).
"""

from __future__ import annotations

from .. import prims
from ..errors import CompileError
from .nodes import (
    Call,
    Const,
    Fix,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    LocalVar,
    Node,
    Prim,
    Program,
    Seq,
    Var,
)


class ValidationError(CompileError):
    pass


def validate_program(
    program: Program,
    allow_letrec: bool = False,
    allow_localset: bool = True,
    stage: str | None = None,
) -> None:
    """Raise :class:`ValidationError` on the first problem found.

    ``stage`` names the pass that produced this IR; it is threaded into
    failure messages so a pipeline bug names its culprit.
    """
    seen_bindings: set[int] = set()
    prefix = f"after {stage}: " if stage else ""
    for index, form in enumerate(program.forms):
        _validate(
            form,
            scope=frozenset(),
            seen=seen_bindings,
            allow_letrec=allow_letrec,
            allow_localset=allow_localset,
            where=f"{prefix}top-level form {index}",
        )


def _bind(var: LocalVar, seen: set[int], where: str) -> None:
    if var.uid in seen:
        raise ValidationError(
            f"{where}: variable {var} is bound at two different sites "
            "(a transform copied a binder without renaming)"
        )
    seen.add(var.uid)


def _validate(
    node: Node,
    scope: frozenset,
    seen: set[int],
    allow_letrec: bool,
    allow_localset: bool,
    where: str,
) -> None:
    if isinstance(node, Const):
        if not (0 <= node.value < (1 << 64)):
            raise ValidationError(f"{where}: constant out of word range")
        return
    if isinstance(node, Var):
        if node.var not in scope:
            raise ValidationError(f"{where}: unbound variable {node.var}")
        return
    if isinstance(node, GlobalRef):
        return
    if isinstance(node, GlobalSet):
        _validate(node.value, scope, seen, allow_letrec, allow_localset, where)
        return
    if isinstance(node, LocalSet):
        if not allow_localset:
            raise ValidationError(
                f"{where}: LocalSet survived assignment conversion"
            )
        if node.var not in scope:
            raise ValidationError(f"{where}: set! of out-of-scope {node.var}")
        if not node.var.assigned:
            raise ValidationError(
                f"{where}: set! of variable {node.var} not marked assigned"
            )
        _validate(node.value, scope, seen, allow_letrec, allow_localset, where)
        return
    if isinstance(node, If):
        for child in (node.test, node.then, node.els):
            _validate(child, scope, seen, allow_letrec, allow_localset, where)
        return
    if isinstance(node, Seq):
        if not node.exprs:
            raise ValidationError(f"{where}: empty Seq")
        for child in node.exprs:
            _validate(child, scope, seen, allow_letrec, allow_localset, where)
        return
    if isinstance(node, Let):
        for var, init in node.bindings:
            _validate(init, scope, seen, allow_letrec, allow_localset, where)
        inner = scope
        for var, _ in node.bindings:
            _bind(var, seen, where)
            inner = inner | {var}
        _validate(node.body, inner, seen, allow_letrec, allow_localset, where)
        return
    if isinstance(node, Letrec):
        if not allow_letrec:
            raise ValidationError(f"{where}: Letrec survived letrec fixing")
        inner = scope
        for var, _ in node.bindings:
            _bind(var, seen, where)
            inner = inner | {var}
        for _, init in node.bindings:
            _validate(init, inner, seen, allow_letrec, allow_localset, where)
        _validate(node.body, inner, seen, allow_letrec, allow_localset, where)
        return
    if isinstance(node, Fix):
        inner = scope
        for var, lam in node.bindings:
            _bind(var, seen, where)
            inner = inner | {var}
            if not isinstance(lam, Lambda):
                raise ValidationError(f"{where}: non-lambda in Fix binding")
            if var.assigned:
                raise ValidationError(f"{where}: assigned Fix variable {var}")
        for _, lam in node.bindings:
            _validate(lam, inner, seen, allow_letrec, allow_localset, where)
        _validate(node.body, inner, seen, allow_letrec, allow_localset, where)
        return
    if isinstance(node, Lambda):
        inner = scope
        for param in node.params:
            _bind(param, seen, where)
            inner = inner | {param}
        if node.rest is not None:
            _bind(node.rest, seen, where)
            inner = inner | {node.rest}
        _validate(node.body, inner, seen, allow_letrec, allow_localset, where)
        return
    if isinstance(node, Call):
        _validate(node.fn, scope, seen, allow_letrec, allow_localset, where)
        for arg in node.args:
            _validate(arg, scope, seen, allow_letrec, allow_localset, where)
        return
    if isinstance(node, Prim):
        spec = prims.lookup(node.op)
        if spec is None:
            raise ValidationError(f"{where}: unknown primitive {node.op}")
        if len(node.args) != spec.arity:
            raise ValidationError(
                f"{where}: {node.op} applied to {len(node.args)} arguments "
                f"(arity {spec.arity})"
            )
        for arg in node.args:
            _validate(arg, scope, seen, allow_letrec, allow_localset, where)
        return
    raise ValidationError(f"{where}: unknown node {type(node).__name__}")
