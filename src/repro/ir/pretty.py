"""A human-readable S-expression rendering of the core IR.

Used by ``Compiler.explain`` (the examples print it), by node reprs, and
by tests asserting on optimized shapes.
"""

from __future__ import annotations

from .nodes import (
    Call,
    Const,
    Fix,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    Node,
    Prim,
    Program,
    Seq,
    Var,
)


def pretty(node: Node, indent: int = 0) -> str:
    """Render a node as indented pseudo-Scheme."""
    return _pp(node, indent)


def pretty_program(program: Program) -> str:
    return "\n".join(_pp(form, 0) for form in program.forms)


def _atom(node: Node) -> str | None:
    if isinstance(node, Const):
        value = node.value
        # Show small negative words in signed form for readability.
        if value >= (1 << 63):
            return str(value - (1 << 64))
        return str(value)
    if isinstance(node, Var):
        return f"{node.var.name}.{node.var.uid}"
    if isinstance(node, GlobalRef):
        return node.name
    return None


def _pp(node: Node, indent: int) -> str:
    pad = "  " * indent
    atom = _atom(node)
    if atom is not None:
        return pad + atom
    compact = _compact(node)
    if compact is not None and len(compact) + len(pad) <= 78:
        return pad + compact
    if isinstance(node, GlobalSet):
        return f"{pad}(define {node.name}\n{_pp(node.value, indent + 1)})"
    if isinstance(node, LocalSet):
        return f"{pad}(set! {node.var.name}.{node.var.uid}\n{_pp(node.value, indent + 1)})"
    if isinstance(node, If):
        return (
            f"{pad}(if {_inline(node.test)}\n"
            f"{_pp(node.then, indent + 1)}\n"
            f"{_pp(node.els, indent + 1)})"
        )
    if isinstance(node, Seq):
        inner = "\n".join(_pp(expr, indent + 1) for expr in node.exprs)
        return f"{pad}(begin\n{inner})"
    if isinstance(node, (Let, Letrec, Fix)):
        keyword = {Let: "let", Letrec: "letrec", Fix: "fix"}[type(node)]
        bindings = "\n".join(
            f"{pad}  ({var.name}.{var.uid} {_inline(expr)})"
            for var, expr in node.bindings
        )
        return f"{pad}({keyword} (\n{bindings})\n{_pp(node.body, indent + 1)})"
    if isinstance(node, Lambda):
        params = " ".join(f"{p.name}.{p.uid}" for p in node.params)
        if node.rest is not None:
            params += f" . {node.rest.name}.{node.rest.uid}"
        return f"{pad}(lambda ({params})\n{_pp(node.body, indent + 1)})"
    if isinstance(node, Call):
        parts = "\n".join(_pp(arg, indent + 1) for arg in [node.fn] + node.args)
        return f"{pad}(call\n{parts})"
    if isinstance(node, Prim):
        parts = "\n".join(_pp(arg, indent + 1) for arg in node.args)
        return f"{pad}({node.op}\n{parts})"
    return pad + f"#<{type(node).__name__}>"


def _inline(node: Node) -> str:
    """Single-line rendering (used inside binding lists and if tests)."""
    atom = _atom(node)
    if atom is not None:
        return atom
    compact = _compact(node)
    if compact is not None:
        return compact
    return _pp(node, 0).replace("\n", " ")


def _compact(node: Node) -> str | None:
    """Try to render a node on one line; None when clearly too large."""
    atom = _atom(node)
    if atom is not None:
        return atom
    if isinstance(node, Prim):
        return "(" + " ".join([node.op] + [_inline(arg) for arg in node.args]) + ")"
    if isinstance(node, Call):
        return "(call " + " ".join(_inline(arg) for arg in [node.fn] + node.args) + ")"
    if isinstance(node, If):
        return (
            f"(if {_inline(node.test)} {_inline(node.then)} {_inline(node.els)})"
        )
    if isinstance(node, LocalSet):
        return f"(set! {node.var.name}.{node.var.uid} {_inline(node.value)})"
    if isinstance(node, Seq) and len(node.exprs) <= 3:
        return "(begin " + " ".join(_inline(expr) for expr in node.exprs) + ")"
    return None
