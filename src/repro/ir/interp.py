"""A reference interpreter for the core IR.

Direct, slow, obviously-correct semantics for the language the optimizer
transforms — used for differential testing: a program evaluated here
must agree with (a) the same program after any optimizer pipeline, and
(b) the compiled program on the VM.

The interpreter shares the VM's word-level semantics for primitives
(via :mod:`repro.prims.fold`) and models the heap as the VM does, so
results are bit-identical words.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import prims
from ..errors import SchemeError, VMError
from ..prims import FoldCannot, fold, wrap
from ..vm.heap import Heap
from ..vm.machine import FAIL_MESSAGES
from ..vm.registry import TypeRegistry
from .nodes import (
    Call,
    Const,
    Fix,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    LocalVar,
    Node,
    Prim,
    Program,
    Seq,
    Var,
)

_CLOSURE_TAG = 7


class _Box:
    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value


class _EscapeInvoked(Exception):
    """Internal: an escape continuation was called."""

    def __init__(self, token: object, value: int):
        super().__init__("escape")
        self.token = token
        self.value = value


class _Escape:
    """An escape-continuation value in the closure table."""

    __slots__ = ("token", "word")

    def __init__(self, token: object, word: int):
        self.token = token
        self.word = word


class _Closure:
    """An interpreter-level closure.

    It also owns a heap word (an empty tag-7 block) so that tag tests,
    ``eq?``, and GC behave exactly as compiled code expects.
    """

    __slots__ = ("lam", "env", "word")

    def __init__(self, lam: Lambda, env: dict, word: int):
        self.lam = lam
        self.env = env
        self.word = word


@dataclass
class InterpResult:
    value: int
    output: str


class Interpreter:
    """Evaluates a whole program; returns the final word."""

    def __init__(
        self,
        heap_words: int = 1 << 20,
        max_calls: int = 2_000_000,
        input_text: str = "",
    ):
        self.heap = Heap(heap_words)
        self.heap.register_pointer_tag(_CLOSURE_TAG)
        self.registry = TypeRegistry()
        self.globals: dict[str, int] = {}
        self.output: list[str] = []
        self.input_codes = [ord(ch) for ch in input_text]
        self.input_pos = 0
        #: heap word -> _Closure (procedure values are heap-allocated)
        self.closures: dict[int, _Closure] = {}
        self.calls = 0
        self.max_calls = max_calls

    # ------------------------------------------------------------------

    def run(self, program: Program) -> InterpResult:
        value = 0
        try:
            for form in program.forms:
                value = self.eval(form, {})
        except _EscapeInvoked:
            raise SchemeError(
                "escape continuation invoked after its extent ended"
            ) from None
        return InterpResult(value, "".join(self.output))

    def eval(self, node: Node, env: dict) -> int:
        while True:  # trampoline for tail calls
            if isinstance(node, Const):
                return node.value
            if isinstance(node, Var):
                slot = env[node.var]
                return slot.value if isinstance(slot, _Box) else slot
            if isinstance(node, GlobalRef):
                if node.name not in self.globals:
                    raise VMError(f"undefined global variable {node.name!r}")
                return self.globals[node.name]
            if isinstance(node, GlobalSet):
                value = self.eval(node.value, env)
                self.globals[node.name] = value
                return value
            if isinstance(node, LocalSet):
                value = self.eval(node.value, env)
                slot = env[node.var]
                if isinstance(slot, _Box):
                    slot.value = value
                else:
                    env[node.var] = value
                return 0
            if isinstance(node, If):
                test = self.eval(node.test, env)
                node = node.then if test != 0 else node.els
                continue
            if isinstance(node, Seq):
                for expr in node.exprs[:-1]:
                    self.eval(expr, env)
                node = node.exprs[-1]
                continue
            if isinstance(node, Let):
                values = [(var, self.eval(init, env)) for var, init in node.bindings]
                env = dict(env)
                for var, value in values:
                    env[var] = _Box(value) if var.assigned else value
                node = node.body
                continue
            if isinstance(node, (Letrec, Fix)):
                env = dict(env)
                for var, _ in node.bindings:
                    env[var] = _Box(0)
                for var, init in node.bindings:
                    value = self.eval(init, env)
                    slot = env[var]
                    assert isinstance(slot, _Box)
                    slot.value = value
                node = node.body
                continue
            if isinstance(node, Lambda):
                return self._make_closure(node, env)
            if isinstance(node, Call):
                fn_word = self.eval(node.fn, env)
                args = [self.eval(arg, env) for arg in node.args]
                node, env = self._enter(fn_word, args)
                continue
            if isinstance(node, Prim):
                result = self._prim(node, env)
                if isinstance(result, tuple):  # tail re-entry from %apply
                    node, env = result
                    continue
                return result
            raise TypeError(f"interp: unknown node {type(node).__name__}")

    # ------------------------------------------------------------------

    def _make_closure(self, lam: Lambda, env: dict) -> int:
        word = self.heap.allocate(1, _CLOSURE_TAG, self._roots)
        self.closures[word] = _Closure(lam, env, word)
        return word

    def _roots(self):
        # Conservative enough for tests: every closure environment value
        # plus globals.  (Boxes hold words.)
        out = list(self.globals.values())
        # Closure blocks are pinned (the interpreter's closure table maps
        # their words), together with everything their environments hold.
        out.extend(self.closures.keys())
        for closure in self.closures.values():
            if isinstance(closure, _Escape):
                continue
            for slot in closure.env.values():
                out.append(slot.value if isinstance(slot, _Box) else slot)
        return out

    def _enter(self, fn_word: int, args: list[int]) -> tuple[Node, dict]:
        self.calls += 1
        if self.calls > self.max_calls:
            raise VMError("interpreter call budget exceeded")
        closure = self.closures.get(fn_word)
        if closure is None:
            raise SchemeError(FAIL_MESSAGES[12], fn_word)
        if isinstance(closure, _Escape):
            if len(args) != 1:
                raise SchemeError("arity mismatch calling an escape continuation")
            raise _EscapeInvoked(closure.token, args[0])
        lam = closure.lam
        env = dict(closure.env)
        n = len(lam.params)
        if lam.rest is None:
            if len(args) != n:
                raise SchemeError(
                    f"arity mismatch calling {lam.name or 'lambda'!r}: "
                    f"expected {n} arguments, got {len(args)}"
                )
        else:
            if len(args) < n:
                raise SchemeError(
                    f"arity mismatch calling {lam.name or 'lambda'!r}"
                )
        for param, value in zip(lam.params, args):
            env[param] = _Box(value) if param.assigned else value
        if lam.rest is not None:
            rest = self._build_list(args[n:])
            env[lam.rest] = _Box(rest) if lam.rest.assigned else rest
        return lam.body, env

    def _build_list(self, words: list[int]) -> int:
        registry = self.registry
        registry.require_pairs("a rest-argument list")
        result = registry.nil_word
        for word in reversed(words):
            pair = self.heap.allocate(
                registry.pair_words, registry.pair_tag, self._roots
            )
            self.heap.store(wrap(pair + registry.car_disp), word)
            self.heap.store(wrap(pair + registry.cdr_disp), result)
            result = pair
        return result

    def _unpack_list(self, word: int) -> list[int]:
        registry = self.registry
        registry.require_pairs("apply")
        out = []
        while word != registry.nil_word:
            if word & 7 != registry.pair_tag:
                raise SchemeError(FAIL_MESSAGES[13], word)
            out.append(self.heap.load(wrap(word + registry.car_disp)))
            word = self.heap.load(wrap(word + registry.cdr_disp))
            if len(out) > 1_000_000:
                raise VMError("apply list too long")
        return out

    # ------------------------------------------------------------------

    def _prim(self, node: Prim, env: dict):
        op = node.op
        args = [self.eval(arg, env) for arg in node.args]
        spec = prims.spec(op)
        if spec.fold is not None:
            try:
                return spec.fold(*args)
            except FoldCannot as error:
                raise SchemeError(str(error))
        if op == "%load":
            return self.heap.load(wrap(args[0] + fold.signed(args[1])))
        if op == "%store":
            self.heap.store(wrap(args[0] + fold.signed(args[1])), args[2])
            return 0
        if op == "%alloc":
            return self.heap.allocate(args[0], args[1] & 7, self._roots)
        if op == "%putc":
            self.output.append(chr(args[0] & 0x10FFFF))
            return 0
        if op == "%getc":
            if self.input_pos < len(self.input_codes):
                self.input_pos += 1
                return self.input_codes[self.input_pos - 1]
            return prims.WORD_MASK
        if op == "%peekc":
            if self.input_pos < len(self.input_codes):
                return self.input_codes[self.input_pos]
            return prims.WORD_MASK
        if op == "%fail":
            message = FAIL_MESSAGES.get(args[0], f"runtime failure {args[0]}")
            raise SchemeError(message)
        if op == "%apply":
            return self._enter(args[0], self._unpack_list(args[1]))
        if op == "%callec":
            token = object()
            word = self.heap.allocate(1, _CLOSURE_TAG, self._roots)
            self.closures[word] = _Escape(token, word)
            try:
                body, body_env = self._enter(args[0], [word])
                return self.eval(body, body_env)
            except _EscapeInvoked as escape:
                if escape.token is token:
                    return escape.value
                raise
        if op == "%register-pointer-rep":
            self.heap.register_pointer_tag(args[0])
            return 0
        if op == "%register-pair-rep":
            self.registry.register_pair(
                args[0], fold.signed(args[1]), fold.signed(args[2])
            )
            return 0
        if op == "%register-nil":
            self.registry.register_nil(args[0])
            return 0
        if op == "%register-false":
            self.registry.register_false(args[0])
            return 0
        raise TypeError(f"interp: unknown primitive {op}")


def interpret_program(program: Program, **kwargs) -> InterpResult:
    return Interpreter(**kwargs).run(program)
