"""The S-expression reader (lexer + parser).

Supports the Scheme lexical syntax needed by the prelude and the test
programs:

* lists, improper lists, and vector literals ``#( ... )``
* ``quote`` / ``quasiquote`` / ``unquote`` / ``unquote-splicing`` shorthands
* line comments ``;``, block comments ``#| ... |#`` (nesting), and datum
  comments ``#;``
* booleans ``#t``/``#f`` (and ``#true``/``#false``)
* characters ``#\\a``, named characters (``#\\newline`` etc.), ``#\\xHH``
* strings with the usual escapes
* exact integers in decimal and with ``#x``/``#o``/``#b``/``#d`` radix
  prefixes
"""

from __future__ import annotations

from ..errors import ReaderError
from .datum import NIL, Char, Pair, Symbol, from_list

_DELIMITERS = set('()";\' `,')
_NAMED_CHARS = {
    "altmode": 27,
    "backspace": 8,
    "delete": 127,
    "escape": 27,
    "linefeed": 10,
    "newline": 10,
    "null": 0,
    "nul": 0,
    "page": 12,
    "return": 13,
    "rubout": 127,
    "space": 32,
    "tab": 9,
}
_STRING_ESCAPES = {
    "a": "\a",
    "b": "\b",
    "t": "\t",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    '"': '"',
    "\\": "\\",
}

_DOT = object()
_CLOSE = object()


class Reader:
    """A pull-style reader over a source string."""

    def __init__(self, text: str, filename: str = "<string>"):
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------

    def read(self) -> object:
        """Read one datum; return :data:`datum.EOF`-like None at end of input."""
        datum = self._read_datum(allow_eof=True)
        if datum is _CLOSE:
            self._error("unexpected ')'")
        if datum is _DOT:
            self._error("unexpected '.'")
        return datum

    def read_all(self) -> list[object]:
        """Read every datum in the input."""
        out = []
        while True:
            datum = self.read()
            if datum is None:
                return out
            out.append(datum)

    # ------------------------------------------------------------------
    # character-level helpers
    # ------------------------------------------------------------------

    def _error(self, message: str) -> None:
        raise ReaderError(message, self.line, self.column)

    def _peek(self) -> str:
        if self.pos >= len(self.text):
            return ""
        return self.text[self.pos]

    def _next(self) -> str:
        ch = self._peek()
        if ch:
            self.pos += 1
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        return ch

    def _skip_whitespace_and_comments(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n\f":
                self._next()
            elif ch == ";":
                while self._peek() not in ("", "\n"):
                    self._next()
            elif ch == "#" and self._peek2() == "|":
                self._skip_block_comment()
            elif ch == "#" and self._peek2() == ";":
                self._next()
                self._next()
                # Datum comment: read and discard the next datum.
                discarded = self._read_datum(allow_eof=False)
                if discarded in (_DOT, _CLOSE):
                    self._error("bad datum comment")
            else:
                return

    def _peek2(self) -> str:
        if self.pos + 1 >= len(self.text):
            return ""
        return self.text[self.pos + 1]

    def _skip_block_comment(self) -> None:
        self._next()  # '#'
        self._next()  # '|'
        depth = 1
        while depth:
            ch = self._next()
            if not ch:
                self._error("unterminated block comment")
            if ch == "|" and self._peek() == "#":
                self._next()
                depth -= 1
            elif ch == "#" and self._peek() == "|":
                self._next()
                depth += 1

    # ------------------------------------------------------------------
    # datum-level parsing
    # ------------------------------------------------------------------

    def _read_datum(self, allow_eof: bool) -> object:
        self._skip_whitespace_and_comments()
        ch = self._peek()
        if not ch:
            if allow_eof:
                return None
            self._error("unexpected end of input")
        if ch == "(" or ch == "[":
            return self._read_list(")" if ch == "(" else "]")
        if ch == ")" or ch == "]":
            self._next()
            return _CLOSE
        if ch == "'":
            self._next()
            return self._shorthand("quote")
        if ch == "`":
            self._next()
            return self._shorthand("quasiquote")
        if ch == ",":
            self._next()
            if self._peek() == "@":
                self._next()
                return self._shorthand("unquote-splicing")
            return self._shorthand("unquote")
        if ch == '"':
            return self._read_string()
        if ch == "#":
            return self._read_hash()
        return self._read_atom()

    def _shorthand(self, name: str) -> object:
        inner = self._read_datum(allow_eof=False)
        if inner in (_DOT, _CLOSE):
            self._error(f"bad {name} shorthand")
        return from_list([Symbol(name), inner])

    def _read_list(self, closer: str) -> object:
        self._next()  # opening bracket
        items: list[object] = []
        tail: object = NIL
        while True:
            self._skip_whitespace_and_comments()
            if not self._peek():
                self._error("unterminated list")
            datum = self._read_datum(allow_eof=False)
            if datum is _CLOSE:
                break
            if datum is _DOT:
                if not items:
                    self._error("dot at start of list")
                tail = self._read_datum(allow_eof=False)
                if tail in (_DOT, _CLOSE):
                    self._error("bad dotted tail")
                end = self._read_datum(allow_eof=False)
                if end is not _CLOSE:
                    self._error("more than one datum after dot")
                break
            items.append(datum)
        return from_list(items, tail)

    def _read_string(self) -> str:
        self._next()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._next()
            if not ch:
                self._error("unterminated string literal")
            if ch == '"':
                return "".join(chars)
            if ch == "\\":
                esc = self._next()
                if not esc:
                    self._error("unterminated string escape")
                if esc == "x":
                    digits = []
                    while self._peek() != ";":
                        digit = self._next()
                        if not digit:
                            self._error("unterminated \\x escape")
                        digits.append(digit)
                    self._next()  # ';'
                    try:
                        chars.append(chr(int("".join(digits), 16)))
                    except ValueError:
                        self._error("bad \\x escape")
                elif esc == "\n":
                    # Line continuation: skip leading whitespace on next line.
                    while self._peek() in " \t":
                        self._next()
                elif esc in _STRING_ESCAPES:
                    chars.append(_STRING_ESCAPES[esc])
                else:
                    self._error(f"unknown string escape \\{esc}")
            else:
                chars.append(ch)

    def _read_hash(self) -> object:
        self._next()  # '#'
        ch = self._peek()
        if ch == "(":
            listed = self._read_list(")")
            try:
                return list(listed) if listed is not NIL else []
            except ValueError:
                self._error("dotted vector literal")
        if ch == "\\":
            self._next()
            return self._read_character()
        if ch in "txbodfTXBODF" or ch == "!":
            token = self._read_token()
            return self._parse_hash_token(token)
        self._error(f"unknown # syntax: #{ch!r}")
        raise AssertionError("unreachable")

    def _parse_hash_token(self, token: str) -> object:
        lowered = token.lower()
        if lowered in ("t", "true"):
            return True
        if lowered in ("f", "false"):
            return False
        if lowered == "!eof":
            from .datum import EOF

            return EOF
        if lowered in ("!unspecific", "!unspecified", "!default"):
            from .datum import UNSPECIFIED

            return UNSPECIFIED
        radixes = {"x": 16, "o": 8, "b": 2, "d": 10}
        if lowered and lowered[0] in radixes:
            try:
                return int(token[1:], radixes[lowered[0]])
            except ValueError:
                self._error(f"bad radix literal #{token}")
        self._error(f"unknown # token: #{token}")
        raise AssertionError("unreachable")

    def _read_character(self) -> Char:
        first = self._next()
        if not first:
            self._error("unterminated character literal")
        # A named character continues with letters; a single char stands alone.
        if first.isalpha() or first == "x":
            rest: list[str] = []
            while (peeked := self._peek()) and peeked not in _DELIMITERS and not peeked.isspace() and peeked not in ")]([":
                rest.append(self._next())
            if rest:
                name = (first + "".join(rest)).lower()
                if name in _NAMED_CHARS:
                    return Char(_NAMED_CHARS[name])
                if name.startswith("x"):
                    try:
                        return Char(int(name[1:], 16))
                    except ValueError:
                        self._error(f"bad character literal #\\{name}")
                self._error(f"unknown character name #\\{name}")
        return Char(ord(first))

    def _read_token(self) -> str:
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch.isspace() or ch in _DELIMITERS or ch in "()[]":
                return "".join(chars)
            chars.append(self._next())

    def _read_atom(self) -> object:
        start_line, start_col = self.line, self.column
        token = self._read_token()
        if not token:
            raise ReaderError("empty token", start_line, start_col)
        if token == ".":
            return _DOT
        number = _parse_number(token)
        if number is not None:
            return number
        return Symbol(token)


def _parse_number(token: str) -> int | None:
    body = token
    sign = 1
    if body and body[0] in "+-":
        sign = -1 if body[0] == "-" else 1
        body = body[1:]
    if body and all(c in "0123456789" for c in body):
        return sign * int(body)
    return None


def read(text: str) -> object:
    """Read a single datum from ``text`` (None when the text is empty)."""
    return Reader(text).read()


def read_all(text: str, filename: str = "<string>") -> list[object]:
    """Read every datum in ``text``."""
    return Reader(text, filename).read_all()
