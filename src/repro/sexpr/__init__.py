"""S-expression data model, reader, and writer."""

from .datum import (
    EOF,
    NIL,
    UNSPECIFIED,
    Char,
    Pair,
    Symbol,
    cons,
    from_list,
    gensym,
    is_list,
    list_length,
    to_list,
)
from .reader import Reader, read, read_all
from .writer import to_display, to_write

__all__ = [
    "EOF",
    "NIL",
    "UNSPECIFIED",
    "Char",
    "Pair",
    "Reader",
    "Symbol",
    "cons",
    "from_list",
    "gensym",
    "is_list",
    "list_length",
    "read",
    "read_all",
    "to_display",
    "to_list",
    "to_write",
]
