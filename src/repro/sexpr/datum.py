"""The Scheme datum model used by the reader, expander, and writer.

These objects represent *source-level* data: what the reader produces and
what quoted constants look like before they are lowered to the VM's tagged
word representation.  The mapping is:

==================  =============================================
Scheme datum        Python representation
==================  =============================================
fixnum              ``int``
boolean             ``bool``
string literal      ``str`` (runtime strings live in the VM heap)
symbol              :class:`Symbol` (interned)
character           :class:`Char`
empty list          :data:`NIL`
pair                :class:`Pair`
vector literal      ``list``
eof object          :data:`EOF`
unspecified         :data:`UNSPECIFIED`
==================  =============================================
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Symbol:
    """An interned Scheme symbol.

    Two symbols with the same name are the same object, so ``is``
    comparison is both correct and fast.
    """

    __slots__ = ("name",)
    _table: dict[str, "Symbol"] = {}

    def __new__(cls, name: str) -> "Symbol":
        sym = cls._table.get(name)
        if sym is None:
            sym = object.__new__(cls)
            sym.name = name
            cls._table[name] = sym
        return sym

    def __repr__(self) -> str:
        return self.name

    def __reduce__(self):
        # Keep interning across pickling (used by test helpers).
        return (Symbol, (self.name,))


_GENSYM_COUNTER = [0]


def gensym(prefix: str = "g") -> Symbol:
    """Return a fresh symbol whose name cannot clash with read symbols.

    The ``%`` in the generated name is outside the reader's symbol
    alphabet for user code, guaranteeing freshness.
    """
    _GENSYM_COUNTER[0] += 1
    return Symbol(f"{prefix}%{_GENSYM_COUNTER[0]}")


class Char:
    """A Scheme character, identified by its Unicode code point."""

    __slots__ = ("code",)
    _cache: dict[int, "Char"] = {}

    def __new__(cls, code: int) -> "Char":
        ch = cls._cache.get(code)
        if ch is None:
            ch = object.__new__(cls)
            ch.code = code
            cls._cache[code] = ch
        return ch

    def __repr__(self) -> str:
        return f"#\\{chr(self.code)}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Char) and other.code == self.code

    def __hash__(self) -> int:
        return hash(("char", self.code))


class _Singleton:
    """Base for the unique datum objects (``()``, eof, unspecified)."""

    __slots__ = ()
    _text = "#<singleton>"

    def __repr__(self) -> str:
        return self._text


class _Nil(_Singleton):
    _text = "()"

    def __iter__(self) -> Iterator[object]:
        return iter(())

    def __len__(self) -> int:
        return 0


class _Eof(_Singleton):
    _text = "#<eof>"


class _Unspecified(_Singleton):
    _text = "#<unspecified>"


NIL = _Nil()
EOF = _Eof()
UNSPECIFIED = _Unspecified()


class Pair:
    """A mutable cons cell."""

    __slots__ = ("car", "cdr")

    def __init__(self, car: object, cdr: object):
        self.car = car
        self.cdr = cdr

    def __repr__(self) -> str:
        from .writer import to_write

        return to_write(self)

    def __eq__(self, other: object) -> bool:
        # Structural equality, used heavily by tests; guards against cycles
        # by bounding depth via iteration on the spine.
        if not isinstance(other, Pair):
            return NotImplemented
        a: object = self
        b: object = other
        for _ in range(1_000_000):
            if isinstance(a, Pair) and isinstance(b, Pair):
                if a.car != b.car:
                    return False
                a, b = a.cdr, b.cdr
            else:
                return a == b
        raise RecursionError("cyclic or enormous pair structure in ==")

    def __hash__(self) -> int:  # pragma: no cover - pairs are not dict keys
        raise TypeError("pairs are unhashable")

    def __iter__(self) -> Iterator[object]:
        """Iterate the elements of a proper list (raises on improper tail)."""
        node: object = self
        while isinstance(node, Pair):
            yield node.car
            node = node.cdr
        if node is not NIL:
            raise ValueError("improper list")


def cons(car: object, cdr: object) -> Pair:
    return Pair(car, cdr)


def from_list(items: Iterable[object], tail: object = NIL) -> object:
    """Build a Scheme list out of a Python iterable (optionally improper)."""
    result = tail
    for item in reversed(list(items)):
        result = Pair(item, result)
    return result


def to_list(datum: object) -> list[object]:
    """Return the elements of a proper Scheme list as a Python list."""
    out: list[object] = []
    node = datum
    while isinstance(node, Pair):
        out.append(node.car)
        node = node.cdr
    if node is not NIL:
        raise ValueError("improper list passed to to_list")
    return out


def is_list(datum: object) -> bool:
    """True when ``datum`` is a proper (finite, nil-terminated) list."""
    slow = datum
    fast = datum
    while isinstance(fast, Pair):
        fast = fast.cdr
        if not isinstance(fast, Pair):
            break
        fast = fast.cdr
        slow = slow.cdr  # type: ignore[union-attr]
        if fast is slow:
            return False
    return fast is NIL


def list_length(datum: object) -> int:
    """Length of a proper list (raises ValueError for improper lists)."""
    n = 0
    node = datum
    while isinstance(node, Pair):
        n += 1
        node = node.cdr
    if node is not NIL:
        raise ValueError("improper list")
    return n
