"""Printing Scheme data, in both ``write`` (read-back) and ``display`` styles."""

from __future__ import annotations

from .datum import EOF, NIL, UNSPECIFIED, Char, Pair, Symbol

_CHAR_NAMES = {
    0: "null",
    8: "backspace",
    9: "tab",
    10: "newline",
    12: "page",
    13: "return",
    27: "escape",
    32: "space",
    127: "delete",
}

_STRING_UNESCAPES = {
    "\a": "\\a",
    "\b": "\\b",
    "\t": "\\t",
    "\n": "\\n",
    "\r": "\\r",
    "\f": "\\f",
    "\v": "\\v",
    '"': '\\"',
    "\\": "\\\\",
}


def to_write(datum: object) -> str:
    """Render ``datum`` the way ``write`` would: read-back notation."""
    return _render(datum, display=False)

def to_display(datum: object) -> str:
    """Render ``datum`` the way ``display`` would: human notation."""
    return _render(datum, display=True)


def _render(datum: object, display: bool) -> str:
    parts: list[str] = []
    _render_into(datum, display, parts, depth=0)
    return "".join(parts)


def _render_into(datum: object, display: bool, out: list[str], depth: int) -> None:
    if depth > 2000:
        raise RecursionError("datum too deep to print")
    if datum is True:
        out.append("#t")
    elif datum is False:
        out.append("#f")
    elif datum is NIL:
        out.append("()")
    elif datum is EOF:
        out.append("#<eof>")
    elif datum is UNSPECIFIED:
        out.append("#<unspecified>")
    elif isinstance(datum, int):
        out.append(str(datum))
    elif isinstance(datum, Symbol):
        out.append(datum.name)
    elif isinstance(datum, Char):
        if display:
            out.append(chr(datum.code))
        elif datum.code in _CHAR_NAMES:
            out.append("#\\" + _CHAR_NAMES[datum.code])
        elif datum.code < 32:
            out.append(f"#\\x{datum.code:x}")
        else:
            out.append("#\\" + chr(datum.code))
    elif isinstance(datum, str):
        if display:
            out.append(datum)
        else:
            out.append('"')
            for ch in datum:
                out.append(_STRING_UNESCAPES.get(ch, ch))
            out.append('"')
    elif isinstance(datum, list):
        out.append("#(")
        for i, item in enumerate(datum):
            if i:
                out.append(" ")
            _render_into(item, display, out, depth + 1)
        out.append(")")
    elif isinstance(datum, Pair):
        shorthand = _quote_shorthand(datum)
        if shorthand is not None:
            prefix, inner = shorthand
            out.append(prefix)
            _render_into(inner, display, out, depth + 1)
            return
        out.append("(")
        node: object = datum
        first = True
        while isinstance(node, Pair):
            if not first:
                out.append(" ")
            first = False
            _render_into(node.car, display, out, depth + 1)
            node = node.cdr
        if node is not NIL:
            out.append(" . ")
            _render_into(node, display, out, depth + 1)
        out.append(")")
    else:
        out.append(f"#<python:{datum!r}>")


_SHORTHANDS = {
    "quote": "'",
    "quasiquote": "`",
    "unquote": ",",
    "unquote-splicing": ",@",
}


def _quote_shorthand(pair: Pair) -> tuple[str, object] | None:
    head = pair.car
    if (
        isinstance(head, Symbol)
        and head.name in _SHORTHANDS
        and isinstance(pair.cdr, Pair)
        and pair.cdr.cdr is NIL
    ):
        return _SHORTHANDS[head.name], pair.cdr.car
    return None
