"""The public API: compile and run Scheme programs.

Typical use::

    from repro import run_source, decode
    result = run_source("(+ 1 2)")
    assert decode(result) == 3

Configurations mirror the paper's evaluation:

* ``CompileOptions()`` — representation-type prelude, full optimizer
  ("O" in EXPERIMENTS.md);
* ``CompileOptions(optimizer=OptimizerOptions.none())`` — optimizer off
  ("U");
* ``CompileOptions(prelude="handcoded")`` — hand-coded baseline ("B").
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace

from .backend import convert_assignments_program, generate_code
from .errors import ReproError
from .expand import Expander
from .ir import GlobalSet, Program, iter_tree, pretty_program
from .opt import OptimizerOptions, optimize_program
from .runtime import prelude_source
from .sexpr import read_all
from .vm import Machine, RunResult, isa
from .vm.heap import DEFAULT_GC_OCCUPANCY, DEFAULT_HEAP_WORDS, default_heap_words

sys.setrecursionlimit(200_000)


@dataclass
class CompileOptions:
    """Everything that selects a compiler configuration."""

    optimizer: OptimizerOptions = field(default_factory=OptimizerOptions)
    #: "reptype" (the paper's approach), "handcoded" (baseline), or
    #: "none" (no prelude: programs restricted to machine primitives)
    prelude: str = "reptype"
    safety: bool = True
    #: additional library source compiled between prelude and program
    extra_prelude: str = ""
    #: fuse hot adjacent instruction pairs into superinstructions (a
    #: dispatch optimisation; decomposed instruction counts are
    #: unaffected — see docs/INTERNALS.md §9)
    fuse: bool = True

    @classmethod
    def unoptimized(cls, **kwargs) -> "CompileOptions":
        return cls(optimizer=OptimizerOptions.none(), **kwargs)

    @classmethod
    def baseline(cls, **kwargs) -> "CompileOptions":
        return cls(prelude="handcoded", **kwargs)


class CompiledProgram:
    """The result of compilation: runnable, inspectable."""

    def __init__(
        self,
        vm_program: isa.VMProgram,
        ir_program: Program,
        stages: dict[str, str] | None = None,
        diagnostics: list | None = None,
    ):
        self.vm_program = vm_program
        self.ir_program = ir_program
        self.stages = stages or {}
        #: lint findings (populated by ``compile_source(diagnostics=True)``)
        self.diagnostics = diagnostics or []

    def run(
        self,
        heap_words: int | None = None,
        max_steps: int | None = None,
        count_instructions: bool = True,
        input_text: str = "",
        engine: str | None = None,
        profile: bool = False,
        gc_occupancy: float | None = DEFAULT_GC_OCCUPANCY,
        deadline_seconds: float | None = None,
        max_alloc_words: int | None = None,
        budget=None,
    ) -> RunResult:
        machine = Machine(
            self.vm_program,
            heap_words=heap_words,
            max_steps=max_steps,
            count_instructions=count_instructions,
            input_text=input_text,
            engine=engine,
            profile=profile,
            gc_occupancy=gc_occupancy,
            deadline_seconds=deadline_seconds,
            max_alloc_words=max_alloc_words,
            budget=budget,
        )
        result = machine.run()
        result.machine = machine  # type: ignore[attr-defined]
        return result

    def disassemble(self, name: str | None = None) -> str:
        if name is not None:
            return isa.disassemble(self.vm_program.code_named(name))
        return "\n\n".join(
            isa.disassemble(code) for code in self.vm_program.code_objects
        )

    def static_instruction_count(self, name: str | None = None) -> int:
        return self.vm_program.static_instruction_count(name)


# ----------------------------------------------------------------------
# expansion cache: the prelude parses and expands once per configuration
# ----------------------------------------------------------------------

_EXPANDER_CACHE: dict[tuple, tuple] = {}


def _expander_for(options: CompileOptions) -> tuple[list, Expander]:
    key = (options.prelude, options.safety, options.extra_prelude)
    cached = _EXPANDER_CACHE.get(key)
    if cached is None:
        expander = Expander()
        source = prelude_source(options.prelude, options.safety)
        if options.extra_prelude:
            source = source + "\n" + options.extra_prelude
        forms = expander.expand_program(read_all(source, filename="<prelude>"))
        cached = (forms.forms, expander)
        _EXPANDER_CACHE[key] = cached
    prelude_forms, prototype = cached
    clone = Expander()
    clone.global_env = prototype.global_env  # prelude macros/keywords
    clone.global_names = list(prototype.global_names)
    clone._defined = set(prototype._defined)
    clone._literal_cache = dict(prototype._literal_cache)
    clone._hoist_counter = prototype._hoist_counter
    return list(prelude_forms), clone


# Optimized-prelude cache: the prelude reaches its optimization fixpoint
# once per configuration; later compiles freeze it and optimize only the
# user's forms (sound because the optimizer's analyses still see the
# whole program, and because we fall back to a full optimization when
# the user program assigns any name the prelude defines).
_OPTIMIZED_PRELUDE_CACHE: dict[tuple, tuple] = {}


def _optimizer_key(options: CompileOptions) -> tuple:
    return (
        options.prelude,
        options.safety,
        options.extra_prelude,
        tuple(sorted(options.optimizer.__dict__.items())),
    )


def _optimized_prelude(
    options: CompileOptions, raw_forms: list, global_names: list[str]
) -> tuple[list, set[str]]:
    key = _optimizer_key(options)
    cached = _OPTIMIZED_PRELUDE_CACHE.get(key)
    if cached is None:
        from .opt import OptimizerOptions as _Opts

        prelude_options = _Opts(**options.optimizer.__dict__)
        prelude_options.prune_globals = False  # the user may need anything
        optimized = optimize_program(
            Program(list(raw_forms), list(global_names)),
            prelude_options,
            open_world=True,  # unseen user code may call anything
        )
        defined = {
            form.name for form in optimized.forms if isinstance(form, GlobalSet)
        }
        cached = (optimized.forms, defined)
        _OPTIMIZED_PRELUDE_CACHE[key] = cached
    return cached


def _assigned_globals(forms: list) -> set[str]:
    out: set[str] = set()
    for form in forms:
        for node in iter_tree(form):
            if isinstance(node, GlobalSet):
                out.add(node.name)
    return out


def compile_source(
    source: str,
    options: CompileOptions | None = None,
    explain: bool = False,
    diagnostics: bool = False,
) -> CompiledProgram:
    """Compile Scheme source (with the configured prelude) to VM code.

    With ``diagnostics=True`` the lint engine (:mod:`repro.lint`) also
    runs and its findings are attached to
    :attr:`CompiledProgram.diagnostics`.
    """
    options = options or CompileOptions()
    prelude_forms, expander = _expander_for(options)
    user_program = expander.expand_program(read_all(source))
    stages: dict[str, str] = {}
    if explain:
        stages["expanded"] = pretty_program(Program(user_program.forms, []))
    opt_prelude, prelude_defined = _optimized_prelude(
        options, prelude_forms, expander.global_names
    )
    summary_sink: list = []
    if _assigned_globals(user_program.forms) & prelude_defined:
        # The user redefines or mutates prelude names: whole-program path.
        program = Program(
            prelude_forms + user_program.forms, expander.global_names
        )
        program = optimize_program(
            program, options.optimizer, summary_sink=summary_sink
        )
    else:
        program = Program(
            list(opt_prelude) + user_program.forms, expander.global_names
        )
        program = optimize_program(
            program,
            options.optimizer,
            frozen_prefix=len(opt_prelude),
            summary_sink=summary_sink,
        )
    if explain:
        stages["optimized"] = pretty_program(program)
    program = convert_assignments_program(program)
    vm_program = generate_code(
        program,
        fuse=options.fuse,
        summaries=summary_sink[-1] if summary_sink else None,
    )
    found: list = []
    if diagnostics:
        from .lint import LintOptions, lint_source

        report = lint_source(
            source,
            LintOptions(
                prelude=options.prelude,
                safety=options.safety,
                extra_prelude=options.extra_prelude,
            ),
        )
        found = list(report.diagnostics)
    compiled = CompiledProgram(vm_program, program, stages, found)
    if explain:
        stages["assembly"] = compiled.disassemble()
    return compiled


def run_source(
    source: str,
    options: CompileOptions | None = None,
    heap_words: int | None = None,
    max_steps: int | None = None,
    input_text: str = "",
    engine: str | None = None,
    gc_occupancy: float | None = DEFAULT_GC_OCCUPANCY,
    deadline_seconds: float | None = None,
    max_alloc_words: int | None = None,
) -> RunResult:
    """Compile and run; returns the VM's :class:`RunResult`.

    ``heap_words`` defaults to ``$REPRO_HEAP_WORDS`` (or 1M words);
    ``gc_occupancy`` selects the collection trigger (``None`` restores
    the legacy allocate-until-exhausted policy).  ``max_steps``,
    ``deadline_seconds``, and ``max_alloc_words`` are the resource
    budgets (see docs/INTERNALS.md §11); tripping one raises a
    :class:`~repro.errors.BudgetExceeded` subclass whose ``machine``
    can be resumed.
    """
    compiled = compile_source(source, options)
    return compiled.run(
        heap_words=heap_words,
        max_steps=max_steps,
        input_text=input_text,
        engine=engine,
        gc_occupancy=gc_occupancy,
        deadline_seconds=deadline_seconds,
        max_alloc_words=max_alloc_words,
    )


# ----------------------------------------------------------------------
# decoding results (test/bench harness side)
# ----------------------------------------------------------------------
#
# The decoder mirrors the DEFAULT prelude's tag scheme.  It is harness
# knowledge, not compiler knowledge: programs built with a different
# prelude should be checked through their printed output instead.

from .sexpr import EOF, NIL, UNSPECIFIED, Char, Symbol, cons as _cons


class Closure:
    """Opaque decoded closure value."""

    def __repr__(self) -> str:
        return "#<procedure>"


class Record:
    """Decoded record: the descriptor word plus raw field words."""

    def __init__(self, fields: list):
        self.fields = fields

    def __repr__(self) -> str:
        return f"#<record {len(self.fields)} fields>"


def decode(result: RunResult, word: int | None = None):
    """Decode a result word into Python data (default tag scheme)."""
    machine: Machine = result.machine  # type: ignore[attr-defined]
    if word is None:
        word = result.value
    return decode_word(machine, word)


def decode_word(machine: Machine, word: int, depth: int = 0):
    if depth > 200:
        return "..."
    tag = word & 7
    if tag == 0:
        from .prims import signed

        return signed(word) >> 3
    heap = machine.heap
    if tag == 6:
        kind = (word >> 3) & 31
        payload = word >> 8
        if kind == 0:
            return False
        if kind == 1:
            return True
        if kind == 2:
            return NIL
        if kind == 3:
            return UNSPECIFIED
        if kind == 4:
            return EOF
        if kind == 5:
            return Char(payload)
        return ("immediate", kind, payload)
    base = word & ~7
    if tag == 1:
        return _cons(
            decode_word(machine, heap.load(base + 8), depth + 1),
            decode_word(machine, heap.load(base + 16), depth + 1),
        )
    if tag == 2:
        length = decode_word(machine, heap.load(base + 8), depth + 1)
        return [
            decode_word(machine, heap.load(base + 16 + 8 * i), depth + 1)
            for i in range(length)
        ]
    if tag == 3:
        length = decode_word(machine, heap.load(base + 8), depth + 1)
        chars = []
        for i in range(length):
            char_word = heap.load(base + 16 + 8 * i)
            chars.append(chr(char_word >> 8))
        return "".join(chars)
    if tag == 4:
        name = decode_word(machine, heap.load(base + 8), depth + 1)
        return Symbol(name)
    if tag == 5:
        nwords = heap.load(base >> 3 << 3) if False else heap.mem[base >> 3]
        fields = [heap.load(base + 8 * (i + 1)) for i in range(nwords)]
        return Record(fields)
    if tag == 7:
        return Closure()
    raise ReproError(f"cannot decode word {word:#x}")


__all__ = [
    "CompileOptions",
    "CompiledProgram",
    "Closure",
    "OptimizerOptions",
    "Record",
    "RunResult",
    "compile_source",
    "decode",
    "decode_word",
    "run_source",
]
