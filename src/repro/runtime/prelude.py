"""Assembles the runtime prelude source.

Two preludes ship:

* **reptype** — the paper's approach: all data types defined through the
  abstract representation-type machinery (``scm/reptypes_scm.py`` et
  al.), relying on the general-purpose optimizer for efficiency.
* **handcoded** — the traditional comparator: the same operations with
  their final machine-level bodies written out by hand (and the
  safety-check variant chosen *textually*, the way a compiler with
  built-in knowledge would) — see :mod:`repro.baseline.prelude`.

Both share the library/printer/reflect layers, which are ordinary
Scheme.
"""

from __future__ import annotations

from .scm import (
    extras_scm,
    library_scm,
    printer_scm,
    reader_scm,
    reflect_scm,
    reptypes_scm,
    types_scm,
)

PRELUDE_NAMES = ("reptype", "handcoded", "none")


def prelude_source(kind: str = "reptype", safety: bool = True) -> str:
    """The full prelude text for one configuration."""
    if kind == "none":
        return ""
    safety_define = f"(define %safety (%raw {1 if safety else 0}))\n"
    if kind == "reptype":
        parts = [
            safety_define,
            reptypes_scm.SOURCE,
            types_scm.SOURCE,
            library_scm.SOURCE,
            printer_scm.SOURCE,
            reflect_scm.SOURCE,
            extras_scm.SOURCE,
            reader_scm.SOURCE,
        ]
    elif kind == "handcoded":
        from ..baseline.prelude import handcoded_core_source

        parts = [
            safety_define,
            handcoded_core_source(safety),
            library_scm.SOURCE,
            printer_scm.SOURCE,
            reflect_scm.SOURCE,
            extras_scm.SOURCE,
            reader_scm.SOURCE,
        ]
    else:
        raise ValueError(f"unknown prelude kind {kind!r}")
    return "\n".join(parts)
