"""Runtime prelude sources."""

from .prelude import PRELUDE_NAMES, prelude_source

__all__ = ["PRELUDE_NAMES", "prelude_source"]
