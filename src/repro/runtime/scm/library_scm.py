"""The standard library: lists, strings, higher-order procedures,
interning, apply, and error signalling — ordinary Scheme over the types
layer."""

SOURCE = r"""
;;;; ===================================================================
;;;; Pairs and lists
;;;; ===================================================================

(define (caar x) (car (car x)))
(define (cadr x) (car (cdr x)))
(define (cdar x) (cdr (car x)))
(define (cddr x) (cdr (cdr x)))
(define (caddr x) (car (cddr x)))
(define (cdddr x) (cdr (cddr x)))
(define (cadddr x) (car (cdddr x)))

(define (list . items) items)

(define (length lst)
  (let loop ((node lst) (n 0))
    (if (null? node)
        n
        (loop (cdr node) (+ n 1)))))

(define (list? x)
  (if (null? x)
      #t
      (if (pair? x)
          (list? (cdr x))
          #f)))

(define (list-tail lst k)
  (if (zero? k)
      lst
      (list-tail (cdr lst) (- k 1))))

(define (list-ref lst k) (car (list-tail lst k)))

(define (last-pair lst)
  (if (pair? (cdr lst))
      (last-pair (cdr lst))
      lst))

(define (append2 a b)
  (if (null? a)
      b
      (cons (car a) (append2 (cdr a) b))))

(define (append . lists)
  (if (null? lists)
      '()
      (if (null? (cdr lists))
          (car lists)
          (append2 (car lists) (apply append (cdr lists))))))

(define (%sx-append a b) (append2 a b))

(define (reverse lst)
  (let loop ((node lst) (acc '()))
    (if (null? node)
        acc
        (loop (cdr node) (cons (car node) acc)))))

(define (memq x lst)
  (if (null? lst)
      #f
      (if (eq? x (car lst))
          lst
          (memq x (cdr lst)))))

(define (memv x lst)
  (if (null? lst)
      #f
      (if (eqv? x (car lst))
          lst
          (memv x (cdr lst)))))

(define (member x lst)
  (if (null? lst)
      #f
      (if (equal? x (car lst))
          lst
          (member x (cdr lst)))))

(define (assq key alist)
  (if (null? alist)
      #f
      (if (eq? key (caar alist))
          (car alist)
          (assq key (cdr alist)))))

(define (assv key alist)
  (if (null? alist)
      #f
      (if (eqv? key (caar alist))
          (car alist)
          (assv key (cdr alist)))))

(define (assoc key alist)
  (if (null? alist)
      #f
      (if (equal? key (caar alist))
          (car alist)
          (assoc key (cdr alist)))))

;;;; ===================================================================
;;;; Higher-order procedures
;;;; ===================================================================

(define (map1 f lst)
  (if (null? lst)
      '()
      (cons (f (car lst)) (map1 f (cdr lst)))))

(define (map2 f a b)
  (if (null? a)
      '()
      (if (null? b)
          '()
          (cons (f (car a) (car b)) (map2 f (cdr a) (cdr b))))))

(define (map f lst . more)
  (if (null? more)
      (map1 f lst)
      (map2 f lst (car more))))

(define (for-each1 f lst)
  (if (null? lst)
      #!unspecific
      (begin (f (car lst)) (for-each1 f (cdr lst)))))

(define (for-each f lst . more)
  (if (null? more)
      (for-each1 f lst)
      (if (null? lst)
          #!unspecific
          (begin (f (car lst) (car (car more)))
                 (for-each f (cdr lst) (cdr (car more)))))))

(define (filter keep? lst)
  (if (null? lst)
      '()
      (if (keep? (car lst))
          (cons (car lst) (filter keep? (cdr lst)))
          (filter keep? (cdr lst)))))

(define (fold-left f acc lst)
  (if (null? lst)
      acc
      (fold-left f (f acc (car lst)) (cdr lst))))

(define (fold-right f acc lst)
  (if (null? lst)
      acc
      (f (car lst) (fold-right f acc (cdr lst)))))

(define (reduce f init lst)
  (if (null? lst)
      init
      (fold-left f (car lst) (cdr lst))))

;;;; ===================================================================
;;;; apply
;;;; ===================================================================

(define (%spread->list spread)
  (if (null? (cdr spread))
      (car spread)
      (cons (car spread) (%spread->list (cdr spread)))))

(define (apply f . spread)
  (if (null? spread)
      (%fail (%raw 4))
      (%apply f (%spread->list spread))))

;;;; ===================================================================
;;;; Numeric utilities
;;;; ===================================================================

(define (abs n) (if (< n 0) (- 0 n) n))
(define (min a b) (if (< a b) a b))
(define (max a b) (if (< a b) b a))
(define (even? n) (= (remainder n 2) 0))
(define (odd? n) (not (even? n)))
(define (1+ n) (+ n 1))
(define (-1+ n) (- n 1))

(define (expt base power)
  (let loop ((result 1) (b base) (p power))
    (if (zero? p)
        result
        (if (even? p)
            (loop result (* b b) (quotient p 2))
            (loop (* result b) b (- p 1))))))

(define (gcd a b)
  (let loop ((x (abs a)) (y (abs b)))
    (if (zero? y)
        x
        (loop y (remainder x y)))))

(define (number->string n)
  (if (zero? n)
      "0"
      (let ((negative (< n 0)))
        (let loop ((m (abs n)) (digits '()))
          (if (zero? m)
              (list->string (if negative (cons #\- digits) digits))
              (loop (quotient m 10)
                    (cons (integer->char (+ 48 (remainder m 10))) digits)))))))

(define (string->number s)
  (let ((n (string-length s)))
    (if (zero? n)
        #f
        (let ((negative (char=? (string-ref s 0) #\-)))
          (let loop ((i (if negative 1 0)) (acc 0) (any #f))
            (if (= i n)
                (if any (if negative (- 0 acc) acc) #f)
                (let ((c (char->integer (string-ref s i))))
                  (if (< c 48)
                      #f
                      (if (< 57 c)
                          #f
                          (loop (+ i 1) (+ (* acc 10) (- c 48)) #t))))))))))

;;;; ===================================================================
;;;; Strings
;;;; ===================================================================

(define (string->list s)
  (let ((n (string-length s)))
    (let loop ((i (- n 1)) (acc '()))
      (if (< i 0)
          acc
          (loop (- i 1) (cons (string-ref s i) acc))))))

(define (list->string chars)
  (let ((s (make-string (length chars))))
    (let loop ((i 0) (node chars))
      (if (null? node)
          s
          (begin (string-set! s i (car node))
                 (loop (+ i 1) (cdr node)))))))

(define (string . chars) (list->string chars))

(define (substring s start end)
  (let ((out (make-string (- end start))))
    (let loop ((i start))
      (if (< i end)
          (begin (string-set! out (- i start) (string-ref s i))
                 (loop (+ i 1)))
          out))))

(define (string-copy s) (substring s 0 (string-length s)))

(define (string-append2 a b)
  (let ((la (string-length a)) (lb (string-length b)))
    (let ((out (make-string (+ la lb))))
      (let loop ((i 0))
        (if (< i la)
            (begin (string-set! out i (string-ref a i)) (loop (+ i 1)))
            (let loop2 ((j 0))
              (if (< j lb)
                  (begin (string-set! out (+ la j) (string-ref b j))
                         (loop2 (+ j 1)))
                  out)))))))

(define (string-append . parts)
  (fold-left string-append2 "" parts))

(define (string=? a b)
  (let ((la (string-length a)) (lb (string-length b)))
    (if (= la lb)
        (let loop ((i 0))
          (if (= i la)
              #t
              (if (char=? (string-ref a i) (string-ref b i))
                  (loop (+ i 1))
                  #f)))
        #f)))

(define (string<? a b)
  (let ((la (string-length a)) (lb (string-length b)))
    (let loop ((i 0))
      (if (= i la)
          (< la lb)
          (if (= i lb)
              #f
              (let ((ca (string-ref a i)) (cb (string-ref b i)))
                (if (char<? ca cb)
                    #t
                    (if (char<? cb ca)
                        #f
                        (loop (+ i 1))))))))))

(define (string-fill! s c)
  (let ((n (string-length s)))
    (let loop ((i 0))
      (if (< i n)
          (begin (string-set! s i c) (loop (+ i 1)))
          #!unspecific))))

;;;; ===================================================================
;;;; Vectors (library level)
;;;; ===================================================================

(define (vector . items) (list->vector items))

(define (list->vector items)
  (let ((v (make-vector (length items))))
    (let loop ((i 0) (node items))
      (if (null? node)
          v
          (begin (vector-set! v i (car node))
                 (loop (+ i 1) (cdr node)))))))

(define (%sx-list->vector items) (list->vector items))

(define (vector->list v)
  (let ((n (vector-length v)))
    (let loop ((i (- n 1)) (acc '()))
      (if (< i 0)
          acc
          (loop (- i 1) (cons (vector-ref v i) acc))))))

(define (vector-fill! v x)
  (let ((n (vector-length v)))
    (let loop ((i 0))
      (if (< i n)
          (begin (vector-set! v i x) (loop (+ i 1)))
          #!unspecific))))

(define (vector-map f v)
  (let ((n (vector-length v)))
    (let ((out (make-vector n)))
      (let loop ((i 0))
        (if (< i n)
            (begin (vector-set! out i (f (vector-ref v i)))
                   (loop (+ i 1)))
            out)))))

(define (vector-for-each f v)
  (let ((n (vector-length v)))
    (let loop ((i 0))
      (if (< i n)
          (begin (f (vector-ref v i)) (loop (+ i 1)))
          #!unspecific))))

;;;; ===================================================================
;;;; Symbol interning.  The intern table is ordinary library state.
;;;; ===================================================================

(define *symbol-table* '())

(define (string->symbol str)
  (let loop ((node *symbol-table*))
    (if (null? node)
        (let ((sym (%make-symbol-object (string-copy str))))
          (begin (set! *symbol-table* (cons sym *symbol-table*))
                 sym))
        (if (string=? (symbol->string (car node)) str)
            (car node)
            (loop (cdr node))))))

(define (%sx-intern-literal str) (string->symbol str))

;;;; ===================================================================
;;;; equal?
;;;; ===================================================================

(define (equal? a b)
  (if (eq? a b)
      #t
      (if (pair? a)
          (if (pair? b)
              (if (equal? (car a) (car b))
                  (equal? (cdr a) (cdr b))
                  #f)
              #f)
          (if (string? a)
              (if (string? b) (string=? a b) #f)
              (if (vector? a)
                  (if (vector? b) (%vector-equal? a b) #f)
                  #f)))))

(define (%vector-equal? a b)
  (let ((n (vector-length a)))
    (if (= n (vector-length b))
        (let loop ((i 0))
          (if (= i n)
              #t
              (if (equal? (vector-ref a i) (vector-ref b i))
                  (loop (+ i 1))
                  #f)))
        #f)))

;;;; ===================================================================
;;;; Association-list utilities used by the benchmarks
;;;; ===================================================================

(define (alist-update key value alist)
  (cons (cons key value) alist))

(define (alist-lookup key alist default)
  (let ((hit (assq key alist)))
    (if (eq? hit #f) default (cdr hit))))

;;;; ===================================================================
;;;; Sorting (merge sort; used by examples and benchmarks)
;;;; ===================================================================

(define (sort lst less?)
  (if (null? lst)
      '()
      (if (null? (cdr lst))
          lst
          (let ((halves (%split lst '() '())))
            (%merge (sort (car halves) less?)
                    (sort (cdr halves) less?)
                    less?)))))

(define (%split lst a b)
  (if (null? lst)
      (cons a b)
      (%split (cdr lst) (cons (car lst) b) a)))

(define (%merge a b less?)
  (if (null? a)
      b
      (if (null? b)
          a
          (if (less? (car b) (car a))
              (cons (car b) (%merge a (cdr b) less?))
              (cons (car a) (%merge (cdr a) b less?))))))
"""
