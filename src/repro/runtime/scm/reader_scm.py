"""An S-expression reader written in the Scheme dialect itself.

Input arrives through the two machine escapes ``%getc``/``%peekc``; the
whole datum grammar — lists, dotted pairs, quote shorthands, strings,
characters, booleans, vectors, numbers, symbols, comments — is parsed by
library code, exercising characters, strings, and symbol interning hard.
"""

SOURCE = r"""
;;;; ===================================================================
;;;; Character input
;;;; ===================================================================

(define (read-char)
  (let ((c (%getc)))
    (if (%eq c (%not (%raw 0))) #!eof (%sx-char c))))

(define (peek-char)
  (let ((c (%peekc)))
    (if (%eq c (%not (%raw 0))) #!eof (%sx-char c))))

;;;; ===================================================================
;;;; read
;;;; ===================================================================

(define %dot-symbol (string->symbol "."))

(define (%delimiter? c)
  (if (eof-object? c)
      #t
      (if (char-whitespace? c)
          #t
          (if (char=? c #\()
              #t
              (if (char=? c #\))
                  #t
                  (if (char=? c #\") #t (char=? c #\;)))))))

(define (%skip-atmosphere)
  (let ((c (peek-char)))
    (cond ((eof-object? c) #!unspecific)
          ((char-whitespace? c) (read-char) (%skip-atmosphere))
          ((char=? c #\;) (%skip-line) (%skip-atmosphere))
          (else #!unspecific))))

(define (%skip-line)
  (let ((c (read-char)))
    (cond ((eof-object? c) #!unspecific)
          ((char=? c #\newline) #!unspecific)
          (else (%skip-line)))))

(define (%read-token acc)
  (let ((c (peek-char)))
    (if (%delimiter? c)
        (list->string (reverse acc))
        (begin (read-char) (%read-token (cons c acc))))))

(define (%read-atom)
  (let ((token (%read-token '())))
    (let ((n (string->number token)))
      (if (eq? n #f)
          (string->symbol token)
          n))))

(define (%read-string acc)
  (let ((c (read-char)))
    (cond ((eof-object? c) (error "unterminated string literal"))
          ((char=? c #\") (list->string (reverse acc)))
          ((char=? c #\\)
           (let ((escape (read-char)))
             (when (eof-object? escape) (error "unterminated escape"))
             (%read-string
              (cons (cond ((char=? escape #\n) #\newline)
                          ((char=? escape #\t) #\tab)
                          (else escape))
                    acc))))
          (else (%read-string (cons c acc))))))

(define (%read-char-literal)
  (let ((first (read-char)))
    (when (eof-object? first) (error "unterminated character literal"))
    (let ((next (peek-char)))
      (if (if (char-alphabetic? first) (not (%delimiter? next)) #f)
          (let ((name (string-append (string first) (%read-token '()))))
            (cond ((string=? name "space") #\space)
                  ((string=? name "newline") #\newline)
                  ((string=? name "tab") #\tab)
                  (else (error "unknown character name" name))))
          first))))

(define (%read-hash)
  (let ((c (read-char)))
    (cond ((eof-object? c) (error "unterminated # syntax"))
          ((char=? c #\t) #t)
          ((char=? c #\f) #f)
          ((char=? c #\\) (%read-char-literal))
          ((char=? c #\() (list->vector (%read-list)))
          (else (error "unsupported # syntax" c)))))

(define (%read-list)
  (%skip-atmosphere)
  (let ((c (peek-char)))
    (cond ((eof-object? c) (error "unterminated list"))
          ((char=? c #\)) (read-char) '())
          (else
           (let ((head (read)))
             (if (eq? head %dot-symbol)
                 (let ((tail (read)))
                   (%skip-atmosphere)
                   (let ((closer (read-char)))
                     (if (eqv? closer #\))
                         tail
                         (error "malformed dotted list"))))
                 (cons head (%read-list))))))))

(define (read)
  (%skip-atmosphere)
  (let ((c (peek-char)))
    (cond ((eof-object? c) #!eof)
          ((char=? c #\() (begin (read-char) (%read-list)))
          ((char=? c #\)) (error "unexpected )"))
          ((char=? c #\') (begin (read-char) (list 'quote (read))))
          ((char=? c #\`) (begin (read-char) (list 'quasiquote (read))))
          ((char=? c #\,)
           (read-char)
           (if (eqv? (peek-char) #\@)
               (begin (read-char) (list 'unquote-splicing (read)))
               (list 'unquote (read))))
          ((char=? c #\") (begin (read-char) (%read-string '())))
          ((char=? c #\#) (begin (read-char) (%read-hash)))
          (else (%read-atom)))))

(define (read-line)
  (let loop ((acc '()))
    (let ((c (read-char)))
      (cond ((eof-object? c)
             (if (null? acc) #!eof (list->string (reverse acc))))
            ((char=? c #\newline) (list->string (reverse acc)))
            (else (loop (cons c acc)))))))

(define (read-all)
  (let loop ((acc '()))
    (let ((datum (read)))
      (if (eof-object? datum)
          (reverse acc)
          (loop (cons datum acc))))))
"""
