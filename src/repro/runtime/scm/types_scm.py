"""The concrete Scheme data types, built entirely on the rep machinery.

Nothing here is known to the compiler: booleans, fixnums, characters,
pairs, vectors, strings, and symbols are all library definitions.  The
``%register-…`` calls at the top tell the *substrate* (GC, rest-argument
builder) which low tags are heap pointers and what a pair looks like —
runtime registration by library code, not compiler knowledge.
"""

SOURCE = r"""
;;;; ===================================================================
;;;; Substrate registration (must precede any runtime allocation that
;;;; could provoke a collection).
;;;; ===================================================================

(%register-pointer-rep (%raw 1))   ; pairs
(%register-pointer-rep (%raw 2))   ; vectors
(%register-pointer-rep (%raw 3))   ; strings
(%register-pointer-rep (%raw 4))   ; symbols
(%register-pointer-rep (%raw 5))   ; records
(%register-pair-rep (%raw 1) (%raw 7) (%raw 15))
(%register-nil %sx-nil)
(%register-false %sx-false)

;;;; ===================================================================
;;;; Booleans and identity
;;;; ===================================================================

(define (not x) (if (%eq x %sx-false) %sx-true %sx-false))

(define (boolean? x)
  (if (%eq x %sx-false) %sx-true
      (if (%eq x %sx-true) %sx-true %sx-false)))

(define (eq? a b) (if (%eq a b) %sx-true %sx-false))

;; All immediates (fixnums, chars, booleans) are single words, so eqv?
;; coincides with eq? in this representation scheme.
(define (eqv? a b) (if (%eq a b) %sx-true %sx-false))
(define (%sx-eqv? a b) (if (%eq a b) %sx-true %sx-false))

(define (eof-object? x) (if (%eq x %sx-eof) %sx-true %sx-false))

;;;; ===================================================================
;;;; Fixnums (61-bit; arithmetic wraps — see DESIGN.md)
;;;; ===================================================================

(define (fixnum? x)
  (if (%eq (%and x (%raw 7)) (%raw 0)) %sx-true %sx-false))

(define (integer? x) (fixnum? x))
(define (number? x) (fixnum? x))

(define (%fx-check a)
  (if (%nz %safety)
      (if (%eq (%and a (%raw 7)) (%raw 0))
          %sx-unspecified
          (%fail (%raw 8)))
      %sx-unspecified))

;; Both operands checked at once: the tag bits of (or a b) are zero
;; exactly when both are fixnum-tagged.
(define (%fx-check2 a b)
  (if (%nz %safety)
      (if (%eq (%and (%or a b) (%raw 7)) (%raw 0))
          %sx-unspecified
          (%fail (%raw 8)))
      %sx-unspecified))

(define (+ a b) (begin (%fx-check2 a b) (%add a b)))
(define (- a b) (begin (%fx-check2 a b) (%sub a b)))
(define (* a b) (begin (%fx-check2 a b) (%mul (%asr a (%raw 3)) b)))

;; Words are fixnums scaled by 8, and truncated division/remainder
;; commute with that scaling, so quotient needs one retag and remainder
;; none at all.
(define (quotient a b)
  (begin (%fx-check2 a b) (%lsl (%div a b) (%raw 3))))
(define (remainder a b)
  (begin (%fx-check2 a b) (%mod a b)))
(define (modulo a b)
  (begin
    (%fx-check2 a b)
    (let ((r (%mod a b)))
      (if (%eq r (%raw 0))
          r
          (if (%lt (%xor a b) (%raw 0)) (%add r b) r)))))

(define (= a b) (begin (%fx-check2 a b) (if (%eq a b) %sx-true %sx-false)))
(define (< a b) (begin (%fx-check2 a b) (if (%lt a b) %sx-true %sx-false)))
(define (<= a b) (begin (%fx-check2 a b) (if (%le a b) %sx-true %sx-false)))
(define (> a b) (begin (%fx-check2 a b) (if (%lt b a) %sx-true %sx-false)))
(define (>= a b) (begin (%fx-check2 a b) (if (%le b a) %sx-true %sx-false)))

(define (zero? n) (begin (%fx-check n) (if (%eq n (%raw 0)) %sx-true %sx-false)))
(define (negative? n) (begin (%fx-check n) (if (%lt n (%raw 0)) %sx-true %sx-false)))
(define (positive? n) (begin (%fx-check n) (if (%lt (%raw 0) n) %sx-true %sx-false)))

;; The fx- names are aliases exercised by the benchmarks.
(define (fx+ a b) (+ a b))
(define (fx- a b) (- a b))
(define (fx* a b) (* a b))
(define (fx< a b) (< a b))
(define (fx= a b) (= a b))

;;;; ===================================================================
;;;; Characters (immediate kind 5)
;;;; ===================================================================

(define %sx-char (%imm-constructor (%raw 5)))
(define char? (%imm-predicate (%raw 5)))

(define (%char-check c)
  (if (%nz %safety)
      (if (%eq (%and c (%raw 255)) (%raw 46))   ; (5<<3)|6
          %sx-unspecified
          (%fail (%raw 11)))
      %sx-unspecified))

(define (char->integer c)
  (begin (%char-check c) (%sx-fixnum (%imm-payload c))))
(define (integer->char n)
  (begin (%fx-check n) (%sx-char (%fx-raw n))))

;; One immediate kind means same-kind words compare monotonically.
(define (char=? a b) (begin (%char-check a) (%char-check b) (if (%eq a b) %sx-true %sx-false)))
(define (char<? a b) (begin (%char-check a) (%char-check b) (if (%ult a b) %sx-true %sx-false)))
(define (char<=? a b) (begin (%char-check a) (%char-check b) (if (%ule a b) %sx-true %sx-false)))
(define (char>? a b) (char<? b a))
(define (char>=? a b) (char<=? b a))

;;;; ===================================================================
;;;; Pairs (pointer tag 1, fields: car, cdr)
;;;; ===================================================================

(define pair? (%pointer-predicate (%raw 1)))
(define cons (%pointer-constructor-2 (%raw 1)))
(define car (%maybe-checked-accessor (%raw 1) (%raw 0) (%raw 5)))
(define cdr (%maybe-checked-accessor (%raw 1) (%raw 1) (%raw 5)))
(define set-car! (%maybe-checked-mutator (%raw 1) (%raw 0) (%raw 5)))
(define set-cdr! (%maybe-checked-mutator (%raw 1) (%raw 1) (%raw 5)))

(define (null? x) (if (%eq x %sx-nil) %sx-true %sx-false))

(define (%sx-cons a b) (cons a b))

;;;; ===================================================================
;;;; Vectors (pointer tag 2; field 0 = length fixnum, elements follow)
;;;; ===================================================================

(define vector? (%pointer-predicate (%raw 2)))

(define (%sx-vector-alloc-raw nraw)
  (let ((v (%alloc (%add nraw (%raw 1)) (%raw 2))))
    (begin (%store v (%raw 6) (%sx-fixnum nraw))
           v)))

(define (%sx-vector-init! v iraw x)
  (%store v (%field-disp (%raw 2) (%add iraw (%raw 1))) x))

(define vector-length (%maybe-checked-accessor (%raw 2) (%raw 0) (%raw 6)))

;; Bounds check: a tagged non-negative fixnum index compares unsigned
;; against the tagged length in one instruction; the tag test on the
;; index keeps non-fixnums out.
(define (%vector-check v i)
  (if (%nz %safety)
      (begin
        (if (%eq (%and v (%raw 7)) (%raw 2)) %sx-unspecified (%fail (%raw 6)))
        (if (%eq (%and i (%raw 7)) (%raw 0)) %sx-unspecified (%fail (%raw 8)))
        (if (%ult i (%load v (%raw 6))) %sx-unspecified (%fail (%raw 2))))
      %sx-unspecified))

(define (vector-ref v i)
  (begin (%vector-check v i)
         (%load v (%add (%and i (%raw -8)) (%raw 14)))))

(define (vector-set! v i x)
  (begin (%vector-check v i)
         (%store v (%add (%and i (%raw -8)) (%raw 14)) x)
         %sx-unspecified))

(define (%vector-fill-from! v iraw nraw fill)
  (if (%ult iraw nraw)
      (begin (%sx-vector-init! v iraw fill)
             (%vector-fill-from! v (%add iraw (%raw 1)) nraw fill))
      v))

(define (make-vector n . opt)
  (begin
    (%fx-check n)
    (if (%lt n (%raw 0)) (%fail (%raw 2)) %sx-unspecified)
    (let ((fill (if (null? opt) %sx-unspecified (car opt)))
          (nraw (%fx-raw n)))
      (%vector-fill-from! (%sx-vector-alloc-raw nraw) (%raw 0) nraw fill))))

;;;; ===================================================================
;;;; Strings (pointer tag 3; field 0 = length fixnum, char words follow)
;;;; ===================================================================

(define string? (%pointer-predicate (%raw 3)))

(define (%sx-string-alloc-raw nraw)
  (let ((s (%alloc (%add nraw (%raw 1)) (%raw 3))))
    (begin (%store s (%raw 5) (%sx-fixnum nraw))
           s)))

(define (%sx-string-init! s iraw coderaw)
  (%store s (%field-disp (%raw 3) (%add iraw (%raw 1)))
          (%or (%lsl coderaw (%raw 8)) (%raw 46))))

(define string-length (%maybe-checked-accessor (%raw 3) (%raw 0) (%raw 7)))

(define (%string-check s i)
  (if (%nz %safety)
      (begin
        (if (%eq (%and s (%raw 7)) (%raw 3)) %sx-unspecified (%fail (%raw 7)))
        (if (%eq (%and i (%raw 7)) (%raw 0)) %sx-unspecified (%fail (%raw 8)))
        (if (%ult i (%load s (%raw 5))) %sx-unspecified (%fail (%raw 2))))
      %sx-unspecified))

(define (string-ref s i)
  (begin (%string-check s i)
         (%load s (%add (%and i (%raw -8)) (%raw 13)))))

(define (string-set! s i c)
  (begin (%string-check s i)
         (%char-check c)
         (%store s (%add (%and i (%raw -8)) (%raw 13)) c)
         %sx-unspecified))

(define (%string-fill-from! s iraw nraw fill)
  (if (%ult iraw nraw)
      (begin (%store s (%add (%lsl iraw (%raw 3)) (%raw 13)) fill)
             (%string-fill-from! s (%add iraw (%raw 1)) nraw fill))
      s))

(define (make-string n . opt)
  (begin
    (%fx-check n)
    (if (%lt n (%raw 0)) (%fail (%raw 2)) %sx-unspecified)
    (let ((fill (if (null? opt) (%sx-char (%raw 32)) (car opt)))
          (nraw (%fx-raw n)))
      (begin (%char-check fill)
             (%string-fill-from! (%sx-string-alloc-raw nraw) (%raw 0) nraw fill)))))

;;;; ===================================================================
;;;; Symbols (pointer tag 4; field 0 = name string); interning lives in
;;;; the library layer, which has string=?.
;;;; ===================================================================

(define symbol? (%pointer-predicate (%raw 4)))
(define %make-symbol-object (%pointer-constructor-1 (%raw 4)))
(define symbol->string (%maybe-checked-accessor (%raw 4) (%raw 0) (%raw 14)))

;;;; ===================================================================
;;;; Procedures
;;;; ===================================================================

;; Tag 7 is the compiler's closure tag.  (Assignment-conversion cells
;; share it but never escape to user code.)
(define (procedure? x)
  (if (%eq (%and x (%raw 7)) (%raw 7)) %sx-true %sx-false))
"""
