"""Library extras: derived features built with plain Scheme + macros.

Everything here is deliberately implemented *on top of* the public
library — more evidence that the language grows by user code, not by
compiler extension: `case-lambda` is a macro over rest-arguments,
promises are closures over a mutable cell, hash tables are vectors of
association lists.
"""

SOURCE = r"""
;;;; ===================================================================
;;;; case-lambda (R5RS+ style), as a macro over rest arguments
;;;; ===================================================================

(define (%arity-matches? formals-count has-rest n)
  (if (%eq has-rest %sx-false)
      (= formals-count n)
      (<= formals-count n)))

(define-syntax case-lambda
  (syntax-rules ()
    ((_ (formals body ...) ...)
     (let ((clauses
            (list (%case-lambda-clause formals (lambda formals body ...)) ...)))
       (lambda args
         (%case-lambda-dispatch clauses args))))))

(define-syntax %case-lambda-clause
  (syntax-rules ()
    ((_ (a ...) proc) (cons (length '(a ...)) (cons #f proc)))
    ((_ (a . rest) proc) (cons (%count-fixed (a . rest)) (cons #t proc)))
    ((_ args proc) (cons 0 (cons #t proc)))))

(define-syntax %count-fixed
  (syntax-rules ()
    ((_ (a . rest)) (+ 1 (%count-fixed rest)))
    ((_ a) 0)))

(define (%case-lambda-dispatch clauses args)
  (let ((n (length args)))
    (let loop ((node clauses))
      (if (null? node)
          (error "case-lambda: no matching clause for arity" n)
          (let ((clause (car node)))
            (if (%arity-matches? (car clause) (cadr clause) n)
                (%apply (cddr clause) args)
                (loop (cdr node))))))))

;;;; ===================================================================
;;;; Promises: delay / force with memoization
;;;; ===================================================================

(define %promise-rep (make-record-rep 'promise '(done value thunk)))
(define %make-promise-record (rep-constructor %promise-rep))
(define promise? (rep-predicate %promise-rep))
(define %promise-done (rep-accessor %promise-rep 0))
(define %promise-value (rep-accessor %promise-rep 1))
(define %promise-thunk (rep-accessor %promise-rep 2))
(define %promise-set-done! (rep-mutator %promise-rep 0))
(define %promise-set-value! (rep-mutator %promise-rep 1))
(define %promise-set-thunk! (rep-mutator %promise-rep 2))

(define (make-promise thunk)
  (%make-promise-record #f #f thunk))

(define-syntax delay
  (syntax-rules ()
    ((_ expr) (make-promise (lambda () expr)))))

(define (force p)
  (if (promise? p)
      (if (%promise-done p)
          (%promise-value p)
          (let ((value ((%promise-thunk p))))
            (if (%promise-done p)     ; the thunk may have forced p
                (%promise-value p)
                (begin
                  (%promise-set-done! p #t)
                  (%promise-set-value! p value)
                  (%promise-set-thunk! p #f)
                  value))))
      p))

;;;; ===================================================================
;;;; Escape continuations (upward-only call/cc)
;;;;
;;;; The substrate provides %callec: f receives a procedure that, when
;;;; invoked with one value, abandons the computation between here and
;;;; the invocation and returns that value from the %callec form.  It
;;;; is valid only during the dynamic extent of the call (no re-entry).
;;;; ===================================================================

(define (call-with-escape-continuation f) (%callec f))
(define (call/cc f) (%callec f))
(define (call-with-current-continuation f) (%callec f))

;;;; ===================================================================
;;;; More list utilities
;;;; ===================================================================

(define (iota n . opt)
  (let ((start (if (null? opt) 0 (car opt)))
        (step (if (if (pair? opt) (pair? (cdr opt)) #f) (cadr opt) 1)))
    (let loop ((i (- n 1)) (acc '()))
      (if (< i 0)
          acc
          (loop (- i 1) (cons (+ start (* i step)) acc))))))

(define (list-copy lst)
  (if (pair? lst)
      (cons (car lst) (list-copy (cdr lst)))
      lst))

(define (list-index pred lst)
  (let loop ((node lst) (i 0))
    (cond ((null? node) #f)
          ((pred (car node)) i)
          (else (loop (cdr node) (+ i 1))))))

(define (take lst n)
  (if (zero? n)
      '()
      (cons (car lst) (take (cdr lst) (- n 1)))))

(define (drop lst n) (list-tail lst n))

(define (delete x lst)
  (filter (lambda (item) (not (equal? item x))) lst))

(define (remove-duplicates lst)
  (let loop ((node lst) (seen '()) (acc '()))
    (cond ((null? node) (reverse acc))
          ((member (car node) seen) (loop (cdr node) seen acc))
          (else (loop (cdr node)
                      (cons (car node) seen)
                      (cons (car node) acc))))))

(define (count pred lst)
  (fold-left (lambda (acc item) (if (pred item) (+ acc 1) acc)) 0 lst))

(define (any pred lst)
  (cond ((null? lst) #f)
        ((pred (car lst)) #t)
        (else (any pred (cdr lst)))))

(define (every pred lst)
  (cond ((null? lst) #t)
        ((pred (car lst)) (every pred (cdr lst)))
        (else #f)))

(define (append! a b) (append a b))   ; persistent implementation

(define (assq-del key alist)
  (filter (lambda (entry) (not (eq? (car entry) key))) alist))

;;;; ===================================================================
;;;; More character and string utilities
;;;; ===================================================================

(define (char-alphabetic? c)
  (let ((n (char->integer c)))
    (if (if (<= 65 n) (<= n 90) #f)
        #t
        (if (<= 97 n) (<= n 122) #f))))

(define (char-numeric? c)
  (let ((n (char->integer c)))
    (if (<= 48 n) (<= n 57) #f)))

(define (char-whitespace? c)
  (let ((n (char->integer c)))
    (if (= n 32) #t (if (<= 9 n) (<= n 13) #f))))

(define (char-upcase c)
  (let ((n (char->integer c)))
    (if (if (<= 97 n) (<= n 122) #f)
        (integer->char (- n 32))
        c)))

(define (char-downcase c)
  (let ((n (char->integer c)))
    (if (if (<= 65 n) (<= n 90) #f)
        (integer->char (+ n 32))
        c)))

(define (string-upcase s)
  (list->string (map char-upcase (string->list s))))

(define (string-downcase s)
  (list->string (map char-downcase (string->list s))))

(define (string-index s c)
  (let ((n (string-length s)))
    (let loop ((i 0))
      (cond ((= i n) #f)
            ((char=? (string-ref s i) c) i)
            (else (loop (+ i 1)))))))

(define (string-contains? haystack needle)
  (let ((hn (string-length haystack)) (nn (string-length needle)))
    (let loop ((start 0))
      (cond ((< (- hn start) nn) #f)
            ((string=? (substring haystack start (+ start nn)) needle) start)
            (else (loop (+ start 1)))))))

(define (string-join parts separator)
  (cond ((null? parts) "")
        ((null? (cdr parts)) (car parts))
        (else (string-append (car parts)
                             separator
                             (string-join (cdr parts) separator)))))

(define (string-split s c)
  (let ((n (string-length s)))
    (let loop ((i 0) (start 0) (acc '()))
      (cond ((= i n) (reverse (cons (substring s start n) acc)))
            ((char=? (string-ref s i) c)
             (loop (+ i 1) (+ i 1) (cons (substring s start i) acc)))
            (else (loop (+ i 1) start acc))))))

;;;; ===================================================================
;;;; Hash tables: vectors of association lists, string/eq keys
;;;; ===================================================================

(define %hash-rep (make-record-rep 'hash-table '(buckets size)))
(define %make-hash-record (rep-constructor %hash-rep))
(define hash-table? (rep-predicate %hash-rep))
(define %hash-buckets (rep-accessor %hash-rep 0))
(define %hash-size (rep-accessor %hash-rep 1))
(define %hash-set-size! (rep-mutator %hash-rep 1))

(define (make-hash-table . opt)
  (let ((nbuckets (if (null? opt) 32 (car opt))))
    (%make-hash-record (make-vector nbuckets '()) 0)))

(define (%hash-key key)
  (cond ((fixnum? key) (abs key))
        ((char? key) (char->integer key))
        ((symbol? key) (%string-hash (symbol->string key)))
        ((string? key) (%string-hash key))
        ((eq? key #t) 1)
        ((eq? key #f) 0)
        ((null? key) 2)
        (else (error "unhashable key" key))))

(define (%string-hash s)
  (let ((n (string-length s)))
    (let loop ((i 0) (h 5381))
      (if (= i n)
          (abs h)
          (loop (+ i 1)
                (remainder (+ (* h 33) (char->integer (string-ref s i)))
                           1000003))))))

(define (%hash-bucket table key)
  (remainder (%hash-key key) (vector-length (%hash-buckets table))))

(define (%hash-entry table key)
  (let ((bucket (vector-ref (%hash-buckets table) (%hash-bucket table key))))
    (let loop ((node bucket))
      (cond ((null? node) #f)
            ((equal? (caar node) key) (car node))
            (else (loop (cdr node)))))))

(define (hash-table-set! table key value)
  (let ((entry (%hash-entry table key)))
    (if (eq? entry #f)
        (let ((index (%hash-bucket table key))
              (buckets (%hash-buckets table)))
          (vector-set! buckets index
                       (cons (cons key value) (vector-ref buckets index)))
          (%hash-set-size! table (+ (%hash-size table) 1)))
        (set-cdr! entry value))
    #!unspecific))

(define (hash-table-ref table key . default)
  (let ((entry (%hash-entry table key)))
    (cond ((pair? entry) (cdr entry))
          ((pair? default) (car default))
          (else (error "key not found" key)))))

(define (hash-table-contains? table key)
  (pair? (%hash-entry table key)))

(define (hash-table-count table) (%hash-size table))

(define (hash-table-delete! table key)
  (when (hash-table-contains? table key)
    (let ((index (%hash-bucket table key))
          (buckets (%hash-buckets table)))
      (vector-set! buckets index
                   (filter (lambda (entry) (not (equal? (car entry) key)))
                           (vector-ref buckets index)))
      (%hash-set-size! table (- (%hash-size table) 1))))
  #!unspecific)

(define (hash-table-keys table)
  (let ((buckets (%hash-buckets table)))
    (let loop ((i 0) (acc '()))
      (if (= i (vector-length buckets))
          acc
          (loop (+ i 1)
                (append (map car (vector-ref buckets i)) acc))))))

;;;; ===================================================================
;;;; define-record-type (SRFI-9 style), over make-record-rep
;;;; ===================================================================

(define (record-field-accessor rep field-name)
  (rep-accessor rep (rep-field-index rep field-name)))

(define (record-field-mutator rep field-name)
  (rep-mutator rep (rep-field-index rep field-name)))

(define-syntax define-record-type
  (syntax-rules ()
    ((_ type (ctor ctor-field ...) pred clause ...)
     (begin
       (define type (make-record-rep 'type '(ctor-field ...)))
       (define ctor (rep-constructor type))
       (define pred (rep-predicate type))
       (%define-record-clauses type clause ...)))))

(define-syntax %define-record-clauses
  (syntax-rules ()
    ((_ type) (begin))
    ((_ type (field accessor) rest ...)
     (begin
       (define accessor (record-field-accessor type 'field))
       (%define-record-clauses type rest ...)))
    ((_ type (field accessor mutator) rest ...)
     (begin
       (define accessor (record-field-accessor type 'field))
       (define mutator (record-field-mutator type 'field))
       (%define-record-clauses type rest ...)))))

(define (hash-table->alist table)
  (let ((buckets (%hash-buckets table)))
    (let loop ((i 0) (acc '()))
      (if (= i (vector-length buckets))
          acc
          (loop (+ i 1) (append (vector-ref buckets i) acc))))))
"""
