"""display/write, implemented with the single ``%putc`` escape."""

SOURCE = r"""
;;;; ===================================================================
;;;; Output.  %putc is the only I/O primitive; everything else --
;;;; including number formatting and datum quoting -- is library code.
;;;; ===================================================================

(define (newline) (begin (%putc (%raw 10)) #!unspecific))

(define (write-char c)
  (begin (%char-check c)
         (%putc (%imm-payload c))
         #!unspecific))

(define (%put-string s)
  (let ((n (string-length s)))
    (let loop ((i 0))
      (if (< i n)
          (begin (write-char (string-ref s i)) (loop (+ i 1)))
          #!unspecific))))

(define (display x)
  (begin (%print x #f) #!unspecific))

(define (write x)
  (begin (%print x #t) #!unspecific))

(define (%print x quoting)
  (if (fixnum? x) (%put-string (number->string x))
  (if (null? x) (%put-string "()")
  (if (eq? x #t) (%put-string "#t")
  (if (eq? x #f) (%put-string "#f")
  (if (char? x) (if quoting (%print-char x) (write-char x))
  (if (string? x) (if quoting (%print-quoted-string x) (%put-string x))
  (if (symbol? x) (%put-string (symbol->string x))
  (if (pair? x) (%print-list x quoting)
  (if (vector? x) (%print-vector x quoting)
  (if (procedure? x) (%put-string "#<procedure>")
  (if (eq? x #!unspecific) (%put-string "#<unspecified>")
  (if (eq? x #!eof) (%put-string "#<eof>")
      (%print-record x quoting))))))))))))))

(define (%print-char c)
  (begin
    (%put-string "#\\")
    (let ((code (char->integer c)))
      (if (= code 32) (%put-string "space")
          (if (= code 10) (%put-string "newline")
              (if (= code 9) (%put-string "tab")
                  (write-char c)))))))

(define (%print-quoted-string s)
  (begin
    (write-char #\")
    (let ((n (string-length s)))
      (let loop ((i 0))
        (if (< i n)
            (let ((c (string-ref s i)))
              (begin
                (if (char=? c #\")
                    (%put-string "\\\"")
                    (if (char=? c #\\)
                        (%put-string "\\\\")
                        (if (char=? c #\newline)
                            (%put-string "\\n")
                            (write-char c))))
                (loop (+ i 1))))
            #!unspecific)))
    (write-char #\")))

(define (%print-list x quoting)
  (begin
    (write-char #\()
    (%print (car x) quoting)
    (let loop ((node (cdr x)))
      (if (pair? node)
          (begin (write-char #\space)
                 (%print (car node) quoting)
                 (loop (cdr node)))
          (if (null? node)
              #!unspecific
              (begin (%put-string " . ")
                     (%print node quoting)))))
    (write-char #\))))

(define (%print-vector v quoting)
  (begin
    (%put-string "#(")
    (let ((n (vector-length v)))
      (let loop ((i 0))
        (if (< i n)
            (begin
              (if (< 0 i) (write-char #\space) #!unspecific)
              (%print (vector-ref v i) quoting)
              (loop (+ i 1)))
            #!unspecific)))
    (write-char #\))))

;; Records print with their representation-type name (reflect layer
;; patches %print-record once descriptors exist).
(define (%print-record x quoting)
  (%put-string "#<record>"))

;;;; ===================================================================
;;;; Error signalling
;;;; ===================================================================

(define (error message . irritants)
  (begin
    (%put-string "error: ")
    (if (string? message) (%put-string message) (%print message #t))
    (for-each1 (lambda (x) (begin (write-char #\space) (%print x #t)))
               irritants)
    (newline)
    (%fail (%raw 3))))

(define (assertion-check ok what)
  (if ok #t (error "assertion failed:" what)))
"""
