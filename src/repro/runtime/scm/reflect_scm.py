"""The first-class layer: representation-type descriptors, reflection,
and runtime creation of new data types.

A descriptor is itself a record (tag 5) whose meta-descriptor closes the
loop.  ``rep-of`` maps any value to its descriptor; ``rep-accessor`` of
a built-in type returns the very same procedure the prelude defined
(``(eq? (rep-accessor pair-rep 0) car)`` holds), which is the paper's
point: the optimized operations and the reflective objects are one
system.
"""

SOURCE = r"""
;;;; ===================================================================
;;;; Records: pointer tag 5, field 0 = descriptor.
;;;; ===================================================================

(define (record? x)
  (if (%eq (%and x (%raw 7)) (%raw 5)) %sx-true %sx-false))

(define (%record-alloc desc nraw)
  (let ((r (%alloc (%add nraw (%raw 1)) (%raw 5))))
    (begin (%store r (%raw 3) desc)
           r)))

(define (%record-desc r) (%load r (%raw 3)))

;; Field i of a record lives at machine field i+1 (after the descriptor).
(define (record-rep-accessor desc i)
  (let ((disp (%field-disp (%raw 5) (%add (%fx-raw i) (%raw 1)))))
    (lambda (r)
      (if (%nz %safety)
          (if (%eq (%and r (%raw 7)) (%raw 5))
              (if (%eq (%load r (%raw 3)) desc)
                  (%load r disp)
                  (%fail (%raw 1)))
              (%fail (%raw 1)))
          (%load r disp)))))

(define (record-rep-mutator desc i)
  (let ((disp (%field-disp (%raw 5) (%add (%fx-raw i) (%raw 1)))))
    (lambda (r v)
      (if (%nz %safety)
          (if (%eq (%and r (%raw 7)) (%raw 5))
              (if (%eq (%load r (%raw 3)) desc)
                  (begin (%store r disp v) %sx-unspecified)
                  (%fail (%raw 1)))
              (%fail (%raw 1)))
          (begin (%store r disp v) %sx-unspecified)))))

(define (record-rep-predicate desc)
  (lambda (x)
    (if (%eq (%and x (%raw 7)) (%raw 5))
        (if (%eq (%load x (%raw 3)) desc) %sx-true %sx-false)
        %sx-false)))

(define (%record-init-from-list! r fields)
  (let loop ((i (%raw 1)) (node fields))
    (if (null? node)
        r
        (begin (%store r (%field-disp (%raw 5) i) (car node))
               (loop (%add i (%raw 1)) (cdr node))))))

(define (record-rep-constructor desc nfields)
  (lambda fields
    (if (= (length fields) nfields)
        (%record-init-from-list! (%record-alloc desc (%fx-raw nfields)) fields)
        (%fail (%raw 4)))))

;;;; ===================================================================
;;;; Representation-type descriptors.
;;;;
;;;; Descriptor fields: 0 name (symbol), 1 kind (symbol: pointer /
;;;; immediate / record / fixnum / procedure), 2 tag-or-kind (fixnum),
;;;; 3 field count (fixnum or #f), 4 constructor, 5 predicate,
;;;; 6 accessors (vector), 7 mutators (vector).
;;;; ===================================================================

;; Bootstrap the meta-descriptor: a record describing descriptors,
;; described by itself.
(define %rep-meta
  (let ((m (%record-alloc (%raw 0) (%raw 8))))
    (begin (%store m (%raw 3) m)   ; self-describing
           m)))

(define rep-name (record-rep-accessor %rep-meta 0))
(define rep-kind (record-rep-accessor %rep-meta 1))
(define rep-tag (record-rep-accessor %rep-meta 2))
(define rep-field-count (record-rep-accessor %rep-meta 3))
(define rep-constructor (record-rep-accessor %rep-meta 4))
(define rep-predicate (record-rep-accessor %rep-meta 5))
(define %rep-accessors (record-rep-accessor %rep-meta 6))
(define %rep-mutators (record-rep-accessor %rep-meta 7))

(define %rep-set-name! (record-rep-mutator %rep-meta 0))
(define %rep-set-kind! (record-rep-mutator %rep-meta 1))
(define %rep-set-tag! (record-rep-mutator %rep-meta 2))
(define %rep-set-field-count! (record-rep-mutator %rep-meta 3))
(define %rep-set-constructor! (record-rep-mutator %rep-meta 4))
(define %rep-set-predicate! (record-rep-mutator %rep-meta 5))
(define %rep-set-accessors! (record-rep-mutator %rep-meta 6))
(define %rep-set-mutators! (record-rep-mutator %rep-meta 7))

(define (%make-rep name kind tag nfields ctor pred accessors mutators)
  (let ((r (%record-alloc %rep-meta (%raw 8))))
    (begin
      (%rep-set-name! r name)
      (%rep-set-kind! r kind)
      (%rep-set-tag! r tag)
      (%rep-set-field-count! r nfields)
      (%rep-set-constructor! r ctor)
      (%rep-set-predicate! r pred)
      (%rep-set-accessors! r accessors)
      (%rep-set-mutators! r mutators)
      r)))

;; Finish the meta-descriptor's own fields.
(%rep-set-name! %rep-meta 'representation-type)
(%rep-set-kind! %rep-meta 'record)
(%rep-set-tag! %rep-meta 5)
(%rep-set-field-count! %rep-meta 8)
(%rep-set-constructor! %rep-meta (record-rep-constructor %rep-meta 8))
(%rep-set-predicate! %rep-meta (record-rep-predicate %rep-meta))
(%rep-set-accessors! %rep-meta
  (vector rep-name rep-kind rep-tag rep-field-count
          rep-constructor rep-predicate %rep-accessors %rep-mutators))
(%rep-set-mutators! %rep-meta
  (vector %rep-set-name! %rep-set-kind! %rep-set-tag!
          %rep-set-field-count! %rep-set-constructor! %rep-set-predicate!
          %rep-set-accessors! %rep-set-mutators!))

(define (rep-accessor rep i) (vector-ref (%rep-accessors rep) i))
(define (rep-mutator rep i) (vector-ref (%rep-mutators rep) i))

;;;; ===================================================================
;;;; Descriptors for every built-in type.  Note: the procedures stored
;;;; here ARE the optimized ones defined earlier — the static fast path
;;;; and the reflective objects coincide.
;;;; ===================================================================

(define pair-rep
  (%make-rep 'pair 'pointer 1 2 cons pair?
             (vector car cdr) (vector set-car! set-cdr!)))

(define vector-rep
  (%make-rep 'vector 'pointer 2 #f make-vector vector?
             (vector vector-length) (vector)))

(define string-rep
  (%make-rep 'string 'pointer 3 #f make-string string?
             (vector string-length) (vector)))

(define symbol-rep
  (%make-rep 'symbol 'pointer 4 1 string->symbol symbol?
             (vector symbol->string) (vector)))

(define fixnum-rep
  (%make-rep 'fixnum 'fixnum 0 0 #f fixnum? (vector) (vector)))

(define procedure-rep
  (%make-rep 'procedure 'procedure 7 #f #f procedure? (vector) (vector)))

(define boolean-rep
  (%make-rep 'boolean 'immediate 0 0 #f boolean? (vector) (vector)))

(define char-rep
  (%make-rep 'char 'immediate 5 0 integer->char char?
             (vector char->integer) (vector)))

(define null-rep
  (%make-rep 'empty-list 'immediate 2 0 #f null? (vector) (vector)))

(define unspecified-rep
  (%make-rep 'unspecified 'immediate 3 0 #f
             (lambda (x) (eq? x #!unspecific)) (vector) (vector)))

(define eof-rep
  (%make-rep 'eof 'immediate 4 0 #f eof-object? (vector) (vector)))

;;;; ===================================================================
;;;; rep-of: map any value to its descriptor.
;;;; ===================================================================

(define *pointer-reps*
  (vector fixnum-rep pair-rep vector-rep string-rep symbol-rep
          #f #f procedure-rep))

(define *immediate-reps*
  (let ((v (make-vector 32 #f)))
    (begin
      (vector-set! v 0 boolean-rep)
      (vector-set! v 1 boolean-rep)
      (vector-set! v 2 null-rep)
      (vector-set! v 3 unspecified-rep)
      (vector-set! v 4 eof-rep)
      (vector-set! v 5 char-rep)
      v)))

(define (tag-of x) (%sx-fixnum (%and x (%raw 7))))

(define (%imm-kind-of x) (%sx-fixnum (%and (%lsr x (%raw 3)) (%raw 31))))

(define (rep-of x)
  (let ((tag (tag-of x)))
    (if (= tag 5)
        (%record-desc x)
        (if (= tag 6)
            (vector-ref *immediate-reps* (%imm-kind-of x))
            (vector-ref *pointer-reps* tag)))))

(define (rep-type? x) ((record-rep-predicate %rep-meta) x))

;;;; ===================================================================
;;;; Creating new representation types at run time (first-class use).
;;;; ===================================================================

;; Field names of runtime-created record types, for reflection and for
;; the define-record-type macro (a side table keyed by descriptor).
(define *rep-field-names* '())

(define (rep-field-names rep)
  (let ((hit (assq rep *rep-field-names*)))
    (if (eq? hit #f) #f (cdr hit))))

(define (rep-field-index rep field-name)
  (let ((names (rep-field-names rep)))
    (if (eq? names #f)
        (error "representation has no named fields" rep)
        (let ((index (list-index (lambda (n) (eq? n field-name)) names)))
          (if (eq? index #f)
              (error "no such field" field-name)
              index)))))

(define (make-record-rep name field-names)
  (let ((nfields (length field-names)))
    (let ((rep (%make-rep name 'record 5 nfields #f #f #f #f)))
      (begin
        (set! *rep-field-names*
              (cons (cons rep field-names) *rep-field-names*))
        (%rep-set-constructor! rep (record-rep-constructor rep nfields))
        (%rep-set-predicate! rep (record-rep-predicate rep))
        (%rep-set-accessors!
         rep
         (let ((v (make-vector nfields)))
           (let loop ((i 0))
             (if (< i nfields)
                 (begin (vector-set! v i (record-rep-accessor rep i))
                        (loop (+ i 1)))
                 v))))
        (%rep-set-mutators!
         rep
         (let ((v (make-vector nfields)))
           (let loop ((i 0))
             (if (< i nfields)
                 (begin (vector-set! v i (record-rep-mutator rep i))
                        (loop (+ i 1)))
                 v))))
        rep))))

(define *next-immediate-kind* 6)

(define (make-immediate-rep name)
  (if (< *next-immediate-kind* 32)
      (let ((kind *next-immediate-kind*))
        (begin
          (set! *next-immediate-kind* (+ kind 1))
          (let ((kraw (%fx-raw kind)))
            (let ((rep (%make-rep name 'immediate kind 0
                                  (lambda (payload)
                                    ((%imm-constructor kraw) (%fx-raw payload)))
                                  (%imm-predicate kraw)
                                  (vector (lambda (x) (%sx-fixnum (%imm-payload x))))
                                  (vector))))
              (begin (vector-set! *immediate-reps* kind rep)
                     rep)))))
      (error "out of immediate kinds")))

;; Patch the printer: records display with their type name, and values
;; of runtime-created immediate types display through their descriptor.
(define (%print-record x quoting)
  (if (record? x)
      (let ((desc (%record-desc x)))
        (begin
          (%put-string "#<")
          (if (rep-type? desc)
              (%print (rep-name desc) #f)
              (%put-string "record"))
          (%put-string ">")))
      (let ((rep (rep-of x)))
        (if (rep-type? rep)
            (begin
              (%put-string "#<")
              (%print (rep-name rep) #f)
              (%put-string " ")
              (%print ((rep-accessor rep 0) x) quoting)
              (%put-string ">"))
            (%put-string "#<unknown>")))))
"""
