"""The representation-type machinery, in the Scheme dialect itself.

This file is the reproduction's heart: everything the compiler would
traditionally know about data representation is *defined here*, as
ordinary procedural code over the machine primitives.  ``(%raw n)`` is a
raw machine-word literal; everything else follows the conventions at the
top of the source.

Conventions (enforced by discipline, tested by the suite):

* Procedures whose names start with ``%`` traffic in raw words.
* A raw 0/1 truth value may only be tested with a *direct* comparison
  primitive in ``if`` position — never stored and re-tested with Scheme
  truth (the expander compares general tests against ``%sx-false``).
* Public procedures take and return tagged Scheme values.
"""

SOURCE = r"""
;;;; ===================================================================
;;;; Representation types, layer 0: raw word formats.
;;;;
;;;; The tag assignment (3 low bits) chosen by THIS FILE:
;;;;   0 fixnum  (value << 3: +,-,comparisons work directly on words)
;;;;   1 pair    2 vector    3 string    4 symbol    5 record
;;;;   6 immediate (low byte = kind<<3 | 6; payload in bits 8+)
;;;;   7 closure/cell (the only compiler-owned layout)
;;;; ===================================================================

;;; --- fixnums -------------------------------------------------------
;;; The compiler lowers the literal `5` to (%sx-fixnum 5): even integer
;;; literals get their representation from here.

(define (%sx-fixnum raw) (%lsl raw (%raw 3)))
(define (%fx-raw n) (%asr n (%raw 3)))

;;; --- immediates ------------------------------------------------------
;;; Immediate kinds used by the prelude: 0 #f, 1 #t, 2 (), 3 unspecified,
;;; 4 eof, 5 character.  Kinds 6..31 are available to user code through
;;; make-immediate-rep (reflect layer).

(define (%imm-word kind payload)
  (%or (%lsl payload (%raw 8))
       (%or (%lsl kind (%raw 3)) (%raw 6))))

(define %sx-false (%imm-word (%raw 0) (%raw 0)))
(define %sx-true (%imm-word (%raw 1) (%raw 0)))
(define %sx-nil (%imm-word (%raw 2) (%raw 0)))
(define %sx-unspecified (%imm-word (%raw 3) (%raw 0)))
(define %sx-eof (%imm-word (%raw 4) (%raw 0)))

(define (%imm-constructor kind)
  (lambda (payload) (%imm-word kind payload)))

(define (%imm-payload x) (%lsr x (%raw 8)))

(define (%imm-low-byte kind) (%or (%lsl kind (%raw 3)) (%raw 6)))

(define (%imm-predicate kind)
  (lambda (x)
    (if (%eq (%and x (%raw 255)) (%imm-low-byte kind))
        %sx-true
        %sx-false)))

;;; --- pointer types ---------------------------------------------------
;;; A heap block's field i lives at byte displacement 8*(i+1) - tag from
;;; the tagged pointer (displacement 0 is the substrate's header).

(define (%field-disp tag i)
  (%sub (%mul (%add i (%raw 1)) (%raw 8)) tag))

(define (%pointer-predicate tag)
  (lambda (x)
    (if (%eq (%and x (%raw 7)) tag) %sx-true %sx-false)))

(define (%pointer-accessor tag i)
  (lambda (x) (%load x (%field-disp tag i))))

(define (%pointer-checked-accessor tag i failcode)
  (lambda (x)
    (if (%eq (%and x (%raw 7)) tag)
        (%load x (%field-disp tag i))
        (%fail failcode))))

(define (%pointer-mutator tag i)
  (lambda (x v)
    (begin (%store x (%field-disp tag i) v) %sx-unspecified)))

(define (%pointer-checked-mutator tag i failcode)
  (lambda (x v)
    (if (%eq (%and x (%raw 7)) tag)
        (begin (%store x (%field-disp tag i) v) %sx-unspecified)
        (%fail failcode))))

;;; Fixed-arity constructors (1..4 fields).  A traditional compiler
;;; builds these into its code generator; here they are closures
;;; returned by ordinary procedures.

(define (%pointer-constructor-1 tag)
  (lambda (a)
    (let ((p (%alloc (%raw 1) tag)))
      (begin (%store p (%field-disp tag (%raw 0)) a)
             p))))

(define (%pointer-constructor-2 tag)
  (lambda (a b)
    (let ((p (%alloc (%raw 2) tag)))
      (begin (%store p (%field-disp tag (%raw 0)) a)
             (%store p (%field-disp tag (%raw 1)) b)
             p))))

(define (%pointer-constructor-3 tag)
  (lambda (a b c)
    (let ((p (%alloc (%raw 3) tag)))
      (begin (%store p (%field-disp tag (%raw 0)) a)
             (%store p (%field-disp tag (%raw 1)) b)
             (%store p (%field-disp tag (%raw 2)) c)
             p))))

(define (%pointer-constructor-4 tag)
  (lambda (a b c d)
    (let ((p (%alloc (%raw 4) tag)))
      (begin (%store p (%field-disp tag (%raw 0)) a)
             (%store p (%field-disp tag (%raw 1)) b)
             (%store p (%field-disp tag (%raw 2)) c)
             (%store p (%field-disp tag (%raw 3)) d)
             p))))

;;; Safety-selected operation makers.  %safety is a compile-time
;;; constant supplied by the prelude assembler; with optimization the
;;; selection folds away entirely.

(define (%maybe-checked-accessor tag i failcode)
  (if (%nz %safety)
      (%pointer-checked-accessor tag i failcode)
      (%pointer-accessor tag i)))

(define (%maybe-checked-mutator tag i failcode)
  (if (%nz %safety)
      (%pointer-checked-mutator tag i failcode)
      (%pointer-mutator tag i)))
"""
