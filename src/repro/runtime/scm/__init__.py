"""Scheme source fragments for the runtime prelude."""
