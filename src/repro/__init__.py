"""repro — a reproduction of "First-Class Data-Type Representations in
SchemeXerox" (Adams, Curtis & Spreitzer, PLDI 1993).

A Scheme compiler whose knowledge of data representation lives almost
entirely in library code (first-class representation types), a
register-VM substrate with instruction-count statistics, and the
general-purpose optimizer that makes the abstract code as fast as the
hand-coded baseline.

Quick start::

    from repro import run_source, decode
    print(decode(run_source("(let loop ((i 0) (s 0)) "
                            "  (if (= i 10) s (loop (+ i 1) (+ s i))))")))
"""

from .api import (
    Closure,
    CompiledProgram,
    CompileOptions,
    Record,
    RunResult,
    compile_source,
    decode,
    decode_word,
    run_source,
)
from .errors import (
    AllocBudgetExceeded,
    BudgetExceeded,
    CompileError,
    DeadlineExceeded,
    ExpandError,
    HeapExhausted,
    ReaderError,
    ReproError,
    SchemeError,
    StepBudgetExceeded,
    VMError,
)
from .opt import OptimizerOptions
from .vm import Budget, TrapInfo

__version__ = "1.0.0"

__all__ = [
    "AllocBudgetExceeded",
    "Budget",
    "BudgetExceeded",
    "Closure",
    "CompileError",
    "CompileOptions",
    "CompiledProgram",
    "DeadlineExceeded",
    "ExpandError",
    "HeapExhausted",
    "OptimizerOptions",
    "ReaderError",
    "Record",
    "ReproError",
    "RunResult",
    "SchemeError",
    "StepBudgetExceeded",
    "TrapInfo",
    "VMError",
    "compile_source",
    "decode",
    "decode_word",
    "run_source",
]
