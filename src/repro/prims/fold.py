"""Compile-time evaluation of machine primitives.

These functions implement exactly the VM's semantics over raw 64-bit
words, so constant folding is a faithful partial execution of the target
machine.  All inputs and outputs are Python ints in ``[0, 2**64)``.
"""

from __future__ import annotations

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1
SIGN_BIT = 1 << (WORD_BITS - 1)


class FoldCannot(Exception):
    """Raised when a fold would be unsound (e.g. division by zero)."""


def wrap(value: int) -> int:
    """Truncate a Python int to an unsigned 64-bit word."""
    return value & WORD_MASK


def signed(word: int) -> int:
    """Interpret an unsigned word as two's-complement signed."""
    word &= WORD_MASK
    return word - (1 << WORD_BITS) if word & SIGN_BIT else word


def fold_add(a: int, b: int) -> int:
    return wrap(a + b)


def fold_sub(a: int, b: int) -> int:
    return wrap(a - b)


def fold_mul(a: int, b: int) -> int:
    return wrap(signed(a) * signed(b))


def fold_div(a: int, b: int) -> int:
    if b == 0:
        raise FoldCannot("division by zero")
    quotient = abs(signed(a)) // abs(signed(b))
    if (signed(a) < 0) != (signed(b) < 0):
        quotient = -quotient
    return wrap(quotient)


def fold_mod(a: int, b: int) -> int:
    if b == 0:
        raise FoldCannot("modulo by zero")
    # Truncated remainder: sign follows the dividend (C semantics).
    remainder = abs(signed(a)) % abs(signed(b))
    if signed(a) < 0:
        remainder = -remainder
    return wrap(remainder)


def fold_and(a: int, b: int) -> int:
    return a & b


def fold_or(a: int, b: int) -> int:
    return a | b


def fold_xor(a: int, b: int) -> int:
    return a ^ b


def fold_not(a: int) -> int:
    return wrap(~a)


def _shift_amount(b: int) -> int:
    # Hardware-style: only the low 6 bits of the shift count matter.
    return b & (WORD_BITS - 1)


def fold_lsl(a: int, b: int) -> int:
    return wrap(a << _shift_amount(b))


def fold_lsr(a: int, b: int) -> int:
    return (a & WORD_MASK) >> _shift_amount(b)


def fold_asr(a: int, b: int) -> int:
    return wrap(signed(a) >> _shift_amount(b))


def _bool(value: bool) -> int:
    return 1 if value else 0


def fold_eq(a: int, b: int) -> int:
    return _bool(wrap(a) == wrap(b))


def fold_neq(a: int, b: int) -> int:
    return _bool(wrap(a) != wrap(b))


def fold_lt(a: int, b: int) -> int:
    return _bool(signed(a) < signed(b))


def fold_le(a: int, b: int) -> int:
    return _bool(signed(a) <= signed(b))


def fold_ult(a: int, b: int) -> int:
    return _bool(wrap(a) < wrap(b))


def fold_ule(a: int, b: int) -> int:
    return _bool(wrap(a) <= wrap(b))


def fold_nz(a: int) -> int:
    return _bool(wrap(a) != 0)
