"""Per-primitive abstract signatures (transfer functions).

Each machine primitive gets one transfer function over
:class:`repro.absint.lattice.AbstractValue`: given abstract arguments it
returns the abstract result the VM could produce.  Soundness contract:
for any concrete words in the argument abstractions, the concrete result
is in the returned abstraction.

Two facts about the low three bits do most of the work:

* ``&``, ``|``, ``^``, ``+``, ``-``, ``*`` and ``<< k`` all *commute
  with truncation to the low 3 bits* — no information flows from high
  bits into low bits — so tag sets push through arithmetic exactly.
  This is what lets the analysis prove that ``(%add fixnum fixnum)`` is
  still fixnum-tagged even though the 64-bit value may wrap.
* two words with disjoint tag sets are unequal, so ``%eq`` folds from
  tag evidence alone — the flow-sensitive generalisation of the
  dominating-check trick in :mod:`repro.opt.cse`.

Interval arithmetic is deliberately non-wrapping: when an ideal result
could leave the signed 64-bit range the interval goes to ⊤ (the tag
component survives, as above).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..absint.lattice import (
    ALL_TAGS,
    BOOL_WORD,
    BOTTOM,
    INT_MAX,
    INT_MIN,
    UNKNOWN,
    AbstractValue,
    const,
    from_tags,
    make,
)
from .table import all_prims

Transfer = Callable[[List[AbstractValue]], AbstractValue]

_SIGNATURES: Dict[str, Transfer] = {}


def signature(name: str) -> Transfer:
    """The transfer function for ``name`` (total over the prim table)."""
    return _SIGNATURES[name]


def abstract_eval(name: str, args: List[AbstractValue]) -> AbstractValue:
    """Apply ``name``'s abstract signature; ⊥ in, ⊥ out."""
    if any(arg.is_bottom for arg in args):
        return BOTTOM
    fn = _SIGNATURES.get(name)
    if fn is None:
        return UNKNOWN
    return fn(args)


def _register(name: str):
    def install(fn: Transfer) -> Transfer:
        _SIGNATURES[name] = fn
        return fn

    return install


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _tag_map(a: AbstractValue, b: AbstractValue, op) -> frozenset:
    """Push a low-3-bit-preserving binary op through two tag sets."""
    if len(a.tags) * len(b.tags) > 64:
        return ALL_TAGS
    return frozenset((op(ta, tb) & 7) for ta in a.tags for tb in b.tags)


def _interval(lo: int, hi: int, tags: frozenset) -> AbstractValue:
    """An interval result, flushing to ⊤-interval on signed overflow."""
    if lo < INT_MIN or hi > INT_MAX:
        return make(INT_MIN, INT_MAX, tags)
    return make(lo, hi, tags)


def _shift_amounts(b: AbstractValue) -> list | None:
    """The possible hardware shift counts (low 6 bits), when few."""
    if b.is_bottom:
        return None
    if b.hi - b.lo > 3:
        return None
    return sorted({(v & 63) for v in range(b.lo, b.hi + 1) if (v & 7) in b.tags})


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------


@_register("%add")
def _abs_add(args):
    a, b = args
    return _interval(a.lo + b.lo, a.hi + b.hi, _tag_map(a, b, lambda x, y: x + y))


@_register("%sub")
def _abs_sub(args):
    a, b = args
    return _interval(a.lo - b.hi, a.hi - b.lo, _tag_map(a, b, lambda x, y: x - y))


@_register("%mul")
def _abs_mul(args):
    a, b = args
    products = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    return _interval(min(products), max(products), _tag_map(a, b, lambda x, y: x * y))


@_register("%div")
def _abs_div(args):
    a, b = args
    # Truncating signed division.  Tags do not survive division.
    if b.lo > 0 or b.hi < 0:
        candidates = []
        for bound in (b.lo, b.hi, 1 if b.lo <= 1 <= b.hi else None,
                      -1 if b.lo <= -1 <= b.hi else None):
            if bound is None or bound == 0:
                continue
            for x in (a.lo, a.hi):
                quotient = abs(x) // abs(bound)
                if (x < 0) != (bound < 0):
                    quotient = -quotient
                candidates.append(quotient)
        if candidates:
            return _interval(min(candidates), max(candidates), ALL_TAGS)
    return UNKNOWN


@_register("%mod")
def _abs_mod(args):
    a, b = args
    # Truncated remainder: |r| < |b| and sign follows the dividend.
    if b.lo > 0 or b.hi < 0:
        bound = max(abs(b.lo), abs(b.hi)) - 1
        lo = 0 if a.lo >= 0 else -bound
        hi = 0 if a.hi <= 0 else bound
        return _interval(lo, hi, ALL_TAGS)
    return UNKNOWN


# ----------------------------------------------------------------------
# bit operations
# ----------------------------------------------------------------------


@_register("%and")
def _abs_and(args):
    a, b = args
    tags = _tag_map(a, b, lambda x, y: x & y)
    # (x & mask) for a known small non-negative mask is in [0, mask].
    mask = b.as_constant()
    operand = a
    if mask is None:
        mask = a.as_constant()
        operand = b
    if mask is not None and 0 <= mask <= INT_MAX:
        if mask < 8 and len(operand.tags) < 8:
            # Fully determined by the tag set.
            values = sorted({t & mask for t in operand.tags})
            return make(values[0], values[-1], tags)
        lo = 0
        hi = mask
        if operand.nonneg():
            hi = min(hi, operand.hi)
        return make(lo, hi, tags)
    if a.nonneg() or b.nonneg():
        return make(0, min(a.hi if a.nonneg() else INT_MAX,
                           b.hi if b.nonneg() else INT_MAX), tags)
    return make(INT_MIN, INT_MAX, tags)


@_register("%or")
def _abs_or(args):
    a, b = args
    tags = _tag_map(a, b, lambda x, y: x | y)
    if a.nonneg() and b.nonneg():
        # x | y < 2 ** bits(max(x, y) + 1); cheap sound bound.
        hi = a.hi | b.hi
        bound = 1
        while bound <= hi:
            bound <<= 1
        # x | y is at least max(x, y) and below the next power of two.
        return make(max(a.lo, b.lo), bound - 1, tags)
    return make(INT_MIN, INT_MAX, tags)


@_register("%xor")
def _abs_xor(args):
    a, b = args
    return make(INT_MIN, INT_MAX, _tag_map(a, b, lambda x, y: x ^ y))


@_register("%not")
def _abs_not(args):
    (a,) = args
    tags = frozenset((~t) & 7 for t in a.tags)
    return _interval(-a.hi - 1, -a.lo - 1, tags)


@_register("%lsl")
def _abs_lsl(args):
    a, b = args
    shifts = _shift_amounts(b)
    if shifts is None:
        return UNKNOWN
    tags = frozenset()
    lo, hi = INT_MAX, INT_MIN
    for k in shifts:
        if k >= 3:
            tags |= frozenset({0})
        else:
            tags |= frozenset((t << k) & 7 for t in a.tags)
        lo = min(lo, a.lo << k)
        hi = max(hi, a.hi << k)
    return _interval(lo, hi, tags)


@_register("%lsr")
def _abs_lsr(args):
    a, b = args
    shifts = _shift_amounts(b)
    if shifts is None or not a.nonneg():
        # Negative words shift in their high bits: huge unsigned values.
        return UNKNOWN
    lo, hi = INT_MAX, INT_MIN
    for k in shifts:
        lo = min(lo, a.lo >> k)
        hi = max(hi, a.hi >> k)
    return make(lo, hi, ALL_TAGS)


@_register("%asr")
def _abs_asr(args):
    a, b = args
    shifts = _shift_amounts(b)
    if shifts is None:
        return UNKNOWN
    lo, hi = INT_MAX, INT_MIN
    for k in shifts:
        lo = min(lo, a.lo >> k)
        hi = max(hi, a.hi >> k)
    return make(lo, hi, ALL_TAGS)


# ----------------------------------------------------------------------
# comparisons — fold from interval order or tag disjointness
# ----------------------------------------------------------------------


def _known(value: bool) -> AbstractValue:
    return const(1 if value else 0)


@_register("%eq")
def _abs_eq(args):
    a, b = args
    ka, kb = a.as_constant(), b.as_constant()
    if ka is not None and kb is not None:
        return _known(ka == kb)
    if a.hi < b.lo or b.hi < a.lo:
        return _known(False)
    if not (a.tags & b.tags):
        # The tag is a function of the word: disjoint tags ⇒ unequal.
        return _known(False)
    return BOOL_WORD


@_register("%neq")
def _abs_neq(args):
    result = _abs_eq(args)
    known = result.as_constant()
    if known is None:
        return BOOL_WORD
    return _known(known == 0)


@_register("%lt")
def _abs_lt(args):
    a, b = args
    if a.hi < b.lo:
        return _known(True)
    if a.lo >= b.hi:
        return _known(False)
    return BOOL_WORD


@_register("%le")
def _abs_le(args):
    a, b = args
    if a.hi <= b.lo:
        return _known(True)
    if a.lo > b.hi:
        return _known(False)
    return BOOL_WORD


def _unsigned_class(v: AbstractValue) -> int | None:
    """0 when the whole interval is ≥ 0, 1 when wholly < 0 (which is
    unsigned-larger), else None."""
    if v.lo >= 0:
        return 0
    if v.hi < 0:
        return 1
    return None


@_register("%ult")
def _abs_ult(args):
    a, b = args
    ca, cb = _unsigned_class(a), _unsigned_class(b)
    if ca is None or cb is None:
        return BOOL_WORD
    if ca == cb:
        # Same sign class: unsigned order coincides with signed order.
        return _abs_lt(args)
    return _known(ca < cb)


@_register("%ule")
def _abs_ule(args):
    a, b = args
    ca, cb = _unsigned_class(a), _unsigned_class(b)
    if ca is None or cb is None:
        return BOOL_WORD
    if ca == cb:
        return _abs_le(args)
    return _known(ca < cb)


@_register("%nz")
def _abs_nz(args):
    (a,) = args
    if a.excludes_word(0):
        return _known(True)
    if a.as_constant() == 0:
        return _known(False)
    return BOOL_WORD


# ----------------------------------------------------------------------
# memory, registry, I/O, control
# ----------------------------------------------------------------------


@_register("%load")
def _abs_load(args):
    # ⊤ here; the whole-program heap model lives in
    # absint/summaries.py (HeapFacts), which the analyzer consults
    # per load site when a summary fixpoint is available.
    return UNKNOWN


@_register("%store")
def _abs_store(args):
    return const(0)  # the VM's %store result is the raw word 0


@_register("%alloc")
def _abs_alloc(args):
    _nwords, tag = args
    # The substrate returns base | tag with an 8-aligned base, so the
    # result's low bits are exactly the requested tag's.
    return from_tags(tag.tags)


def _abs_io(args):
    return UNKNOWN


for _name in ("%register-pointer-rep", "%register-pair-rep", "%register-nil",
              "%register-false", "%putc", "%getc", "%peekc"):
    _SIGNATURES[_name] = _abs_io


@_register("%fail")
def _abs_fail(args):
    return BOTTOM  # never returns


@_register("%apply")
def _abs_apply(args):
    return UNKNOWN


@_register("%callec")
def _abs_callec(args):
    return UNKNOWN


def _check_total() -> None:
    missing = set(all_prims()) - set(_SIGNATURES)
    assert not missing, f"primitives without abstract signatures: {missing}"


_check_total()
