"""The machine-primitive table.

These primitives are the compiler's entire built-in vocabulary for
computing with data.  They correspond one-for-one with what a simple RISC
target offers: 64-bit integer arithmetic, bit operations, comparisons,
word-aligned loads and stores, allocation, and a few runtime escapes.

Notably *absent*: ``car``, ``cons``, ``vector-ref``, type predicates,
boxing/unboxing of fixnums… all of that is library code built from these.

Effects drive the optimizer:

``PURE``
    No effect; foldable when arguments are constants; freely removable,
    reorderable, and CSE-able.
``READ``
    Reads the heap.  Removable when unused, CSE-able until the next
    write/alloc/call.
``WRITE`` / ``ALLOC`` / ``IO`` / ``CONTROL``
    Observable effects; never removed or duplicated.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from . import fold as foldmod


class Effect(Enum):
    PURE = "pure"
    READ = "read"
    WRITE = "write"
    ALLOC = "alloc"
    IO = "io"
    CONTROL = "control"


@dataclass(frozen=True)
class PrimSpec:
    """Static description of one machine primitive."""

    name: str
    arity: int
    effect: Effect
    #: constant-fold function over raw 64-bit ints; raises
    #: :class:`~repro.prims.fold.FoldCannot` when the fold is invalid
    #: (e.g. division by zero).
    fold: Optional[Callable[..., int]] = None
    #: comparison primitives produce a raw 0/1 word and can be fused
    #: directly into conditional branches by the backend.
    comparison: bool = False

    @property
    def pure(self) -> bool:
        return self.effect is Effect.PURE

    @property
    def removable(self) -> bool:
        """May an unused application of this primitive be deleted?"""
        return self.effect in (Effect.PURE, Effect.READ)


_TABLE: dict[str, PrimSpec] = {}


def _define(
    name: str,
    arity: int,
    effect: Effect,
    fold: Optional[Callable[..., int]] = None,
    comparison: bool = False,
) -> None:
    _TABLE[name] = PrimSpec(name, arity, effect, fold, comparison)


# --- arithmetic (64-bit wrap-around; div/mod are signed, truncating) ----
_define("%add", 2, Effect.PURE, foldmod.fold_add)
_define("%sub", 2, Effect.PURE, foldmod.fold_sub)
_define("%mul", 2, Effect.PURE, foldmod.fold_mul)
_define("%div", 2, Effect.PURE, foldmod.fold_div)
_define("%mod", 2, Effect.PURE, foldmod.fold_mod)

# --- bit operations -----------------------------------------------------
_define("%and", 2, Effect.PURE, foldmod.fold_and)
_define("%or", 2, Effect.PURE, foldmod.fold_or)
_define("%xor", 2, Effect.PURE, foldmod.fold_xor)
_define("%not", 1, Effect.PURE, foldmod.fold_not)
_define("%lsl", 2, Effect.PURE, foldmod.fold_lsl)
_define("%lsr", 2, Effect.PURE, foldmod.fold_lsr)
_define("%asr", 2, Effect.PURE, foldmod.fold_asr)

# --- comparisons (raw 0/1 results; fusable into branches) ---------------
_define("%eq", 2, Effect.PURE, foldmod.fold_eq, comparison=True)
_define("%neq", 2, Effect.PURE, foldmod.fold_neq, comparison=True)
_define("%lt", 2, Effect.PURE, foldmod.fold_lt, comparison=True)
_define("%le", 2, Effect.PURE, foldmod.fold_le, comparison=True)
_define("%ult", 2, Effect.PURE, foldmod.fold_ult, comparison=True)
_define("%ule", 2, Effect.PURE, foldmod.fold_ule, comparison=True)
_define("%nz", 1, Effect.PURE, foldmod.fold_nz, comparison=True)

# --- memory -------------------------------------------------------------
# (%load ptr disp): read the word at byte address ptr+disp (8-aligned).
_define("%load", 2, Effect.READ)
# (%store ptr disp value): write value; result is the raw word 0.
_define("%store", 3, Effect.WRITE)
# (%alloc nwords tag): allocate nwords payload words (plus a header the
# substrate owns), returning base|tag.  Fields start zeroed.
_define("%alloc", 2, Effect.ALLOC)

# --- runtime registry (library tells the substrate about its reps) ------
# (%register-pointer-rep tag): mark a low-tag as "heap pointer" for GC.
_define("%register-pointer-rep", 1, Effect.IO)
# (%register-pair-rep tag car-disp cdr-disp): pair layout, used by the VM
# only to build rest-argument lists and unpack %apply lists.
_define("%register-pair-rep", 3, Effect.IO)
# (%register-nil word): the empty-list word, for the same two purposes.
_define("%register-nil", 1, Effect.IO)
# (%register-false word): the false word, used by VM diagnostics only.
_define("%register-false", 1, Effect.IO)

# --- I/O and control ----------------------------------------------------
# (%putc rawcode): append the character to the program's output.
_define("%putc", 1, Effect.IO)
# (%getc): consume and return the next input character code, or the
# all-ones word at end of input.
_define("%getc", 0, Effect.IO)
# (%peekc): like %getc but does not consume.
_define("%peekc", 0, Effect.IO)
# (%fail code): signal a runtime error; does not return.
_define("%fail", 1, Effect.CONTROL)
# (%apply f arglist): tail-agnostic full application of f to a list.
_define("%apply", 2, Effect.CONTROL)
# (%callec f): call f with an escape continuation (upward-only call/cc).
_define("%callec", 1, Effect.CONTROL)


def lookup(name: str) -> Optional[PrimSpec]:
    """The spec for ``name``, or None when it is not a primitive."""
    return _TABLE.get(name)


def spec(name: str) -> PrimSpec:
    """The spec for ``name``; raises KeyError for unknown primitives."""
    return _TABLE[name]


def is_prim_name(name: str) -> bool:
    return name in _TABLE


def all_prims() -> dict[str, PrimSpec]:
    return dict(_TABLE)
