"""Machine primitives: the compiler's only built-in operations."""

from .fold import WORD_BITS, WORD_MASK, FoldCannot, signed, wrap
from .table import Effect, PrimSpec, all_prims, is_prim_name, lookup, spec

__all__ = [
    "Effect",
    "FoldCannot",
    "PrimSpec",
    "WORD_BITS",
    "WORD_MASK",
    "all_prims",
    "is_prim_name",
    "lookup",
    "signed",
    "spec",
    "wrap",
]
