"""Quickstart: compile and run Scheme on the SchemeXerox-style stack.

Run:  python examples/quickstart.py
"""

from repro import CompileOptions, OptimizerOptions, compile_source, decode, run_source

# ----------------------------------------------------------------------
# 1. Run a program.  Every data type it uses — pairs, fixnums, strings —
#    is defined by *library code*, not by the compiler.
# ----------------------------------------------------------------------

program = """
(define (squares n)
  (let loop ((i 1) (acc '()))
    (if (> i n) (reverse acc) (loop (+ i 1) (cons (* i i) acc)))))

(display "the first squares: ")
(display (squares 7))
(newline)
(fold-left + 0 (squares 7))
"""

result = run_source(program)
print(result.output, end="")
print("final value:", decode(result))
print(f"executed {result.steps} VM instructions, "
      f"{result.words_allocated} words allocated, {result.gc_count} GCs")

# ----------------------------------------------------------------------
# 2. The paper's point, in one screen: `car` is library code built from
#    machine primitives, yet compiles to a single load instruction.
# ----------------------------------------------------------------------

compiled = compile_source(
    "(define (first p) (car p))\n(first '(1 2))",
    CompileOptions(optimizer=OptimizerOptions(prune_globals=False), safety=False),
)
print("\n`(car p)` with the optimizer on (unsafe mode):")
print(compiled.disassemble("first"))

unopt_options = OptimizerOptions.none()
unopt_options.prune_globals = False
unopt = compile_source(
    "(define (first p) (car p))\n(first '(1 2))",
    CompileOptions(optimizer=unopt_options, safety=False),
)
print("\nThe same, optimizer off — a real call into the abstract library:")
print(unopt.disassemble("first"))

# ----------------------------------------------------------------------
# 3. Configurations compared on a tiny benchmark.
# ----------------------------------------------------------------------

fib = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 15)"
print("\nfib(15) under the three configurations of EXPERIMENTS.md:")
for label, options in [
    ("O  rep-types + optimizer", CompileOptions()),
    ("B  hand-coded baseline  ", CompileOptions.baseline()),
    ("U  optimizer off        ", CompileOptions.unoptimized()),
]:
    run = run_source(fib, options)
    print(f"  {label}: value={decode(run)}  instructions={run.steps}")
