"""Lazy streams and memoization — library-extras showcase.

Promises (`delay`/`force`), `case-lambda`, and hash tables are all
*library extras* (src/repro/runtime/scm/extras_scm.py): none of them
required touching the compiler, which is the paper's externality thesis
applied to language features rather than data types.

Run:  python examples/lazy_streams.py
"""

from repro import decode, run_source

PROGRAM = """
;;; ---- infinite streams via promises ---------------------------------
(define-syntax stream-cons
  (syntax-rules ()
    ((_ head tail) (cons head (delay tail)))))

(define (stream-car s) (car s))
(define (stream-cdr s) (force (cdr s)))

(define (stream-take s n)
  (if (zero? n)
      '()
      (cons (stream-car s) (stream-take (stream-cdr s) (- n 1)))))

(define (stream-filter pred s)
  (if (pred (stream-car s))
      (stream-cons (stream-car s) (stream-filter pred (stream-cdr s)))
      (stream-filter pred (stream-cdr s))))

(define (integers-from n) (stream-cons n (integers-from (+ n 1))))

;;; the sieve of Eratosthenes, on an infinite stream
(define (sieve s)
  (stream-cons
   (stream-car s)
   (sieve (stream-filter
           (lambda (n) (not (= (remainder n (stream-car s)) 0)))
           (stream-cdr s)))))

(define primes (sieve (integers-from 2)))
(display "first 15 primes: ")
(display (stream-take primes 15))
(newline)

;;; ---- memoization with a hash table -----------------------------------
(define fib-cache (make-hash-table))

(define (fib n)
  (if (< n 2)
      n
      (if (hash-table-contains? fib-cache n)
          (hash-table-ref fib-cache n)
          (let ((value (+ (fib (- n 1)) (fib (- n 2)))))
            (hash-table-set! fib-cache n value)
            value))))

(display "fib(60) via memoization: ")
(display (fib 60))
(newline)
(display "cache entries: ")
(display (hash-table-count fib-cache))
(newline)

;;; ---- case-lambda: one name, several arities ---------------------------
(define range
  (case-lambda
    ((end) (iota end))
    ((start end) (iota (- end start) start))
    ((start end step) (iota (quotient (- end start) step) start step))))

(display "(range 5)        = ") (display (range 5)) (newline)
(display "(range 3 8)      = ") (display (range 3 8)) (newline)
(display "(range 0 20 5)   = ") (display (range 0 20 5)) (newline)
'done
"""

result = run_source(PROGRAM, heap_words=1 << 19)
print(result.output, end="")
print(f"\n[{result.steps} VM instructions, {result.gc_count} GCs]")
