"""Defining new first-class data types — entirely in user code.

The paper's "first-class" claim: representation types are ordinary
runtime values.  User programs create new record types and new immediate
(unboxed!) types at run time, reflect on any value's type, and the very
same objects drive both the dynamic paths and the optimized static
paths.

Run:  python examples/custom_reptype.py
"""

from repro import run_source

program = """
;; ---- a record type: 2D points --------------------------------------
(define point-rep (make-record-rep 'point '(x y)))
(define make-point (rep-constructor point-rep))
(define point?     (rep-predicate point-rep))
(define point-x    (rep-accessor point-rep 0))
(define point-y    (rep-accessor point-rep 1))

(define (point-add a b)
  (make-point (+ (point-x a) (point-x b))
              (+ (point-y a) (point-y b))))

(define p (point-add (make-point 1 2) (make-point 30 40)))
(display "p = ") (display p) (newline)
(display "x = ") (display (point-x p)) (newline)

;; ---- an immediate (unboxed) type: temperatures ----------------------
;; No heap allocation at all: values live in the word's payload bits.
(define temp-rep (make-immediate-rep 'celsius))
(define celsius      (rep-constructor temp-rep))
(define celsius?     (rep-predicate temp-rep))
(define celsius-degrees (rep-accessor temp-rep 0))

(define freezing (celsius 0))
(define body (celsius 37))
(display "is 37C a temperature? ") (display (celsius? body)) (newline)
(display "degrees: ") (display (celsius-degrees body)) (newline)
(display "unboxed: same value is eq? ")
(display (eq? body (celsius 37))) (newline)

;; ---- reflection: rep-of works on everything -------------------------
(define (describe x)
  (display x) (display " is a ") (display (rep-name (rep-of x))) (newline))

(describe 42)
(describe (cons 1 2))
(describe "text")
(describe p)
(describe body)
(describe point-rep)   ; descriptors describe themselves

;; ---- one system: the reflective ops ARE the library ops -------------
(display "(eq? (rep-accessor pair-rep 0) car) = ")
(display (eq? (rep-accessor pair-rep 0) car)) (newline)

;; generic field dump via reflection
(define (dump-record r)
  (let ((rep (rep-of r)))
    (display (rep-name rep)) (display ":")
    (let loop ((i 0))
      (if (< i (rep-field-count rep))
          (begin (display " ")
                 (display ((rep-accessor rep i) r))
                 (loop (+ i 1)))
          (newline)))))
(dump-record p)
'done
"""

result = run_source(program)
print(result.output, end="")
print(f"\n[{result.steps} instructions executed]")
