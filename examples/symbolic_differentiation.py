"""A realistic symbolic workload: differentiation of expressions.

This is the kind of list-heavy symbolic program the Scheme literature
benchmarks with (cf. the Gabriel `deriv` benchmark) — pairs and symbols
exercised hard, all of them library-defined representations.

Run:  python examples/symbolic_differentiation.py
"""

from repro import CompileOptions, decode, run_source

PROGRAM = """
;; d/dx over expressions built from +, *, variables, and constants.
(define (constant? e) (number? e))
(define (variable? e) (symbol? e))
(define (sum? e) (if (pair? e) (eq? (car e) '+) #f))
(define (product? e) (if (pair? e) (eq? (car e) '*) #f))
(define (operands e) (cdr e))

(define (make-sum a b)
  (cond ((eqv? a 0) b)
        ((eqv? b 0) a)
        ((if (number? a) (number? b) #f) (+ a b))
        (else (list '+ a b))))

(define (make-product a b)
  (cond ((eqv? a 0) 0)
        ((eqv? b 0) 0)
        ((eqv? a 1) b)
        ((eqv? b 1) a)
        ((if (number? a) (number? b) #f) (* a b))
        (else (list '* a b))))

(define (deriv e x)
  (cond ((constant? e) 0)
        ((variable? e) (if (eq? e x) 1 0))
        ((sum? e)
         (make-sum (deriv (car (operands e)) x)
                   (deriv (cadr (operands e)) x)))
        ((product? e)
         (let ((a (car (operands e))) (b (cadr (operands e))))
           (make-sum (make-product a (deriv b x))
                     (make-product (deriv a x) b))))
        (else (error "unknown expression" e))))

;; evaluate an expression at an environment (alist)
(define (evaluate e env)
  (cond ((constant? e) e)
        ((variable? e) (cdr (assq e env)))
        ((sum? e) (+ (evaluate (car (operands e)) env)
                     (evaluate (cadr (operands e)) env)))
        ((product? e) (* (evaluate (car (operands e)) env)
                         (evaluate (cadr (operands e)) env)))
        (else (error "unknown expression" e))))

;; (3x^2 + 2x + 7) * (x + 1), differentiated repeatedly
(define poly
  '(* (+ (* 3 (* x x)) (+ (* 2 x) 7)) (+ x 1)))

(define d1 (deriv poly 'x))
(define d2 (deriv d1 'x))
(define d3 (deriv d2 'x))

(display "f      = ") (display poly) (newline)
(display "f'     = ") (display d1) (newline)
(display "f''    = ") (display d2) (newline)
(display "f'''   = ") (display d3) (newline)
(display "f'(5)  = ") (display (evaluate d1 (list (cons 'x 5)))) (newline)

;; a stress loop: differentiate a growing expression
(define (iterate-deriv e n)
  (if (= n 0) e (iterate-deriv (deriv e 'x) (- n 1))))

(evaluate (iterate-deriv poly 3) (list (cons 'x 2)))
"""

for label, options in [
    ("optimized ", CompileOptions()),
    ("unoptimized", CompileOptions.unoptimized()),
]:
    result = run_source(PROGRAM, options)
    if label.startswith("optimized"):
        print(result.output, end="")
        print("f'''(2) =", decode(result))
    print(f"[{label}: {result.steps:>8} instructions, "
          f"{result.words_allocated:>6} words allocated]")
