"""The classic capstone: a metacircular Scheme evaluator, running on the
reproduction's own Scheme, whose data types are all library-defined.

Three language layers are in play:

  Python  →  hosts the compiler + VM
  Scheme  →  compiled by the reproduction (types from the rep library)
  mini-Scheme →  interpreted by the evaluator below, its environments
                 built out of pairs, its programs parsed by the
                 library-level `read`

Run:  python examples/metacircular.py
"""

from repro import decode, run_source

EVALUATOR = r"""
;;; A small metacircular evaluator: lambda, if, quote, define, begin,
;;; numeric/list primitives; environments are alists of frames.

(define (env-lookup name env)
  (if (null? env)
      (error "unbound variable" name)
      (let ((hit (assq name (car env))))
        (if (eq? hit #f)
            (env-lookup name (cdr env))
            (cdr hit)))))

(define (env-define! name value env)
  (set-car! env (cons (cons name value) (car env)))
  value)

(define (env-extend names values env)
  (cons (map cons names values) env))

(define (self-evaluating? e)
  (if (number? e) #t (if (string? e) #t (boolean? e))))

(define (meta-eval e env)
  (cond ((self-evaluating? e) e)
        ((symbol? e) (env-lookup e env))
        ((eq? (car e) 'quote) (cadr e))
        ((eq? (car e) 'if)
         (if (meta-eval (cadr e) env)
             (meta-eval (caddr e) env)
             (meta-eval (cadddr e) env)))
        ((eq? (car e) 'lambda)
         (list 'closure (cadr e) (cddr e) env))
        ((eq? (car e) 'define)
         (env-define! (cadr e) (meta-eval (caddr e) env) env))
        ((eq? (car e) 'begin) (meta-eval-sequence (cdr e) env))
        (else
         (meta-apply (meta-eval (car e) env)
                     (map (lambda (arg) (meta-eval arg env)) (cdr e))))))

(define (meta-eval-sequence body env)
  (if (null? (cdr body))
      (meta-eval (car body) env)
      (begin (meta-eval (car body) env)
             (meta-eval-sequence (cdr body) env))))

(define (meta-apply f args)
  (cond ((procedure? f) (%apply f args))      ; host primitive
        ((eq? (car f) 'closure)
         (meta-eval-sequence (caddr f)
                             (env-extend (cadr f) args (cadddr f))))
        (else (error "not applicable" f))))

;;; the global environment exposes host primitives to the mini language
(define the-global-env
  (env-extend
   '(+ - * < = cons car cdr null? list display newline)
   (list + - * < = cons car cdr null? list display newline)
   '()))

;;; read the program from input and evaluate each form
(define (meta-load)
  (let loop ((result #f))
    (let ((form (read)))
      (if (eof-object? form)
          result
          (loop (meta-eval form the-global-env))))))

(meta-load)
"""

MINI_PROGRAM = """
(define fact
  (lambda (n) (if (< n 2) 1 (* n (fact (- n 1))))))

(define map2
  (lambda (f lst)
    (if (null? lst) (quote ()) (cons (f (car lst)) (map2 f (cdr lst))))))

(display (map2 fact (quote (1 2 3 4 5))))
(newline)
(fact 10)
"""

result = run_source(EVALUATOR, input_text=MINI_PROGRAM)
print("mini-Scheme program output:", result.output, end="")
print("final value:", decode(result))
print(f"[{result.steps} VM instructions — an interpreter on an interpreter]")
