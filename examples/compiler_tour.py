"""A tour of the compiler: watch abstraction collapse, stage by stage.

Shows what the paper's Section on optimization demonstrates: the chain
  make-pointer-rep machinery  →  inlining  →  constant folding
  →  bit algebra  →  a single machine instruction.

Run:  python examples/compiler_tour.py
"""

from repro import CompileOptions, OptimizerOptions, compile_source

SOURCE = """
(define (second lst) (car (cdr lst)))
(define (swap-ends! v)
  (let ((n (vector-length v)))
    (let ((a (vector-ref v 0)) (b (vector-ref v (- n 1))))
      (vector-set! v 0 b)
      (vector-set! v (- n 1) a)
      v)))
(second '(1 2 3))
"""

print("=" * 72)
print("source")
print("=" * 72)
print(SOURCE)

def keep_all(safety):
    optimizer = OptimizerOptions(prune_globals=False)
    return CompileOptions(optimizer=optimizer, safety=safety)


compiled = compile_source(SOURCE, keep_all(safety=False), explain=True)

print("=" * 72)
print("expanded core IR (user forms only) — car/cdr are library calls")
print("=" * 72)
print(compiled.stages["expanded"])

print()
print("=" * 72)
print("optimized IR for `second` and `swap-ends!` — opened to raw loads")
print("=" * 72)
for line in compiled.stages["optimized"].splitlines():
    pass  # full program is long; show the two functions from the assembly
from repro.ir import GlobalSet, pretty

for form in compiled.ir_program.forms:
    if isinstance(form, GlobalSet) and form.name in ("second", "swap-ends!"):
        print(pretty(form))
        print()

print("=" * 72)
print("generated machine code")
print("=" * 72)
print(compiled.disassemble("second"))
print()
print(compiled.disassemble("swap-ends!"))

print()
print("=" * 72)
print("the same `second` with the optimizer OFF — every step is a call")
print("=" * 72)
unopt_options = OptimizerOptions.none()
unopt_options.prune_globals = False
unopt = compile_source(
    SOURCE, CompileOptions(optimizer=unopt_options, safety=False)
)
print(unopt.disassemble("second"))

print()
print("=" * 72)
print("and in SAFE mode — tag checks appear, but stay deduplicated")
print("=" * 72)
safe = compile_source(SOURCE, keep_all(safety=True))
print(safe.disassemble("second"))
