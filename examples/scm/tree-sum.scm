;; Sum the fringe of a nested list — exercises pair/tag dispatch that the
;; checkelim pass proves safe (the `pair?` guard dominates every `car`).
(define (tree-sum t)
  (if (pair? t)
      (+ (tree-sum (car t)) (tree-sum (cdr t)))
      (if (null? t) 0 t)))

(display (tree-sum '(1 (2 3) ((4) 5))))
(newline)
