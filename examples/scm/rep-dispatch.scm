;; First-class representation dispatch: pick a label by rep tag, the
;; paper's signature move.  The inputs flow through a heterogeneous list
;; so the tag tests are genuinely dynamic — the linter has nothing to say.
(define (describe x)
  (cond ((fixnum? x) 'number)
        ((pair? x) 'pair)
        ((vector? x) 'vector)
        ((string? x) 'string)
        (else 'other)))

(define samples (list 42 '(1 2) (make-vector 3 0) "hey" 'sym))

(display (map describe samples))
(newline)
(display (rep-name (rep-of (car (cdr samples)))))
(newline)
