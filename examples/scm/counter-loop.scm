;; A counting loop whose index provably stays a fixnum: the abstract
;; interpreter keeps the tag fact through `+`, so safe mode runs this
;; with no residual tag probes in the loop body.
(define (sum-squares n)
  (let loop ((i 0) (acc 0))
    (if (= i n)
        acc
        (loop (+ i 1) (+ acc (* i i))))))

(display (sum-squares 10))
(newline)
