"""Proof of externality: swap in a *different* tagging scheme.

The compiler contains no knowledge of how pairs are tagged — so an
alternative prelude can renumber the pointer tags and re-layout pair
fields (cdr before car!), and everything still works, at the same
optimized quality.  A traditional compiler would need its code generator
rewritten; here it is a ~30-line library edit, supplied as
``extra_prelude`` on top of a prelude-less configuration… in this
example, simply as redefinitions layered over the machinery.

Run:  python examples/alternative_tagging.py
"""

from repro import CompileOptions, OptimizerOptions, compile_source, run_source

# A user-level pair-like type using record machinery is first-class; but
# we can go further and *replace* the core pair operations themselves
# with a swapped-field variant (cdr in slot 0, car in slot 1).  The rest
# of the library (list, map, append, display…) runs on top, unchanged.
PROGRAM = """
;; rebuild pairs with the opposite field order, still on tag 1 --------
(define car (%maybe-checked-accessor (%raw 1) (%raw 1) (%raw 5)))
(define cdr (%maybe-checked-accessor (%raw 1) (%raw 0) (%raw 5)))
(define set-car! (%maybe-checked-mutator (%raw 1) (%raw 1) (%raw 5)))
(define set-cdr! (%maybe-checked-mutator (%raw 1) (%raw 0) (%raw 5)))
(define (cons a b)
  (let ((p (%alloc (%raw 2) (%raw 1))))
    (begin (%store p (%raw 15) a)
           (%store p (%raw 7) b)
           p)))
;; tell the substrate about the new layout (rest-args, apply, GC)
(%register-pair-rep (%raw 1) (%raw 15) (%raw 7))

;; ordinary code on top — completely unaware of the flip ---------------
;; (Lists that existed *before* the flip — e.g. the symbol intern
;; table — still have the old layout, so this program only builds and
;; consumes fresh lists; a real system would flip the layout for the
;; whole prelude, as the harness's `safety` switch does textually.)
(define (range a b) (if (= a b) '() (cons a (range (+ a 1) b))))
(define xs (range 0 10))
(display (map (lambda (x) (* x x)) xs)) (newline)
(display (fold-left + 0 xs)) (newline)
((lambda args (display args) (newline)) 11 22 33)
(car (cons 100 200))
"""

result = run_source(PROGRAM)
print(result.output, end="")

# For the static-quality demonstration we bind the flipped accessor to a
# fresh name (redefining `car` makes it mutable, which rightly disables
# inlining — the dynamic semantics above relied on exactly that).
PROBE = """
(define kar (%maybe-checked-accessor (%raw 1) (%raw 1) (%raw 5)))
(define (first p) (kar p))
(first (cons 1 2))
"""
compiled = compile_source(
    PROBE,
    CompileOptions(optimizer=OptimizerOptions(prune_globals=False), safety=False),
)
print("\nThe flipped accessor — still a single load, but at the other")
print("slot's displacement (15 instead of 7):")
print(compiled.disassemble("first"))
