"""Tests for the IR well-formedness checker, and pipeline-integrated
validation over real programs."""

import pytest

from repro.ir import (
    Call,
    Const,
    Fix,
    GlobalSet,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    LocalVar,
    Prim,
    Program,
    Seq,
    Var,
)
from repro.ir.validate import ValidationError, validate_program


def program_of(*forms):
    return Program(list(forms), [])


def test_valid_program_passes():
    x = LocalVar("x")
    form = GlobalSet("f", Lambda([x], None, Prim("%add", [Var(x), Const(1)]), "f"))
    validate_program(program_of(form))


def test_unbound_variable_detected():
    x = LocalVar("x")
    with pytest.raises(ValidationError, match="unbound"):
        validate_program(program_of(Var(x)))


def test_out_of_scope_use_detected():
    x = LocalVar("x")
    form = Seq([Let([(x, Const(1))], Var(x)), Var(x)])  # second use escapes
    with pytest.raises(ValidationError, match="unbound"):
        validate_program(program_of(form))


def test_duplicate_binding_detected():
    x = LocalVar("x")
    form = Seq([Let([(x, Const(1))], Var(x)), Let([(x, Const(2))], Var(x))])
    with pytest.raises(ValidationError, match="two different sites"):
        validate_program(program_of(form))


def test_prim_arity_checked():
    with pytest.raises(ValidationError, match="arity"):
        validate_program(program_of(Prim("%add", [Const(1)])))


def test_unknown_prim_detected():
    with pytest.raises(ValidationError, match="unknown primitive"):
        validate_program(program_of(Prim("%zap", [])))


def test_letrec_rejected_when_disallowed():
    x = LocalVar("x")
    form = Letrec([(x, Const(1))], Var(x))
    with pytest.raises(ValidationError, match="Letrec"):
        validate_program(program_of(form), allow_letrec=False)
    validate_program(program_of(form), allow_letrec=True)


def test_localset_flag():
    x = LocalVar("x")
    x.assigned = True
    form = Let([(x, Const(1))], LocalSet(x, Const(2)))
    validate_program(program_of(form), allow_localset=True)
    with pytest.raises(ValidationError, match="assignment conversion"):
        validate_program(program_of(form), allow_localset=False)


def test_set_of_unmarked_variable_detected():
    x = LocalVar("x")  # assigned flag not set
    form = Let([(x, Const(1))], LocalSet(x, Const(2)))
    with pytest.raises(ValidationError, match="not marked assigned"):
        validate_program(program_of(form))


def test_fix_requires_lambdas():
    f = LocalVar("f")
    form = Fix([(f, Const(1))], Var(f))
    with pytest.raises(ValidationError, match="non-lambda"):
        validate_program(program_of(form))


# ----------------------------------------------------------------------
# full pipeline under validation: every pass output is well-formed
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)",
        "(sort '(3 1 2) <)",
        "(let ((n 0)) (define (bump!) (set! n (+ n 1))) (bump!) n)",
        "(call/cc (lambda (k) (k 1)))",
        "(map (lambda (x) (* x x)) (iota 5))",
    ],
)
def test_pipeline_validates_on_real_programs(source):
    from repro import CompileOptions, OptimizerOptions, decode, run_source

    options = CompileOptions(optimizer=OptimizerOptions(validate=True))
    result = run_source(source, options)
    assert result.steps > 0


def test_expanded_whole_prelude_validates():
    from repro.expand import Expander
    from repro.runtime import prelude_source
    from repro.sexpr import read_all

    expander = Expander()
    program = expander.expand_program(read_all(prelude_source()))
    validate_program(program, allow_letrec=True)
