"""Shared fixtures: run helpers over the compiler configurations.

Most semantics tests run under the *unoptimized* configuration (fast
compiles; the optimizer's semantic transparency is covered separately by
the cross-configuration tests).
"""

import pytest

from repro import CompileOptions, decode, run_source

UNOPT = CompileOptions.unoptimized()
OPT = CompileOptions()
BASE = CompileOptions.baseline()
UNSAFE = CompileOptions(safety=False)


def run_unopt(source, **kwargs):
    return run_source(source, UNOPT, **kwargs)


def evaluate(source, options=UNOPT, **kwargs):
    """Run and decode the final value."""
    return decode(run_source(source, options, **kwargs))


def output_of(source, options=UNOPT, **kwargs):
    return run_source(source, options, **kwargs).output


@pytest.fixture(params=["unopt", "opt", "baseline", "unsafe"], scope="module")
def any_config(request):
    return {
        "unopt": UNOPT,
        "opt": OPT,
        "baseline": BASE,
        "unsafe": UNSAFE,
    }[request.param]
