"""Unit tests for the VM, using hand-assembled programs."""

import pytest

from repro.errors import SchemeError, VMError
from repro.vm import Machine, isa


def program(main_instructions, extra_codes=(), nregs=16, global_names=()):
    main = isa.CodeObject("%main", 0, False, 0)
    main.nregs = nregs
    main.instructions = [list(ins) for ins in main_instructions]
    return isa.VMProgram([main, *extra_codes], list(global_names))


def run(main_instructions, **kwargs):
    return Machine(program(main_instructions), **kwargs).run()


def fn(name, nparams, instructions, has_rest=False, nfree=0, nregs=16):
    code = isa.CodeObject(name, nparams, has_rest, nfree)
    code.nregs = nregs
    code.instructions = [list(ins) for ins in instructions]
    return code


# ----------------------------------------------------------------------
# arithmetic / data movement
# ----------------------------------------------------------------------


def test_ldc_halt():
    assert run([(isa.LDC, 0, 42), (isa.HALT, 0)]).value == 42


def test_arith_ops():
    result = run(
        [
            (isa.LDC, 0, 10),
            (isa.LDC, 1, 3),
            (isa.ADD, 2, 0, 1),
            (isa.MUL, 3, 2, 1),
            (isa.SUBI, 4, 3, 9),
            (isa.HALT, 4),
        ]
    )
    assert result.value == 30


def test_wraparound():
    result = run(
        [
            (isa.LDC, 0, 2**64 - 1),
            (isa.ADDI, 1, 0, 1),
            (isa.HALT, 1),
        ]
    )
    assert result.value == 0


def test_signed_compare_and_shift():
    result = run(
        [
            (isa.LDC, 0, 2**64 - 8),  # -8
            (isa.SARI, 1, 0, 3),      # -1
            (isa.LDC, 2, 0),
            (isa.CMPLT, 3, 1, 2),     # -1 < 0
            (isa.HALT, 3),
        ]
    )
    assert result.value == 1


def test_div_by_zero_raises():
    with pytest.raises(SchemeError):
        run([(isa.LDC, 0, 1), (isa.LDC, 1, 0), (isa.DIV, 2, 0, 1), (isa.HALT, 2)])


# ----------------------------------------------------------------------
# control flow
# ----------------------------------------------------------------------


def test_branches():
    result = run(
        [
            (isa.LDC, 0, 5),
            (isa.JEQI, 0, 5, 3),
            (isa.LDC, 1, 0),
            (isa.LDC, 1, 99),
            (isa.HALT, 1),
        ]
    )
    assert result.value == 99


def test_loop_counts_instructions():
    # sum 0..9 with a JLT loop
    result = run(
        [
            (isa.LDC, 0, 0),   # i
            (isa.LDC, 1, 0),   # sum
            (isa.LDC, 2, 10),
            (isa.ADD, 1, 1, 0),     # 3
            (isa.ADDI, 0, 0, 1),
            (isa.JLT, 0, 2, 3),
            (isa.HALT, 1),
        ]
    )
    assert result.value == 45
    assert result.steps == 3 + 10 * 3 + 1
    assert result.opcode_counts["ADD"] == 10


def test_max_steps_guard():
    with pytest.raises(VMError):
        run([(isa.JMP, 0)], max_steps=100)


# ----------------------------------------------------------------------
# memory
# ----------------------------------------------------------------------


def test_alloc_store_load():
    result = run(
        [
            (isa.ALLOCI, 0, 2, 1),
            (isa.LDC, 1, 77),
            (isa.ST, 0, 7, 1),
            (isa.LD, 2, 0, 7),
            (isa.HALT, 2),
        ]
    )
    assert result.value == 77


def test_dynamic_alloc_tag():
    result = run(
        [
            (isa.LDC, 0, 1),
            (isa.LDC, 1, 3),   # tag 3
            (isa.ALLOC, 2, 0, 1),
            (isa.ANDI, 3, 2, 7),
            (isa.HALT, 3),
        ]
    )
    assert result.value == 3


# ----------------------------------------------------------------------
# globals
# ----------------------------------------------------------------------


def test_global_store_load():
    vm_program = program(
        [
            (isa.LDC, 0, 5),
            (isa.GST, 0, 0),
            (isa.GLD, 1, 0),
            (isa.HALT, 1),
        ],
        global_names=["x"],
    )
    assert Machine(vm_program).run().value == 5


def test_undefined_global_fails():
    vm_program = program([(isa.GLD, 0, 0), (isa.HALT, 0)], global_names=["x"])
    with pytest.raises(VMError, match="undefined global.*'x'"):
        Machine(vm_program).run()


# ----------------------------------------------------------------------
# procedures
# ----------------------------------------------------------------------


def test_direct_call_and_return():
    double = fn("double", 1, [(isa.ADD, 1, 0, 0), (isa.RET, 1)])
    vm_program = program(
        [(isa.LDC, 0, 21), (isa.CALLL, 1, 1, [0]), (isa.HALT, 1)],
        extra_codes=[double],
    )
    assert Machine(vm_program).run().value == 42


def test_closure_call_with_captured_variable():
    # callee: r0 = arg, r1 = closure, r2 = loaded free var
    adder = fn(
        "adder",
        1,
        [(isa.LD, 2, 1, 9), (isa.ADD, 3, 0, 2), (isa.RET, 3)],
        nfree=1,
    )
    vm_program = program(
        [
            (isa.LDC, 0, 100),
            (isa.CLOSURE, 1, 1, [0]),
            (isa.LDC, 2, 7),
            (isa.CALL, 3, 1, [2]),
            (isa.HALT, 3),
        ],
        extra_codes=[adder],
    )
    assert Machine(vm_program).run().value == 107


def test_arity_mismatch_raises():
    double = fn("double", 1, [(isa.RET, 0)])
    vm_program = program(
        [(isa.CALLL, 0, 1, []), (isa.HALT, 0)], extra_codes=[double]
    )
    with pytest.raises(SchemeError, match="arity"):
        Machine(vm_program).run()


def test_calling_non_closure_raises():
    vm_program = program(
        [(isa.LDC, 0, 42), (isa.CALL, 1, 0, []), (isa.HALT, 1)]
    )
    with pytest.raises(SchemeError, match="not a procedure"):
        Machine(vm_program).run()


def test_tail_call_does_not_grow_stack():
    # loop(n): if n == 0 ret 0 else tailcall loop(n-1)
    loop = fn(
        "loop",
        1,
        [
            (isa.JNEI, 0, 0, 2),
            (isa.RET, 0),
            (isa.SUBI, 1, 0, 1),
            (isa.TAILL, 1, [1]),
        ],
    )
    vm_program = program(
        [(isa.LDC, 0, 100000), (isa.CALLL, 1, 1, [0]), (isa.HALT, 1)],
        extra_codes=[loop],
    )
    result = Machine(vm_program).run()
    assert result.value == 0


def test_deep_non_tail_recursion_overflows():
    # f(n): if n == 0 ret 0 else 0 + f(n-1)  (non-tail)
    f = fn(
        "f",
        1,
        [
            (isa.JNEI, 0, 0, 2),
            (isa.RET, 0),
            (isa.SUBI, 1, 0, 1),
            (isa.CALLL, 2, 1, [1]),
            (isa.RET, 2),
        ],
    )
    vm_program = program(
        [(isa.LDC, 0, 100000), (isa.CALLL, 1, 1, [0]), (isa.HALT, 1)],
        extra_codes=[f],
    )
    with pytest.raises(VMError, match="stack overflow"):
        Machine(vm_program).run()


# ----------------------------------------------------------------------
# rest arguments and apply (need the registered pair rep)
# ----------------------------------------------------------------------


def _register_pairs_prefix():
    return [
        (isa.LDC, 10, 1),
        (isa.REGPTR, 10),
        (isa.LDC, 11, 7),
        (isa.LDC, 12, 15),
        (isa.REGPAIR, 10, 11, 12),
        (isa.LDC, 13, 22),
        (isa.REGNIL, 13),
    ]


def test_rest_arguments_build_a_list():
    # variadic f(a . rest) returns rest's first element's car
    f = fn(
        "f",
        1,
        [(isa.LD, 2, 1, 7), (isa.RET, 2)],  # car of rest list
        has_rest=True,
    )
    vm_program = program(
        _register_pairs_prefix()
        + [
            (isa.LDC, 0, 1),
            (isa.LDC, 1, 2),
            (isa.LDC, 2, 3),
            (isa.CALLL, 3, 1, [0, 1, 2]),
            (isa.HALT, 3),
        ],
        extra_codes=[f],
    )
    result = Machine(vm_program).run()
    assert result.value == 2
    assert result.rest_conses == 2


def test_empty_rest_is_nil():
    f = fn("f", 0, [(isa.RET, 0)], has_rest=True)
    vm_program = program(
        _register_pairs_prefix() + [(isa.CALLL, 0, 1, []), (isa.HALT, 0)],
        extra_codes=[f],
    )
    assert Machine(vm_program).run().value == 22


def test_rest_without_registration_raises():
    f = fn("f", 0, [(isa.RET, 0)], has_rest=True)
    vm_program = program(
        [(isa.CALLL, 0, 1, []), (isa.HALT, 0)], extra_codes=[f]
    )
    with pytest.raises(VMError, match="pair representation"):
        Machine(vm_program).run()


def test_apply_unpacks_list():
    add = fn("add", 2, [(isa.ADD, 2, 0, 1), (isa.RET, 2)])
    # build (30 . (12 . nil)) by hand, then APPLY
    vm_program = program(
        _register_pairs_prefix()
        + [
            (isa.ALLOCI, 0, 2, 1),   # second pair
            (isa.LDC, 1, 12),
            (isa.ST, 0, 7, 1),
            (isa.LDC, 2, 22),
            (isa.ST, 0, 15, 2),
            (isa.ALLOCI, 3, 2, 1),   # first pair
            (isa.LDC, 4, 30),
            (isa.ST, 3, 7, 4),
            (isa.ST, 3, 15, 0),
            (isa.CLOSURE, 5, 1, []),
            (isa.APPLY, 6, 5, 3),
            (isa.HALT, 6),
        ],
        extra_codes=[add],
    )
    assert Machine(vm_program).run().value == 42


# ----------------------------------------------------------------------
# I/O and failure
# ----------------------------------------------------------------------


def test_putc_appends_output():
    result = run(
        [
            (isa.LDC, 0, ord("h")),
            (isa.PUTC, 0),
            (isa.LDC, 0, ord("i")),
            (isa.PUTC, 0),
            (isa.LDC, 1, 0),
            (isa.HALT, 1),
        ]
    )
    assert result.output == "hi"


def test_fail_raises_scheme_error_with_message():
    with pytest.raises(SchemeError, match="type check failed"):
        run([(isa.LDC, 0, 1), (isa.FAIL, 0)])


def test_disassemble_format():
    code = fn("f", 1, [(isa.ADDI, 1, 0, 5), (isa.RET, 1)])
    text = isa.disassemble(code)
    assert "ADDI 1 0 5" in text and "RET" in text
