"""Differential testing: reference IR interpreter vs optimizer vs VM.

Three independent executions of the same program must produce the same
word: the reference interpreter on the *unoptimized* IR, the reference
interpreter on the *optimized* IR, and the compiled VM run.  Any
disagreement localizes a bug to the optimizer (1 vs 2) or the backend/VM
(2 vs 3).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CompileOptions, compile_source
from repro.expand import Expander
from repro.ir import Program
from repro.ir.interp import Interpreter, interpret_program
from repro.opt import OptimizerOptions, fix_letrec_program, optimize_program
from repro.runtime import prelude_source
from repro.sexpr import read_all


def _expand(source, safety=True):
    expander = Expander()
    forms = expander.expand_program(
        read_all(prelude_source("reptype", safety) + "\n" + source)
    )
    return Program(forms.forms, expander.global_names)


class _HeapShim:
    """Adapter so decode_word can read an interpreter's heap."""

    def __init__(self, interp_or_machine):
        self.heap = interp_or_machine.heap


def _decode(owner, word):
    from repro.api import decode_word

    return decode_word(_HeapShim(owner), word)


def triple_check(source, safety=True):
    program = _expand(source, safety)
    ref_interp = Interpreter()
    reference = ref_interp.run(fix_letrec_program(program))
    # The optimized-IR leg reuses compile_source's (cached-prelude)
    # pipeline output: the post-assignment-conversion IR is still plain
    # core IR the reference interpreter executes directly.
    compiled = compile_source(source, CompileOptions(safety=safety))
    opt_interp = Interpreter()
    opt_reference = opt_interp.run(compiled.ir_program)
    machine_result = compiled.run()
    # Heap values live at run-dependent addresses: compare structurally.
    ref_value = _decode(ref_interp, reference.value)
    opt_value = _decode(opt_interp, opt_reference.value)
    vm_value = _decode(machine_result.machine, machine_result.value)
    assert ref_value == opt_value, "optimizer changed the result"
    assert ref_value == vm_value, "backend/VM changed the result"
    assert reference.output == opt_reference.output == machine_result.output
    return ref_value


PROGRAMS = [
    "(+ 1 2)",
    "(* -7 6)",
    "(let ((x 5)) (if (< x 10) (* x x) 0))",
    "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1))))) (fact 9)",
    "(length (append '(1 2) '(3 4 5)))",
    "(car (reverse (list 1 2 3)))",
    "(let loop ((i 0) (acc '())) (if (= i 5) (length acc) (loop (+ i 1) (cons i acc))))",
    "(define v (make-vector 5 0)) (vector-set! v 3 9) (vector-ref v 3)",
    "(string-length (string-append \"ab\" \"cde\"))",
    "(char->integer (string-ref \"xyz\" 1))",
    "(display (list 1 2)) 7",
    "((lambda (a . r) (+ a (length r))) 1 2 3)",
    "(apply + '(20 22))",
    "(let ((n 0)) (define (bump!) (set! n (+ n 1))) (bump!) (bump!) n)",
    "(cond ((assv 2 '((1 . a) (2 . b))) => cdr) (else 'none))",
    "(do ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i 6) s))",
    "(remainder -13 4)",
    "(if (equal? '(1 (2)) '(1 (2))) 'same 'different)",
]


@pytest.mark.parametrize("source", PROGRAMS)
def test_differential_fixed_programs(source):
    triple_check(source)


@pytest.mark.parametrize("source", PROGRAMS[:8])
def test_differential_unsafe(source):
    triple_check(source, safety=False)


# ----------------------------------------------------------------------
# randomized differential testing: generated first-order programs
# ----------------------------------------------------------------------

_NAMES = ["a", "b", "c"]


@st.composite
def _expressions(draw, depth=3, scope=()):
    choices = ["int"]
    if scope:
        choices.append("var")
    if depth > 0:
        choices += ["arith", "if", "let"]
    kind = draw(st.sampled_from(choices))
    if kind == "int":
        return str(draw(st.integers(min_value=-50, max_value=50)))
    if kind == "var":
        return draw(st.sampled_from(list(scope)))
    if kind == "arith":
        op = draw(st.sampled_from(["+", "-", "*", "min", "max"]))
        left = draw(_expressions(depth=depth - 1, scope=scope))
        right = draw(_expressions(depth=depth - 1, scope=scope))
        return f"({op} {left} {right})"
    if kind == "if":
        test = draw(_expressions(depth=depth - 1, scope=scope))
        cmp_op = draw(st.sampled_from(["<", "=", ">"]))
        then = draw(_expressions(depth=depth - 1, scope=scope))
        els = draw(_expressions(depth=depth - 1, scope=scope))
        return f"(if ({cmp_op} {test} 0) {then} {els})"
    name = draw(st.sampled_from(_NAMES))
    init = draw(_expressions(depth=depth - 1, scope=scope))
    body = draw(_expressions(depth=depth - 1, scope=tuple(set(scope) | {name})))
    return f"(let (({name} {init})) {body})"


@settings(max_examples=25, deadline=None)
@given(_expressions())
def test_differential_random_programs(source):
    triple_check(source)


# richer generator: closures, direct lambda calls, bounded loops


@st.composite
def _programs(draw):
    kind = draw(st.sampled_from(["lambda-call", "let-fn", "loop", "plain"]))
    if kind == "plain":
        return draw(_expressions())
    if kind == "lambda-call":
        body = draw(_expressions(depth=2, scope=("a", "b")))
        arg1 = draw(_expressions(depth=1))
        arg2 = draw(_expressions(depth=1))
        return f"((lambda (a b) {body}) {arg1} {arg2})"
    if kind == "let-fn":
        body = draw(_expressions(depth=2, scope=("a",)))
        arg1 = draw(_expressions(depth=1))
        arg2 = draw(_expressions(depth=1))
        op = draw(st.sampled_from(["+", "-", "min"]))
        return (
            f"(let ((f (lambda (a) {body})))"
            f"  ({op} (f {arg1}) (f {arg2})))"
        )
    # bounded accumulation loop
    step = draw(_expressions(depth=2, scope=("i", "acc")))
    seed = draw(_expressions(depth=1))
    return (
        f"(let loop ((i 0) (acc {seed}))"
        f"  (if (= i 4) acc (loop (+ i 1) {step})))"
    )


@settings(max_examples=25, deadline=None)
@given(_programs())
def test_differential_random_closures_and_loops(source):
    triple_check(source)
