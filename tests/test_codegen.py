"""The compile-to-Python tier's non-semantic contracts.

The differential suites (test_engine_differential, test_resume_chain)
pin *what* the compiled engine computes; this file pins *how*: the
emitted source is deterministic and stable (golden tests), the
function cache is keyed on (code object, CodegenOptions) so toggling
any baked-in option compiles a fresh variant instead of reusing a
stale one, and ``install_heap`` drops the cache — emitted functions
bind ``heap.mem``/``heap.bump`` and the heap's bound methods by
identity, exactly the handler-table bug class from the threaded tier.
"""

import pytest

from repro import CompileOptions, compile_source
from repro.vm import isa
from repro.vm.heap import Heap
from repro.vm.isa import CodeObject, VMProgram
from repro.vm.machine import Machine

HEAP_WORDS = 1 << 12  # the heap limit is baked into emitted guards


def _tiny_program():
    main = CodeObject(name="main", nparams=0, has_rest=False, nfree=0)
    main.nregs = 2
    main.instructions = [
        [isa.LDC, 0, 5],
        [isa.ADDI, 1, 0, 2],
        [isa.HALT, 1],
    ]
    return VMProgram([main], [])


def _machine(program, **kwargs):
    kwargs.setdefault("heap_words", HEAP_WORDS)
    return Machine(program, engine="compiled", **kwargs)


def _source(machine, code):
    return machine._engine.compiled_source(code)


# ----------------------------------------------------------------------
# golden emitted source
# ----------------------------------------------------------------------

COUNTED_GOLDEN = """\
def _vm_main(regs, pc):
    while True:
        if pc < 1:
            F[0] = 0
            m.dispatches += 1
            m._count_step(0)
            regs[0] = 5
        if pc < 2:
            F[0] = 1
            m.dispatches += 1
            m._count_step(14)
            regs[1] = (regs[0] + 2) & M
        F[0] = 2
        m.dispatches += 1
        m._count_step(76)
        eng._halted = True
        eng._value = regs[1]
        return
        CODE.instructions[3]
"""

FAST_GOLDEN = """\
def _vm_main(regs, pc):
    while True:
        regs[0] = 5
        regs[1] = (regs[0] + 2) & M
        eng._halted = True
        eng._value = regs[1]
        return
        CODE.instructions[3]
"""


def test_counted_source_golden():
    program = _tiny_program()
    machine = _machine(program)
    assert _source(machine, program.code_objects[0]) == COUNTED_GOLDEN


def test_fast_source_golden():
    # with counting off, no preamble survives: pure straight-line code
    program = _tiny_program()
    machine = _machine(program, count_instructions=False)
    assert _source(machine, program.code_objects[0]) == FAST_GOLDEN


def test_emitted_source_is_deterministic():
    sources = set()
    for _ in range(3):
        program = _tiny_program()
        machine = _machine(program)
        sources.add(_source(machine, program.code_objects[0]))
    assert len(sources) == 1


def test_golden_run_matches_golden_source():
    program = _tiny_program()
    result = _machine(program).run()
    assert result.value == 7
    assert result.steps == 3


# ----------------------------------------------------------------------
# cache keying and hit/miss accounting
# ----------------------------------------------------------------------

SOURCE = "(define (f n) (if (= n 0) 1 (* n (f (- n 1))))) (f 10)"


def _compiled_program():
    return compile_source(SOURCE, CompileOptions(safety=True)).vm_program


def test_repeat_runs_hit_the_function_cache():
    machine = _machine(_compiled_program())
    engine = machine._engine
    first = machine.run()
    emitted = engine.cache_misses
    assert emitted >= 1  # at least the main code object
    machine.reset()
    second = machine.run()
    assert second.value == first.value
    # nothing recompiled; every entry came from the cache
    assert engine.cache_misses == emitted
    assert engine.cache_hits >= 1
    stats = engine.cache_stats()
    assert stats["functions_emitted"] == emitted
    assert stats["functions_cached"] == emitted
    assert stats["source_lines"] > 0


def test_cache_is_keyed_on_codegen_options():
    machine = _machine(_compiled_program())
    engine = machine._engine
    machine.run()
    emitted = engine.cache_misses
    # flipping any option baked into the source must compile a fresh
    # variant under a different key, not reuse the counted one
    machine.reset()
    machine.count_instructions = False
    machine.run()
    assert engine.cache_misses == 2 * emitted
    assert len(engine._fns) == 2 * emitted
    counted = {key[1].counted for key in engine._fns}
    assert counted == {True, False}


def test_counted_and_fast_variants_agree():
    counted = _machine(_compiled_program()).run()
    machine = _machine(_compiled_program(), count_instructions=False)
    fast = machine.run()
    assert fast.value == counted.value
    assert fast.output == counted.output


def test_install_heap_invalidates_compiled_functions():
    machine = _machine(_compiled_program())
    engine = machine._engine
    first = machine.run()
    assert len(engine._fns) > 0
    machine.install_heap(Heap(HEAP_WORDS))
    # the cache closed over the old heap's arrays; it must be empty now
    assert len(engine._fns) == 0
    assert len(engine._sources) == 0
    assert len(engine._cells) == 0
    machine.reset()
    second = machine.run()
    assert second.value == first.value
    assert second.steps == first.steps
    assert second.opcode_counts == first.opcode_counts


def test_fault_injection_disables_heap_inlining():
    from repro.vm.faultinject import FaultInjectingHeap, FaultSchedule

    program = _compiled_program()
    machine = _machine(program)
    plain = _source(machine, program.code_objects[0])
    assert "MEM[" in plain  # fast path hits the bound mem list directly

    machine2 = _machine(_compiled_program())
    machine2.install_heap(
        FaultInjectingHeap(HEAP_WORDS, FaultSchedule(gc_every=1))
    )
    guarded = _source(machine2, machine2.program.code_objects[0])
    # under fault injection every heap access goes through the heap
    # object so injected faults and forced GCs are observed
    assert "MEM[" not in guarded


def test_sources_differ_between_variants():
    program = _compiled_program()
    counted = _source(_machine(program), program.code_objects[0])
    fast = _source(
        _machine(program, count_instructions=False),
        program.code_objects[0],
    )
    assert "_count_step" in counted
    assert "_count_step" not in fast
