"""Tests for SRFI-9-style define-record-type (a macro over the
first-class representation-type API)."""

import pytest

from repro import SchemeError
from repro.sexpr import Symbol, from_list

from .conftest import evaluate

POINT = """
(define-record-type point
  (make-point x y)
  point?
  (x point-x set-point-x!)
  (y point-y))
"""


def test_construct_and_access():
    assert evaluate(POINT + "(point-x (make-point 1 2))") == 1
    assert evaluate(POINT + "(point-y (make-point 1 2))") == 2


def test_predicate():
    assert evaluate(POINT + "(point? (make-point 1 2))") is True
    assert evaluate(POINT + "(point? (cons 1 2))") is False


def test_mutator():
    assert (
        evaluate(POINT + "(let ((p (make-point 1 2))) (set-point-x! p 9) (point-x p))")
        == 9
    )


def test_accessor_without_mutator_is_read_only():
    # point-y has no mutator clause; the name simply isn't defined.
    with pytest.raises(Exception):
        evaluate(POINT + "(set-point-y! (make-point 1 2) 5)")


def test_reflection_integration():
    assert evaluate(POINT + "(rep-name (rep-of (make-point 1 2)))") == Symbol(
        "point"
    )
    assert evaluate(POINT + "(rep-field-names point)") == from_list(
        [Symbol("x"), Symbol("y")]
    )
    assert evaluate(POINT + "(eq? (rep-accessor point 0) point-x)") is True


def test_zero_field_record():
    source = "(define-record-type unit (make-unit) unit?) (unit? (make-unit))"
    assert evaluate(source) is True


def test_type_check_on_accessor():
    with pytest.raises(SchemeError, match="type check"):
        evaluate(POINT + "(point-x '(1 2))")


def test_two_types_do_not_confuse():
    source = POINT + """
    (define-record-type size (make-size w h) size? (w size-w) (h size-h))
    (list (point? (make-size 1 2)) (size? (make-point 1 2))
          (size-w (make-size 10 20)))
    """
    assert evaluate(source) == from_list([False, False, 10])


def test_display_uses_type_name():
    from .conftest import output_of

    assert output_of(POINT + "(display (make-point 1 2))") == "#<point>"


def test_define_record_type_inside_a_body():
    source = """
    (define (make-pair-summary a b)
      (define-record-type pr (mk x y) pr? (x getx) (y gety))
      (let ((p (mk a b)))
        (+ (getx p) (gety p))))
    (make-pair-summary 20 22)
    """
    assert evaluate(source) == 42


def test_works_under_all_configs(any_config):
    assert (
        evaluate(POINT + "(point-y (make-point 7 8))", options=any_config) == 8
    )
