"""Property tests: every algebraic rewrite is semantics-preserving.

Random primitive expression trees over a few variables are evaluated
directly (via the exact fold semantics) before and after
``simplify_prim`` / the full simplifier; results must be bit-identical
for all variable assignments tried.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import prims
from repro.ir import Const, If, LocalVar, Node, Prim, Var
from repro.opt.algebra import branch_test, simplify_prim

_VARS = [LocalVar("a"), LocalVar("b"), LocalVar("c")]

_PURE_BINARY = ["%add", "%sub", "%mul", "%and", "%or", "%xor",
                "%lsl", "%lsr", "%asr", "%eq", "%neq", "%lt", "%le",
                "%ult", "%ule"]

words = st.integers(min_value=0, max_value=2**64 - 1)
small = st.sampled_from([0, 1, 2, 3, 7, 8, 16, 255, 2**63, 2**64 - 1, 2**64 - 8])


@st.composite
def _prim_trees(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return Const(draw(small))
        return Var(draw(st.sampled_from(_VARS)))
    op = draw(st.sampled_from(_PURE_BINARY + ["%not", "%nz"]))
    spec = prims.spec(op)
    args = [draw(_prim_trees(depth=depth - 1)) for _ in range(spec.arity)]
    return Prim(op, args)


def evaluate(node: Node, env: dict) -> int:
    if isinstance(node, Const):
        return node.value
    if isinstance(node, Var):
        return env[node.var]
    if isinstance(node, Prim):
        spec = prims.spec(node.op)
        return spec.fold(*[evaluate(arg, env) for arg in node.args])
    if isinstance(node, If):
        if evaluate(node.test, env) != 0:
            return evaluate(node.then, env)
        return evaluate(node.els, env)
    raise TypeError(type(node).__name__)


@settings(max_examples=300, deadline=None)
@given(_prim_trees(), words, words, words)
def test_simplify_prim_preserves_semantics(tree, a, b, c):
    if not isinstance(tree, Prim):
        return
    env = dict(zip(_VARS, (a, b, c)))
    rewritten = simplify_prim(tree.op, tree.args)
    if rewritten is None:
        return
    assert evaluate(rewritten, env) == evaluate(tree, env), (
        f"{tree!r} -> {rewritten!r}"
    )


@settings(max_examples=300, deadline=None)
@given(_prim_trees(), words, words, words)
def test_branch_test_preserves_truthiness(tree, a, b, c):
    env = dict(zip(_VARS, (a, b, c)))
    new_test, swapped = branch_test(tree)
    original = evaluate(tree, env) != 0
    rewritten = evaluate(new_test, env) != 0
    if swapped:
        rewritten = not rewritten
    assert rewritten == original


@settings(max_examples=150, deadline=None)
@given(_prim_trees(depth=4), words, words, words)
def test_full_simplifier_preserves_pure_trees(tree, a, b, c):
    """Run the whole Simplifier on a pure tree and compare value."""
    from repro.ir import Census, Program
    from repro.opt.simplify import GlobalFacts, OptimizerOptions, Simplifier

    program = Program([], [])
    facts = GlobalFacts(program, Census())
    simplifier = Simplifier(OptimizerOptions(), facts)
    simplified = simplifier.simplify(tree)
    env = dict(zip(_VARS, (a, b, c)))
    assert evaluate(simplified, env) == evaluate(tree, env), (
        f"{tree!r} -> {simplified!r}"
    )
