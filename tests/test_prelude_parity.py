"""Static checks over the prelude sources themselves.

* Both preludes (representation-type and hand-coded) must define the
  same public vocabulary — otherwise configuration comparisons are
  apples to oranges.
* Every procedure documented in docs/LANGUAGE.md's lists must actually
  be defined.
"""

import os

import pytest

from repro.expand import Expander
from repro.ir import GlobalSet
from repro.runtime import prelude_source
from repro.sexpr import read_all


def defined_names(kind: str, safety: bool = True) -> set[str]:
    expander = Expander()
    program = expander.expand_program(read_all(prelude_source(kind, safety)))
    return {form.name for form in program.forms if isinstance(form, GlobalSet)}


REPTYPE = defined_names("reptype")
HANDCODED = defined_names("handcoded")


def is_public(name: str) -> bool:
    return not name.startswith("%")


def test_public_vocabulary_identical():
    reptype_public = {n for n in REPTYPE if is_public(n)}
    handcoded_public = {n for n in HANDCODED if is_public(n)}
    assert reptype_public == handcoded_public, (
        reptype_public ^ handcoded_public
    )


def test_safety_variants_define_same_public_names():
    # Internal helpers may differ (the hand-coded prelude selects its
    # safety variant textually); the public vocabulary must not.
    def public(names):
        return {n for n in names if is_public(n)}

    assert public(defined_names("reptype", safety=False)) == public(REPTYPE)
    assert public(defined_names("handcoded", safety=False)) == public(HANDCODED)


def test_expander_support_names_present():
    # Names the expander's literal lowering emits must exist.
    required = {
        "%sx-fixnum", "%sx-char", "%sx-true", "%sx-false", "%sx-nil",
        "%sx-unspecified", "%sx-eof", "%sx-cons", "%sx-append",
        "%sx-list->vector", "%sx-intern-literal", "%sx-string-alloc-raw",
        "%sx-string-init!", "%sx-vector-alloc-raw", "%sx-vector-init!",
        "%sx-eqv?",
    }
    assert required <= REPTYPE
    assert required <= HANDCODED


DOCUMENTED_PROCEDURES = """
eq? eqv? equal? not boolean? eof-object?
+ - * quotient remainder modulo = < <= > >= zero? negative? positive?
abs min max even? odd? expt gcd 1+ -1+ number->string string->number
fixnum? integer? number? fx+ fx- fx* fx< fx=
char? char->integer integer->char char=? char<? char<=? char>? char>=?
char-alphabetic? char-numeric? char-whitespace? char-upcase char-downcase
cons car cdr set-car! set-cdr! pair? null? caar cadr cdar cddr caddr
cdddr cadddr list length list? list-tail list-ref last-pair append
reverse memq memv member assq assv assoc map for-each filter fold-left
fold-right reduce sort iota list-copy list-index take drop delete
remove-duplicates count any every append! assq-del
vector? make-vector vector vector-length vector-ref vector-set!
vector->list list->vector vector-fill! vector-map vector-for-each
string? make-string string string-length string-ref string-set!
string->list list->string substring string-copy string-append string=?
string<? string-fill! string-upcase string-downcase string-index
string-contains? string-join string-split
symbol? symbol->string string->symbol
procedure? apply call/cc call-with-current-continuation
call-with-escape-continuation delay force make-promise promise?
make-hash-table hash-table? hash-table-set! hash-table-ref
hash-table-contains? hash-table-delete! hash-table-count
hash-table-keys hash-table->alist
display write newline write-char read-char peek-char read-line read
read-all error
rep-of rep-name rep-kind rep-tag rep-field-count rep-constructor
rep-predicate rep-accessor rep-mutator rep-type? tag-of record?
make-record-rep make-immediate-rep rep-field-names rep-field-index
record-field-accessor record-field-mutator
pair-rep vector-rep string-rep symbol-rep fixnum-rep char-rep
boolean-rep null-rep unspecified-rep eof-rep procedure-rep
""".split()

# `delay` and `case-lambda` are macros, not globals:
_MACROS = {"delay", "case-lambda", "define-record-type"}


@pytest.mark.parametrize("name", sorted(set(DOCUMENTED_PROCEDURES) - _MACROS))
def test_documented_name_is_defined(name):
    assert name in REPTYPE, f"{name} documented but not defined (reptype)"
    assert name in HANDCODED, f"{name} documented but not defined (handcoded)"


def test_language_doc_exists_and_mentions_key_sections():
    path = os.path.join(
        os.path.dirname(__file__), "..", "docs", "LANGUAGE.md"
    )
    with open(path) as handle:
        text = handle.read()
    for heading in ("Machine primitives", "Representation types", "syntax-rules"):
        assert heading in text
