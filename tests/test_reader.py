"""Unit tests for the S-expression reader."""

import pytest

from repro.errors import ReaderError
from repro.sexpr import EOF, NIL, UNSPECIFIED, Char, Symbol, cons, from_list, read, read_all


def sym(name):
    return Symbol(name)


# ----------------------------------------------------------------------
# atoms
# ----------------------------------------------------------------------


def test_read_fixnums():
    assert read("42") == 42
    assert read("-7") == -7
    assert read("+13") == 13
    assert read("0") == 0


def test_read_radix_literals():
    assert read("#x10") == 16
    assert read("#b101") == 5
    assert read("#o17") == 15
    assert read("#d99") == 99
    assert read("#xff") == 255


def test_read_booleans():
    assert read("#t") is True
    assert read("#f") is False
    assert read("#true") is True
    assert read("#false") is False


def test_read_symbols():
    assert read("foo") is sym("foo")
    assert read("set!") is sym("set!")
    assert read("+") is sym("+")
    assert read("-") is sym("-")
    assert read("...") is sym("...")
    assert read("list->vector") is sym("list->vector")
    assert read("1+") is sym("1+")


def test_read_characters():
    assert read("#\\a") == Char(ord("a"))
    assert read("#\\A") == Char(ord("A"))
    assert read("#\\space") == Char(32)
    assert read("#\\newline") == Char(10)
    assert read("#\\tab") == Char(9)
    assert read("#\\(") == Char(ord("("))
    assert read("#\\x41") == Char(65)
    assert read("#\\0") == Char(ord("0"))


def test_read_eof_and_unspecified_literals():
    assert read("#!eof") is EOF
    assert read("#!unspecific") is UNSPECIFIED


def test_read_strings():
    assert read('"hello"') == "hello"
    assert read('""') == ""
    assert read(r'"a\nb"') == "a\nb"
    assert read(r'"a\"b"') == 'a"b'
    assert read(r'"back\\slash"') == "back\\slash"
    assert read(r'"\x41;"') == "A"


# ----------------------------------------------------------------------
# compound data
# ----------------------------------------------------------------------


def test_read_lists():
    assert read("()") is NIL
    assert read("(1 2 3)") == from_list([1, 2, 3])
    assert read("(a (b c) d)") == from_list(
        [sym("a"), from_list([sym("b"), sym("c")]), sym("d")]
    )
    assert read("[1 2]") == from_list([1, 2])


def test_read_dotted_pairs():
    assert read("(1 . 2)") == cons(1, 2)
    assert read("(1 2 . 3)") == from_list([1, 2], tail=3)


def test_read_vectors():
    assert read("#(1 2 3)") == [1, 2, 3]
    assert read("#()") == []
    assert read("#(#(1) 2)") == [[1], 2]


def test_read_quote_shorthands():
    assert read("'x") == from_list([sym("quote"), sym("x")])
    assert read("`x") == from_list([sym("quasiquote"), sym("x")])
    assert read(",x") == from_list([sym("unquote"), sym("x")])
    assert read(",@x") == from_list([sym("unquote-splicing"), sym("x")])
    assert read("''x") == from_list(
        [sym("quote"), from_list([sym("quote"), sym("x")])]
    )


# ----------------------------------------------------------------------
# comments and whitespace
# ----------------------------------------------------------------------


def test_line_comments():
    assert read_all("; nothing\n1 ; one\n2") == [1, 2]


def test_block_comments_nest():
    assert read_all("#| outer #| inner |# still outer |# 5") == [5]


def test_datum_comments():
    assert read_all("(1 #;2 3)") == [from_list([1, 3])]
    assert read_all("#;(a b) 7") == [7]


def test_read_all_multiple():
    assert read_all("1 2 (3)") == [1, 2, from_list([3])]
    assert read_all("") == []
    assert read_all("   ; just a comment") == []


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "bad",
    [
        "(1 2",
        ")",
        "(1 . 2 3)",
        "(. 2)",
        '"unterminated',
        "#\\",
        "#q",
        "#xZZ",
        "(1 . )",
        "#|x",
        r'"\q"',
    ],
)
def test_reader_errors(bad):
    with pytest.raises(ReaderError):
        read_all(bad)


def test_reader_error_has_position():
    with pytest.raises(ReaderError) as excinfo:
        read_all("(a\n   ")
    assert excinfo.value.line >= 1
    assert "line" in str(excinfo.value)


def test_read_empty_returns_none():
    assert read("") is None
