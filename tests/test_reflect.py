"""Integration tests for the first-class layer: representation-type
descriptors, reflection, and runtime-created types.

These pin down the paper's "first-class" half: the same representation
objects the optimizer exploits statically are ordinary runtime values.
"""

import pytest

from repro import SchemeError
from repro.sexpr import Symbol

from .conftest import evaluate, output_of


# ----------------------------------------------------------------------
# descriptors of built-in types
# ----------------------------------------------------------------------


def test_rep_names():
    assert evaluate("(rep-name pair-rep)") == Symbol("pair")
    assert evaluate("(rep-name fixnum-rep)") == Symbol("fixnum")
    assert evaluate("(rep-name char-rep)") == Symbol("char")


def test_rep_kinds_and_tags():
    assert evaluate("(rep-kind pair-rep)") == Symbol("pointer")
    assert evaluate("(rep-tag pair-rep)") == 1
    assert evaluate("(rep-kind char-rep)") == Symbol("immediate")
    assert evaluate("(rep-field-count pair-rep)") == 2


def test_reflective_ops_are_the_optimized_ops():
    # The stored accessor IS car — one system, not two.
    assert evaluate("(eq? (rep-accessor pair-rep 0) car)") is True
    assert evaluate("(eq? (rep-accessor pair-rep 1) cdr)") is True
    assert evaluate("(eq? (rep-mutator pair-rep 0) set-car!)") is True
    assert evaluate("(eq? (rep-constructor pair-rep) cons)") is True
    assert evaluate("(eq? (rep-predicate pair-rep) pair?)") is True


def test_dynamic_dispatch_through_rep():
    assert evaluate("((rep-accessor pair-rep 0) (cons 7 8))") == 7
    assert evaluate("((rep-constructor pair-rep) 1 2)") == evaluate("(cons 1 2)")
    assert evaluate("((rep-predicate pair-rep) (cons 1 2))") is True


# ----------------------------------------------------------------------
# rep-of
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "value,rep",
    [
        ("5", "fixnum"),
        ("(cons 1 2)", "pair"),
        ("(vector 1)", "vector"),
        ('"s"', "string"),
        ("'sym", "symbol"),
        ("#\\c", "char"),
        ("#t", "boolean"),
        ("#f", "boolean"),
        ("'()", "empty-list"),
        ("car", "procedure"),
        ("(if #f #f)", "unspecified"),
    ],
)
def test_rep_of(value, rep):
    assert evaluate(f"(rep-name (rep-of {value}))") == Symbol(rep)


def test_rep_of_descriptor_is_meta():
    assert (
        evaluate("(rep-name (rep-of pair-rep))") == Symbol("representation-type")
    )
    assert evaluate("(rep-type? pair-rep)") is True
    assert evaluate("(rep-type? 5)") is False


def test_tag_of():
    assert evaluate("(tag-of (cons 1 2))") == 1
    assert evaluate("(tag-of 5)") == 0
    assert evaluate("(tag-of \"s\")") == 3


# ----------------------------------------------------------------------
# runtime-created record types
# ----------------------------------------------------------------------

POINT = """
(define point-rep (make-record-rep 'point '(x y)))
(define make-point (rep-constructor point-rep))
(define point? (rep-predicate point-rep))
(define point-x (rep-accessor point-rep 0))
(define point-y (rep-accessor point-rep 1))
(define set-point-x! (rep-mutator point-rep 0))
"""


def test_record_type_basics():
    assert evaluate(POINT + "(point-x (make-point 3 4))") == 3
    assert evaluate(POINT + "(point-y (make-point 3 4))") == 4
    assert evaluate(POINT + "(point? (make-point 1 2))") is True
    assert evaluate(POINT + "(point? (cons 1 2))") is False
    assert evaluate(POINT + "(point? 5)") is False


def test_record_mutation():
    assert (
        evaluate(
            POINT + "(let ((p (make-point 1 2))) (set-point-x! p 10) (point-x p))"
        )
        == 10
    )


def test_two_record_types_are_distinct():
    source = (
        POINT
        + """
        (define size-rep (make-record-rep 'size '(w h)))
        (define make-size (rep-constructor size-rep))
        ((rep-predicate size-rep) (make-point 1 2))
        """
    )
    assert evaluate(source) is False


def test_record_accessor_type_check():
    with pytest.raises(SchemeError, match="type check"):
        evaluate(POINT + "(point-x (cons 1 2))")
    with pytest.raises(SchemeError, match="type check"):
        evaluate(
            POINT
            + """(define other (make-record-rep 'other '(a b)))
                 (point-x ((rep-constructor other) 1 2))"""
        )


def test_record_constructor_arity_checked():
    with pytest.raises(SchemeError, match="arity"):
        evaluate(POINT + "(make-point 1)")


def test_rep_of_record_returns_its_descriptor():
    assert (
        evaluate(POINT + "(eq? (rep-of (make-point 1 2)) point-rep)") is True
    )
    assert evaluate(POINT + "(rep-name (rep-of (make-point 1 2)))") == Symbol(
        "point"
    )


def test_records_print_with_type_name():
    assert output_of(POINT + "(display (make-point 1 2))") == "#<point>"


def test_record_field_count():
    assert evaluate(POINT + "(rep-field-count point-rep)") == 2


# ----------------------------------------------------------------------
# runtime-created immediate types
# ----------------------------------------------------------------------

TEMP = """
(define temp-rep (make-immediate-rep 'temperature))
(define make-temp (rep-constructor temp-rep))
(define temp? (rep-predicate temp-rep))
(define temp-value (rep-accessor temp-rep 0))
"""


def test_immediate_rep_round_trip():
    assert evaluate(TEMP + "(temp-value (make-temp 37))") == 37
    assert evaluate(TEMP + "(temp? (make-temp 0))") is True
    assert evaluate(TEMP + "(temp? 37)") is False
    assert evaluate(TEMP + "(temp? #\\a)") is False


def test_immediate_rep_values_are_immediates():
    # Not heap-allocated: structurally eq by value.
    assert evaluate(TEMP + "(eq? (make-temp 5) (make-temp 5))") is True
    assert evaluate(TEMP + "(tag-of (make-temp 5))") == 6


def test_immediate_reps_are_distinct():
    source = TEMP + """
        (define hue-rep (make-immediate-rep 'hue))
        ((rep-predicate hue-rep) (make-temp 5))
    """
    assert evaluate(source) is False


def test_rep_of_dynamic_immediate():
    assert evaluate(TEMP + "(rep-name (rep-of (make-temp 1)))") == Symbol(
        "temperature"
    )


# ----------------------------------------------------------------------
# reflection works identically under full optimization
# ----------------------------------------------------------------------


def test_reflection_under_optimizer(any_config):
    assert (
        evaluate(POINT + "(point-x (make-point 30 40))", options=any_config) == 30
    )
    assert (
        evaluate("(eq? (rep-accessor pair-rep 0) car)", options=any_config) is True
    )
