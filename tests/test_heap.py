"""Unit tests for the heap and its conservative mark-sweep collector."""

import pytest

from repro.errors import HeapExhausted, VMError
from repro.vm.heap import Heap


def make_heap(words=256):
    heap = Heap(words)
    heap.register_pointer_tag(1)
    return heap


def no_roots():
    return []


def test_allocate_returns_tagged_pointer():
    heap = make_heap()
    p = heap.allocate(2, 1, no_roots)
    assert p & 7 == 1
    base = p & ~7
    assert heap.mem[base >> 3] == 2  # header = payload size


def test_fields_are_zeroed_and_addressable():
    heap = make_heap()
    p = heap.allocate(2, 1, no_roots)
    assert heap.load((p & ~7) + 8) == 0
    heap.store((p & ~7) + 8, 42)
    assert heap.load((p & ~7) + 8) == 42


def test_field_displacement_arithmetic():
    # The displacement the library computes: field i at 8*(i+1) - tag.
    heap = make_heap()
    p = heap.allocate(2, 1, no_roots)
    heap.store(p + 7, 11)
    heap.store(p + 15, 22)
    assert heap.load(p + 7) == 11
    assert heap.load(p + 15) == 22


def test_unaligned_access_rejected():
    heap = make_heap()
    p = heap.allocate(1, 1, no_roots)
    with pytest.raises(VMError):
        heap.load(p)  # tagged pointer itself is unaligned
    with pytest.raises(VMError):
        heap.store(p + 1, 0)


def test_out_of_bounds_rejected():
    heap = make_heap()
    with pytest.raises(VMError):
        heap.load(heap.size_words * 8 + 8)


def test_gc_reclaims_unreachable_blocks():
    heap = make_heap(128)
    for _ in range(5):
        heap.allocate(4, 1, no_roots)
    live_before = heap.live_words()
    reclaimed = heap.collect([])
    assert reclaimed == live_before
    assert heap.live_words() == 0


def test_gc_keeps_rooted_blocks():
    heap = make_heap(128)
    keep = heap.allocate(4, 1, no_roots)
    drop = heap.allocate(4, 1, no_roots)
    heap.collect([keep])
    assert (keep & ~7) >> 3 in heap.blocks
    assert (drop & ~7) >> 3 not in heap.blocks


def test_gc_traces_through_fields():
    heap = make_heap(128)
    inner = heap.allocate(1, 1, no_roots)
    outer = heap.allocate(1, 1, no_roots)
    heap.store((outer & ~7) + 8, inner)
    heap.collect([outer])
    assert (inner & ~7) >> 3 in heap.blocks


def test_gc_handles_cycles():
    heap = make_heap(128)
    a = heap.allocate(1, 1, no_roots)
    b = heap.allocate(1, 1, no_roots)
    heap.store((a & ~7) + 8, b)
    heap.store((b & ~7) + 8, a)
    heap.collect([a])
    assert len(heap.blocks) == 2
    heap.collect([])
    assert len(heap.blocks) == 0


def test_unregistered_tags_are_not_pointers():
    heap = make_heap(128)
    block = heap.allocate(1, 1, no_roots)
    fake = (block & ~7) | 2  # tag 2 never registered here
    heap.collect([fake])
    assert len(heap.blocks) == 0


def test_conservative_nonpointer_roots_are_ignored():
    heap = make_heap(128)
    heap.allocate(1, 1, no_roots)
    heap.collect([12345 * 8, 7, 0])  # random words, none block bases
    assert len(heap.blocks) == 0


def test_allocation_triggers_gc_via_roots_callback():
    heap = make_heap(64)
    roots: list[int] = []
    keep = heap.allocate(8, 1, lambda: roots)
    roots.append(keep)
    # Fill the heap with garbage; allocation should collect and succeed.
    for _ in range(30):
        heap.allocate(8, 1, lambda: roots)
    assert heap.gc_count >= 1
    assert (keep & ~7) >> 3 in heap.blocks


def test_heap_exhaustion_raises():
    heap = make_heap(64)
    keep = []
    with pytest.raises(HeapExhausted):
        for _ in range(100):
            keep.append(heap.allocate(8, 1, lambda: keep))


def test_free_list_reuse_after_gc():
    heap = make_heap(64)
    first = heap.allocate(8, 1, no_roots)
    heap.collect([])
    second = heap.allocate(8, 1, no_roots)
    assert first == second  # same space reused


def test_bad_sizes_and_tags():
    heap = make_heap()
    with pytest.raises(VMError):
        heap.allocate(-1, 1, no_roots)
    with pytest.raises(VMError):
        heap.register_pointer_tag(9)


def test_allocation_stats():
    heap = make_heap()
    heap.allocate(3, 1, no_roots)
    assert heap.words_allocated == 4  # payload + header
