"""Unit tests for the heap and its conservative mark-sweep collector."""

import pytest

from repro.errors import HeapExhausted, VMError
from repro.vm.heap import Heap


def make_heap(words=256):
    heap = Heap(words)
    heap.register_pointer_tag(1)
    return heap


def no_roots():
    return []


def test_allocate_returns_tagged_pointer():
    heap = make_heap()
    p = heap.allocate(2, 1, no_roots)
    assert p & 7 == 1
    base = p & ~7
    assert heap.mem[base >> 3] == 2  # header = payload size


def test_fields_are_zeroed_and_addressable():
    heap = make_heap()
    p = heap.allocate(2, 1, no_roots)
    assert heap.load((p & ~7) + 8) == 0
    heap.store((p & ~7) + 8, 42)
    assert heap.load((p & ~7) + 8) == 42


def test_field_displacement_arithmetic():
    # The displacement the library computes: field i at 8*(i+1) - tag.
    heap = make_heap()
    p = heap.allocate(2, 1, no_roots)
    heap.store(p + 7, 11)
    heap.store(p + 15, 22)
    assert heap.load(p + 7) == 11
    assert heap.load(p + 15) == 22


def test_unaligned_access_rejected():
    heap = make_heap()
    p = heap.allocate(1, 1, no_roots)
    with pytest.raises(VMError):
        heap.load(p)  # tagged pointer itself is unaligned
    with pytest.raises(VMError):
        heap.store(p + 1, 0)


def test_out_of_bounds_rejected():
    heap = make_heap()
    with pytest.raises(VMError):
        heap.load(heap.size_words * 8 + 8)


def test_gc_reclaims_unreachable_blocks():
    heap = make_heap(128)
    for _ in range(5):
        heap.allocate(4, 1, no_roots)
    live_before = heap.live_words()
    reclaimed = heap.collect([])
    assert reclaimed == live_before
    assert heap.live_words() == 0


def test_gc_keeps_rooted_blocks():
    heap = make_heap(128)
    keep = heap.allocate(4, 1, no_roots)
    drop = heap.allocate(4, 1, no_roots)
    heap.collect([keep])
    assert (keep & ~7) >> 3 in heap.blocks
    assert (drop & ~7) >> 3 not in heap.blocks


def test_gc_traces_through_fields():
    heap = make_heap(128)
    inner = heap.allocate(1, 1, no_roots)
    outer = heap.allocate(1, 1, no_roots)
    heap.store((outer & ~7) + 8, inner)
    heap.collect([outer])
    assert (inner & ~7) >> 3 in heap.blocks


def test_gc_handles_cycles():
    heap = make_heap(128)
    a = heap.allocate(1, 1, no_roots)
    b = heap.allocate(1, 1, no_roots)
    heap.store((a & ~7) + 8, b)
    heap.store((b & ~7) + 8, a)
    heap.collect([a])
    assert len(heap.blocks) == 2
    heap.collect([])
    assert len(heap.blocks) == 0


def test_unregistered_tags_are_not_pointers():
    heap = make_heap(128)
    block = heap.allocate(1, 1, no_roots)
    fake = (block & ~7) | 2  # tag 2 never registered here
    heap.collect([fake])
    assert len(heap.blocks) == 0


def test_conservative_nonpointer_roots_are_ignored():
    heap = make_heap(128)
    heap.allocate(1, 1, no_roots)
    heap.collect([12345 * 8, 7, 0])  # random words, none block bases
    assert len(heap.blocks) == 0


def test_allocation_triggers_gc_via_roots_callback():
    heap = make_heap(64)
    roots: list[int] = []
    keep = heap.allocate(8, 1, lambda: roots)
    roots.append(keep)
    # Fill the heap with garbage; allocation should collect and succeed.
    for _ in range(30):
        heap.allocate(8, 1, lambda: roots)
    assert heap.gc_count >= 1
    assert (keep & ~7) >> 3 in heap.blocks


def test_heap_exhaustion_raises():
    heap = make_heap(64)
    keep = []
    with pytest.raises(HeapExhausted):
        for _ in range(100):
            keep.append(heap.allocate(8, 1, lambda: keep))


def test_free_list_reuse_after_gc():
    # Dead space is reused: after a collect, further allocation must
    # recycle the reclaimed block (via the lazy sweep) once the bump
    # region runs out, rather than exhausting the heap.
    heap = make_heap(64)
    first = (heap.allocate(8, 1, no_roots) & ~7) >> 3
    for _ in range(6):  # fill the remaining 54 words
        heap.allocate(8, 1, no_roots)
    heap.collect([])
    seen = set()
    for _ in range(7):
        seen.add((heap.allocate(8, 1, no_roots) & ~7) >> 3)
    assert first in seen  # same space reused


def test_bad_sizes_and_tags():
    heap = make_heap()
    with pytest.raises(VMError):
        heap.allocate(-1, 1, no_roots)
    with pytest.raises(VMError):
        heap.register_pointer_tag(9)


def test_allocation_stats():
    heap = make_heap()
    heap.allocate(3, 1, no_roots)
    assert heap.words_allocated == 4  # payload + header


# ----------------------------------------------------------------------
# allocator edge cases (size-class bins, bump region, occupancy trigger)
# ----------------------------------------------------------------------


def base_of(pointer):
    return (pointer & ~7) >> 3


def conserved(heap):
    # Word 0 is reserved; every other word is either live or free.  The
    # heap exposes the same invariant as check_conservation(); go through
    # it so the fault-injection harness and these tests agree on one
    # definition.
    heap.check_conservation()
    return True


def test_zero_word_blocks():
    heap = make_heap(64)
    p = heap.allocate(0, 1, no_roots)
    assert heap.mem[base_of(p)] == 0
    assert heap.words_allocated == 1  # header only
    assert conserved(heap)
    heap.collect([])
    assert base_of(p) not in heap.blocks
    q = heap.allocate(0, 1, no_roots)
    assert base_of(q) in heap.blocks
    assert conserved(heap)


def test_fragmentation_straddling_bin_boundaries():
    # Free a large block (above MAX_BIN_PAYLOAD) and service a bin-sized
    # request from it: the best-fit split must leave the remainder
    # accounted for, and a later large request must still succeed after
    # the coalescing pass merges the fragments back together.
    heap = make_heap(64)
    big = heap.allocate(40, 1, no_roots)  # payload > MAX_BIN_PAYLOAD
    filler = heap.allocate(20, 1, no_roots)
    heap.collect([filler])  # 41-word extent dead, pending
    small = heap.allocate(16, 1, no_roots)  # bin-max, carved out of it
    assert base_of(small) == base_of(big)  # split the dead extent
    assert conserved(heap)
    heap.collect([])  # everything dead again
    big2 = heap.allocate(40, 1, no_roots)  # needs the fragments merged
    assert heap.mem[base_of(big2)] == 40
    assert conserved(heap)


def test_occupancy_trigger_fires_at_threshold():
    heap = Heap(256, gc_occupancy=0.5)
    heap.register_pointer_tag(1)
    while not any(e.trigger == "occupancy" for e in heap.gc_events):
        heap.allocate(8, 1, no_roots)
    # The trigger fired near the threshold, well before exhaustion.
    event = next(e for e in heap.gc_events if e.trigger == "occupancy")
    assert event.reclaimed_words > 0
    assert all(e.trigger != "exhausted" for e in heap.gc_events)
    assert conserved(heap)


def test_occupancy_zero_denied_and_legacy_none():
    with pytest.raises(ValueError):
        Heap(256, gc_occupancy=0.0)
    with pytest.raises(ValueError):
        Heap(256, gc_occupancy=1.5)
    heap = Heap(256, gc_occupancy=None)  # legacy: collect on exhaustion
    heap.register_pointer_tag(1)
    for _ in range(60):
        heap.allocate(8, 1, no_roots)
    assert all(e.trigger == "exhausted" for e in heap.gc_events)


def test_bump_exhaustion_with_live_scratch_roots():
    # A cons-loop with live scratch state: when the bump region runs dry
    # mid-sequence, the collection must keep every rooted block and the
    # values stored in it.
    heap = make_heap(128)
    roots: list[int] = []
    for i in range(4):
        p = heap.allocate(2, 1, lambda: roots)
        heap.store((p & ~7) + 8, (i + 1) * 8)  # fixnum payload
        roots.append(p)
    for _ in range(200):  # garbage churn far beyond 128 words
        heap.allocate(4, 1, lambda: roots)
    assert heap.gc_count >= 1
    for i, p in enumerate(roots):
        assert base_of(p) in heap.blocks
        assert heap.load((p & ~7) + 8) == (i + 1) * 8
    assert conserved(heap)


def test_gc_telemetry_aggregates():
    heap = make_heap(128)
    heap.allocate(4, 1, no_roots)
    heap.collect([])
    stats = heap.gc_telemetry()
    assert stats["collections"] == 1
    assert stats["triggers"] == {"explicit": 1}
    assert stats["reclaimed_words_total"] == 5
    assert stats["pause_seconds_total"] >= 0.0
    assert stats["live_words"] == 0
    assert stats["size_words"] == 128


from hypothesis import given, settings
from hypothesis import strategies as st

alloc_ops = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=24),  # allocate n payload words
        st.just("collect"),
        st.just("collect-rooted"),
    ),
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=alloc_ops)
def test_word_conservation_property(ops):
    # After any alloc/collect sequence, every non-reserved word is
    # either live or somewhere in the free structures (bump remainder,
    # bins, pending queue, large extents).
    heap = Heap(192, gc_occupancy=0.75)
    heap.register_pointer_tag(1)
    roots: list[int] = []
    for op in ops:
        if op == "collect":
            roots.clear()
            heap.collect(roots)
        elif op == "collect-rooted":
            heap.collect(roots)
        else:
            try:
                p = heap.allocate(op, 1, lambda: roots)
            except HeapExhausted:
                roots.clear()
                continue
            if len(roots) < 4:
                roots.append(p)
        assert conserved(heap), f"after {op}: {heap.live_words()} live"
