"""Tests for escape continuations (upward-only call/cc)."""

import pytest

from repro import SchemeError, decode, run_source
from repro.sexpr import Symbol, from_list

from .conftest import OPT, UNOPT, evaluate


def test_normal_return_without_escape():
    assert evaluate("(call/cc (lambda (k) 42))") == 42


def test_escape_returns_value():
    assert evaluate("(call/cc (lambda (k) (k 7) 99))") == 7


def test_escape_skips_pending_work():
    source = """
    (define trace '())
    (define (note x) (set! trace (cons x trace)) x)
    (call/cc (lambda (k) (note 'before) (k 0) (note 'after)))
    (reverse trace)
    """
    assert evaluate(source) == from_list([Symbol("before")])


def test_escape_from_deep_recursion():
    source = """
    (define (product lst)
      (call/cc
       (lambda (bail)
         (let loop ((node lst))
           (cond ((null? node) 1)
                 ((zero? (car node)) (bail 0))      ; shortcut
                 (else (* (car node) (loop (cdr node)))))))))
    (list (product '(1 2 3 4)) (product '(1 2 0 4)))
    """
    assert evaluate(source) == from_list([24, 0])


def test_escape_through_higher_order_calls():
    source = """
    (call/cc
     (lambda (k)
       (for-each1 (lambda (x) (when (= x 3) (k x))) '(1 2 3 4))
       'not-found))
    """
    assert evaluate(source) == 3


def test_nested_escapes_choose_the_right_frame():
    source = """
    (call/cc
     (lambda (outer)
       (+ 100 (call/cc (lambda (inner) (inner 1) 50)))))
    """
    assert evaluate(source) == 101


def test_nested_escape_to_outer():
    source = """
    (call/cc
     (lambda (outer)
       (+ 100 (call/cc (lambda (inner) (outer 1) 50)))))
    """
    assert evaluate(source) == 1


def test_escape_continuation_is_a_procedure():
    assert evaluate("(call/cc (lambda (k) (procedure? k)))") is True


def test_escape_via_apply():
    assert evaluate("(call/cc (lambda (k) (apply k '(5)) 9))") == 5


def test_exception_handling_idiom():
    source = """
    (define (try thunk handler)
      (call/cc
       (lambda (k)
         (let ((raise (lambda (condition) (k (handler condition)))))
           (thunk raise)))))
    (try (lambda (raise) (+ 1 (raise 'boom)))
         (lambda (c) (list 'caught c)))
    """
    assert evaluate(source) == from_list([Symbol("caught"), Symbol("boom")])


def test_expired_escape_rejected():
    source = """
    (define saved #f)
    (call/cc (lambda (k) (set! saved k)))
    (define (f) (f))   ; make sure nothing re-enters by accident
    (saved 1)
    """
    with pytest.raises(SchemeError, match="extent|not a procedure"):
        evaluate(source)


def test_escape_wrong_arity():
    with pytest.raises(SchemeError, match="arity"):
        evaluate("(call/cc (lambda (k) (k 1 2)))")


def test_escape_under_optimizer():
    source = "(call/cc (lambda (k) (* 2 (k 21))))"
    assert decode(run_source(source, OPT)) == 21
    assert decode(run_source(source, UNOPT)) == 21


def test_escape_value_survives_gc():
    source = """
    (call/cc
     (lambda (k)
       (let loop ((i 0))
         (if (= i 2000)
             (k (list 1 2 3))
             (begin (cons i i) (loop (+ i 1)))))))
    """
    value = decode(run_source(source, UNOPT, heap_words=1 << 13))
    assert value == from_list([1, 2, 3])
