"""Integration tests for the library layer (lists, strings,
higher-order procedures, printing, apply, error)."""

import pytest

from repro import SchemeError
from repro.sexpr import NIL, Char, Symbol, from_list

from .conftest import evaluate, output_of


# ----------------------------------------------------------------------
# lists
# ----------------------------------------------------------------------


def test_list_and_length():
    assert evaluate("(list 1 2 3)") == from_list([1, 2, 3])
    assert evaluate("(length '(a b c d))") == 4
    assert evaluate("(length '())") == 0


def test_list_predicates_and_access():
    assert evaluate("(list? '(1 2))") is True
    assert evaluate("(list? '(1 . 2))") is False
    assert evaluate("(list-ref '(a b c) 1)") == Symbol("b")
    assert evaluate("(list-tail '(a b c) 2)") == from_list([Symbol("c")])
    assert evaluate("(cadr '(1 2 3))") == 2
    assert evaluate("(caddr '(1 2 3))") == 3


def test_append_and_reverse():
    assert evaluate("(append '(1 2) '(3))") == from_list([1, 2, 3])
    assert evaluate("(append)") == NIL
    assert evaluate("(append '(1) '(2) '(3))") == from_list([1, 2, 3])
    assert evaluate("(reverse '(1 2 3))") == from_list([3, 2, 1])


def test_membership_and_assoc():
    assert evaluate("(memq 'b '(a b c))") == from_list([Symbol("b"), Symbol("c")])
    assert evaluate("(memq 'x '(a b))") is False
    assert evaluate("(member '(1) '((1) (2)))") == from_list(
        [from_list([1]), from_list([2])]
    )
    assert evaluate("(assq 'b '((a 1) (b 2)))") == from_list([Symbol("b"), 2])
    assert evaluate("(assv 2 '((1 a) (2 b)))") == from_list([2, Symbol("b")])
    assert evaluate('(assoc "k" (list (cons "k" 1)))').cdr == 1


# ----------------------------------------------------------------------
# higher-order
# ----------------------------------------------------------------------


def test_map_and_for_each():
    assert evaluate("(map (lambda (x) (* x x)) '(1 2 3))") == from_list([1, 4, 9])
    assert evaluate("(map + '(1 2) '(10 20))") == from_list([11, 22])
    assert (
        evaluate(
            """(let ((acc 0))
                 (for-each (lambda (x) (set! acc (+ acc x))) '(1 2 3))
                 acc)"""
        )
        == 6
    )


def test_filter_and_folds():
    assert evaluate("(filter even? '(1 2 3 4))") == from_list([2, 4])
    assert evaluate("(fold-left + 0 '(1 2 3 4))") == 10
    assert evaluate("(fold-right cons '() '(1 2))") == from_list([1, 2])


def test_sort():
    assert evaluate("(sort '(3 1 2) <)") == from_list([1, 2, 3])
    assert evaluate("(sort '() <)") == NIL
    assert evaluate("(sort '(5 4 3 2 1) <)") == from_list([1, 2, 3, 4, 5])
    assert evaluate("(sort '(1 2 3) >)") == from_list([3, 2, 1])


# ----------------------------------------------------------------------
# apply and variadic procedures
# ----------------------------------------------------------------------


def test_apply():
    assert evaluate("(apply + '(1 2))") == 3
    assert evaluate("(apply + 1 '(2))") == 3
    assert evaluate("(apply list 1 2 '(3 4))") == from_list([1, 2, 3, 4])
    assert evaluate("(apply (lambda args (length args)) '(a b c))") == 3


def test_variadic_lambdas():
    assert evaluate("((lambda args args) 1 2)") == from_list([1, 2])
    assert evaluate("((lambda (a . rest) rest) 1 2 3)") == from_list([2, 3])
    assert evaluate("((lambda (a . rest) a) 1)") == 1
    assert evaluate("((lambda (a . rest) rest) 1)") == NIL


def test_arity_errors():
    with pytest.raises(SchemeError, match="arity"):
        evaluate("((lambda (a b) a) 1)")
    with pytest.raises(SchemeError, match="arity"):
        evaluate("((lambda (a . r) a))")


# ----------------------------------------------------------------------
# numeric utilities
# ----------------------------------------------------------------------


def test_numeric_library():
    assert evaluate("(abs -5)") == 5
    assert evaluate("(min 2 3)") == 2
    assert evaluate("(max 2 3)") == 3
    assert evaluate("(even? 4)") is True
    assert evaluate("(odd? 4)") is False
    assert evaluate("(expt 2 10)") == 1024
    assert evaluate("(expt 3 0)") == 1
    assert evaluate("(gcd 12 18)") == 6
    assert evaluate("(number->string 0)") == "0"
    assert evaluate("(number->string -370)") == "-370"
    assert evaluate('(string->number "123")') == 123
    assert evaluate('(string->number "-45")') == -45
    assert evaluate('(string->number "12x")') is False
    assert evaluate('(string->number "")') is False


# ----------------------------------------------------------------------
# strings (library level)
# ----------------------------------------------------------------------


def test_string_library():
    assert evaluate('(string->list "ab")') == from_list(
        [Char(ord("a")), Char(ord("b"))]
    )
    assert evaluate("(list->string (list #\\h #\\i))") == "hi"
    assert evaluate("(string #\\o #\\k)") == "ok"
    assert evaluate('(substring "hello" 1 3)') == "el"
    assert evaluate('(string-append "foo" "bar" "!")') == "foobar!"
    assert evaluate('(string-append)') == ""
    assert evaluate('(string=? "abc" "abc")') is True
    assert evaluate('(string=? "abc" "abd")') is False
    assert evaluate('(string=? "ab" "abc")') is False
    assert evaluate('(string<? "abc" "abd")') is True
    assert evaluate('(string<? "ab" "abc")') is True
    assert evaluate('(string<? "abc" "abc")') is False
    assert evaluate('(string-copy "xy")') == "xy"


# ----------------------------------------------------------------------
# vectors (library level)
# ----------------------------------------------------------------------


def test_vector_library():
    assert evaluate("(vector 1 2 3)") == [1, 2, 3]
    assert evaluate("(list->vector '(1 2))") == [1, 2]
    assert evaluate("(vector->list (vector 1 2))") == from_list([1, 2])
    assert evaluate("(vector-map (lambda (x) (+ x 1)) (vector 1 2))") == [2, 3]
    assert evaluate(
        "(let ((v (make-vector 3 0))) (vector-fill! v 9) (vector->list v))"
    ) == from_list([9, 9, 9])


# ----------------------------------------------------------------------
# equal?
# ----------------------------------------------------------------------


def test_equal():
    assert evaluate("(equal? '(1 (2 #(3))) '(1 (2 #(3))))") is True
    assert evaluate("(equal? '(1 2) '(1 3))") is False
    assert evaluate('(equal? "ab" "ab")') is True
    assert evaluate('(equal? "ab" "ac")') is False
    assert evaluate("(equal? 5 5)") is True
    assert evaluate("(equal? #(1 2) #(1 2))") is True
    assert evaluate("(equal? #(1 2) #(1 2 3))") is False


# ----------------------------------------------------------------------
# printing
# ----------------------------------------------------------------------


def test_display_output():
    assert output_of("(display 42)") == "42"
    assert output_of("(display -7)") == "-7"
    assert output_of('(display "hi")') == "hi"
    assert output_of("(display '(1 2))") == "(1 2)"
    assert output_of("(display '(1 . 2))") == "(1 . 2)"
    assert output_of("(display #\\a)") == "a"
    assert output_of("(display #t)(display #f)") == "#t#f"
    assert output_of("(display '())") == "()"
    assert output_of("(display 'sym)") == "sym"
    assert output_of("(display #(1 (2)))") == "#(1 (2))"
    assert output_of("(display car)") == "#<procedure>"


def test_write_output():
    assert output_of('(write "hi")') == '"hi"'
    assert output_of(r'(write "a\"b")') == r'"a\"b"'
    assert output_of("(write #\\a)") == "#\\a"
    assert output_of("(write #\\space)") == "#\\space"
    assert output_of("(write '(1 \"x\"))") == '(1 "x")'


def test_newline_and_write_char():
    assert output_of("(newline)") == "\n"
    assert output_of("(write-char #\\Z)") == "Z"


def test_error_displays_and_fails():
    with pytest.raises(SchemeError, match="error signalled"):
        evaluate('(error "boom" 1 2)')
    # the message is printed before failing
    import repro

    try:
        repro.run_source('(error "boom" 42)', options=None)
    except SchemeError:
        pass


# ----------------------------------------------------------------------
# deep structures / GC pressure
# ----------------------------------------------------------------------


def test_long_list_construction_with_gc():
    # allocates enough to trigger collections in a small heap
    result = evaluate(
        """(let loop ((i 0) (acc '()))
             (if (= i 2000)
                 (length acc)
                 (loop (+ i 1) (cons i acc))))""",
        heap_words=1 << 14,
    )
    assert result == 2000


def test_gc_preserves_live_data():
    from .conftest import run_unopt

    result = run_unopt(
        """(let ((keep (list 1 2 3)))
             (let loop ((i 0))
               (if (= i 3000)
                   keep
                   (begin (cons i i) (loop (+ i 1))))))""",
        heap_words=1 << 13,
    )
    from repro import decode

    assert decode(result) == from_list([1, 2, 3])
    assert result.machine.heap.gc_count > 0
