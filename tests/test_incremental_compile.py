"""The incremental (frozen-prelude) compile path must be equivalent to
whole-program optimization.

Equivalence is behavioural, not instruction-exact: with the
interprocedural ``unbox`` pass enabled, whole-program optimization sees
closed-world call-site joins for prelude globals and can rewrite
prelude bodies, which the cached open-world prefix deliberately cannot
(docs/INTERNALS.md §12).  So the default configuration asserts equal
output/value and that the whole-program path is never *slower*; the
purely syntactic pipeline (``unbox`` off) keeps the exact dynamic
instruction-count equality of the original contract."""

import pytest

from repro import CompileOptions, OptimizerOptions, compile_source, decode
from repro.api import _assigned_globals
from repro.expand import Expander
from repro.ir import Program
from repro.opt import optimize_program
from repro.runtime import prelude_source
from repro.sexpr import read_all

PROGRAMS = [
    "(+ 1 2)",
    "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)",
    "(sort '(9 8 1 4) <)",
    "(display (map (lambda (x) (* 2 x)) '(1 2 3)))",
    "(call/cc (lambda (k) (k 'escaped)))",
    "(let loop ((i 0) (v (make-vector 5 0)))"
    "  (if (= i 5) (vector->list v)"
    "      (begin (vector-set! v i (* i i)) (loop (+ i 1) v))))",
]


def full_path_compile(source, options):
    """Whole-program optimization, bypassing the prelude cache."""
    from repro.backend import convert_assignments_program, generate_code

    expander = Expander()
    text = prelude_source(options.prelude, options.safety) + "\n" + source
    expanded = expander.expand_program(read_all(text))
    program = Program(expanded.forms, expander.global_names)
    program = optimize_program(program, options.optimizer)
    program = convert_assignments_program(program)
    return generate_code(program)


@pytest.mark.parametrize("source", PROGRAMS)
def test_incremental_equals_full(source):
    options = CompileOptions()
    incremental = compile_source(source, options)
    full = full_path_compile(source, options)
    from repro.vm import Machine

    result_a = incremental.run()
    result_b = Machine(full).run()
    assert result_a.output == result_b.output
    assert decode(result_a) == decode(result_b)
    # Whole-program optimization sees closed-world summaries for the
    # prelude; the frozen prefix cannot, so it may only be slower.
    assert result_a.steps >= result_b.steps


@pytest.mark.parametrize("source", PROGRAMS)
def test_incremental_equals_full_syntactic(source):
    # Without the interprocedural pass the two paths must generate
    # dynamically identical code — the original exact contract.
    options = CompileOptions(optimizer=OptimizerOptions().without("unbox"))
    incremental = compile_source(source, options)
    full = full_path_compile(source, options)
    from repro.vm import Machine

    result_a = incremental.run()
    result_b = Machine(full).run()
    assert result_a.output == result_b.output
    assert result_a.steps == result_b.steps


def test_redefinition_forces_full_path():
    # Redefining a prelude name must fall back to whole-program
    # optimization and produce the redefined behaviour.
    source = "(define (length x) 'overridden) (length '(1 2 3))"
    value = decode(compile_source(source).run())
    from repro.sexpr import Symbol

    assert value == Symbol("overridden")


def test_set_of_prelude_name_forces_full_path():
    source = """
    (define old-car car)
    (set! car (lambda (p) 'hijacked))
    (list (car '(1 2)) (old-car '(1 2)))
    """
    value = decode(compile_source(source).run())
    from repro.sexpr import Symbol, from_list

    assert value == from_list([Symbol("hijacked"), 1])


def test_assigned_globals_helper():
    expander = Expander()
    program = expander.expand_program(
        read_all("(define a 1) (set! b 2) (lambda () (set! c 3))")
    )
    assert {"a", "b", "c"} <= _assigned_globals(program.forms)


def test_incremental_cache_reused():
    from repro.api import _OPTIMIZED_PRELUDE_CACHE, _optimizer_key

    options = CompileOptions()
    compile_source("(+ 1 2)", options)
    key = _optimizer_key(options)
    assert key in _OPTIMIZED_PRELUDE_CACHE
    before = id(_OPTIMIZED_PRELUDE_CACHE[key])
    compile_source("(+ 3 4)", options)
    assert id(_OPTIMIZED_PRELUDE_CACHE[key]) == before
