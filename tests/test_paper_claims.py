"""The paper's claims, as executable assertions.

These are the reproduction's acceptance tests: the abstract
representation-type code, after the general-purpose optimizer, must
match the hand-coded baseline (per-operation static instruction counts
and whole-program dynamic counts), and must beat the unoptimized
configuration by a wide margin.
"""

import pytest

from repro import CompileOptions, OptimizerOptions, compile_source, decode, run_source
from repro.vm import isa

from .conftest import BASE, OPT, UNOPT


def keep_all(base: CompileOptions) -> CompileOptions:
    """A copy of a configuration with global pruning off, so probe
    procedures survive even when nothing calls them."""
    optimizer = OptimizerOptions(**base.optimizer.__dict__)
    optimizer.prune_globals = False
    return CompileOptions(
        optimizer=optimizer, prelude=base.prelude, safety=base.safety
    )


UNSAFE_OPT = keep_all(CompileOptions(safety=False))
UNSAFE_BASE = keep_all(CompileOptions.baseline(safety=False))
SAFE_OPT = keep_all(OPT)
SAFE_BASE = keep_all(BASE)


def wrapped(op_call):
    """A one-operation procedure, so static counts isolate the op."""
    return f"(define (probe x y z) {op_call})\n'done"


def static_count(op_call, options):
    compiled = compile_source(wrapped(op_call), options)
    return compiled.static_instruction_count("probe")


OPS = [
    "(car x)",
    "(cdr x)",
    "(cons x y)",
    "(pair? x)",
    "(null? x)",
    "(vector-ref x y)",
    "(vector-set! x y z)",
    "(vector-length x)",
    "(+ x y)",
    "(- x y)",
    "(* x y)",
    "(< x y)",
    "(eq? x y)",
    "(char->integer x)",
]


@pytest.mark.parametrize("op", OPS)
def test_unsafe_abstract_matches_handcoded_exactly(op):
    """Headline claim: with checks off, the rep-type code compiles to
    exactly as few instructions as the hand-written version."""
    abstract = static_count(op, UNSAFE_OPT)
    handcoded = static_count(op, UNSAFE_BASE)
    assert abstract <= handcoded, (op, abstract, handcoded)


@pytest.mark.parametrize("op", OPS)
def test_safe_abstract_is_no_worse_than_handcoded(op):
    abstract = static_count(op, SAFE_OPT)
    handcoded = static_count(op, SAFE_BASE)
    assert abstract <= handcoded + 1, (op, abstract, handcoded)


@pytest.mark.parametrize("op", ["(car x)", "(cdr x)", "(vector-length x)"])
def test_unsafe_accessors_are_single_loads(op):
    compiled = compile_source(wrapped(op), UNSAFE_OPT)
    code = compiled.vm_program.code_named("probe")
    body_ops = [ins[0] for ins in code.instructions]
    # exactly: LD, RET
    assert body_ops == [isa.LD, isa.RET], compiled.disassemble("probe")


def test_unsafe_fixnum_add_is_single_add():
    compiled = compile_source(wrapped("(+ x y)"), UNSAFE_OPT)
    code = compiled.vm_program.code_named("probe")
    assert [ins[0] for ins in code.instructions] == [isa.ADD, isa.RET]


def test_unoptimized_abstract_is_much_larger_dynamically():
    source = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 14)"
    unopt = run_source(source, UNOPT).steps
    opt = run_source(source, OPT).steps
    assert unopt / opt > 3.0


def test_optimized_within_factor_of_baseline_dynamically():
    source = """
    (define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
    (define (total lst) (if (null? lst) 0 (+ (car lst) (total (cdr lst)))))
    (total (build 200))
    """
    opt = run_source(source, OPT).steps
    base = run_source(source, BASE).steps
    assert opt <= base * 1.25
    assert base <= opt * 1.25


def test_dominating_check_eliminated_in_safe_mode():
    """(if (pair? x) (car x) …): the car must not re-check."""
    source = """
    (define (first-or-zero x) (if (pair? x) (car x) 0))
    (first-or-zero '(9))
    """
    compiled = compile_source(source, SAFE_OPT)
    code = compiled.vm_program.code_named("first-or-zero")
    fails = [ins for ins in code.instructions if ins[0] == isa.FAIL]
    assert not fails, compiled.disassemble("first-or-zero")
    assert decode(compiled.run()) == 9


def test_repeated_arith_checks_collapse():
    source = "(define (poly x) (+ (* x x) (+ x 1)))\n(poly 5)"
    compiled = compile_source(source, SAFE_OPT)
    code = compiled.vm_program.code_named("poly")
    checks = [ins for ins in code.instructions if ins[0] == isa.FAIL]
    # One check for x (deduplicated across the three operations) plus one
    # for the outer sum of computed values, same as hand-written code.
    assert len(checks) <= 2, compiled.disassemble("poly")
    base_code = compile_source(source, SAFE_BASE).vm_program.code_named("poly")
    base_checks = [ins for ins in base_code.instructions if ins[0] == isa.FAIL]
    assert len(checks) <= len(base_checks)


def test_literal_encodings_fold_to_constants():
    compiled = compile_source("(define (k) 41)\n(k)", SAFE_OPT)
    code = compiled.vm_program.code_named("k")
    assert [ins[0] for ins in code.instructions] == [isa.LDC, isa.RET]
    assert code.instructions[0][2] == 41 * 8  # the library's tagging


def test_boolean_literals_fold():
    compiled = compile_source("(define (t) #t)\n(t)", SAFE_OPT)
    code = compiled.vm_program.code_named("t")
    assert code.instructions[0][0] == isa.LDC
    assert code.instructions[0][2] == 14  # (1<<3)|6 per the library


def test_static_code_size_shrinks_with_pruning():
    full = compile_source("'x", SAFE_OPT).static_instruction_count()
    pruned = compile_source("'x", OPT).static_instruction_count()
    assert pruned < full
