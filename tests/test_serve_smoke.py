"""The full-population service smoke: CI's serve-smoke gate.

200 concurrent jobs from 20 tenants — including a fault-injected chaos
cohort and an always-trapping hostile tenant — through one service,
audited against the contract: zero lost jobs, zero duplicated results,
zero wrong answers, zero heap-conservation violations, every
fault-injected job completed within bounded retries.

Excluded from tier-1 (marker ``serve_smoke``); run with
``pytest -m serve_smoke`` or ``repro serve --smoke 200``.
"""

import pytest

from repro.serve import run_smoke

pytestmark = pytest.mark.serve_smoke


def test_serve_smoke_contract_under_chaos():
    report = run_smoke(jobs=200, tenants=20, chaos=True, hostile=True,
                       seed=0)
    assert report["ok"], report
    assert report["lost"] == 0
    assert report["duplicated"] == 0
    assert report["wrong_values"] == 0
    assert report["conservation_violations"] == 0, (
        report["conservation_detail"]
    )
    # every main job completed — traps never leak across tenants
    assert report["completed"] == 200
    # the chaos cohort is real and converged entirely through retries
    assert report["chaos"]["jobs"] == 40
    assert report["chaos"]["incomplete"] == 0
    assert report["chaos"]["faults_armed"] >= 40
    # the hostile tenant tripped its breaker without hurting anyone
    assert report["hostile"]["failed"] + report["hostile"]["rejected"] == (
        report["hostile_jobs"]
    )
    assert report["hostile"]["breaker_opened"] >= 1
