"""The interprocedural ``unbox`` pass: semantics preserved, dynamic
instruction counts improved.

The acceptance criteria for the pass: identical outputs and decoded
values with ``unbox`` on and off across the Table-3 workloads, a strict
dynamic-count improvement on at least half of them, and no workload
regressing.
"""

import pytest

from benchmarks.workloads import ALL_WORKLOADS
from repro import CompileOptions, OptimizerOptions, compile_source, decode


def _run(source, options):
    compiled = compile_source(source, options)
    result = compiled.run()
    return result, decode(result)


@pytest.mark.parametrize(
    "name,source,expected",
    ALL_WORKLOADS,
    ids=[w[0] for w in ALL_WORKLOADS],
)
def test_unbox_preserves_semantics(name, source, expected):
    on, value_on = _run(source, CompileOptions())
    off, value_off = _run(
        source, CompileOptions(optimizer=OptimizerOptions().without("unbox"))
    )
    assert value_on == expected
    assert value_off == expected
    assert on.output == off.output


def test_unbox_improves_half_and_regresses_none():
    improved = 0
    for name, source, _expected in ALL_WORKLOADS:
        on, _ = _run(source, CompileOptions())
        off, _ = _run(
            source,
            CompileOptions(optimizer=OptimizerOptions().without("unbox")),
        )
        assert on.steps <= off.steps, (
            f"{name}: unbox regressed {off.steps} -> {on.steps}"
        )
        if on.steps < off.steps:
            improved += 1
    assert improved * 2 >= len(ALL_WORKLOADS), (
        f"unbox improved only {improved}/{len(ALL_WORKLOADS)} workloads"
    )


def test_unbox_off_is_default_none():
    assert OptimizerOptions.none().unbox is False
    assert OptimizerOptions().unbox is True
