"""Property test: chained preemption is invisible to the program.

The execution service's scheduling primitive is ``run_slice`` — run a
few hundred instructions, suspend exactly at an instruction boundary,
resume later.  The property that makes the whole service correct is
that *any* chain of slice sizes reproduces the uninterrupted run
exactly: same value, same cumulative step count, same per-opcode
counts, on all three dispatch engines.  Hypothesis drives random
chains (including size-1 slices, which land on every phase of fused
pairs).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import CompileOptions, compile_source  # noqa: E402
from repro.vm.budget import Budget  # noqa: E402
from repro.vm.machine import Machine  # noqa: E402

ENGINES = ["naive", "threaded", "compiled"]

# enough iterations that chains of a dozen slices stay mid-run, small
# enough that finishing the tail costs little
SOURCE = "(let loop ((i 0) (acc 1)) (if (= i 400) acc (loop (+ i 1) (* acc 3))))"

_COMPILED = None
_CLEAN = {}


def _program():
    global _COMPILED
    if _COMPILED is None:
        _COMPILED = compile_source(SOURCE, CompileOptions(safety=True))
    return _COMPILED.vm_program


def _clean(engine):
    if engine not in _CLEAN:
        machine = Machine(_program(), engine=engine, heap_words=1 << 16)
        _CLEAN[engine] = machine.run()
    return _CLEAN[engine]


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=3000),
                   min_size=1, max_size=12),
    engine=st.sampled_from(ENGINES),
)
def test_sliced_run_reproduces_uninterrupted_run(sizes, engine):
    clean = _clean(engine)
    machine = Machine(_program(), engine=engine, heap_words=1 << 16)
    result = None
    executed = chunks = 0
    for size in sizes:
        result = machine.run_slice(size)
        if result is not None:
            break
        # exact suspension: each chunk executes precisely its size, plus
        # one charged-but-unexecuted step (rolled back on resume)
        executed += size
        chunks += 1
        assert machine.steps == executed + chunks, (sizes, engine)
    while result is None:  # finish with a generous tail slice
        result = machine.run_slice(50_000)
    assert result.value == clean.value, (sizes, engine)
    assert result.steps == clean.steps, (sizes, engine)
    assert result.opcode_counts == clean.opcode_counts, (sizes, engine)
    assert result.output == clean.output, (sizes, engine)


@settings(max_examples=15, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=2000),
                   min_size=1, max_size=6),
    engine=st.sampled_from(ENGINES),
)
def test_reset_after_partial_slices_reruns_cleanly(sizes, engine):
    clean = _clean(engine)
    machine = Machine(_program(), engine=engine, heap_words=1 << 16)
    for size in sizes:
        if machine.run_slice(size) is not None:
            break
    # abandon the suspended run entirely; Budget() lifts the slice's
    # step limit (reset without a budget re-arms the existing one)
    machine.reset(budget=Budget())
    assert machine.last_trap is None
    result = machine.run()
    assert result.value == clean.value, (sizes, engine)
    assert result.steps == clean.steps, (sizes, engine)
    assert result.opcode_counts == clean.opcode_counts, (sizes, engine)
