"""Tests for the public API: options, explain stages, decoding, caching."""

import pytest

from repro import (
    CompileOptions,
    OptimizerOptions,
    Closure,
    Record,
    ReaderError,
    SchemeError,
    compile_source,
    decode,
    run_source,
)
from repro.sexpr import NIL, Char, Symbol, cons

from .conftest import UNOPT


def test_compile_options_factories():
    assert CompileOptions().prelude == "reptype"
    assert CompileOptions.baseline().prelude == "handcoded"
    assert CompileOptions.unoptimized().optimizer.inline is False
    assert CompileOptions().safety is True


def test_explain_produces_stages():
    compiled = compile_source("(+ 1 2)", UNOPT, explain=True)
    assert set(compiled.stages) == {"expanded", "optimized", "assembly"}
    assert "%sx-fixnum" in compiled.stages["expanded"]
    assert "LDC" in compiled.stages["assembly"]


def test_decode_all_types():
    assert decode(run_source("5", UNOPT)) == 5
    assert decode(run_source("#t", UNOPT)) is True
    assert decode(run_source("'()", UNOPT)) is NIL
    assert decode(run_source("#\\z", UNOPT)) == Char(ord("z"))
    assert decode(run_source("'(1 . 2)", UNOPT)) == cons(1, 2)
    assert decode(run_source("'hello", UNOPT)) is Symbol("hello")
    assert decode(run_source('"txt"', UNOPT)) == "txt"
    assert decode(run_source("#(1 2)", UNOPT)) == [1, 2]
    assert isinstance(decode(run_source("car", UNOPT)), Closure)
    assert isinstance(decode(run_source("pair-rep", UNOPT)), Record)


def test_decode_nested_structures():
    value = decode(run_source("(list (vector 1 \"a\") 'sym)", UNOPT))
    assert value.car == [1, "a"]
    assert value.cdr.car is Symbol("sym")


def test_run_result_statistics():
    result = run_source("(cons 1 2)", UNOPT)
    assert result.steps > 0
    assert result.words_allocated > 0
    allocs = result.count("ALLOC") + result.count("ALLOCI")
    assert allocs >= 1
    assert result.count("NOPE") == 0


def test_reader_errors_propagate():
    with pytest.raises(ReaderError):
        run_source("(unbalanced", UNOPT)


def test_runtime_error_reaches_python():
    with pytest.raises(SchemeError):
        run_source("(vector-ref (vector) 0)", UNOPT)


def test_max_steps_limit():
    from repro import VMError

    with pytest.raises(VMError, match="exceeded"):
        run_source("(define (f) (f)) (f)", UNOPT, max_steps=10_000)


def test_extra_prelude_defines_library():
    options = CompileOptions.unoptimized()
    options.extra_prelude = "(define (triple x) (* 3 x))"
    assert decode(run_source("(triple 14)", options)) == 42


def test_prelude_cache_isolated_between_programs():
    # Two programs in sequence must not leak state (fresh VM each run).
    assert decode(run_source("(define q 1) q", UNOPT)) == 1
    with pytest.raises(Exception):
        run_source("q", UNOPT)  # q undefined in a fresh program


def test_compiled_program_reusable():
    compiled = compile_source("(+ 1 2)", UNOPT)
    first = compiled.run()
    second = compiled.run()
    assert first.value == second.value
    assert first.steps == second.steps  # fully deterministic


def test_optimizer_options_roundtrip():
    options = OptimizerOptions(max_inline_size=7)
    copy = options.without("cse")
    assert copy.max_inline_size == 7 and copy.cse is False


def test_disassemble_whole_program():
    compiled = compile_source("(+ 1 2)", UNOPT)
    text = compiled.disassemble()
    assert "%main" in text
