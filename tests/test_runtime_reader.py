"""Tests for the Scheme-level reader (input ports and `read`)."""

import pytest

from repro import SchemeError, decode, run_source
from repro.sexpr import EOF, NIL, Char, Symbol, cons, from_list

from .conftest import UNOPT


def read_datum(text, expr="(read)"):
    result = run_source(expr, UNOPT, input_text=text)
    return decode(result)


# ----------------------------------------------------------------------
# character input
# ----------------------------------------------------------------------


def test_read_char_sequence():
    assert (
        decode(run_source("(list (read-char) (read-char))", UNOPT, input_text="ab"))
        == from_list([Char(ord("a")), Char(ord("b"))])
    )


def test_read_char_eof():
    assert decode(run_source("(read-char)", UNOPT, input_text="")) is EOF
    assert decode(run_source("(eof-object? (read-char))", UNOPT)) is True


def test_peek_does_not_consume():
    source = "(list (peek-char) (read-char))"
    value = decode(run_source(source, UNOPT, input_text="x"))
    assert value == from_list([Char(ord("x")), Char(ord("x"))])


def test_read_line():
    source = "(list (read-line) (read-line) (read-line))"
    value = decode(run_source(source, UNOPT, input_text="one\ntwo"))
    assert value == from_list(["one", "two", EOF])


# ----------------------------------------------------------------------
# datum reading
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "text,expected",
    [
        ("42", 42),
        ("-17", -17),
        ("#t", True),
        ("#f", False),
        ("sym", Symbol("sym")),
        ("list->vector", Symbol("list->vector")),
        ('"a string"', "a string"),
        (r'"a\nb"', "a\nb"),
        ("#\\a", Char(ord("a"))),
        ("#\\space", Char(32)),
        ("#\\newline", Char(10)),
        ("#\\(", Char(ord("("))),
        ("()", NIL),
        ("(1 2 3)", from_list([1, 2, 3])),
        ("(1 . 2)", cons(1, 2)),
        ("(a (b) c)", from_list([Symbol("a"), from_list([Symbol("b")]), Symbol("c")])),
        ("#(1 2)", [1, 2]),
        ("'x", from_list([Symbol("quote"), Symbol("x")])),
        ("`(,a)", from_list([Symbol("quasiquote"),
                             from_list([from_list([Symbol("unquote"), Symbol("a")])])])),
        ("  ; comment\n 5", 5),
        ("", EOF),
    ],
)
def test_read_datums(text, expected):
    assert read_datum(text) == expected


def test_read_splicing():
    value = read_datum(",@xs")
    assert value == from_list([Symbol("unquote-splicing"), Symbol("xs")])


def test_read_multiple_datums():
    value = read_datum("1 two (3)", expr="(read-all)")
    assert value == from_list([1, Symbol("two"), from_list([3])])


def test_read_symbols_intern():
    source = "(eq? (read) 'hello)"
    assert decode(run_source(source, UNOPT, input_text="hello")) is True


def test_read_errors():
    with pytest.raises(SchemeError):
        read_datum("(1 2")
    with pytest.raises(SchemeError):
        read_datum(")")
    with pytest.raises(SchemeError):
        read_datum('"open')


def test_read_write_round_trip():
    source = "(write (read))"
    text = '(1 "two" (3 . 4) #\\x #(5))'
    result = run_source(source, UNOPT, input_text=text)
    assert result.output == text


def test_read_then_evaluate_style_use():
    # read an expression tree and fold it — a tiny calculator
    source = """
    (define (calc e)
      (cond ((number? e) e)
            ((eq? (car e) '+) (+ (calc (cadr e)) (calc (caddr e))))
            ((eq? (car e) '*) (* (calc (cadr e)) (calc (caddr e))))
            (else (error "bad expr"))))
    (calc (read))
    """
    assert decode(run_source(source, UNOPT, input_text="(+ 2 (* 4 10))")) == 42
