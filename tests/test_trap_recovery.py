"""The reusable-state contract after VM faults.

Every fault — heap exhaustion, Scheme type traps, budget trips — must
unwind through ``Machine.trap()``: invariants restored, a ``TrapInfo``
snapshot taken, and the machine left usable for a fresh run of the same
program, a ``load()`` of a different one, or (for budget trips) a
``resume()``.  Parametrized over both engines and both GC trigger modes
so recovery is proven on every dispatch/collection combination.
"""

import pytest

from repro import CompileOptions, compile_source, decode
from repro.errors import HeapExhausted, SchemeError
from repro.vm.heap import Heap
from repro.vm.machine import Machine

ENGINES = ["naive", "threaded", "compiled"]
OCCUPANCIES = [None, 0.9]  # legacy exhaustion-only trigger vs occupancy

# retains every cons, so a small heap genuinely runs out
EXHAUSTING = (
    "(let loop ((i 0) (acc '())) "
    "  (if (= i 100000) (length acc) (loop (+ i 1) (cons i acc))))"
)
SMALL_PROGRAM = "(define (double x) (* 2 x)) (double 21)"


def _vm_program(source):
    return compile_source(source, CompileOptions(safety=True)).vm_program


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("gc_occupancy", OCCUPANCIES)
def test_heap_exhaustion_leaves_machine_reusable(engine, gc_occupancy):
    # big enough that the recovered (fragmented, non-moving) heap can
    # still serve the follow-up program, small enough to exhaust fast
    machine = Machine(
        _vm_program(EXHAUSTING),
        heap_words=1 << 14,
        engine=engine,
        gc_occupancy=gc_occupancy,
    )
    with pytest.raises(HeapExhausted) as excinfo:
        machine.run()

    info = machine.last_trap
    assert info is not None and info is excinfo.value.trap
    assert info.kind == "heap"
    assert not info.resumable  # exhaustion is not a budget trip
    assert info.engine == engine
    assert machine.frames == []  # unwound per the reusable contract
    machine.heap.check_conservation()

    # a different program must run cleanly on the same machine and heap
    machine.load(_vm_program(SMALL_PROGRAM))
    clean = Machine(_vm_program(SMALL_PROGRAM), heap_words=1 << 14,
                    engine=engine, gc_occupancy=gc_occupancy)
    result = machine.run()
    reference = clean.run()
    assert result.value == reference.value
    assert result.steps == reference.steps
    assert result.opcode_counts == reference.opcode_counts
    machine.heap.check_conservation()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("gc_occupancy", OCCUPANCIES)
def test_heap_swap_after_exhaustion(engine, gc_occupancy):
    # Recovery path two: keep the program, install a bigger heap.
    program = _vm_program(
        EXHAUSTING.replace("100000", "300")  # fits easily in 64K words
    )
    machine = Machine(program, heap_words=1024, engine=engine,
                      gc_occupancy=gc_occupancy)
    with pytest.raises(HeapExhausted):
        machine.run()
    machine.heap.check_conservation()

    machine.install_heap(Heap(1 << 16, gc_occupancy=gc_occupancy))
    result = machine.run()
    assert result.value is not None
    assert decode(result) == 300
    machine.heap.check_conservation()


@pytest.mark.parametrize("engine", ENGINES)
def test_scheme_trap_then_fresh_run(engine):
    # A type trap carries its snapshot, and re-running reproduces it
    # exactly — state from the failed run cannot leak into the next.
    program = _vm_program("(car 5)")
    machine = Machine(program, engine=engine)
    messages = set()
    for _ in range(3):
        with pytest.raises(SchemeError) as excinfo:
            machine.run()
        info = machine.last_trap
        assert info is not None and info is excinfo.value.trap
        assert info.kind == "scheme"
        assert not info.resumable
        assert info.pc is not None and info.pc >= 0
        assert isinstance(info.opcode, str)
        messages.add((str(excinfo.value), info.pc, info.opcode, info.steps))
        machine.heap.check_conservation()
    assert len(messages) == 1, messages

    # and the machine still runs an unrelated program afterwards
    machine.load(_vm_program(SMALL_PROGRAM))
    assert decode(machine.run()) == 42


@pytest.mark.parametrize("engine", ENGINES)
def test_trap_pc_points_at_faulting_instruction(engine):
    # The snapshot's pc/opcode must name the instruction that trapped:
    # for (car 5) that is the heap load behind car (or its safety check),
    # never HALT or a branch somewhere else.
    program = _vm_program("(car 5)")
    machine = Machine(program, engine=engine)
    with pytest.raises(SchemeError):
        machine.run()
    info = machine.last_trap
    from repro.vm import isa

    code = next(
        (c for c in machine.codes
         if 0 <= info.pc < len(c.instructions)
         and isa.opcode_name(c.instructions[info.pc][0]) == info.opcode),
        None,
    )
    assert code is not None, (info.pc, info.opcode)


def test_trap_survives_between_engines():
    # The TrapInfo observables that do not depend on dispatch strategy
    # must agree across engines for the same fault.
    program = _vm_program("(vector-ref (make-vector 2 0) 9)")
    snapshots = []
    for engine in ENGINES:
        machine = Machine(program, engine=engine)
        with pytest.raises(SchemeError):
            machine.run()
        info = machine.last_trap
        snapshots.append(
            (info.kind, info.message, info.steps, info.frame_depth)
        )
    assert snapshots[0] == snapshots[1]
