"""Unit tests for the writer, including write/read round trips."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sexpr import (
    EOF,
    NIL,
    UNSPECIFIED,
    Char,
    Symbol,
    cons,
    from_list,
    read,
    to_display,
    to_write,
)


def test_write_atoms():
    assert to_write(42) == "42"
    assert to_write(-3) == "-3"
    assert to_write(True) == "#t"
    assert to_write(False) == "#f"
    assert to_write(NIL) == "()"
    assert to_write(Symbol("abc")) == "abc"
    assert to_write(EOF) == "#<eof>"
    assert to_write(UNSPECIFIED) == "#<unspecified>"


def test_write_chars():
    assert to_write(Char(ord("a"))) == "#\\a"
    assert to_write(Char(32)) == "#\\space"
    assert to_write(Char(10)) == "#\\newline"
    assert to_display(Char(ord("a"))) == "a"


def test_write_strings():
    assert to_write("hi") == '"hi"'
    assert to_write('say "hi"') == '"say \\"hi\\""'
    assert to_write("a\nb") == '"a\\nb"'
    assert to_display("hi") == "hi"


def test_write_lists():
    assert to_write(from_list([1, 2, 3])) == "(1 2 3)"
    assert to_write(cons(1, 2)) == "(1 . 2)"
    assert to_write(from_list([1, 2], tail=3)) == "(1 2 . 3)"
    assert to_write(from_list([Symbol("a"), from_list([Symbol("b")])])) == "(a (b))"


def test_write_vectors():
    assert to_write([1, 2]) == "#(1 2)"
    assert to_write([]) == "#()"


def test_write_quote_shorthand():
    assert to_write(read("'x")) == "'x"
    assert to_write(read("`(a ,b ,@c)")) == "`(a ,b ,@c)"


def test_display_nested_uses_display_for_leaves():
    assert to_display(from_list(["a", Char(ord("b"))])) == "(a b)"


# ----------------------------------------------------------------------
# property: write → read is the identity on printable data
# ----------------------------------------------------------------------

_scheme_atoms = st.one_of(
    st.integers(min_value=-(2**60), max_value=2**60),
    st.booleans(),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=12,
    ),
    st.sampled_from([Symbol(name) for name in ("a", "b", "foo", "set!", "x->y", "+")]),
    st.builds(Char, st.integers(min_value=33, max_value=126)),
    st.just(NIL),
)


def _scheme_data(depth=3):
    if depth == 0:
        return _scheme_atoms
    sub = _scheme_data(depth - 1)
    return st.one_of(
        _scheme_atoms,
        st.lists(sub, max_size=4).map(from_list),
        st.lists(sub, max_size=3),
    )


@given(_scheme_data())
def test_write_read_round_trip(datum):
    assert read(to_write(datum)) == datum


@given(st.lists(_scheme_atoms, min_size=1, max_size=5))
def test_dotted_round_trip(items):
    datum = from_list(items[:-1], tail=cons(items[-1], items[0]))
    assert read(to_write(datum)) == datum
