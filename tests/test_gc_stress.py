"""GC stress and failure-injection tests: small heaps, fragmentation,
survival of every kind of heap object, and exhaustion behaviour.

The whole module is parametrized over the execution-engine ×
collection-trigger matrix: both engines inline the bump-pointer
allocation fast path (the threaded engine also binds size-class bins
at handler-build time), and the occupancy trigger collects on a
different schedule than the legacy collect-on-exhaustion policy, so
every combination has to keep live data alive under pressure.
"""

import pytest

from repro import HeapExhausted, decode, run_source
from repro.sexpr import Symbol, from_list

from .conftest import OPT, UNOPT


@pytest.fixture(params=["naive", "threaded", "compiled"])
def engine(request):
    return request.param


@pytest.fixture(
    params=[None, 0.9], ids=["legacy-trigger", "occupancy-trigger"]
)
def gc_occupancy(request):
    return request.param


@pytest.fixture
def run_small(engine, gc_occupancy):
    def run(source, heap_words=1 << 13, options=UNOPT):
        return run_source(
            source,
            options,
            heap_words=heap_words,
            engine=engine,
            gc_occupancy=gc_occupancy,
        )

    return run


def test_garbage_loop_in_tiny_heap(run_small):
    result = run_small(
        """(let loop ((i 0))
             (if (= i 5000) 'ok (begin (cons i i) (loop (+ i 1)))))"""
    )
    assert decode(result) == Symbol("ok")
    assert result.machine.heap.gc_count >= 2


def test_live_list_survives_many_collections(run_small):
    result = run_small(
        """(define keep (list 'a 'b 'c))
           (let loop ((i 0))
             (if (= i 4000) keep (begin (make-vector 4 0) (loop (+ i 1)))))"""
    )
    assert decode(result) == from_list([Symbol("a"), Symbol("b"), Symbol("c")])


def test_every_heap_type_survives_gc(run_small):
    source = """
    (define the-pair (cons 1 2))
    (define the-vec (vector 1 2 3))
    (define the-str "persist")
    (define the-sym 'persistent-symbol)
    (define the-closure (let ((n 41)) (lambda () (+ n 1))))
    (define the-record ((rep-constructor (make-record-rep 'box '(v))) 9))
    (let churn ((i 0))
      (when (< i 3000) (cons i (make-vector 2 i)) (churn (+ i 1))))
    (list (car the-pair)
          (vector-ref the-vec 2)
          (string-length the-str)
          (symbol? the-sym)
          (the-closure)
          ((rep-accessor (rep-of the-record) 0) the-record))
    """
    result = run_small(source, heap_words=1 << 14)
    assert decode(result) == from_list([1, 3, 7, True, 42, 9])


def test_deep_structure_survives(run_small):
    # a 500-deep nested list must be fully traced
    result = run_small(
        """(define (nest n) (if (= n 0) '() (list (nest (- n 1)))))
           (define deep (nest 500))
           (let churn ((i 0))
             (if (= i 2000) 'done (begin (cons i i) (churn (+ i 1)))))
           (define (depth x) (if (null? x) 0 (+ 1 (depth (car x)))))
           (depth deep)""",
        heap_words=1 << 14,
    )
    assert decode(result) == 500


def test_mutated_structures_keep_new_references(run_small):
    source = """
    (define holder (vector #f))
    (vector-set! holder 0 (list 1 2 3))
    (let churn ((i 0))
      (when (< i 3000) (cons i i) (churn (+ i 1))))
    (length (vector-ref holder 0))
    """
    assert decode(run_small(source, heap_words=1 << 14)) == 3


def test_cyclic_data_is_collected_and_survives(run_small):
    source = """
    (define (make-cycle)
      (let ((p (list 1 2)))
        (set-cdr! (cdr p) p)    ; cycle
        p))
    (define keep (make-cycle))
    (let churn ((i 0))
      (when (< i 3000) (make-cycle) (churn (+ i 1))))   ; garbage cycles
    (car (cdr (cdr (cdr keep))))
    """
    assert decode(run_small(source, heap_words=1 << 14)) == 2


def test_heap_exhaustion_raises_cleanly(run_small):
    with pytest.raises(HeapExhausted):
        run_small(
            """(let loop ((acc '()) (i 0))
                 (if (= i 100000) acc (loop (cons i acc) (+ i 1))))""",
            heap_words=1 << 12,
        )


def test_allocation_stats_accumulate(run_small):
    result = run_small("(make-vector 100 0)", heap_words=1 << 16)
    assert result.words_allocated >= 101


def test_optimized_config_same_behaviour_under_pressure(run_small):
    source = """
    (define (build n) (if (zero? n) '() (cons n (build (- n 1)))))
    (let loop ((i 0) (keep (build 50)))
      (if (= i 300)
          (length keep)
          (begin (build 40) (loop (+ i 1) keep))))
    """
    for options in (UNOPT, OPT):
        result = run_small(source, heap_words=1 << 14, options=options)
        assert decode(result) == 50


def test_interned_symbols_survive_collection(run_small):
    source = """
    (define s1 (string->symbol "long-lived-name"))
    (let churn ((i 0))
      (when (< i 3000) (cons i i) (churn (+ i 1))))
    (eq? s1 (string->symbol "long-lived-name"))
    """
    assert decode(run_small(source, heap_words=1 << 14)) is True
