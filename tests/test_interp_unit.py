"""Direct unit tests for the reference IR interpreter."""

import pytest

from repro.errors import SchemeError, VMError
from repro.ir import (
    Call,
    Const,
    Fix,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    LocalSet,
    LocalVar,
    Prim,
    Program,
    Seq,
    Var,
)
from repro.ir.interp import Interpreter, interpret_program


def run(*forms, **kwargs):
    return interpret_program(Program(list(forms), []), **kwargs)


def test_constants_and_prims():
    assert run(Prim("%add", [Const(2), Const(3)])).value == 5
    assert run(Prim("%lsl", [Const(1), Const(4)])).value == 16


def test_let_and_var():
    x = LocalVar("x")
    assert run(Let([(x, Const(7))], Var(x))).value == 7


def test_if_uses_raw_truth():
    assert run(If(Const(0), Const(1), Const(2))).value == 2
    assert run(If(Const(99), Const(1), Const(2))).value == 1


def test_globals():
    assert run(GlobalSet("g", Const(5)), GlobalRef("g")).value == 5
    with pytest.raises(VMError, match="undefined"):
        run(GlobalRef("nope"))


def test_lambda_call_and_closure():
    x = LocalVar("x")
    y = LocalVar("y")
    add_x = Lambda([y], None, Prim("%add", [Var(x), Var(y)]), "addx")
    program = Let([(x, Const(10))], Call(add_x, [Const(4)]))
    assert run(program).value == 14


def test_assigned_variables_are_boxed():
    x = LocalVar("x")
    x.assigned = True
    program = Let(
        [(x, Const(1))],
        Seq([LocalSet(x, Const(42)), Var(x)]),
    )
    assert run(program).value == 42


def test_closure_shares_assigned_variable():
    n = LocalVar("n")
    n.assigned = True
    bump = Lambda([], None, LocalSet(n, Prim("%add", [Var(n), Const(1)])), "bump")
    f = LocalVar("f")
    program = Let(
        [(n, Const(0))],
        Let([(f, bump)], Seq([Call(Var(f), []), Call(Var(f), []), Var(n)])),
    )
    assert run(program).value == 2


def test_fix_recursion():
    loop = LocalVar("loop")
    i = LocalVar("i")
    body = If(
        Prim("%eq", [Var(i), Const(0)]),
        Const(123),
        Call(Var(loop), [Prim("%sub", [Var(i), Const(1)])]),
    )
    program = Fix([(loop, Lambda([i], None, body, "loop"))], Call(Var(loop), [Const(10)]))
    assert run(program).value == 123


def test_arity_errors():
    lam = Lambda([LocalVar("a")], None, Const(1), "f")
    with pytest.raises(SchemeError, match="arity"):
        run(Call(lam, []))


def test_calling_non_closure():
    with pytest.raises(SchemeError, match="not a procedure"):
        run(Call(Const(42), []))


def test_heap_ops():
    p = LocalVar("p")
    program = Let(
        [(p, Prim("%alloc", [Const(2), Const(1)]))],
        Seq(
            [
                Prim("%store", [Var(p), Const(7), Const(11)]),
                Prim("%load", [Var(p), Const(7)]),
            ]
        ),
    )
    assert run(program).value == 11


def test_output_and_fail():
    assert run(Seq([Prim("%putc", [Const(65)]), Const(0)])).output == "A"
    with pytest.raises(SchemeError, match="type check"):
        run(Prim("%fail", [Const(1)]))


def test_input_escapes():
    result = interpret_program(
        Program([Prim("%getc", [])], []), input_text="Q"
    )
    assert result.value == ord("Q")
    result = interpret_program(Program([Prim("%getc", [])], []))
    assert result.value == (1 << 64) - 1


def test_call_budget_guard():
    loop = LocalVar("loop")
    lam = Lambda([], None, Call(Var(loop), []), "loop")
    program = Fix([(loop, lam)], Call(Var(loop), []))
    with pytest.raises(VMError, match="budget"):
        run(program, max_calls=1000)


def test_division_by_zero():
    with pytest.raises(SchemeError, match="division"):
        run(Prim("%div", [Const(1), Const(0)]))
