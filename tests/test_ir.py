"""Unit tests for IR analyses and transforms."""

from repro.ir import (
    Call,
    Const,
    Fix,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    LocalSet,
    LocalVar,
    Node,
    Prim,
    Program,
    Seq,
    Var,
    census_program,
    copy_node,
    free_vars,
    is_pure,
    is_removable,
    iter_tree,
    make_seq,
    node_size,
    pretty,
)


def lam(params, body):
    return Lambda(params, None, body, "")


def test_free_vars_basic():
    x, y = LocalVar("x"), LocalVar("y")
    assert free_vars(Var(x)) == {x}
    assert free_vars(Prim("%add", [Var(x), Var(y)])) == {x, y}
    assert free_vars(Const(1)) == set()


def test_free_vars_lambda_binds_params():
    x, y = LocalVar("x"), LocalVar("y")
    node = lam([x], Prim("%add", [Var(x), Var(y)]))
    assert free_vars(node) == {y}


def test_free_vars_rest_param_bound():
    r = LocalVar("r")
    node = Lambda([], r, Var(r), "")
    assert free_vars(node) == set()


def test_free_vars_let():
    x, y = LocalVar("x"), LocalVar("y")
    node = Let([(x, Var(y))], Var(x))
    assert free_vars(node) == {y}


def test_free_vars_let_init_not_in_scope():
    x = LocalVar("x")
    node = Let([(x, Var(x))], Const(1))  # init's x is free (parallel let)
    assert free_vars(node) == {x}


def test_free_vars_fix_scopes_bindings_in_inits():
    f = LocalVar("f")
    node = Fix([(f, lam([], Call(Var(f), [])))], Call(Var(f), []))
    assert free_vars(node) == set()


def test_free_vars_localset():
    x = LocalVar("x")
    assert free_vars(LocalSet(x, Const(1))) == {x}


def test_node_size():
    assert node_size(Const(1)) == 1
    assert node_size(Prim("%add", [Const(1), Const(2)])) == 3


def test_is_pure():
    x = LocalVar("x")
    assert is_pure(Prim("%add", [Var(x), Const(1)]))
    assert not is_pure(Prim("%store", [Var(x), Const(0), Const(1)]))
    assert not is_pure(Call(Var(x), []))
    assert not is_pure(GlobalRef("g"))
    assert is_pure(lam([x], Call(Var(x), [])))  # body does not run


def test_is_removable():
    x = LocalVar("x")
    assert is_removable(Prim("%load", [Var(x), Const(0)]))
    assert not is_removable(Prim("%alloc", [Const(1), Const(7)]))
    assert is_removable(GlobalRef("g"), {"g"})
    assert not is_removable(GlobalRef("g"), set())


def test_census_counts():
    x = LocalVar("x")
    program = Program(
        [
            GlobalSet("f", lam([x], Seq([Var(x), Var(x), GlobalRef("g")]))),
            GlobalSet("g", Const(1)),
            GlobalSet("g", Const(2)),
        ],
        ["f", "g"],
    )
    census = census_program(program)
    assert census.locals[x].references == 2
    assert census.globals["g"].references == 1
    assert census.globals["g"].assignments == 2
    assert census.globals["g"].definition is None  # multiple assignments
    assert census.globals["f"].assignments == 1
    assert isinstance(census.globals["f"].definition, Lambda)


def test_copy_node_renames_bindings():
    x = LocalVar("x")
    node = lam([x], Var(x))
    copied = copy_node(node)
    assert copied.params[0] is not x
    assert copied.body.var is copied.params[0]


def test_copy_node_substitutes_free_vars():
    x, y = LocalVar("x"), LocalVar("y")
    node = Prim("%add", [Var(x), Var(x)])
    copied = copy_node(node, {x: Var(y)})
    assert all(arg.var is y for arg in copied.args)


def test_copy_node_preserves_shadowing():
    x, y = LocalVar("x"), LocalVar("y")
    node = Let([(x, Var(x))], Var(x))  # init's x is the outer one
    copied = copy_node(node, {x: Var(y)})
    assert copied.bindings[0][1].var is y  # init substituted
    assert copied.body.var is copied.bindings[0][0]  # body sees new binding


def test_copy_of_fix_is_consistent():
    f = LocalVar("f")
    node = Fix([(f, lam([], Call(Var(f), [])))], Var(f))
    copied = copy_node(node)
    new_f = copied.bindings[0][0]
    assert new_f is not f
    assert copied.body.var is new_f
    assert copied.bindings[0][1].body.fn.var is new_f


def test_iter_tree_visits_everything():
    x = LocalVar("x")
    node = Let([(x, Const(1))], Prim("%add", [Var(x), Const(2)]))
    kinds = [type(n).__name__ for n in iter_tree(node)]
    assert sorted(kinds) == ["Const", "Const", "Let", "Prim", "Var"]


def test_make_seq_flattens():
    node = make_seq([Seq([Const(1), Const(2)]), Const(3)])
    assert isinstance(node, Seq)
    assert len(node.exprs) == 3
    assert make_seq([Const(5)]).value == 5


def test_pretty_renders_signed_constants():
    text = pretty(Const((1 << 64) - 8))
    assert text == "-8"


def test_pretty_structures():
    x = LocalVar("x")
    text = pretty(lam([x], If(Prim("%nz", [Var(x)]), Const(1), Const(0))))
    assert "lambda" in text and "%nz" in text
