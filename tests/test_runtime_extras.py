"""Integration tests for the library-extras layer (case-lambda,
promises, hash tables, extra list/char/string utilities)."""

import pytest

from repro import SchemeError
from repro.sexpr import NIL, Char, Symbol, from_list

from .conftest import evaluate


# ----------------------------------------------------------------------
# case-lambda
# ----------------------------------------------------------------------

CL = """
(define sizes
  (case-lambda
    (() 'none)
    ((a) a)
    ((a b) (+ a b))
    ((a b . rest) (+ (+ a b) (length rest)))))
"""


def test_case_lambda_dispatch():
    assert evaluate(CL + "(sizes)") == Symbol("none")
    assert evaluate(CL + "(sizes 5)") == 5
    assert evaluate(CL + "(sizes 5 6)") == 11
    assert evaluate(CL + "(sizes 5 6 'x 'y)") == 13


def test_case_lambda_no_match():
    source = "(define f (case-lambda ((a b) a)))\n(f 1)"
    with pytest.raises(SchemeError):
        evaluate(source)


def test_case_lambda_is_a_procedure():
    assert evaluate(CL + "(procedure? sizes)") is True


# ----------------------------------------------------------------------
# promises
# ----------------------------------------------------------------------


def test_delay_is_lazy():
    source = """
    (define evaluated #f)
    (define p (delay (begin (set! evaluated #t) 42)))
    (list evaluated (force p) evaluated)
    """
    assert evaluate(source) == from_list([False, 42, True])


def test_force_memoizes():
    source = """
    (define count 0)
    (define p (delay (begin (set! count (+ count 1)) count)))
    (force p) (force p) (force p)
    count
    """
    assert evaluate(source) == 1


def test_force_of_non_promise_is_identity():
    assert evaluate("(force 5)") == 5


def test_promise_predicate():
    assert evaluate("(promise? (delay 1))") is True
    assert evaluate("(promise? 1)") is False


def test_lazy_stream():
    source = """
    (define (ints-from n) (cons n (delay (ints-from (+ n 1)))))
    (define (stream-ref s k)
      (if (zero? k) (car s) (stream-ref (force (cdr s)) (- k 1))))
    (stream-ref (ints-from 10) 5)
    """
    assert evaluate(source) == 15


# ----------------------------------------------------------------------
# list utilities
# ----------------------------------------------------------------------


def test_iota():
    assert evaluate("(iota 4)") == from_list([0, 1, 2, 3])
    assert evaluate("(iota 3 5)") == from_list([5, 6, 7])
    assert evaluate("(iota 3 0 10)") == from_list([0, 10, 20])
    assert evaluate("(iota 0)") is NIL


def test_list_copy_is_fresh():
    source = """
    (define a (list 1 2))
    (define b (list-copy a))
    (set-car! b 99)
    (list (car a) (car b))
    """
    assert evaluate(source) == from_list([1, 99])


def test_take_drop_index():
    assert evaluate("(take '(1 2 3 4) 2)") == from_list([1, 2])
    assert evaluate("(drop '(1 2 3 4) 2)") == from_list([3, 4])
    assert evaluate("(list-index even? '(1 3 4 5))") == 2
    assert evaluate("(list-index even? '(1 3))") is False


def test_delete_and_duplicates():
    assert evaluate("(delete 2 '(1 2 3 2))") == from_list([1, 3])
    assert evaluate("(remove-duplicates '(1 2 1 3 2))") == from_list([1, 2, 3])


def test_any_every_count():
    assert evaluate("(any even? '(1 2 3))") is True
    assert evaluate("(any even? '(1 3))") is False
    assert evaluate("(every even? '(2 4))") is True
    assert evaluate("(every even? '(2 3))") is False
    assert evaluate("(count odd? '(1 2 3 4 5))") == 3


# ----------------------------------------------------------------------
# characters and strings
# ----------------------------------------------------------------------


def test_char_classification():
    assert evaluate("(char-alphabetic? #\\q)") is True
    assert evaluate("(char-alphabetic? #\\5)") is False
    assert evaluate("(char-numeric? #\\5)") is True
    assert evaluate("(char-whitespace? #\\space)") is True
    assert evaluate("(char-whitespace? #\\a)") is False


def test_char_case():
    assert evaluate("(char-upcase #\\a)") == Char(ord("A"))
    assert evaluate("(char-downcase #\\A)") == Char(ord("a"))
    assert evaluate("(char-upcase #\\5)") == Char(ord("5"))


def test_string_case():
    assert evaluate('(string-upcase "aBc1")') == "ABC1"
    assert evaluate('(string-downcase "AbC1")') == "abc1"


def test_string_search():
    assert evaluate('(string-index "hello" #\\l)') == 2
    assert evaluate('(string-index "hello" #\\z)') is False
    assert evaluate('(string-contains? "hello world" "o w")') == 4
    assert evaluate('(string-contains? "hello" "xyz")') is False


def test_string_join_split():
    assert evaluate('(string-join (list "a" "b" "c") ", ")') == "a, b, c"
    assert evaluate('(string-join (list) "-")') == ""
    assert evaluate('(string-split "a,b,,c" #\\,)') == from_list(
        ["a", "b", "", "c"]
    )
    assert evaluate('(string-split "abc" #\\,)') == from_list(["abc"])


# ----------------------------------------------------------------------
# hash tables
# ----------------------------------------------------------------------

HT = "(define t (make-hash-table))\n"


def test_hash_table_set_ref():
    assert evaluate(HT + "(hash-table-set! t 'a 1) (hash-table-ref t 'a)") == 1
    assert (
        evaluate(HT + '(hash-table-set! t "key" 2) (hash-table-ref t "key")') == 2
    )
    assert evaluate(HT + "(hash-table-set! t 42 'v) (hash-table-ref t 42)") == Symbol("v")


def test_hash_table_update_in_place():
    source = HT + """
    (hash-table-set! t 'k 1)
    (hash-table-set! t 'k 2)
    (list (hash-table-ref t 'k) (hash-table-count t))
    """
    assert evaluate(source) == from_list([2, 1])


def test_hash_table_default_and_missing():
    assert evaluate(HT + "(hash-table-ref t 'nope 'default)") == Symbol("default")
    with pytest.raises(SchemeError):
        evaluate(HT + "(hash-table-ref t 'nope)")


def test_hash_table_contains_delete():
    source = HT + """
    (hash-table-set! t 'a 1)
    (hash-table-set! t 'b 2)
    (hash-table-delete! t 'a)
    (list (hash-table-contains? t 'a) (hash-table-contains? t 'b)
          (hash-table-count t))
    """
    assert evaluate(source) == from_list([False, True, 1])


def test_hash_table_many_keys_with_collisions():
    source = """
    (define t (make-hash-table 4))   ; force collisions
    (for-each1 (lambda (i) (hash-table-set! t i (* i i))) (iota 50))
    (let loop ((i 0) (ok #t))
      (if (= i 50)
          (if ok (hash-table-count t) 'bad)
          (loop (+ i 1) (if (= (hash-table-ref t i) (* i i)) ok #f))))
    """
    assert evaluate(source) == 50


def test_hash_table_keys_and_alist():
    source = HT + """
    (hash-table-set! t 'x 1)
    (hash-table-set! t 'y 2)
    (length (hash-table->alist t))
    """
    assert evaluate(source) == 2


def test_hash_table_predicate():
    assert evaluate(HT + "(hash-table? t)") is True
    assert evaluate(HT + "(hash-table? 5)") is False
    assert evaluate(HT + "(rep-name (rep-of t))") == Symbol("hash-table")
