"""The fault-injection harness itself, plus bounded and full sweeps.

Tier-1 keeps the sweeps small (a handful of injection sites on one
example program); the exhaustive corpus sweep is marked ``faultsweep``
and runs in its own CI job (``pytest -m faultsweep`` or the
``repro faultsweep`` CLI).
"""

import os

import pytest

from repro import CompileOptions, compile_source
from repro.errors import HeapExhausted
from repro.vm.faultinject import (
    FaultInjectingHeap,
    FaultSchedule,
    sweep_program,
    sweep_source,
)
from repro.vm.machine import Machine

ENGINES = ["naive", "threaded", "compiled"]

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "scm"
)
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".scm")
)

ALLOCATING = (
    "(let loop ((i 0) (acc '())) "
    "  (if (= i 50) (length acc) (loop (+ i 1) (cons i acc))))"
)


def _vm_program(source):
    return compile_source(source, CompileOptions(safety=True)).vm_program


# ----------------------------------------------------------------------
# the injecting heap: schedules observe every allocation
# ----------------------------------------------------------------------


def test_schedule_sees_every_allocation():
    # The same program on a plain heap and on an empty-schedule fault
    # heap must report identical words_allocated — i.e. the clamped
    # bump region changes observability, not behaviour.
    program = _vm_program(ALLOCATING)
    plain = Machine(program)
    clean = plain.run()

    schedule = FaultSchedule()
    machine = Machine(program)
    machine.install_heap(FaultInjectingHeap(1 << 16, schedule))
    result = machine.run()

    assert result.value == clean.value
    assert result.steps == clean.steps
    assert result.words_allocated == clean.words_allocated
    assert schedule.allocs > 0
    # every allocation paid exactly one header word plus payload; the
    # census therefore bounds words/alloc from below
    assert result.words_allocated >= schedule.allocs


def test_injected_failure_fires_once():
    program = _vm_program(ALLOCATING)
    schedule = FaultSchedule(fail_at=3)
    machine = Machine(program)
    machine.install_heap(FaultInjectingHeap(1 << 16, schedule))
    with pytest.raises(HeapExhausted, match="injected allocation failure"):
        machine.run()
    assert schedule.injected_failures == 1
    machine.heap.check_conservation()
    # the counter moved past fail_at: the re-run completes
    retry = machine.run()
    assert schedule.injected_failures == 1
    assert retry.value is not None


def test_forced_gc_schedule_counts_collections():
    program = _vm_program(ALLOCATING)
    schedule = FaultSchedule(gc_every=2)
    machine = Machine(program)
    machine.install_heap(FaultInjectingHeap(1 << 16, schedule))
    result = machine.run()
    assert schedule.forced_gcs == schedule.allocs // 2
    assert result.gc_count >= schedule.forced_gcs
    machine.heap.check_conservation()


# ----------------------------------------------------------------------
# bounded sweeps (tier-1)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_bounded_sweep_is_clean(engine):
    report = sweep_program(
        _vm_program(ALLOCATING),
        label="alloc-loop",
        engine=engine,
        max_sites=6,
        gc_every=(1, 5),
        deadline_points=2,
    )
    assert report.total_allocs > 0
    assert report.violations == []
    counts = report.counts()
    assert counts["runs"] == counts["completed"] + counts["trapped"]
    assert counts["trapped"] >= 1  # the injected failures really fired


def test_bounded_sweep_one_example():
    with open(os.path.join(EXAMPLES_DIR, EXAMPLES[0])) as handle:
        source = handle.read()
    report = sweep_source(
        source,
        label=EXAMPLES[0],
        engine="naive",
        max_sites=4,
        gc_every=(3,),
        deadline_points=1,
    )
    assert report.ok, report.violations


def test_sweep_report_flags_violations():
    # The harness must be able to *fail*: seed a fake outcome and check
    # the report surfaces it with its label and schedule.
    from repro.vm.faultinject import FaultOutcome, SweepReport

    report = SweepReport(label="prog.scm")
    report.outcomes.append(
        FaultOutcome(
            schedule="fail-at-2",
            engine="naive",
            status="trapped",
            violations=["value diverged"],
        )
    )
    assert not report.ok
    assert report.violations == ["prog.scm [naive] fail-at-2: value diverged"]
    assert report.counts()["violations"] == 1


def test_unexpected_exception_class_is_a_violation(monkeypatch):
    # An exception outside the structured-trap contract escaping a swept
    # run must be recorded (status trapped, unexpected, a violation) —
    # never propagated, never silently passed.  Break resume(), which
    # the deadline sweep relies on.
    def boom(self, **kwargs):
        raise RuntimeError("engine bug")

    monkeypatch.setattr(Machine, "resume", boom)
    report = sweep_program(
        _vm_program(ALLOCATING),
        label="alloc-loop",
        engine="naive",
        max_sites=2,
        gc_every=(),
        deadline_points=1,
    )
    counts = report.counts()
    assert counts["unexpected"] >= 1
    assert not report.ok
    assert any(
        "unexpected exception class RuntimeError" in violation
        for violation in report.violations
    )
    # the sweep itself survived to sweep the other schedules
    assert counts["runs"] > counts["unexpected"]


# ----------------------------------------------------------------------
# exhaustive corpus sweeps (the CI fault-sweep job)
# ----------------------------------------------------------------------


@pytest.mark.faultsweep
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("filename", EXAMPLES)
def test_full_example_sweep(filename, engine):
    with open(os.path.join(EXAMPLES_DIR, filename)) as handle:
        source = handle.read()
    report = sweep_source(
        source, label=filename, engine=engine, max_sites=64
    )
    assert report.ok, report.violations
