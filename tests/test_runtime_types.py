"""Integration tests: the library-defined data types behave like Scheme.

Every operation tested here is *library code* compiled through the
machine-primitive layer — nothing is built into the compiler or VM.
"""

import pytest

from repro import SchemeError
from repro.sexpr import NIL, UNSPECIFIED, Char, Symbol, cons, from_list

from .conftest import evaluate


# ----------------------------------------------------------------------
# literals round-trip through the library encodings
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "source,expected",
    [
        ("42", 42),
        ("-17", -17),
        ("0", 0),
        ("#t", True),
        ("#f", False),
        ("'()", NIL),
        ("#\\a", Char(ord("a"))),
        ('"hello"', "hello"),
        ("'sym", Symbol("sym")),
        ("'(1 2 3)", from_list([1, 2, 3])),
        ("'(1 . 2)", cons(1, 2)),
        ("'#(1 #t)", [1, True]),
        ("(if #f #f)", UNSPECIFIED),
    ],
)
def test_literal_values(source, expected):
    assert evaluate(source) == expected


def test_large_fixnums():
    assert evaluate(str(2**59)) == 2**59
    assert evaluate(str(-(2**59))) == -(2**59)


# ----------------------------------------------------------------------
# booleans, identity
# ----------------------------------------------------------------------


def test_boolean_ops():
    assert evaluate("(not #f)") is True
    assert evaluate("(not 3)") is False
    assert evaluate("(boolean? #t)") is True
    assert evaluate("(boolean? 0)") is False


def test_eq_on_immediates_and_pointers():
    assert evaluate("(eq? 5 5)") is True
    assert evaluate("(eq? #\\a #\\a)") is True
    assert evaluate("(eq? 'a 'a)") is True  # interning
    assert evaluate("(let ((x (cons 1 2))) (eq? x x))") is True
    assert evaluate("(eq? (cons 1 2) (cons 1 2))") is False


def test_shared_quoted_literals_are_eq():
    assert evaluate("(eq? '(1 2) '(1 2))") is True  # hoisted & shared


# ----------------------------------------------------------------------
# fixnum arithmetic
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "source,expected",
    [
        ("(+ 2 3)", 5),
        ("(- 2 3)", -1),
        ("(* 7 -6)", -42),
        ("(quotient 17 5)", 3),
        ("(quotient -17 5)", -3),
        ("(remainder 17 5)", 2),
        ("(remainder -17 5)", -2),
        ("(modulo -17 5)", 3),
        ("(modulo 17 -5)", -3),
        ("(= 3 3)", True),
        ("(< 2 3)", True),
        ("(< 3 2)", False),
        ("(<= 3 3)", True),
        ("(> 3 2)", True),
        ("(>= 2 3)", False),
        ("(< -1 0)", True),
        ("(zero? 0)", True),
        ("(negative? -2)", True),
        ("(positive? 2)", True),
    ],
)
def test_arithmetic(source, expected):
    assert evaluate(source) == expected


def test_fixnum_type_checks_fire_in_safe_mode():
    with pytest.raises(SchemeError, match="non-fixnum"):
        evaluate("(+ 1 'a)")
    with pytest.raises(SchemeError):
        evaluate("(< #t 2)")


def test_division_by_zero():
    with pytest.raises(SchemeError, match="division by zero"):
        evaluate("(quotient 1 0)")


def test_predicates():
    assert evaluate("(fixnum? 3)") is True
    assert evaluate("(fixnum? 'x)") is False
    assert evaluate("(number? 3)") is True


# ----------------------------------------------------------------------
# characters
# ----------------------------------------------------------------------


def test_char_conversions():
    assert evaluate("(char->integer #\\A)") == 65
    assert evaluate("(integer->char 97)") == Char(ord("a"))
    assert evaluate("(char? #\\x)") is True
    assert evaluate("(char? 120)") is False


def test_char_comparisons():
    assert evaluate("(char=? #\\a #\\a)") is True
    assert evaluate("(char<? #\\a #\\b)") is True
    assert evaluate("(char>? #\\b #\\a)") is True
    assert evaluate("(char<=? #\\a #\\a)") is True


def test_char_check_fires():
    with pytest.raises(SchemeError, match="non-char"):
        evaluate("(char->integer 65)")


# ----------------------------------------------------------------------
# pairs
# ----------------------------------------------------------------------


def test_cons_car_cdr():
    assert evaluate("(car (cons 1 2))") == 1
    assert evaluate("(cdr (cons 1 2))") == 2
    assert evaluate("(pair? (cons 1 2))") is True
    assert evaluate("(pair? '())") is False
    assert evaluate("(null? '())") is True
    assert evaluate("(null? (cons 1 2))") is False


def test_set_car_cdr():
    assert evaluate("(let ((p (cons 1 2))) (set-car! p 10) (car p))") == 10
    assert evaluate("(let ((p (cons 1 2))) (set-cdr! p 20) (cdr p))") == 20


def test_car_of_non_pair_fails_safely():
    with pytest.raises(SchemeError, match="non-pair"):
        evaluate("(car 5)")
    with pytest.raises(SchemeError, match="non-pair"):
        evaluate("(cdr '())")


# ----------------------------------------------------------------------
# vectors
# ----------------------------------------------------------------------


def test_vector_basics():
    assert evaluate("(vector-length (make-vector 3 0))") == 3
    assert evaluate("(let ((v (make-vector 3 7))) (vector-ref v 2))") == 7
    assert (
        evaluate("(let ((v (make-vector 3 0))) (vector-set! v 1 5) (vector-ref v 1))")
        == 5
    )
    assert evaluate("(vector? (make-vector 1 0))") is True
    assert evaluate("(vector? '(1))") is False
    assert evaluate("(make-vector 0 0)") == []


def test_vector_default_fill_is_unspecified():
    assert evaluate("(vector-ref (make-vector 1) 0)") is UNSPECIFIED


def test_vector_bounds_checked():
    with pytest.raises(SchemeError, match="index out of range"):
        evaluate("(vector-ref (make-vector 2 0) 2)")
    with pytest.raises(SchemeError, match="index out of range"):
        evaluate("(vector-ref (make-vector 2 0) -1)")
    with pytest.raises(SchemeError, match="non-fixnum"):
        evaluate("(vector-ref (make-vector 2 0) 'x)")
    with pytest.raises(SchemeError, match="non-vector"):
        evaluate("(vector-ref '(1 2) 0)")


def test_negative_vector_size_rejected():
    with pytest.raises(SchemeError):
        evaluate("(make-vector -1 0)")


# ----------------------------------------------------------------------
# strings
# ----------------------------------------------------------------------


def test_string_basics():
    assert evaluate('(string-length "hello")') == 5
    assert evaluate('(string-ref "abc" 1)') == Char(ord("b"))
    assert (
        evaluate('(let ((s (make-string 3 #\\x))) (string-set! s 1 #\\y) s)') == "xyx"
    )
    assert evaluate('(string? "x")') is True
    assert evaluate("(string? 'x)") is False
    assert evaluate("(make-string 2 #\\z)") == "zz"


def test_string_bounds_checked():
    with pytest.raises(SchemeError, match="index out of range"):
        evaluate('(string-ref "ab" 2)')
    with pytest.raises(SchemeError, match="non-string"):
        evaluate("(string-ref 5 0)")


def test_string_set_requires_char():
    with pytest.raises(SchemeError, match="non-char"):
        evaluate('(let ((s (make-string 2 #\\a))) (string-set! s 0 65))')


# ----------------------------------------------------------------------
# symbols
# ----------------------------------------------------------------------


def test_symbols_intern():
    assert evaluate('(eq? (string->symbol "foo") (string->symbol "foo"))') is True
    assert evaluate("(symbol->string 'abc)") == "abc"
    assert evaluate("(symbol? 'abc)") is True
    assert evaluate('(symbol? "abc")') is False
    assert evaluate("(eq? 'foo (string->symbol \"foo\"))") is True


def test_symbol_interning_is_not_identity_on_strings():
    assert (
        evaluate(
            """(let ((s "xyz"))
                 (let ((sym (string->symbol s)))
                   (begin (string-set! s 0 #\\q)
                          (symbol->string sym))))"""
        )
        == "xyz"
    )  # the intern table copies the name


# ----------------------------------------------------------------------
# procedures
# ----------------------------------------------------------------------


def test_procedure_predicate():
    assert evaluate("(procedure? car)") is True
    assert evaluate("(procedure? (lambda (x) x))") is True
    assert evaluate("(procedure? 'car)") is False


def test_calling_non_procedure_fails():
    with pytest.raises(SchemeError, match="not a procedure"):
        evaluate("(let ((f 42)) (f 1))")
