"""Unit tests for the datum model."""

import pytest

from repro.sexpr import (
    NIL,
    Char,
    Pair,
    Symbol,
    cons,
    from_list,
    gensym,
    is_list,
    list_length,
    to_list,
)


def test_symbols_are_interned():
    assert Symbol("foo") is Symbol("foo")
    assert Symbol("foo") is not Symbol("bar")


def test_symbol_repr_is_name():
    assert repr(Symbol("lambda")) == "lambda"


def test_gensym_produces_fresh_names():
    names = {gensym("t").name for _ in range(100)}
    assert len(names) == 100
    assert all("%" in name for name in names)


def test_chars_are_cached_and_compare_by_code():
    assert Char(97) is Char(97)
    assert Char(97) == Char(97)
    assert Char(97) != Char(98)
    assert hash(Char(97)) == hash(Char(97))


def test_nil_is_iterable_and_empty():
    assert list(NIL) == []
    assert len(NIL) == 0


def test_cons_and_to_list_round_trip():
    lst = from_list([1, 2, 3])
    assert to_list(lst) == [1, 2, 3]
    assert lst.car == 1
    assert lst.cdr.car == 2


def test_from_list_with_improper_tail():
    improper = from_list([1, 2], tail=3)
    assert improper.car == 1
    assert improper.cdr.car == 2
    assert improper.cdr.cdr == 3


def test_to_list_rejects_improper():
    with pytest.raises(ValueError):
        to_list(from_list([1], tail=2))


def test_pair_structural_equality():
    assert from_list([1, [2], "x"]) == from_list([1, [2], "x"])
    assert from_list([1, 2]) != from_list([1, 3])
    assert from_list([1, 2]) != from_list([1, 2, 3])
    assert cons(1, 2) == cons(1, 2)
    assert cons(1, 2) != cons(1, 3)


def test_pair_iteration_raises_on_improper():
    with pytest.raises(ValueError):
        list(cons(1, 2))


def test_is_list_handles_cycles():
    proper = from_list([1, 2, 3])
    assert is_list(proper)
    assert not is_list(cons(1, 2))
    cyclic = cons(1, NIL)
    cyclic.cdr = cyclic
    assert not is_list(cyclic)


def test_list_length():
    assert list_length(NIL) == 0
    assert list_length(from_list([1, 2, 3])) == 3
    with pytest.raises(ValueError):
        list_length(cons(1, 2))


def test_pairs_are_unhashable():
    with pytest.raises(TypeError):
        hash(cons(1, 2))


def test_pairs_are_mutable():
    p = cons(1, 2)
    p.car = 10
    p.cdr = 20
    assert p == cons(10, 20)
