"""Property tests for the abstract-value lattice and the per-primitive
transfer functions, plus differential tests pinning the ``absint``
optimizer pass to the reference IR interpreter.

The lattice properties are the standard soundness kit:

* join is commutative, associative (up to mutual ``leq``), and an upper
  bound; meet is a lower bound;
* every transfer function is monotone and *sound* against the VM's own
  constant-fold functions (the concrete semantics oracle);
* widening terminates — on arbitrary chains and on a loop-shaped
  transfer via :func:`repro.absint.lattice.stabilize`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import prims
from repro.absint.lattice import (
    ALL_TAGS,
    BOTTOM,
    INT_MAX,
    INT_MIN,
    UNKNOWN,
    AbstractValue,
    const,
    from_range,
    from_tags,
    make,
    stabilize,
)
from repro.prims.abstract import abstract_eval
from repro.prims.fold import FoldCannot

WORD_MASK = (1 << 64) - 1

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

_ENDPOINTS = st.one_of(
    st.integers(min_value=-40, max_value=40),
    st.sampled_from([INT_MIN, INT_MAX, INT_MIN + 7, INT_MAX - 7, 0, 1, -1, 8, -8]),
)

_TAGS = st.frozensets(st.integers(min_value=0, max_value=7))


@st.composite
def abstract_values(draw):
    lo = draw(_ENDPOINTS)
    hi = draw(_ENDPOINTS)
    if lo > hi and draw(st.booleans()):
        lo, hi = hi, lo  # mostly non-bottom
    tags = draw(_TAGS)
    defined = draw(st.booleans())
    return make(lo, hi, tags, defined)


def equivalent(a: AbstractValue, b: AbstractValue) -> bool:
    return a.leq(b) and b.leq(a)


def concretize(value: AbstractValue, limit: int = 12) -> list[int]:
    """Up to ``limit`` concrete unsigned words drawn from ``value``."""
    if value.is_bottom:
        return []
    out = []
    candidates = [value.lo, value.hi, 0, 1, -1, 7, -7, 8,
                  value.lo + 8, value.hi - 8,
                  (value.lo + value.hi) // 2]
    for signed_word in candidates:
        if value.lo <= signed_word <= value.hi and (signed_word & 7) in value.tags:
            word = signed_word & WORD_MASK
            if word not in out:
                out.append(word)
        if len(out) >= limit:
            break
    return out


# ----------------------------------------------------------------------
# lattice laws
# ----------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(abstract_values(), abstract_values())
def test_join_commutative(a, b):
    assert a.join(b) == b.join(a)


@settings(max_examples=200, deadline=None)
@given(abstract_values(), abstract_values(), abstract_values())
def test_join_associative(a, b, c):
    assert equivalent(a.join(b).join(c), a.join(b.join(c)))


@settings(max_examples=200, deadline=None)
@given(abstract_values(), abstract_values())
def test_join_is_upper_bound(a, b):
    joined = a.join(b)
    assert a.leq(joined) and b.leq(joined)


@settings(max_examples=200, deadline=None)
@given(abstract_values(), abstract_values())
def test_meet_is_lower_bound(a, b):
    met = a.meet(b)
    assert met.leq(a) and met.leq(b)


@settings(max_examples=200, deadline=None)
@given(abstract_values())
def test_join_idempotent_and_bottom_unit(a):
    assert equivalent(a.join(a), a)
    assert a.join(BOTTOM) == a
    assert BOTTOM.join(a) == a


@settings(max_examples=200, deadline=None)
@given(abstract_values(), abstract_values())
def test_widen_is_upper_bound(a, b):
    widened = a.widen(b)
    assert a.leq(widened) and b.leq(widened)


@settings(max_examples=100, deadline=None)
@given(st.lists(abstract_values(), min_size=1, max_size=24))
def test_widening_chains_terminate(values):
    """Any widening chain stabilizes quickly.  Every change strictly
    grows at least one component, and the components have finite height
    under widening: ≤8 tag increments, ≤1 definedness flip, and ≤2 moves
    per interval bound — 13 changes at the absolute worst."""
    current = BOTTOM
    changes = 0
    for value in values * 3:  # revisit to catch oscillation
        widened = current.widen(current.join(value))
        if widened != current:
            changes += 1
        current = widened
    assert changes <= 13


def test_stabilize_loop_shaped_transfer():
    """A counting loop ``i ← i + 8`` (a fixnum counter) stabilizes to a
    post-fixpoint containing every iterate."""

    def transfer(v):
        return abstract_eval("%add", [v, const(8)])

    result = stabilize(const(0), transfer)
    assert transfer(result).leq(result) or transfer(result).join(result).leq(result)
    # Tag component stays exact even though the interval widens (the
    # endpoints then tighten to the nearest tag-0 word).
    assert result.tags == frozenset({0})
    assert result.hi >= INT_MAX - 7


def test_stabilize_terminates_on_hostile_transfer():
    flip = [const(0), const(1)]

    def transfer(v):
        return flip[v.as_constant() == 0]

    assert stabilize(const(0), transfer) is not None  # no hang


# ----------------------------------------------------------------------
# transfer functions: monotone and sound against the VM fold oracle
# ----------------------------------------------------------------------

_BINARY_OPS = ["%add", "%sub", "%mul", "%div", "%mod", "%and", "%or",
               "%xor", "%lsl", "%lsr", "%asr", "%eq", "%neq", "%lt",
               "%le", "%ult", "%ule"]
_UNARY_OPS = ["%not", "%nz"]


@settings(max_examples=150, deadline=None)
@given(
    st.sampled_from(_BINARY_OPS),
    abstract_values(),
    abstract_values(),
    abstract_values(),
    abstract_values(),
)
def test_binary_transfer_monotone(op, a1, d_a, b1, d_b):
    a2 = a1.join(d_a)
    b2 = b1.join(d_b)
    small = abstract_eval(op, [a1, b1])
    large = abstract_eval(op, [a2, b2])
    assert small.leq(large), (op, a1, b1, a2, b2)


@settings(max_examples=300, deadline=None)
@given(st.sampled_from(_BINARY_OPS), abstract_values(), abstract_values())
def test_binary_transfer_sound(op, a, b):
    """Concrete results always land inside the abstraction."""
    spec = prims.lookup(op)
    assert spec is not None and spec.fold is not None
    result = abstract_eval(op, [a, b])
    for x in concretize(a):
        for y in concretize(b):
            try:
                word = spec.fold(x, y)
            except FoldCannot:
                continue
            assert not result.excludes_word(word), (op, x, y, word, a, b, result)


@settings(max_examples=200, deadline=None)
@given(st.sampled_from(_UNARY_OPS), abstract_values())
def test_unary_transfer_sound(op, a):
    spec = prims.lookup(op)
    assert spec is not None and spec.fold is not None
    result = abstract_eval(op, [a])
    for x in concretize(a):
        try:
            word = spec.fold(x)
        except FoldCannot:
            continue
        assert not result.excludes_word(word), (op, x, word, a, result)


_FOLDABLE = sorted(
    name for name in prims.all_prims() if prims.lookup(name).fold is not None
)


def test_fold_oracle_coverage_is_exhaustive():
    """The hand-listed op sets above cover every foldable primitive —
    adding a prim with a fold without extending them fails here."""
    assert set(_FOLDABLE) == set(_BINARY_OPS) | set(_UNARY_OPS)


@settings(max_examples=400, deadline=None)
@given(st.data())
def test_every_foldable_prim_sound(data):
    """Concrete fold results land inside abstract_eval for *every*
    primitive with a fold, arity read off the table — the containment
    property the summary fixpoint's soundness rests on."""
    import itertools

    op = data.draw(st.sampled_from(_FOLDABLE))
    spec = prims.lookup(op)
    args = [data.draw(abstract_values()) for _ in range(spec.arity)]
    result = abstract_eval(op, args)
    for words in itertools.product(*(concretize(a, limit=6) for a in args)):
        try:
            word = spec.fold(*words)
        except FoldCannot:
            continue
        assert not result.excludes_word(word), (op, words, args, result)


def test_bottom_in_bottom_out():
    for op in _BINARY_OPS:
        assert abstract_eval(op, [BOTTOM, UNKNOWN]).is_bottom
        assert abstract_eval(op, [UNKNOWN, BOTTOM]).is_bottom


def test_every_prim_has_a_signature():
    from repro.prims.abstract import signature

    for name in prims.all_prims():
        assert signature(name) is not None


def test_tag_facts_flow_through_arithmetic():
    fixnum = from_tags({0})
    assert abstract_eval("%add", [fixnum, fixnum]).tags == frozenset({0})
    assert abstract_eval("%sub", [fixnum, fixnum]).tags == frozenset({0})
    assert abstract_eval("%mul", [fixnum, const(8)]).tags == frozenset({0})
    # Disjoint tags decide %eq.
    pair = from_tags({1})
    assert abstract_eval("%eq", [fixnum, pair]).as_constant() == 0


def test_interval_comparisons_fold():
    small = from_range(0, 10)
    large = from_range(20, 30)
    assert abstract_eval("%lt", [small, large]).as_constant() == 1
    assert abstract_eval("%lt", [large, small]).as_constant() == 0
    assert abstract_eval("%le", [small, small]).as_constant() is None


# ----------------------------------------------------------------------
# differential: absint on/off agree with the reference interpreter
# ----------------------------------------------------------------------

from repro import CompileOptions, OptimizerOptions, compile_source
from repro.ir.interp import Interpreter

try:
    from benchmarks.workloads import ASSOC, DERIV, FIB, SORT, TAK, VECTOR

    _WORKLOADS = [FIB, TAK, SORT, VECTOR, ASSOC, DERIV]
except ImportError:  # pragma: no cover - benchmarks not importable
    _WORKLOADS = []


@pytest.mark.parametrize(
    "workload", _WORKLOADS, ids=[w[0] for w in _WORKLOADS]
)
def test_differential_absint_on_off(workload):
    """Optimizing with and without the absint pass must not change what
    the program computes — checked on the reference IR interpreter, so a
    backend bug cannot mask an optimizer bug."""
    _name, source, _expected = workload
    with_pass = compile_source(source, CompileOptions())
    without = compile_source(
        source, CompileOptions(optimizer=OptimizerOptions().without("absint"))
    )
    on = Interpreter().run(with_pass.ir_program)
    off = Interpreter().run(without.ir_program)
    assert on.output == off.output
    # Fixnum results decode identically (heap words are address-relative).
    if on.value & 7 == 0 and off.value & 7 == 0:
        assert on.value == off.value
